//! End-to-end fault-injection drills for the serving core: the three
//! recovery paths the robustness work guarantees, exercised through the
//! public crate APIs exactly as a serving harness would.
//!
//! 1. **Corrupt artifact → typed rejection.** Every single-byte
//!    corruption and every truncation of a checksummed artifact is
//!    rejected with a typed error naming the damaged section.
//! 2. **Poisoned expert → graceful degradation.** A NaN-producing
//!    expert is quarantined and the router's top-k mass renormalizes
//!    over the survivors; strict mode returns `ExpertFailed` instead.
//! 3. **Panicking expert → contained failure.** A worker panic during
//!    expert dispatch becomes an `ExpertFailed` error (strict) or a
//!    quarantine entry (degrade); the thread pool and the process stay
//!    usable either way.

use milo_core::{compress_model, MiloOptions, RankPolicy};
use milo_engine::{EngineError, PackedMoeModel};
use milo_faults::{corrupt_samples, fault_rng, kill_expert, poison_expert, truncation_points};
use milo_moe::{layer_tensors, MoeConfig, MoeError, MoeModel, ResilienceContext};
use milo_quant::HqqOptions;
use std::io::Cursor;

fn toy_model() -> MoeModel {
    let cfg = MoeConfig {
        name: "fault-drill".into(),
        n_layers: 2,
        d_model: 32,
        n_heads: 2,
        vocab: 32,
        n_experts: 4,
        top_k: 2,
        expert_ffn: 32,
        n_shared_experts: 0,
        shared_ffn: 0,
        first_layer_dense: false,
        router_imbalance: 0.3,
        attn_dof: 6.0,
        expert_channel_spread: 0.0,
        head_gain: 1.0,
    };
    MoeModel::synthesize(&cfg, 77)
}

/// The expert of `layer` that receives the most tokens for `seq`, so an
/// injected fault there is guaranteed to fire.
fn busiest_expert(model: &MoeModel, seq: &[u32], layer: usize) -> usize {
    let mut counts = model.fresh_counts();
    model.forward_counting(seq, Some(&mut counts)).unwrap();
    counts[layer]
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(e, _)| e)
        .unwrap()
}

// ---------------------------------------------------------------------
// Recovery path 1: corrupt artifact → typed rejection.
// ---------------------------------------------------------------------

#[test]
fn corrupted_compressed_artifact_is_rejected_with_the_offending_layer() {
    let model = toy_model();
    let tensors = layer_tensors(&model, None);
    let opts = MiloOptions {
        max_iters: 1,
        hqq: HqqOptions { max_iters: 2, ..HqqOptions::default() },
        ..MiloOptions::default()
    };
    let compressed = compress_model(&tensors, &RankPolicy::uniform(2), &opts, 2).unwrap();
    let mut buf = Vec::new();
    milo_core::serialize::write_compressed_model(&mut buf, &compressed).unwrap();

    // Seeded single-byte corruption sweep: every flip is rejected.
    for (off, mask) in corrupt_samples(buf.len(), 48, &mut fault_rng()) {
        let mut bad = buf.clone();
        bad[off] ^= mask;
        let err = milo_core::serialize::read_compressed_model(&mut Cursor::new(&bad[..]))
            .expect_err("corruption must be detected");
        // Payload corruption carries the typed section error naming the
        // damaged layer; header/framing corruption fails structurally.
        if let Some(info) = milo_tensor::io::corrupt_section_info(&err) {
            assert!(!info.section.is_empty());
        }
    }

    // Exhaustive truncation sweep: every cut errors, none panic.
    for cut in truncation_points(buf.len()) {
        assert!(
            milo_core::serialize::read_compressed_model(&mut Cursor::new(&buf[..cut])).is_err(),
            "truncation at {cut} parsed"
        );
    }

    // The intact stream still round-trips after all that.
    let back = milo_core::serialize::read_compressed_model(&mut Cursor::new(&buf[..])).unwrap();
    assert_eq!(back.layers.len(), compressed.layers.len());
}

// ---------------------------------------------------------------------
// Recovery path 2: poisoned expert → graceful degradation.
// ---------------------------------------------------------------------

#[test]
fn nan_poisoned_expert_degrades_and_strict_mode_errors() {
    let model = toy_model();
    let seq: Vec<u32> = (0..10).collect();
    let target = busiest_expert(&model, &seq, 0);

    // Degrade: output finite, expert quarantined with a reason.
    let ctx = ResilienceContext::degrade().with_fault(poison_expert(0, target));
    let logits = model.forward_resilient(&seq, &ctx).unwrap();
    assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    assert!(ctx.health.is_failed(0, target));

    // Strict: typed error naming layer and expert.
    let strict = ResilienceContext::strict().with_fault(poison_expert(0, target));
    match model.forward_resilient(&seq, &strict) {
        Err(MoeError::ExpertFailed { layer: 0, expert, reason }) => {
            assert_eq!(expert, target);
            assert!(reason.contains("non-finite"), "reason = {reason}");
        }
        other => panic!("expected ExpertFailed, got {other:?}"),
    }
}

#[test]
fn packed_engine_survives_poisoned_and_killed_experts() {
    let mut cfg = MoeConfig::tiny_mixtral();
    cfg.d_model = 128;
    cfg.expert_ffn = 256;
    cfg.n_layers = 2;
    let reference = MoeModel::synthesize(&cfg, 78);
    let tensors = layer_tensors(&reference, None);
    let opts = MiloOptions { max_iters: 1, ..MiloOptions::default() };
    let compressed = compress_model(&tensors, &RankPolicy::uniform(2), &opts, 2).unwrap();
    let engine = PackedMoeModel::build(&reference, &compressed).unwrap();

    let seq = [1u32, 9, 17, 33];
    let target = busiest_expert(&reference, &seq, 1);

    for fault in [poison_expert(1, target), kill_expert(1, target)] {
        let ctx = ResilienceContext::degrade().with_fault(fault);
        let logits = engine.forward_resilient(&seq, &ctx).unwrap();
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
        assert!(ctx.health.is_failed(1, target));

        let strict = ResilienceContext::strict().with_fault(fault);
        assert!(matches!(
            engine.forward_resilient(&seq, &strict),
            Err(EngineError::ExpertFailed { layer: 1, .. })
        ));
    }
    // Normal serving continues after both drills.
    assert!(engine.forward(&seq).is_ok());
}

// ---------------------------------------------------------------------
// Recovery path 3: panicking expert → contained failure, pool usable.
// ---------------------------------------------------------------------

#[test]
fn killed_expert_is_contained_and_the_pool_stays_usable() {
    let model = toy_model();
    let seq: Vec<u32> = (0..8).collect();
    let target = busiest_expert(&model, &seq, 1);

    let ctx = ResilienceContext::degrade().with_fault(kill_expert(1, target));
    let logits = model.forward_resilient(&seq, &ctx).unwrap();
    assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    let failures = ctx.health.failures();
    assert_eq!(failures.len(), 1);
    assert!(failures[0].1.contains("injected fault"), "reason = {}", failures[0].1);

    // The same model, pool, and process serve healthy traffic after the
    // panic was captured — repeatedly, across thread counts.
    for threads in [1, 2, 4] {
        let out = milo_tensor::pool::with_threads(threads, || model.forward(&seq).unwrap());
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn fault_seed_env_override_is_honored() {
    // Not a parallel-safe env mutation: set once, read, restore.
    let prev = std::env::var("MILO_FAULT_SEED").ok();
    std::env::set_var("MILO_FAULT_SEED", "0xabc");
    let seed = milo_faults::fault_seed();
    match prev {
        Some(v) => std::env::set_var("MILO_FAULT_SEED", v),
        None => std::env::remove_var("MILO_FAULT_SEED"),
    }
    assert_eq!(seed, 0xabc);
}
