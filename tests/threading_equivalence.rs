//! Cross-crate determinism suite for the threading PR: every parallel
//! path (dense matmul, fused/unfused packed GEMM, `PackedLinear`
//! including its dense fallback, the full packed engine forward) must be
//! **bit-identical** at every thread count. The pool's static contiguous
//! chunking plus unchanged per-element FP32 accumulation order makes the
//! guarantee exact equality, not tolerance-based closeness.
//!
//! Thread counts are swept with `pool::with_threads` (a thread-local
//! override), so these tests never mutate `MILO_THREADS` and stay safe
//! under cargo's parallel test runner.

use milo::core::{compress_model, milo_compress, MiloOptions, RankPolicy};
use milo::engine::{PackedLinear, PackedMoeModel};
use milo::moe::{layer_tensors, MoeConfig, MoeModel};
use milo::pack::{GemmKernel, PackedMatrix, TileShape};
use milo::quant::{rtn_quantize, QuantConfig};
use milo::tensor::pool;
use milo::tensor::rng::{SeedableRng, StdRng, WeightDist};
use milo::tensor::Matrix;
use milo_tensor::proptest::{check, uniform_f32, vec_of, Config};
use milo_tensor::prop_assert_eq;

/// The thread counts every equivalence test sweeps: serial, even splits,
/// and a count that does not divide typical dimensions.
const SWEEP: [usize; 4] = [1, 2, 4, 7];

fn gaussian(rows: usize, cols: usize, std: f32, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    WeightDist::Gaussian { std }.sample_matrix(rows, cols, &mut rng)
}

#[test]
fn dense_matmul_identical_across_thread_counts() {
    // Above the parallel-matmul work threshold and with row counts that
    // leave ragged final chunks at 4 and 7 threads.
    let a = gaussian(37, 96, 1.0, 1);
    let b = gaussian(96, 83, 0.5, 2);
    let serial = pool::with_threads(1, || a.matmul(&b).unwrap());
    for threads in SWEEP {
        let par = pool::with_threads(threads, || a.matmul(&b).unwrap());
        assert_eq!(serial, par, "matmul diverged at {threads} threads");
    }
}

#[test]
fn packed_gemm_identical_across_thread_counts_all_tiles() {
    let w = gaussian(256, 256, 0.05, 3);
    let q = rtn_quantize(&w, &QuantConfig::int3_asym()).unwrap();
    let packed = PackedMatrix::pack(&q).unwrap();
    for batch in [1usize, 5, 17] {
        let x = gaussian(batch, 256, 1.0, 4 + batch as u64);
        for tile in TileShape::all() {
            let kernel = GemmKernel { tile };
            let serial = pool::with_threads(1, || kernel.gemm(&x, &packed).unwrap());
            let serial_unfused =
                pool::with_threads(1, || kernel.gemm_unfused(&x, &packed).unwrap());
            for threads in SWEEP {
                pool::with_threads(threads, || {
                    assert_eq!(serial, kernel.gemm(&x, &packed).unwrap());
                    assert_eq!(serial_unfused, kernel.gemm_unfused(&x, &packed).unwrap());
                });
            }
        }
    }
}

#[test]
fn packed_linear_identical_including_dense_fallback() {
    // 256×128 takes the packed kernel path; 96×192 is untileable and
    // exercises the dense-fallback matmul under the pool.
    for (rows, cols) in [(256usize, 128usize), (96, 192)] {
        let w = gaussian(rows, cols, 0.06, 5);
        let opts = MiloOptions { max_iters: 2, ..MiloOptions::default() };
        let layer = milo_compress(&w, 4, &opts).unwrap();
        let lin = PackedLinear::build(&layer).unwrap();
        let x = gaussian(9, cols, 1.0, 6);
        let serial = pool::with_threads(1, || lin.forward(&x).unwrap());
        for threads in SWEEP {
            let par = pool::with_threads(threads, || lin.forward(&x).unwrap());
            assert_eq!(serial, par, "({rows},{cols}) diverged at {threads} threads");
        }
    }
}

#[test]
fn packed_engine_forward_identical_across_thread_counts() {
    let mut cfg = MoeConfig::tiny_mixtral();
    cfg.n_layers = 2;
    let reference = MoeModel::synthesize(&cfg, 57);
    let tensors = layer_tensors(&reference, None);
    let opts = MiloOptions { max_iters: 1, ..MiloOptions::default() };
    let compressed =
        compress_model(&tensors, &RankPolicy::uniform(2), &opts, 2).unwrap();
    let engine = PackedMoeModel::build(&reference, &compressed).unwrap();
    let tokens: Vec<u32> = (0..16).map(|i| (i * 5) % cfg.vocab as u32).collect();

    let serial = pool::with_threads(1, || engine.forward(&tokens).unwrap());
    for threads in SWEEP {
        let par = pool::with_threads(threads, || engine.forward(&tokens).unwrap());
        assert_eq!(serial, par, "engine forward diverged at {threads} threads");
    }
}

#[test]
fn fault_free_serving_identical_to_direct_forward() {
    // The serving layer must be a pure request-lifecycle wrapper: with
    // no faults injected, logits served through the queue/worker/retry
    // machinery are bit-identical to a direct `forward_resilient` call,
    // at every worker count (the pool's own thread-count invariance is
    // covered above, so together these pin the whole serving stack).
    use milo::moe::{FaultMode, ResilienceContext};
    use milo::serve::{Request, Server, ServerConfig};
    use std::sync::Arc;

    let mut cfg = MoeConfig::tiny_mixtral();
    cfg.n_layers = 2;
    let reference = MoeModel::synthesize(&cfg, 57);
    let tensors = layer_tensors(&reference, None);
    let opts = MiloOptions { max_iters: 1, ..MiloOptions::default() };
    let compressed =
        compress_model(&tensors, &RankPolicy::uniform(2), &opts, 2).unwrap();
    let engine = Arc::new(PackedMoeModel::build(&reference, &compressed).unwrap());

    let prompts: Vec<Vec<u32>> = (0..6)
        .map(|p| (0..8).map(|i| ((p * 11 + i * 5) % cfg.vocab) as u32).collect())
        .collect();
    let ctx = ResilienceContext::new(FaultMode::Degrade);
    let direct: Vec<Matrix> = prompts
        .iter()
        .map(|t| engine.forward_resilient(t, &ctx).unwrap())
        .collect();

    for workers in SWEEP {
        let model: Arc<PackedMoeModel> = Arc::clone(&engine);
        let server =
            Server::start(model, ServerConfig { workers, ..ServerConfig::default() });
        let tickets: Vec<_> = prompts
            .iter()
            .map(|t| server.submit(Request::new(t.clone())).unwrap())
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let resp = ticket.wait().unwrap_or_else(|e| {
                panic!("request {i} failed at {workers} workers: {e}")
            });
            assert_eq!(
                direct[i], resp.logits,
                "served logits diverged from direct forward (prompt {i}, {workers} workers)"
            );
        }
        server.shutdown();
    }
}

#[test]
fn prop_matmul_independent_of_thread_count() {
    // Property: for random matrices the parallel product is bit-identical
    // to the serial one at every swept thread count. Rows/cols chosen so
    // chunk boundaries land mid-matrix.
    let (rows, inner, cols) = (19usize, 64usize, 23usize);
    let strategy = vec_of(uniform_f32(-1.0, 1.0), rows * inner + inner * cols);
    check(&Config::with_cases(32), &strategy, |data| {
        let a = Matrix::from_vec(rows, inner, data[..rows * inner].to_vec());
        let b = Matrix::from_vec(inner, cols, data[rows * inner..].to_vec());
        let serial = pool::with_threads(1, || a.matmul(&b).unwrap());
        for threads in SWEEP {
            let par = pool::with_threads(threads, || a.matmul(&b).unwrap());
            prop_assert_eq!(&serial, &par);
        }
        Ok(())
    });
}
