//! Property-based tests on cross-crate invariants, driven by the
//! in-repo `milo_tensor::proptest` mini-harness (seeded generation plus
//! shrinking; no external crates).

use milo::core::{milo_compress, LowRankCompensator, MiloOptions};
use milo::pack::gemm::{reference_gemm, relative_error};
use milo::pack::{pack_group, unpack_group, GemmKernel, PackedMatrix};
use milo::quant::{hqq_quantize, rtn_quantize, HqqOptions, QuantConfig, Scheme};
use milo::tensor::linalg::jacobi_svd;
use milo::tensor::Matrix;
use milo_tensor::proptest::{check, uniform_f32, uniform_u8, vec_of, Config};
use milo_tensor::{prop_assert, prop_assert_eq, prop_assume};

/// 64-case config matching the original `ProptestConfig::with_cases(64)`.
fn cases64() -> Config {
    Config::with_cases(64)
}

/// Strategy for the raw data of a `rows × cols` matrix with entries in
/// `[-1, 1)`; the matrix itself is built inside the property body.
fn small_matrix(rows: usize, cols: usize) -> impl milo_tensor::proptest::Strategy<Value = Vec<f32>>
{
    vec_of(uniform_f32(-1.0, 1.0), rows * cols)
}

#[test]
fn pack_unpack_identity() {
    check(&cases64(), &vec_of(uniform_u8(0, 8), 32), |codes| {
        let mut arr = [0u8; 32];
        arr.copy_from_slice(codes);
        prop_assert_eq!(unpack_group(&pack_group(&arr)), arr);
        Ok(())
    });
}

#[test]
fn rtn_error_bounded_by_half_step() {
    check(&cases64(), &small_matrix(4, 64), |data| {
        let w = Matrix::from_vec(4, 64, data.clone());
        let cfg = QuantConfig::int3_asym();
        let q = rtn_quantize(&w, &cfg).unwrap();
        let dq = q.dequantize();
        for (i, (&a, &b)) in w.as_slice().iter().zip(dq.as_slice()).enumerate() {
            let s = q.scales()[i / 64];
            prop_assert!(
                (a - b).abs() <= 0.5 * s + 1e-5,
                "element {}: {} vs {} (step {})",
                i,
                a,
                b,
                s
            );
        }
        Ok(())
    });
}

#[test]
fn hqq_never_worse_than_rtn_by_much() {
    check(&cases64(), &small_matrix(8, 64), |data| {
        // HQQ optimizes an lp<1 objective, but its l2 error should stay
        // in the same ballpark as RTN's (it starts from the RTN grid).
        let w = Matrix::from_vec(8, 64, data.clone());
        let cfg = QuantConfig::int3_asym();
        let e_rtn =
            w.sub(&rtn_quantize(&w, &cfg).unwrap().dequantize()).unwrap().frobenius_norm();
        let e_hqq = w
            .sub(&hqq_quantize(&w, &cfg, &HqqOptions::default()).unwrap().dequantize())
            .unwrap()
            .frobenius_norm();
        prop_assert!(e_hqq <= e_rtn * 1.25 + 1e-6, "hqq {} vs rtn {}", e_hqq, e_rtn);
        Ok(())
    });
}

#[test]
fn compensator_never_increases_residual() {
    check(&cases64(), &small_matrix(24, 24), |data| {
        // Fitting a rank-r compensator to a residual can only shrink its
        // Frobenius norm (Eckart-Young).
        let w = Matrix::from_vec(24, 24, data.clone());
        let norm = w.frobenius_norm();
        prop_assume!(norm > 1e-3);
        let c = LowRankCompensator::fit(&w, 4, 0).unwrap();
        let after = w.sub(&c.to_dense()).unwrap().frobenius_norm();
        prop_assert!(after <= norm * 1.0001, "{} -> {}", norm, after);
        Ok(())
    });
}

#[test]
fn milo_effective_weight_beats_plain_quant() {
    check(&cases64(), &small_matrix(32, 64), |data| {
        let w = Matrix::from_vec(32, 64, data.clone());
        prop_assume!(w.frobenius_norm() > 1e-2);
        let opts = MiloOptions { max_iters: 2, compensator_cfg: None, ..MiloOptions::default() };
        let plain = milo_compress(&w, 0, &opts).unwrap();
        let comp = milo_compress(&w, 8, &opts).unwrap();
        let e_plain = w.sub(&plain.effective_weight()).unwrap().frobenius_norm();
        let e_comp = w.sub(&comp.effective_weight()).unwrap().frobenius_norm();
        prop_assert!(e_comp <= e_plain + 1e-6, "comp {} vs plain {}", e_comp, e_plain);
        Ok(())
    });
}

#[test]
fn packed_gemm_is_linear_in_activations() {
    let strat = (small_matrix(64, 64), uniform_f32(0.1, 4.0));
    check(&cases64(), &strat, |(data, alpha)| {
        let w = Matrix::from_vec(64, 64, data.clone());
        let q = rtn_quantize(&w.scale(0.05), &QuantConfig::int3_asym()).unwrap();
        let packed = PackedMatrix::pack(&q).unwrap();
        let kernel = GemmKernel { tile: milo::pack::TileShape::T64x256 };
        // (64, 64) is not a multiple of any tile along n=64... use the
        // validation-free comparison through dequantize instead.
        let _ = kernel;
        let x = Matrix::filled(1, 64, 1.0);
        let dense = packed.dequantize();
        let y1 = reference_gemm(&x, &dense);
        let y2 = reference_gemm(&x.scale(*alpha), &dense);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!(
                (a * alpha - b).abs() <= 1e-3 * (1.0 + b.abs()),
                "{} vs {}",
                a * alpha,
                b
            );
        }
        Ok(())
    });
}

#[test]
fn svd_singular_values_sorted_nonnegative() {
    check(&cases64(), &small_matrix(12, 10), |data| {
        let w = Matrix::from_vec(12, 10, data.clone());
        let svd = jacobi_svd(&w).unwrap();
        for pair in svd.sigma.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-6);
        }
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
        Ok(())
    });
}

#[test]
fn symmetric_quant_codes_centered() {
    check(&cases64(), &small_matrix(2, 64), |data| {
        let w = Matrix::from_vec(2, 64, data.clone());
        let cfg = QuantConfig::new(3, 64, Scheme::Symmetric).unwrap();
        let q = rtn_quantize(&w, &cfg).unwrap();
        // Codes live in [0, 7]; the implicit zero-point is 4, so a zero
        // weight always maps to code 4.
        prop_assert!(q.codes().iter().all(|&c| c <= 7));
        Ok(())
    });
}

#[test]
fn packed_gemm_matches_reference_on_random_weights() {
    // A deterministic heavier check complementing the property cases.
    use milo::tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;
    let mut rng = milo_tensor::rng::StdRng::seed_from_u64(99);
    for _ in 0..3 {
        let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(128, 128, &mut rng);
        let x = WeightDist::Gaussian { std: 1.0 }.sample_matrix(8, 128, &mut rng);
        let q = rtn_quantize(&w, &QuantConfig::int3_asym()).unwrap();
        let packed = PackedMatrix::pack(&q).unwrap();
        let out = GemmKernel::default().gemm(&x, &packed).unwrap();
        let reference = reference_gemm(&x, &q.dequantize());
        assert!(relative_error(&out, &reference) < 0.005);
    }
}
