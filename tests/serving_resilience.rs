//! End-to-end serving-layer resilience drills against real packed
//! models: the typed error surface a caller sees when deadlines,
//! retries, admission control, and circuit breakers fire, exercised
//! through the public `milo::serve` API exactly as a client would.
//!
//! Each failure mode must surface as its *own* typed error — a caller
//! distinguishes "you submitted a bad request" (`InvalidDeadline`),
//! "the system is full" (`Overloaded`), "your budget ran out mid-work"
//! (`DeadlineExceeded`, with the stage it died at), and "the model kept
//! failing" (`RetriesExhausted`) without parsing strings.

use std::sync::Arc;
use std::time::Duration;

use milo_core::{compress_model, MiloOptions, RankPolicy};
use milo_engine::PackedMoeModel;
use milo_faults::{kill_expert, slow_expert};
use milo_moe::{layer_tensors, FaultMode, MoeConfig, MoeModel};
use milo_quant::HqqOptions;
use milo_serve::{
    Request, RetryPolicy, ServeError, Server, ServerConfig, Stage,
};

/// A real 2-layer packed model (the same compress → pack pipeline the
/// CLI runs), small enough that a clean forward is well under 1 ms.
fn packed_model(seed: u64) -> (Arc<PackedMoeModel>, MoeConfig) {
    let cfg = MoeConfig::tiny_mixtral();
    let reference = MoeModel::synthesize(&cfg, seed);
    let tensors = layer_tensors(&reference, None);
    let opts = MiloOptions {
        max_iters: 1,
        hqq: HqqOptions { max_iters: 5, ..HqqOptions::default() },
        ..MiloOptions::default()
    };
    let compressed =
        compress_model(&tensors, &RankPolicy::uniform(2), &opts, 2).unwrap();
    let packed = PackedMoeModel::build(&reference, &compressed).unwrap();
    (Arc::new(packed), cfg)
}

fn tokens(cfg: &MoeConfig, n: usize, salt: u64) -> Vec<u32> {
    (0..n).map(|i| ((salt + i as u64 * 7) % cfg.vocab as u64) as u32).collect()
}

/// Slows every routed expert on layer 0, so any top-k assignment hits
/// the latency fault.
fn slow_layer0(cfg: &MoeConfig, millis: u64) -> Vec<milo_moe::InjectedFault> {
    (0..cfg.n_experts).map(|e| slow_expert(0, e, millis)).collect()
}

#[test]
fn zero_length_deadline_is_rejected_at_admission() {
    let (model, cfg) = packed_model(11);
    let server = Server::start(model, ServerConfig::default());
    let err = server
        .submit(Request::new(tokens(&cfg, 4, 0)).with_deadline(Duration::ZERO))
        .unwrap_err();
    assert!(
        matches!(err, ServeError::InvalidDeadline),
        "zero-length deadline must be InvalidDeadline, got: {err}"
    );
    // The rejection must not consume queue or worker capacity: a normal
    // request right after still completes.
    let resp = server.submit(Request::new(tokens(&cfg, 4, 1))).unwrap().wait();
    assert!(resp.is_ok(), "server unusable after InvalidDeadline: {resp:?}");
    let stats = server.shutdown();
    assert_eq!(stats.admitted, 1, "invalid request must not count as admitted");
}

#[test]
fn deadline_mid_layer_names_the_layer_it_died_at() {
    let (model, cfg) = packed_model(12);
    let server = Server::start(
        model,
        ServerConfig {
            workers: 1,
            retry: RetryPolicy::none(),
            ..ServerConfig::default()
        },
    );
    // Every layer-0 expert sleeps 10× the deadline; the cooperative
    // cancellation token trips during the sleep and the engine exits at
    // the next layer boundary — so the error names a mid-model stage,
    // not the queue.
    server.set_faults(slow_layer0(&cfg, 400));
    let err = server
        .submit(
            Request::new(tokens(&cfg, 4, 2)).with_deadline(Duration::from_millis(40)),
        )
        .unwrap()
        .wait()
        .unwrap_err();
    match err {
        ServeError::DeadlineExceeded { stage: Stage::Layer(l) } => {
            assert!(l >= 1, "cancellation observed before any layer ran")
        }
        other => panic!("expected DeadlineExceeded at a layer boundary, got: {other}"),
    }
    server.shutdown();
}

#[test]
fn retry_budget_exhausted_is_a_distinct_typed_error() {
    let (model, cfg) = packed_model(13);
    let server = Server::start(
        model,
        ServerConfig {
            workers: 1,
            retry: RetryPolicy {
                max_attempts: 3,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
            },
            ..ServerConfig::default()
        },
    );
    // A killed expert in strict mode fails every attempt the same way
    // (strict requests do not quarantine, so the fault never routes
    // around itself); the third failure must surface as
    // RetriesExhausted, not as the raw expert error.
    server.set_faults(vec![kill_expert(0, 0), kill_expert(0, 1), kill_expert(0, 2), kill_expert(0, 3)]);
    let err = server
        .submit(Request::new(tokens(&cfg, 4, 3)).with_mode(FaultMode::Strict))
        .unwrap()
        .wait()
        .unwrap_err();
    match err {
        ServeError::RetriesExhausted { attempts, ref last } => {
            assert_eq!(attempts, 3);
            assert!(
                last.contains("expert"),
                "last error should name the failing expert, got: {last}"
            );
        }
        other => panic!("expected RetriesExhausted, got: {other}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.retries, 2, "3 attempts = 2 retries");
}

#[test]
fn overload_is_a_typed_rejection_and_queue_stays_bounded() {
    let (model, cfg) = packed_model(14);
    let server = Server::start(
        model,
        ServerConfig {
            workers: 1,
            queue_capacity: 2,
            retry: RetryPolicy::none(),
            ..ServerConfig::default()
        },
    );
    // Pin the single worker on a slow layer-0 dispatch, then flood: at
    // most 1 running + 2 queued can be in flight, so the burst must see
    // typed Overloaded rejections — never blocking, never unbounded.
    server.set_faults(slow_layer0(&cfg, 150));
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for i in 0..10 {
        match server.submit(Request::new(tokens(&cfg, 4, 10 + i))) {
            Ok(t) => accepted.push(t),
            Err(ServeError::Overloaded { depth, capacity }) => {
                assert!(depth <= capacity, "reported depth {depth} > capacity {capacity}");
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(other) => panic!("expected Overloaded, got: {other}"),
        }
    }
    assert!(rejected >= 7, "only {rejected}/10 rejected with a full queue");
    for t in accepted {
        t.wait().expect("accepted requests must still complete");
    }
    let stats = server.shutdown();
    assert!(stats.max_depth <= 2, "queue depth {} exceeded capacity", stats.max_depth);
}

#[test]
fn breaker_walks_open_half_open_closed_under_served_traffic() {
    let (model, cfg) = packed_model(15);
    let server = Server::start(
        model,
        ServerConfig {
            workers: 1,
            breaker_cooldown: 4,
            ..ServerConfig::default()
        },
    );
    // Degrade-mode traffic against a killed expert: the breaker opens
    // (quarantine), then — with the fault cleared — cooldown ticks
    // accumulate one per served request until a half-open probe closes
    // it again. All observed through the server's shared tracker.
    server.set_faults(vec![kill_expert(1, 0)]);
    for i in 0..8 {
        server
            .submit(Request::new(tokens(&cfg, 6, 20 + i)))
            .unwrap()
            .wait()
            .expect("degrade-mode request must still answer");
    }
    let health = Arc::clone(server.health());
    assert!(health.trips_total() >= 1, "killed expert never tripped its breaker");
    assert!(health.n_failed() >= 1, "expert should be quarantined while faulted");

    server.clear_faults();
    for i in 0..32 {
        server
            .submit(Request::new(tokens(&cfg, 6, 60 + i)))
            .unwrap()
            .wait()
            .expect("recovery-phase request failed");
        if health.n_failed() == 0 {
            break;
        }
    }
    assert!(health.half_open_total() >= 1, "breaker never reached half-open");
    assert!(health.recovered_total() >= 1, "breaker never closed after probe");
    assert_eq!(health.n_failed(), 0, "expert still quarantined after recovery");
    server.shutdown();
}
