//! The paper's Appendix D kernel correctness suite, reproduced against
//! the CPU implementation of the packed INT3 kernel:
//!
//! * **Functional correctness** — Mixtral-style and Llama2-style matrix
//!   shapes across batch sizes, 5 random seeds, relative error < 0.005
//!   against an FP32 reference.
//! * **Error handling** — group size must be 64; the weight shape must be
//!   a multiple of the tile shape; only the three documented tile shapes
//!   exist.
//! * **Boundary conditions** — batch sizes that are not multiples of the
//!   Tensor-Core granule (16), and reduction dimensions that terminate a
//!   pipeline stage early.

use milo::pack::gemm::{reference_gemm, relative_error};
use milo::pack::{GemmKernel, PackError, PackedMatrix, TileShape};
use milo::quant::{rtn_quantize, QuantConfig, Scheme};
use milo::tensor::rng::WeightDist;
use milo::tensor::Matrix;
use milo_tensor::rng::SeedableRng;

/// The Appendix D criterion.
const CRITERION: f32 = 0.005;

fn packed(n: usize, k: usize, seed: u64, scheme: Scheme) -> (Matrix, PackedMatrix) {
    let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
    let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(n, k, &mut rng);
    let cfg = QuantConfig::new(3, 64, scheme).expect("valid config");
    let q = rtn_quantize(&w, &cfg).expect("quantize");
    (q.dequantize(), PackedMatrix::pack(&q).expect("pack"))
}

fn activations(batch: usize, k: usize, seed: u64) -> Matrix {
    let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed ^ 0xac71);
    WeightDist::Gaussian { std: 1.0 }.sample_matrix(batch, k, &mut rng)
}

fn check(kernel: &GemmKernel, n: usize, k: usize, batch: usize, seed: u64, scheme: Scheme) {
    let (dense, pk) = packed(n, k, seed, scheme);
    let x = activations(batch, k, seed);
    let out = kernel.gemm(&x, &pk).expect("kernel run");
    let reference = reference_gemm(&x, &dense);
    let err = relative_error(&out, &reference);
    assert!(
        err < CRITERION,
        "(n={n}, k={k}, batch={batch}, seed={seed}, {scheme:?}): rel err {err}"
    );
}

#[test]
fn functional_mixtral_shapes() {
    // Scaled analogues of test_mixtral_shape(): the 4 distinct matrix
    // shapes of the Mixtral block (q/k/v/o square, w1/w3 tall, w2 wide,
    // head-ish), across batch sizes, 5 seeds each.
    let shapes = [(256usize, 256usize), (896, 256), (256, 896), (512, 256)];
    let kernel = GemmKernel { tile: TileShape::T128x128 };
    for &(n, k) in &shapes {
        for batch in [1usize, 3, 16, 64] {
            for seed in 0..5 {
                check(&kernel, n, k, batch, seed, Scheme::Asymmetric);
            }
        }
    }
}

#[test]
fn functional_llama_shapes() {
    // Scaled analogues of test_llama_shape(): a spread of rectangular
    // shapes with both orientations, batch sizes 1..=1024 spot-checked.
    let shapes = [
        (128usize, 128usize),
        (128, 384),
        (384, 128),
        (256, 128),
        (128, 256),
        (640, 128),
        (128, 640),
        (384, 384),
    ];
    let kernel = GemmKernel { tile: TileShape::T128x128 };
    for &(n, k) in &shapes {
        for batch in [1usize, 17, 128] {
            for seed in 0..5 {
                check(&kernel, n, k, batch, seed, Scheme::Asymmetric);
            }
        }
    }
}

#[test]
fn functional_symmetric_scheme() {
    let kernel = GemmKernel { tile: TileShape::T128x128 };
    for seed in 0..5 {
        check(&kernel, 256, 256, 16, seed, Scheme::Symmetric);
    }
}

#[test]
fn functional_large_batch_1024() {
    let kernel = GemmKernel { tile: TileShape::T128x128 };
    check(&kernel, 128, 128, 1024, 0, Scheme::Asymmetric);
}

#[test]
fn error_handling_group_size_must_be_64() {
    // Appendix D rule 1.
    let mut rng = milo_tensor::rng::StdRng::seed_from_u64(1);
    let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(128, 128, &mut rng);
    let cfg = QuantConfig::new(3, 32, Scheme::Asymmetric).unwrap();
    let q = rtn_quantize(&w, &cfg).unwrap();
    let pk = PackedMatrix::pack(&q).unwrap();
    let x = activations(1, 128, 1);
    assert!(matches!(
        GemmKernel::default().gemm(&x, &pk),
        Err(PackError::Unsupported(_))
    ));
}

#[test]
fn error_handling_shape_must_match_tile() {
    // Appendix D rule 2: (k, n) must be a multiple of the tile shape.
    let (_, pk) = packed(128, 128, 2, Scheme::Asymmetric);
    let x = activations(1, 128, 2);
    for tile in [TileShape::T256x64, TileShape::T64x256] {
        assert!(
            matches!(
                GemmKernel { tile }.gemm(&x, &pk),
                Err(PackError::InvalidShape(_))
            ),
            "tile {tile:?} should reject a 128x128 weight"
        );
    }
    assert!(GemmKernel { tile: TileShape::T128x128 }.gemm(&x, &pk).is_ok());
}

#[test]
fn error_handling_only_documented_tiles_exist() {
    // Appendix D rule 3: the tile-shape configuration is restricted to
    // (64,256), (128,128), (256,64) — encoded in the type system.
    let dims: Vec<(usize, usize)> = TileShape::all().iter().map(|t| t.dims()).collect();
    assert_eq!(dims, vec![(256, 64), (128, 128), (64, 256)]);
}

#[test]
fn boundary_batch_not_multiple_of_16() {
    // Appendix D boundary 1: padding must not change results. Compare a
    // ragged batch against the same rows embedded in a padded batch.
    let (_, pk) = packed(128, 128, 3, Scheme::Asymmetric);
    let kernel = GemmKernel::default();
    let full = activations(32, 128, 3);
    let out_full = kernel.gemm(&full, &pk).unwrap();
    for ragged in [1usize, 5, 15, 17, 31] {
        let sub = full.submatrix(0, ragged, 0, 128);
        let out = kernel.gemm(&sub, &pk).unwrap();
        for b in 0..ragged {
            assert_eq!(out.row(b), out_full.row(b), "batch {ragged}, row {b}");
        }
    }
}

#[test]
fn boundary_reduction_dim_terminates_pipeline_early() {
    // Appendix D boundary 2: reduction dimensions that are not a multiple
    // of 4 × tile_k still produce correct results (the last pipeline
    // stage terminates early). With tile (64, 256): 4·64 = 256; k = 320
    // and k = 576 are not multiples.
    let kernel = GemmKernel { tile: TileShape::T64x256 };
    for k in [320usize, 576] {
        for seed in 0..5 {
            check(&kernel, 256, k, 16, seed, Scheme::Asymmetric);
        }
    }
}

#[test]
fn all_tile_shapes_agree_numerically() {
    // Different tile shapes change the FP32 accumulation order, so
    // agreement is to rounding, not bitwise.
    let (_, pk) = packed(256, 256, 4, Scheme::Asymmetric);
    let x = activations(8, 256, 4);
    let outs: Vec<Matrix> = TileShape::all()
        .iter()
        .map(|&tile| GemmKernel { tile }.gemm(&x, &pk).unwrap())
        .collect();
    assert!(relative_error(&outs[1], &outs[0]) < 1e-6);
    assert!(relative_error(&outs[2], &outs[0]) < 1e-6);
}
