//! Integration tests of the analytical performance model against the
//! paper's system-level claims (Figs. 9–10, Table 7).

use milo::gpu_sim::{
    end_to_end, gemm_time, mlp_shapes, tflops, Backend, Device, E2eResult, GemmShape,
    KernelConfig, KernelKind, MlpModel, ModelSpec, Optimizations,
};

fn dev() -> Device {
    Device::a100_40gb()
}

#[test]
fn table7_cells_reproduce_paper_structure() {
    let spec = ModelSpec::mixtral_8x7b();
    // PyTorch row: OOM everywhere.
    for batch in [1usize, 16, 32] {
        assert_eq!(end_to_end(&dev(), Backend::PyTorchFp16, &spec, batch), E2eResult::OutOfMemory);
    }
    // GPTQ row: a number at bs 1, dashes after.
    assert!(end_to_end(&dev(), Backend::Gptq3bit, &spec, 1).latency().is_some());
    assert_eq!(end_to_end(&dev(), Backend::Gptq3bit, &spec, 16), E2eResult::Unsupported);
    // MiLo beats MARLIN at every batch, by roughly the paper's 1.2x.
    for batch in [1usize, 16, 32] {
        let milo = end_to_end(&dev(), Backend::Milo, &spec, batch).latency().unwrap();
        let marlin = end_to_end(&dev(), Backend::Marlin, &spec, batch).latency().unwrap();
        let speedup = marlin / milo;
        assert!((1.1..1.45).contains(&speedup), "batch {batch}: {speedup}");
    }
}

#[test]
fn fig9_batch1_ranking() {
    // Memory-bound regime: 3-bit kernels on top, FP16-path unfused last.
    for model in MlpModel::all() {
        let t = |kind: KernelKind| -> f64 {
            mlp_shapes(model, 1)
                .into_iter()
                .map(|s| gemm_time(&dev(), &KernelConfig::new(kind), s).unwrap())
                .sum()
        };
        assert!(t(KernelKind::MiloSym) < t(KernelKind::Marlin), "{}", model.name());
        assert!(t(KernelKind::Marlin) < t(KernelKind::DequantCutlass), "{}", model.name());
    }
}

#[test]
fn fig9_batch16_milo_wins_every_model() {
    for model in MlpModel::all() {
        let milo: f64 = mlp_shapes(model, 16)
            .into_iter()
            .map(|s| gemm_time(&dev(), &KernelConfig::new(KernelKind::MiloSym), s).unwrap())
            .sum();
        let marlin: f64 = mlp_shapes(model, 16)
            .into_iter()
            .map(|s| gemm_time(&dev(), &KernelConfig::new(KernelKind::Marlin), s).unwrap())
            .sum();
        assert!(milo < marlin, "{}: milo {milo} vs marlin {marlin}", model.name());
    }
}

#[test]
fn fig10_ablation_ordering_matches_paper() {
    let base = Optimizations::default();
    let time = |model: MlpModel, opts: Optimizations| -> f64 {
        let cfg = KernelConfig { kind: KernelKind::MiloAsym, opts };
        mlp_shapes(model, 16)
            .into_iter()
            .map(|s| gemm_time(&dev(), &cfg, s).unwrap())
            .sum()
    };
    // (1) async load is the most critical optimization for every model.
    for model in MlpModel::all() {
        let no_async = time(model, Optimizations { async_load: false, ..base });
        let no_dq = time(model, Optimizations { milo_dequant: false, ..base });
        let no_tile = time(model, Optimizations { tile_tuning: false, ..base });
        assert!(no_async >= no_dq && no_async >= no_tile, "{}", model.name());
    }
    // (2) dequant matters more as MLPs grow.
    let rel = |model: MlpModel, opts: Optimizations| time(model, opts) / time(model, base);
    assert!(
        rel(MlpModel::Falcon180b, Optimizations { milo_dequant: false, ..base })
            >= rel(MlpModel::DeepSeekMoe, Optimizations { milo_dequant: false, ..base })
    );
    // (3) tile tuning matters most for the smallest MLP and vanishes for
    // the largest.
    let tile_small = rel(MlpModel::DeepSeekMoe, Optimizations { tile_tuning: false, ..base });
    let tile_large = rel(MlpModel::Falcon180b, Optimizations { tile_tuning: false, ..base });
    assert!(tile_small > 1.01, "tile tuning should matter on DeepSeek ({tile_small})");
    assert!(tile_small >= tile_large);
}

#[test]
fn tflops_scale_with_batch_toward_compute_bound() {
    // Throughput must rise steeply from bs 1 to bs 32 (the memory-bound
    // to compute-bound transition of Fig. 9).
    let cfg = KernelConfig::new(KernelKind::MiloSym);
    let shape1 = GemmShape::new(1, 4096, 14336);
    let shape32 = GemmShape::new(32, 4096, 14336);
    let t1 = tflops(&dev(), &cfg, shape1).unwrap();
    let t32 = tflops(&dev(), &cfg, shape32).unwrap();
    assert!(t32 > 10.0 * t1, "bs1 {t1} TFLOPS vs bs32 {t32} TFLOPS");
}

#[test]
fn custom_specs_scale_sensibly() {
    // Half the layers -> roughly half the post-overhead latency.
    let full = ModelSpec::mixtral_8x7b();
    let mut half = full.clone();
    half.n_layers /= 2;
    let t_full = end_to_end(&dev(), Backend::Milo, &full, 1).latency().unwrap();
    let t_half = end_to_end(&dev(), Backend::Milo, &half, 1).latency().unwrap();
    assert!(t_half < t_full);
}
