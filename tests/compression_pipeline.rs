//! End-to-end compression pipeline tests spanning all crates: synthesize
//! MoE models, compress them with every method and policy, and check the
//! orderings the paper's evaluation rests on.

use milo::core::{compress_model, MiloOptions, RankPolicy, SparseAllocation};
use milo::eval::{generate_corpus, perplexity, EvalConfig, EvalContext};
use milo::moe::{apply_compressed, layer_tensors, profile_expert_frequency, MoeConfig, MoeModel};
use milo::quant::HqqOptions;

/// A small-but-not-tiny model: big enough for the PPL orderings to be
/// stable, small enough for CI.
fn test_config(mixtral: bool) -> MoeConfig {
    let mut cfg = if mixtral { MoeConfig::mixtral_like() } else { MoeConfig::deepseek_like() };
    cfg.n_layers = 3;
    cfg.scaled(0.5)
}

fn quick_opts(max_iters: usize) -> MiloOptions {
    MiloOptions {
        max_iters,
        hqq: HqqOptions { max_iters: 10, ..HqqOptions::default() },
        ..MiloOptions::default()
    }
}

fn threads() -> usize {
    std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4)
}

#[test]
fn every_policy_compresses_both_models() {
    for mixtral in [true, false] {
        let cfg = test_config(mixtral);
        let reference = MoeModel::synthesize(&cfg, 5);
        let corpus = generate_corpus(&reference, 4, 16, 9).expect("corpus");
        let profile = profile_expert_frequency(&reference, &corpus).expect("profile");
        let tensors = layer_tensors(&reference, Some(&profile));
        let policies = [
            RankPolicy::uniform(2),
            RankPolicy::dense_only(8),
            RankPolicy::sparse_only(2),
            RankPolicy::composite(8, SparseAllocation::Kurtosis { avg_rank: 2 }),
            RankPolicy::composite(8, SparseAllocation::Frequency { avg_rank: 2 }),
        ];
        for policy in policies {
            let compressed = compress_model(&tensors, &policy, &quick_opts(1), threads())
                .unwrap_or_else(|e| panic!("{policy:?} on {}: {e}", cfg.name));
            let model = apply_compressed(&reference, &compressed).expect("apply");
            // The compressed model must run and produce finite logits.
            let logits = model.forward(&[1, 2, 3, 4]).expect("forward");
            assert!(logits.as_slice().iter().all(|v| v.is_finite()));
            // And be dramatically smaller than FP16.
            assert!(compressed.memory_bytes() < cfg.fp16_bytes() / 3);
        }
    }
}

#[test]
fn milo_improves_ppl_over_plain_hqq() {
    // Paper Table 3's headline: MiLo (HQQ + compensators) beats HQQ.
    let cfg = test_config(true);
    let reference = MoeModel::synthesize(&cfg, 6);
    let corpus = generate_corpus(&reference, 8, 24, 11).expect("corpus");
    let tensors = layer_tensors(&reference, None);

    let hqq = compress_model(&tensors, &RankPolicy::uniform(0), &quick_opts(1), threads())
        .expect("hqq");
    let milo = compress_model(
        &tensors,
        &RankPolicy::composite(16, SparseAllocation::Uniform(4)),
        &quick_opts(8),
        threads(),
    )
    .expect("milo");

    let ppl_hqq =
        perplexity(&apply_compressed(&reference, &hqq).unwrap(), &corpus).expect("ppl");
    let ppl_milo =
        perplexity(&apply_compressed(&reference, &milo).unwrap(), &corpus).expect("ppl");
    assert!(
        ppl_milo < ppl_hqq,
        "MiLo ppl {ppl_milo} should beat HQQ ppl {ppl_hqq}"
    );
    // The memory overhead for that gain is small (paper: a few percent).
    let overhead =
        milo.memory_bytes() as f64 / hqq.memory_bytes() as f64;
    assert!(overhead < 1.35, "memory overhead {overhead}");
}

#[test]
fn higher_rank_budget_reduces_ppl() {
    // The Fig. 11 trade-off: more compensator rank, lower perplexity.
    let cfg = test_config(true);
    let reference = MoeModel::synthesize(&cfg, 7);
    let corpus = generate_corpus(&reference, 8, 24, 13).expect("corpus");
    let tensors = layer_tensors(&reference, None);
    let mut ppls = Vec::new();
    for rank in [0usize, 4, 16] {
        let compressed =
            compress_model(&tensors, &RankPolicy::uniform(rank), &quick_opts(4), threads())
                .expect("compress");
        let model = apply_compressed(&reference, &compressed).expect("apply");
        ppls.push(perplexity(&model, &corpus).expect("ppl"));
    }
    assert!(
        ppls[2] < ppls[0],
        "rank 16 ({}) should clearly beat rank 0 ({})",
        ppls[2],
        ppls[0]
    );
}

#[test]
fn task_fidelity_improves_with_compensation() {
    let cfg = test_config(false);
    let reference = MoeModel::synthesize(&cfg, 8);
    let ctx = EvalContext::prepare(&reference, &EvalConfig { n_seqs: 4, seq_len: 16, corpus_seed: 3, task_prompts: 24 })
        .expect("context");
    let tensors = layer_tensors(&reference, None);

    let plain = compress_model(&tensors, &RankPolicy::uniform(0), &quick_opts(1), threads())
        .expect("hqq");
    let comp = compress_model(&tensors, &RankPolicy::dense_only(24), &quick_opts(6), threads())
        .expect("milo");
    let r_plain = ctx
        .evaluate("HQQ", &apply_compressed(&reference, &plain).unwrap(), 0, 0.0)
        .expect("eval");
    let r_comp = ctx
        .evaluate("MiLo", &apply_compressed(&reference, &comp).unwrap(), 0, 0.0)
        .expect("eval");
    // Average fidelity across all five tasks should not degrade, and PPL
    // must improve.
    let avg = |r: &milo::eval::MethodResult| {
        r.task_scores.iter().map(|&(_, s)| s).sum::<f32>() / r.task_scores.len() as f32
    };
    assert!(r_comp.ppl < r_plain.ppl);
    assert!(
        avg(&r_comp) >= avg(&r_plain) - 5.0,
        "fidelity dropped: {} vs {}",
        avg(&r_comp),
        avg(&r_plain)
    );
}

#[test]
fn compressed_model_memory_matches_sum_of_parts() {
    let cfg = test_config(false);
    let reference = MoeModel::synthesize(&cfg, 9);
    let tensors = layer_tensors(&reference, None);
    let compressed = compress_model(
        &tensors,
        &RankPolicy::composite(8, SparseAllocation::Uniform(2)),
        &quick_opts(1),
        threads(),
    )
    .expect("compress");
    let by_layer: usize = compressed.layers.iter().map(|l| l.layer.memory_bytes()).sum();
    assert_eq!(compressed.memory_bytes(), by_layer);
    assert_eq!(
        compressed.memory_bytes(),
        compressed.weight_bytes() + compressed.compensator_bytes()
    );
}
