//! Cross-crate invariants of the MiLo algorithm itself (paper §3.2),
//! exercised on synthetic MoE weights rather than toy matrices.

use milo::core::policy::compensator_memory_bytes;
use milo::core::{milo_compress, Compensator, MiloOptions, RankPolicy, SparseAllocation};
use milo::moe::{layer_tensors, MoeConfig, MoeModel};
use milo::quant::{hqq_quantize, HqqOptions, QuantConfig};
use milo::tensor::stats;

fn reference() -> MoeModel {
    MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 71)
}

#[test]
fn alternation_never_ends_worse_than_its_first_iterate() {
    // Algorithm 1 keeps the best iterate under the eps_t metric, so more
    // iterations can only help (or tie).
    let model = reference();
    let w = &model.layers[0].attn.wq;
    let base = MiloOptions { compensator_cfg: None, ..MiloOptions::default() };
    let one = milo_compress(w, 8, &MiloOptions { max_iters: 1, ..base }).unwrap();
    let many = milo_compress(w, 8, &MiloOptions { max_iters: 12, ..base }).unwrap();
    let err = |l: &milo::core::CompressedLayer| {
        stats::relative_frobenius_error(w, &l.effective_weight())
    };
    assert!(err(&many) <= err(&one) + 1e-6, "{} vs {}", err(&many), err(&one));
}

#[test]
fn compensated_error_is_below_quantization_error_for_every_layer_kind() {
    let model = reference();
    let tensors = layer_tensors(&model, None);
    let opts = MiloOptions { max_iters: 2, compensator_cfg: None, ..MiloOptions::default() };
    // One tensor of each structural kind present in the model.
    let mut seen = std::collections::HashSet::new();
    for t in &tensors {
        let key = format!("{:?}", std::mem::discriminant(&t.meta.kind));
        if !seen.insert(key) {
            continue;
        }
        let plain = milo_compress(&t.weight, 0, &opts).unwrap();
        let comp = milo_compress(&t.weight, 6, &opts).unwrap();
        let e_plain = stats::relative_frobenius_error(&t.weight, &plain.effective_weight());
        let e_comp = stats::relative_frobenius_error(&t.weight, &comp.effective_weight());
        assert!(
            e_comp < e_plain,
            "{}: compensated {e_comp} not below plain {e_plain}",
            t.name
        );
    }
}

#[test]
fn quantized_compensator_stays_close_to_fp32_compensator() {
    // Paper §3.2.6 / Table 6: INT3 compensators lose very little.
    let model = reference();
    let w = &model.layers[0].attn.wq;
    let fp = milo_compress(
        w,
        8,
        &MiloOptions { max_iters: 3, compensator_cfg: None, ..MiloOptions::default() },
    )
    .unwrap();
    let q = milo_compress(
        w,
        8,
        &MiloOptions {
            max_iters: 3,
            compensator_cfg: Some(QuantConfig::int3_sym()),
            ..MiloOptions::default()
        },
    )
    .unwrap();
    let e_fp = stats::relative_frobenius_error(w, &fp.effective_weight());
    let e_q = stats::relative_frobenius_error(w, &q.effective_weight());
    assert!(e_q < e_fp * 1.15, "INT3 compensator error {e_q} vs FP32 {e_fp}");
    assert!(matches!(q.compensator, Some(Compensator::Quantized(_))));
    assert!(q.memory_bytes() < fp.memory_bytes());
}

#[test]
fn hqq_zero_points_deviate_from_rtn_grid() {
    // The half-quadratic solver must actually move the zero-points (if it
    // returned the RTN initialization the iteration would be a no-op).
    let model = reference();
    let w = &model.layers[0].attn.wq;
    let cfg = QuantConfig::int3_asym();
    let rtn = milo::quant::rtn_quantize(w, &cfg).unwrap();
    let hqq = hqq_quantize(w, &cfg, &HqqOptions::default()).unwrap();
    let moved = rtn
        .zeros()
        .iter()
        .zip(hqq.zeros())
        .filter(|(a, b)| (*a - *b).abs() > 1e-4)
        .count();
    assert!(
        moved > rtn.zeros().len() / 2,
        "only {moved}/{} zero-points moved",
        rtn.zeros().len()
    );
}

#[test]
fn policy_memory_accounting_matches_realized_compensators() {
    // The planner's memory estimate must agree with what compression
    // actually produces.
    let model = reference();
    let tensors = layer_tensors(&model, None);
    let metas: Vec<_> = tensors.iter().map(|t| t.meta).collect();
    let policy = RankPolicy::composite(8, SparseAllocation::Uniform(2));
    let ranks = policy.assign(&metas).unwrap();
    let planned = compensator_memory_bytes(&metas, &ranks, Some(&QuantConfig::int3_sym()));

    let opts = MiloOptions { max_iters: 1, ..MiloOptions::default() };
    let compressed =
        milo::core::compress_model(&tensors, &policy, &opts, 2).unwrap();
    let realized = compressed.compensator_bytes();
    assert_eq!(planned, realized, "planned {planned} vs realized {realized}");
}

#[test]
fn frequency_policy_tracks_measured_usage() {
    // Wiring check: the profile flows into the policy, so more-used
    // experts must end with at least as much rank as less-used ones.
    let model = MoeModel::synthesize(&MoeConfig::tiny_deepseek(), 72);
    let corpus: Vec<Vec<u32>> =
        (0..6).map(|i| (0..24u32).map(|t| (t * 7 + i) % 64).collect()).collect();
    let profile = milo::moe::profile_expert_frequency(&model, &corpus).unwrap();
    let tensors = layer_tensors(&model, Some(&profile));
    let metas: Vec<_> = tensors.iter().map(|t| t.meta).collect();
    let policy = RankPolicy::composite(0, SparseAllocation::Frequency { avg_rank: 4 });
    let ranks = policy.assign(&metas).unwrap();
    for (i, t) in tensors.iter().enumerate() {
        for (j, u) in tensors.iter().enumerate() {
            if t.meta.kind.is_dense() || u.meta.kind.is_dense() {
                continue;
            }
            if t.meta.frequency > u.meta.frequency + 1e-6 && t.meta.rows == u.meta.rows {
                assert!(
                    ranks[i] >= ranks[j],
                    "{} (f={}) got rank {} < {} (f={}) rank {}",
                    t.name,
                    t.meta.frequency,
                    ranks[i],
                    u.name,
                    u.meta.frequency,
                    ranks[j]
                );
            }
        }
    }
}
