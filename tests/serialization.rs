//! Integration test of the save/load workflow across crates: synthesize
//! → compress → save both artifacts → reload → evaluate — the loaded
//! pipeline must behave identically to the in-memory one.

use milo::core::serialize::{load_compressed_model, save_compressed_model};
use milo::core::{compress_model, MiloOptions, RankPolicy, SparseAllocation};
use milo::engine::PackedMoeModel;
use milo::eval::{generate_corpus, perplexity};
use milo::moe::serialize::{load_model, save_model};
use milo::moe::{apply_compressed, layer_tensors, MoeConfig, MoeModel};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("milo_integration_serialize");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn full_pipeline_survives_disk_round_trip() {
    let mut cfg = MoeConfig::tiny_mixtral();
    cfg.n_layers = 2;
    let reference = MoeModel::synthesize(&cfg, 55);
    let tensors = layer_tensors(&reference, None);
    let opts = MiloOptions { max_iters: 2, ..MiloOptions::default() };
    let policy = RankPolicy::composite(8, SparseAllocation::Uniform(2));
    let compressed = compress_model(&tensors, &policy, &opts, 2).expect("compress");

    // Save both artifacts.
    let model_path = tmp("pipeline_ref.moem");
    let comp_path = tmp("pipeline_comp.milo");
    save_model(&model_path, &reference).expect("save model");
    save_compressed_model(&comp_path, &compressed).expect("save compressed");

    // Reload and verify equivalence.
    let loaded_ref = load_model(&model_path).expect("load model");
    let loaded_comp = load_compressed_model(&comp_path).expect("load compressed");
    assert_eq!(loaded_ref, reference);
    assert_eq!(loaded_comp.memory_bytes(), compressed.memory_bytes());

    let a = apply_compressed(&reference, &compressed).expect("apply original");
    let b = apply_compressed(&loaded_ref, &loaded_comp).expect("apply loaded");
    let tokens = [1u32, 9, 3, 22];
    assert_eq!(a.forward(&tokens).unwrap(), b.forward(&tokens).unwrap());

    // The evaluation metric is identical too.
    let corpus = generate_corpus(&reference, 3, 12, 1).expect("corpus");
    assert_eq!(
        perplexity(&a, &corpus).unwrap(),
        perplexity(&b, &corpus).unwrap()
    );

    std::fs::remove_file(model_path).ok();
    std::fs::remove_file(comp_path).ok();
}

#[test]
fn loaded_model_builds_a_working_engine() {
    let mut cfg = MoeConfig::tiny_mixtral();
    cfg.d_model = 128;
    cfg.expert_ffn = 256;
    cfg.n_layers = 2;
    let reference = MoeModel::synthesize(&cfg, 56);
    let tensors = layer_tensors(&reference, None);
    let opts = MiloOptions { max_iters: 1, ..MiloOptions::default() };
    let compressed =
        compress_model(&tensors, &RankPolicy::uniform(2), &opts, 2).expect("compress");

    let comp_path = tmp("engine_comp.milo");
    save_compressed_model(&comp_path, &compressed).expect("save");
    let loaded = load_compressed_model(&comp_path).expect("load");

    let engine_a = PackedMoeModel::build(&reference, &compressed).expect("engine");
    let engine_b = PackedMoeModel::build(&reference, &loaded).expect("engine from disk");
    let tokens = [4u32, 8, 15];
    assert_eq!(
        engine_a.forward(&tokens).unwrap(),
        engine_b.forward(&tokens).unwrap()
    );
    std::fs::remove_file(comp_path).ok();
}

#[test]
fn truncated_files_fail_cleanly() {
    let cfg = MoeConfig::tiny_mixtral();
    let reference = MoeModel::synthesize(&cfg, 57);
    let path = tmp("truncated.moem");
    save_model(&path, &reference).expect("save");
    let full = std::fs::read(&path).expect("read");
    std::fs::write(&path, &full[..full.len() / 2]).expect("truncate");
    assert!(load_model(&path).is_err());
    std::fs::remove_file(path).ok();
}
