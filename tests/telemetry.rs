//! Telemetry-layer acceptance suite for the observability PR.
//!
//! Three guarantees, exercised through the public crate APIs:
//!
//! 1. **Bit-identical outputs.** Telemetry only ever *observes* — the
//!    quantize→serve pipeline produces byte-for-byte identical results
//!    with `MILO_TELEMETRY` off and at full trace level.
//! 2. **Correct aggregation.** Histogram percentiles stay within the
//!    log-linear bucket error bound, and counters survive concurrent
//!    increments from many threads without losing updates.
//! 3. **Trace integrity.** An exported Chrome trace round-trips through
//!    the validator with every instrumented stage present, and expert
//!    quarantines surface as structured events exactly once.
//!
//! Telemetry state (level, registry, trace buffer) is process-global,
//! so every test serializes on [`guard`] and resets before running.

use std::sync::{Mutex, MutexGuard, OnceLock};

use milo::core::{compress_model, CompressedModel, MiloOptions, RankPolicy};
use milo::engine::PackedMoeModel;
use milo::moe::{layer_tensors, HealthTracker, MoeConfig, MoeModel};
use milo::obs::{self, Level, Unit};
use milo::tensor::Matrix;

/// Serializes tests and resets the global telemetry state, returning
/// the level to `Off` so cross-test leakage is impossible.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let g = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::set_level(Level::Off);
    g
}

fn toy_model() -> MoeModel {
    let cfg = MoeConfig {
        name: "telemetry-toy".into(),
        n_layers: 2,
        d_model: 32,
        n_heads: 2,
        vocab: 32,
        n_experts: 4,
        top_k: 2,
        expert_ffn: 32,
        n_shared_experts: 0,
        shared_ffn: 0,
        first_layer_dense: false,
        router_imbalance: 0.3,
        attn_dof: 6.0,
        expert_channel_spread: 0.0,
        head_gain: 1.0,
    };
    MoeModel::synthesize(&cfg, 2024)
}

/// Runs the full quantize→pack→forward pipeline at the *current*
/// telemetry level and returns the engine's logits for a fixed prompt.
fn pipeline_logits(reference: &MoeModel) -> (CompressedModel, Matrix) {
    let tensors = layer_tensors(reference, None);
    let opts = MiloOptions { max_iters: 2, ..MiloOptions::default() };
    let compressed = compress_model(&tensors, &RankPolicy::uniform(2), &opts, 2).unwrap();
    let engine = PackedMoeModel::build(reference, &compressed).unwrap();
    let seq: Vec<u32> = (0..12).map(|t| (t * 7 + 3) % 32).collect();
    let logits = engine.forward(&seq).unwrap();
    (compressed, logits)
}

#[test]
fn pipeline_bit_identical_with_telemetry_off_and_trace() {
    let _g = guard();
    let reference = toy_model();

    obs::set_level(Level::Off);
    let (_, off_logits) = pipeline_logits(&reference);
    assert!(
        obs::registry::snapshot().is_empty(),
        "disabled telemetry must record nothing"
    );

    obs::set_level(Level::Trace);
    let (_, trace_logits) = pipeline_logits(&reference);
    assert!(!obs::registry::snapshot().is_empty());
    assert!(obs::trace::event_count() > 0);

    // Matrix equality is exact (bit-for-bit on the f32 payload): the
    // trace-level run must not perturb a single value anywhere in the
    // quantizer, packer, router, or engine.
    assert_eq!(off_logits, trace_logits, "telemetry perturbed pipeline output");
}

#[test]
fn histogram_percentiles_within_bucket_error_bound() {
    let h = obs::Histogram::new(Unit::Nanos);
    for v in 1..=10_000u64 {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 10_000);
    assert_eq!(snap.min, 1);
    assert_eq!(snap.max, 10_000);
    // Log-linear buckets (16 sub-buckets per power of two) bound the
    // relative error at 1/16 = 6.25%.
    for (q, exact) in [(50.0, 5_000.0), (95.0, 9_500.0), (99.0, 9_900.0), (100.0, 10_000.0)] {
        let got = h.percentile(q) as f64;
        let rel = (got - exact).abs() / exact;
        assert!(rel <= 0.0625, "p{q}: got {got}, exact {exact}, rel err {rel:.4}");
    }
    // Percentiles never leave the observed range; rank 1 lands in the
    // exact singleton bucket for 1.
    assert_eq!(h.percentile(0.0), 1);
    assert!(h.percentile(100.0) <= 10_000);
    let mean = h.mean();
    assert!((mean - 5_000.5).abs() / 5_000.5 <= 0.0625, "mean {mean}");
}

#[test]
fn histogram_small_exact_values_are_lossless() {
    let h = obs::Histogram::new(Unit::Count);
    for v in [0u64, 1, 2, 3, 7, 15] {
        h.record(v);
    }
    // Values below 16 land in exact singleton buckets.
    assert_eq!(h.percentile(0.0), 0);
    assert_eq!(h.percentile(100.0), 15);
    assert_eq!(h.snapshot().count, 6);
}

#[test]
fn concurrent_counter_increments_lose_no_updates() {
    let _g = guard();
    obs::set_level(Level::Metrics);
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    obs::counter_inc("test.concurrent");
                    if i % 2 == t as u64 % 2 {
                        obs::counter_add("test.concurrent.add", 3);
                    }
                }
            });
        }
    });
    assert_eq!(obs::counter_get("test.concurrent"), THREADS as u64 * PER_THREAD);
    assert_eq!(
        obs::counter_get("test.concurrent.add"),
        THREADS as u64 * PER_THREAD / 2 * 3
    );
}

#[test]
fn trace_export_roundtrips_through_validator_with_all_stages() {
    let _g = guard();
    obs::set_level(Level::Trace);
    let reference = toy_model();
    let (_, _) = pipeline_logits(&reference);
    let trace = obs::trace::export_chrome();
    let check = obs::validate_trace(
        &trace,
        &[
            "quant.hqq",
            "core.milo_compress",
            "engine.forward",
            "engine.layer",
            "engine.attn",
            "engine.ffn",
        ],
    )
    .expect("exported trace must validate");
    assert!(check.spans > 0, "no complete spans in trace");
    assert!(check.counters > 0, "no residual-eps counter samples in trace");
    assert_eq!(check.events, obs::trace::event_count());
}

#[test]
fn validator_rejects_missing_stage_and_malformed_json() {
    let _g = guard();
    obs::set_level(Level::Trace);
    obs::trace::push_complete("only.this".into(), 1.0, 2.0);
    let trace = obs::trace::export_chrome();
    assert!(obs::validate_trace(&trace, &["only.this"]).is_ok());
    let err = obs::validate_trace(&trace, &["absent.stage"]).unwrap_err();
    assert!(err.contains("absent.stage"), "error should name the stage: {err}");
    assert!(obs::validate_trace("{not json", &[]).is_err());
    assert!(obs::validate_trace("{\"traceEvents\":[]}", &[]).is_err());
}

#[test]
fn quarantine_emits_structured_event_exactly_once() {
    let _g = guard();
    obs::set_level(Level::Trace);
    let tracker = HealthTracker::new();

    tracker.record(1, 3, "nan output");
    assert_eq!(obs::counter_get("moe.quarantine.total"), 1);
    assert_eq!(obs::trace::event_count(), 1);

    // Sticky: re-recording the same (layer, expert) keeps the first
    // reason and emits no duplicate telemetry.
    tracker.record(1, 3, "different reason");
    assert_eq!(obs::counter_get("moe.quarantine.total"), 1);
    assert_eq!(obs::trace::event_count(), 1);

    tracker.record(0, 1, "panic");
    assert_eq!(obs::counter_get("moe.quarantine.total"), 2);
    assert_eq!(obs::trace::event_count(), 2);

    // The instant events carry layer/expert/reason args.
    let trace = obs::trace::export_chrome();
    let check = obs::validate_trace(&trace, &[]).unwrap();
    assert_eq!(check.instants, 2);
    assert!(trace.contains("\"moe.quarantine\""));
    assert!(trace.contains("nan output"));
    assert!(trace.contains("panic"));
    assert!(!trace.contains("different reason"), "sticky reason overwritten");
}

#[test]
fn serving_metrics_cover_queue_retry_shed_and_latency() {
    use milo::moe::ResilienceContext;
    use milo::serve::{
        ForwardError, ForwardModel, Request, RetryPolicy, Server, ServerConfig,
    };
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let _g = guard();
    obs::set_level(Level::Metrics);

    // A model that fails its first call and then succeeds: one request
    // exercises the retry counter, the rest the completion/latency path.
    let calls = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&calls);
    let flaky: Arc<dyn ForwardModel> =
        Arc::new(move |_tokens: &[u32], _ctx: &ResilienceContext| {
            if c.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(ForwardError::Expert {
                    layer: 0,
                    expert: 0,
                    reason: "transient".into(),
                })
            } else {
                Ok(Matrix::zeros(1, 1))
            }
        });
    let server = Server::start(
        flaky,
        ServerConfig {
            workers: 1,
            retry: RetryPolicy {
                max_attempts: 3,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
            },
            ..ServerConfig::default()
        },
    );
    for _ in 0..3 {
        server.submit(Request::new(vec![1])).unwrap().wait().unwrap();
    }
    server.shutdown();
    assert!(obs::counter_get("serve.admitted.total") >= 3);
    assert!(obs::counter_get("serve.completed.total") >= 3);
    assert!(obs::counter_get("serve.retry.total") >= 1, "flaky first call not retried");

    // A wedged worker (non-cooperative model) with queued load behind
    // it: the watchdog must shed, feeding the shed counter.
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let wedged: Arc<dyn ForwardModel> =
        Arc::new(move |_tokens: &[u32], _ctx: &ResilienceContext| {
            while !g.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(Matrix::zeros(1, 1))
        });
    let server = Server::start(
        wedged,
        ServerConfig {
            workers: 1,
            queue_capacity: 8,
            watchdog_interval: Duration::from_millis(2),
            ..ServerConfig::default()
        },
    );
    let stalled = server
        .submit(Request::new(vec![1]).with_deadline(Duration::from_millis(15)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let queued: Vec<_> = (0..2)
        .map(|_| {
            server
                .submit(Request::new(vec![1]).with_deadline(Duration::from_secs(30)))
                .unwrap()
        })
        .collect();
    for t in queued {
        t.wait().unwrap_err();
    }
    gate.store(true, Ordering::Release);
    stalled.wait().unwrap();
    server.shutdown();
    assert!(obs::counter_get("serve.shed.total") >= 2, "watchdog shed not counted");

    // The registry holds the serving metric families with the right
    // kinds: a queue-depth gauge and a request-latency histogram whose
    // count covers every completed request.
    let snap = obs::registry::snapshot();
    let depth = snap.iter().find(|(k, _)| k == "serve.queue.depth");
    assert!(
        matches!(depth, Some((_, obs::registry::MetricSnapshot::Gauge(_)))),
        "serve.queue.depth gauge missing: {depth:?}"
    );
    let latency = snap.iter().find(|(k, _)| k.starts_with("serve.request.latency"));
    match latency {
        Some((_, obs::registry::MetricSnapshot::Histogram(h))) => {
            assert!(h.count >= 4, "latency histogram saw {} requests", h.count)
        }
        other => panic!("serve.request.latency histogram missing: {other:?}"),
    }
}

#[test]
fn breaker_transitions_emit_instant_events() {
    let _g = guard();
    obs::set_level(Level::Trace);

    // Walk one breaker through its full cycle by hand and check each
    // transition lands in the trace buffer as a structured instant.
    let tracker = HealthTracker::with_cooldown(2);
    tracker.record(1, 3, "nan output"); // closed -> open
    tracker.tick();
    tracker.tick(); // open -> half-open
    assert!(tracker.probe_succeeded(1, 3)); // half-open -> closed

    assert_eq!(obs::counter_get("moe.breaker.half_open.total"), 1);
    assert_eq!(obs::counter_get("moe.breaker.recovered.total"), 1);

    let trace = obs::trace::export_chrome();
    let check = obs::validate_trace(&trace, &[]).unwrap();
    // One quarantine instant + two breaker state-transition instants.
    assert_eq!(check.instants, 3);
    assert!(trace.contains("\"moe.breaker\""));
    assert!(trace.contains("half_open"));
    assert!(trace.contains("closed"));
}

#[test]
fn metrics_level_skips_trace_buffer_but_fills_registry() {
    let _g = guard();
    obs::set_level(Level::Metrics);
    let reference = toy_model();
    let (_, _) = pipeline_logits(&reference);
    assert!(obs::trace::event_count() == 0, "metrics level must not buffer events");
    let snap = obs::registry::snapshot();
    assert!(!snap.is_empty());
    // Spot-check the headline metrics each instrumented layer owns.
    for prefix in ["core.iterations", "engine.expert_tokens", "engine.load_skew", "pool.tasks"] {
        assert!(
            snap.iter().any(|(k, _)| k.starts_with(prefix)),
            "missing metric family {prefix}"
        );
    }
}
