#!/usr/bin/env bash
# Tier-1 verification for the hermetic, zero-external-dependency workspace.
#
# 1. Guards against dependency regressions: every `[dependencies]` /
#    `[dev-dependencies]` / `[build-dependencies]` entry in every
#    Cargo.toml must name a `milo-*` workspace crate. The workspace must
#    build on a clean machine with no network and no crates-io mirror.
# 2. Builds and tests fully offline.
# 3. Smoke-runs the gemm bench in quick mode (MILO_BENCH_QUICK=1) and
#    checks the recorded baseline `results/BENCH_gemm_threads.json` is
#    emitted and is well-formed JSON.
# 4. Fault-injection smoke: runs the corruption fuzz + recovery-path
#    drills under a fixed MILO_FAULT_SEED, and exercises `milo-cli check`
#    on a clean and a deliberately corrupted artifact (the corrupt one
#    must fail with a nonzero exit, not a panic).
# 5. Telemetry smoke: quantizes and serves a tiny model with
#    MILO_TELEMETRY=trace + --trace-out, then validates both Chrome
#    traces with `milo-cli trace-check` (well-formed JSON, monotonic
#    timestamps, at least one span per instrumented stage).
# 6. Serving soak: the seeded quick chaos soak (1000 requests, kill +
#    poison + slow faults, burst arrivals, deadlines) through the real
#    server; the soak itself asserts the invariants (no escaped panics,
#    bounded queue, every request resolved by deadline+ε, breakers
#    recover) and exits nonzero on the first violation.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. Dependency guard -------------------------------------------------
# Walk each manifest; inside dependency sections, flag any dependency key
# that is not a milo-* crate. Keys are the first token of `name = ...` or
# `name.workspace = ...` lines.
while IFS= read -r manifest; do
    bad=$(awk '
        # Table-header form: [dependencies.foo] / [dev-dependencies."foo"]
        /^\[(workspace\.)?(dev-|build-)?dependencies\./ {
            name = $0
            sub(/^\[(workspace\.)?(dev-|build-)?dependencies\./, "", name)
            sub(/\].*$/, "", name)
            gsub(/"/, "", name)
            if (name !~ /^milo-/) print FILENAME ": " name
            in_deps = 0
            next
        }
        /^\[/ {
            in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/)
            next
        }
        # Inline form: foo = "1" / foo.workspace = true inside a deps section
        in_deps && /^[A-Za-z0-9_-]+(\.workspace)?[[:space:]]*=/ {
            split($0, parts, /[.=[:space:]]/)
            if (parts[1] !~ /^milo-/) print FILENAME ": " parts[1]
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "ERROR: non-workspace dependency found (the workspace must stay hermetic):"
        echo "$bad"
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path "./target/*")

if [ "$fail" -ne 0 ]; then
    echo "Dependency guard failed. Vendor the functionality instead of adding a crate."
    exit 1
fi
echo "ok: all Cargo.toml dependencies are milo-* workspace crates"

# --- 2. Offline build + test --------------------------------------------
cargo build --release --offline --workspace
cargo test -q --offline --workspace
echo "ok: offline release build and test suite passed"

# --- 3. Bench smoke (quick mode) -----------------------------------------
# Run the gemm bench with the smoke configuration into a scratch baseline
# path so the committed results/BENCH_gemm_threads.json (full-config run)
# is not clobbered, then validate the emitted JSON.
smoke_json=$(mktemp /tmp/BENCH_gemm_threads.XXXXXX.json)
trap 'rm -f "$smoke_json"' EXIT
MILO_BENCH_QUICK=1 MILO_BENCH_BASELINE="$smoke_json" \
    cargo bench --offline -p milo-bench --bench gemm >/dev/null

if [ ! -s "$smoke_json" ]; then
    echo "ERROR: bench smoke did not emit $smoke_json"
    exit 1
fi
if command -v python3 >/dev/null 2>&1; then
    python3 - "$smoke_json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
for key in ("baseline", "host_threads", "derived"):
    assert key in doc, f"missing key: {key}"
assert doc["baseline"]["suite"] == "BENCH_gemm_threads"
assert doc["baseline"]["results"], "baseline has no results"
PY
else
    # Fallback without python3: sanity-grep the structure.
    grep -q '"suite":"BENCH_gemm_threads"' "$smoke_json"
    grep -q '"host_threads":' "$smoke_json"
    grep -q '"derived":' "$smoke_json"
fi
echo "ok: quick-mode gemm bench emitted a well-formed threads baseline"

# --- 4. Fault-injection smoke ---------------------------------------------
# The seeded fault suites (corruption fuzz in milo-faults, recovery-path
# drills at the workspace level) under a pinned seed, so a failure here
# reproduces byte-for-byte.
MILO_FAULT_SEED=0x4d694c6f cargo test -q --offline -p milo-faults --test corruption >/dev/null
MILO_FAULT_SEED=0x4d694c6f cargo test -q --offline --test fault_injection >/dev/null
echo "ok: seeded fault-injection suites passed (MILO_FAULT_SEED=0x4d694c6f)"

# The integrity checker end to end: a clean artifact verifies, a
# corrupted copy is rejected with a nonzero exit and no panic.
smoke_dir=$(mktemp -d /tmp/milo-check.XXXXXX)
trap 'rm -f "$smoke_json"; rm -rf "$smoke_dir"' EXIT
cli=target/release/milo-cli
"$cli" synth --model mixtral --scale 0.1 --layers 1 --out "$smoke_dir/ref.moem" >/dev/null
"$cli" check --artifact "$smoke_dir/ref.moem" --strict >/dev/null
# Chop the last 32 bytes off (truncating the final layer section) —
# pure-shell corruption so this step needs no python3.
size=$(wc -c < "$smoke_dir/ref.moem")
head -c "$((size - 32))" "$smoke_dir/ref.moem" > "$smoke_dir/bad.moem"
if "$cli" check --artifact "$smoke_dir/bad.moem" >/dev/null 2>&1; then
    echo "ERROR: milo-cli check accepted a corrupted artifact"
    exit 1
fi
echo "ok: milo-cli check verifies clean artifacts and rejects corrupted ones"

# --- 5. Telemetry smoke ----------------------------------------------------
# Quantize then serve a tiny model at full trace level, exporting Chrome
# traces, and validate each with the CLI's own checker. The required span
# lists name only stages guaranteed on the tiny-model path (the packed
# GEMM falls back to dense below the tile threshold, so pack.gemm spans
# are not demanded here).
"$cli" synth --model mixtral --scale 0.25 --layers 2 --out "$smoke_dir/tele.moem" >/dev/null
MILO_TELEMETRY=trace "$cli" quantize --model "$smoke_dir/tele.moem" \
    --method milo --iters 4 --sparse-rank 2 --out "$smoke_dir/tele.milo" \
    --trace-out "$smoke_dir/quantize_trace.json" >/dev/null
"$cli" trace-check --trace "$smoke_dir/quantize_trace.json" \
    --require quant.hqq,core.milo_compress,moe.layer >/dev/null
MILO_TELEMETRY=trace "$cli" stats --model "$smoke_dir/tele.moem" \
    --compressed "$smoke_dir/tele.milo" --seqs 2 --seq-len 12 \
    --trace-out "$smoke_dir/stats_trace.json" >/dev/null
"$cli" trace-check --trace "$smoke_dir/stats_trace.json" \
    --require engine.forward,engine.layer,engine.attn,engine.ffn >/dev/null
echo "ok: telemetry traces validated for quantize and stats (MILO_TELEMETRY=trace)"

# --- 6. Serving soak (quick profile) ---------------------------------------
# 1000 seeded requests through the serve layer with chaos faults; the
# run budget is ~10s and the driver fails on the first invariant
# violation, printing the seed so it reproduces exactly.
"$cli" soak --quick --seed 7 >/dev/null
echo "ok: quick serving soak held all invariants (seed 7)"
