//! Binary serialization of quantized matrices.

use crate::{QuantConfig, QuantizedMatrix, Scheme};
use milo_tensor::io::{
    expect_tag, read_bytes, read_f32_vec, read_u32, read_u64, write_bytes, write_f32_slice,
    write_tag, write_u32, write_u64,
};
use std::io::{self, Read, Write};

const TAG: &[u8; 4] = b"QMTX";

/// Writes a [`QuantizedMatrix`] to a binary stream.
///
/// # Errors
///
/// Propagates IO failures.
pub fn write_quantized(w: &mut impl Write, q: &QuantizedMatrix) -> io::Result<()> {
    write_tag(w, TAG)?;
    let cfg = q.config();
    write_u32(w, cfg.bits() as u32)?;
    write_u64(w, cfg.group_size() as u64)?;
    write_u32(w, match cfg.scheme() {
        Scheme::Asymmetric => 0,
        Scheme::Symmetric => 1,
    })?;
    write_u64(w, q.rows() as u64)?;
    write_u64(w, q.cols() as u64)?;
    write_bytes(w, q.codes())?;
    write_f32_slice(w, q.scales())?;
    write_f32_slice(w, q.zeros())?;
    Ok(())
}

/// Reads a [`QuantizedMatrix`] from a binary stream, validating shapes
/// and code ranges.
///
/// # Errors
///
/// Returns `InvalidData` for malformed or inconsistent input.
pub fn read_quantized(r: &mut impl Read) -> io::Result<QuantizedMatrix> {
    expect_tag(r, TAG)?;
    let bits = read_u32(r)? as u8;
    let group = read_u64(r)? as usize;
    let scheme = match read_u32(r)? {
        0 => Scheme::Asymmetric,
        1 => Scheme::Symmetric,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown quantization scheme tag {other}"),
            ))
        }
    };
    let cfg = QuantConfig::new(bits, group, scheme)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let rows = read_u64(r)? as usize;
    let cols = read_u64(r)? as usize;
    let codes = read_bytes(r)?;
    let scales = read_f32_vec(r)?;
    let zeros = read_f32_vec(r)?;
    QuantizedMatrix::from_parts(cfg, rows, cols, codes, scales, zeros)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn_quantize;
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;
    use std::io::Cursor;

    fn sample(cfg: QuantConfig, seed: u64) -> QuantizedMatrix {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        let w = WeightDist::Gaussian { std: 0.1 }.sample_matrix(8, 64, &mut rng);
        rtn_quantize(&w, &cfg).unwrap()
    }

    #[test]
    fn asymmetric_round_trips() {
        let q = sample(QuantConfig::int3_asym(), 1);
        let mut buf = Vec::new();
        write_quantized(&mut buf, &q).unwrap();
        let out = read_quantized(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out, q);
    }

    #[test]
    fn symmetric_round_trips() {
        let q = sample(QuantConfig::int3_sym(), 2);
        let mut buf = Vec::new();
        write_quantized(&mut buf, &q).unwrap();
        assert_eq!(read_quantized(&mut Cursor::new(buf)).unwrap(), q);
    }

    #[test]
    fn corrupted_codes_rejected() {
        let q = sample(QuantConfig::int3_asym(), 3);
        let mut buf = Vec::new();
        write_quantized(&mut buf, &q).unwrap();
        // Layout: tag(4) + bits(4) + group(8) + scheme(4) + rows(8) +
        // cols(8) + codes-len(8) = 44 bytes before the first code byte.
        buf[44] = 0xFF; // out of range for 3-bit codes
        assert!(read_quantized(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn wrong_tag_rejected() {
        let q = sample(QuantConfig::int3_asym(), 4);
        let mut buf = Vec::new();
        write_quantized(&mut buf, &q).unwrap();
        buf[0] = b'X';
        assert!(read_quantized(&mut Cursor::new(buf)).is_err());
    }
}
