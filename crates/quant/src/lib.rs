//! Quantizers for the MiLo reproduction.
//!
//! The paper evaluates three weight-only grouped post-training quantizers
//! (§4 baselines) plus the symmetric scheme used for compensators:
//!
//! * [`rtn`] — round-to-nearest asymmetric grouped quantization, the
//!   cheapest baseline.
//! * [`hqq`] — Half-Quadratic Quantization (Badri & Shaji, 2023): the
//!   calibration-free solver MiLo builds on. Alternates a generalized
//!   soft-thresholding step (paper Eq. 6–7) with a zero-point update
//!   (Eq. 8–9).
//! * [`gptq`] — the calibration-based baseline (Frantar et al., 2022):
//!   Hessian-weighted column-by-column quantization with error
//!   propagation.
//! * [`symmetric`] — the symmetric INT3 scheme of paper Eq. 15, used to
//!   quantize the low-rank compensators themselves (§3.2.6).
//!
//! All quantizers share [`QuantConfig`] (bit width + group size + scheme)
//! and produce a [`QuantizedMatrix`], which stores one u8 code per weight
//! together with per-group scales and zero-points. Bit-packing into the
//! zero-waste INT3 format is the job of the `milo-pack` crate; this crate
//! only *accounts* for packed memory (see
//! [`QuantizedMatrix::packed_bytes`]).

#![warn(missing_docs)]

pub mod calib;
pub mod config;
pub mod gptq;
pub mod hqq;
pub mod qtensor;
pub mod rtn;
pub mod serialize;
pub mod symmetric;

pub use config::{QuantConfig, Scheme};
pub use gptq::{gptq_quantize, GptqOptions};
pub use hqq::{hqq_quantize, HqqOptions};
pub use qtensor::QuantizedMatrix;
pub use rtn::rtn_quantize;
pub use symmetric::symmetric_quantize;

use milo_tensor::TensorError;

/// Errors produced by the quantizers.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// The configuration is unusable (e.g. zero group size, bits out of
    /// the supported 2..=8 range).
    InvalidConfig(String),
    /// The input matrix shape is incompatible with the configuration.
    InvalidShape(String),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::InvalidConfig(msg) => write!(f, "invalid quantizer config: {msg}"),
            QuantError::InvalidShape(msg) => write!(f, "invalid shape: {msg}"),
            QuantError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for QuantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QuantError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for QuantError {
    fn from(e: TensorError) -> Self {
        QuantError::Tensor(e)
    }
}

/// Convenient result alias for quantizer operations.
pub type Result<T> = std::result::Result<T, QuantError>;
