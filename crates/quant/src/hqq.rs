//! Half-Quadratic Quantization (HQQ) — the calibration-free solver MiLo
//! builds on (paper §3.2.2, following Badri & Shaji 2023).
//!
//! HQQ keeps the per-group scale fixed (taken from the RTN grid) and
//! optimizes the zero-point `z` under a sparsity-promoting `l_{p<1}` loss
//! on the quantization residual. The half-quadratic trick introduces an
//! auxiliary variable `M` (paper Eq. 5) and alternates:
//!
//! 1. `M ← shrink_lp(W − W_dq, β)` — generalized soft-thresholding
//!    (Eqs. 6–7),
//! 2. `z ← ⟨W_q − (W − M)/s⟩` — closed-form zero-point update per group
//!    (Eqs. 8–9),
//!
//! with `β` annealed upward each step. MiLo reuses exactly this inner
//! solver but feeds it `W − U·V`, the weight minus the current low-rank
//! compensator (see `milo-core`).

use crate::qtensor::group_ranges;
use crate::{QuantConfig, QuantError, QuantizedMatrix, Result, Scheme};
use milo_tensor::Matrix;

/// Hyper-parameters of the HQQ solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HqqOptions {
    /// Norm exponent `p < 1` of the sparsity-promoting loss.
    pub p: f32,
    /// Initial half-quadratic penalty weight `β`.
    pub beta: f32,
    /// Multiplicative annealing factor applied to `β` each iteration.
    pub kappa: f32,
    /// Maximum number of alternating iterations.
    pub max_iters: usize,
    /// Relative improvement in the residual norm below which the solver
    /// stops early.
    pub tol: f32,
}

impl Default for HqqOptions {
    /// The defaults from the HQQ reference implementation: `p = 0.7`,
    /// `β = 10` annealed by `1.01`, up to 20 iterations.
    fn default() -> Self {
        Self { p: 0.7, beta: 10.0, kappa: 1.01, max_iters: 20, tol: 1e-5 }
    }
}

/// The generalized soft-thresholding operator of paper Eq. 7:
/// `shrink_lp(x, β) = sign(x) · relu(|x| − |x|^(p−1) / β)`.
pub fn shrink_lp(x: f32, p: f32, beta: f32) -> f32 {
    if x == 0.0 {
        return 0.0;
    }
    let ax = x.abs();
    let threshold = ax.powf(p - 1.0) / beta;
    let mag = (ax - threshold).max(0.0);
    x.signum() * mag
}

/// Quantizes `w` with the HQQ solver.
///
/// Only [`Scheme::Asymmetric`] is supported: HQQ's free parameter is the
/// zero-point, which symmetric grids do not have.
///
/// # Errors
///
/// Returns [`QuantError::InvalidConfig`] for symmetric configs and
/// [`QuantError::InvalidShape`] for an empty matrix.
pub fn hqq_quantize(w: &Matrix, cfg: &QuantConfig, opts: &HqqOptions) -> Result<QuantizedMatrix> {
    if cfg.scheme() != Scheme::Asymmetric {
        return Err(QuantError::InvalidConfig(
            "HQQ optimizes the zero-point and requires an asymmetric scheme".into(),
        ));
    }
    if w.is_empty() {
        return Err(QuantError::InvalidShape("cannot quantize an empty matrix".into()));
    }
    let _span = milo_obs::span(|| "quant.hqq".into());

    let (rows, cols) = w.shape();
    let groups_per_row = cfg.groups_per_row(cols);
    let max_code = cfg.max_code() as f32;

    // Initialize scale and zero-point from the RTN grid; the scale stays
    // fixed for the whole optimization (paper §3.2.2 "we fix the scaling
    // parameter s and only optimize the zero-point z").
    let init = crate::rtn_quantize(w, cfg)?;
    let scales = init.scales().to_vec();
    let mut zeros = init.zeros().to_vec();

    let mut codes = vec![0u8; rows * cols];
    let mut beta = opts.beta;
    let mut prev_err = f32::INFINITY;

    for _ in 0..opts.max_iters {
        let mut err_sq = 0.0f64;
        for r in 0..rows {
            let row = w.row(r);
            for (g, range) in group_ranges(cols, cfg.group_size()) {
                let gi = r * groups_per_row + g;
                let s = scales[gi];
                let z = zeros[gi];
                let chunk = &row[range.clone()];

                // Quantize with the current zero-point (Eq. 9) and compute
                // the shrinkage target (Eqs. 6-7), accumulating the
                // zero-point update (Eq. 8) in one pass.
                let mut z_acc = 0.0f64;
                for (i, &v) in chunk.iter().enumerate() {
                    let q = (v / s + z).round().clamp(0.0, max_code);
                    codes[r * cols + range.start + i] = q as u8;
                    let dq = s * (q - z);
                    let e = v - dq;
                    err_sq += (e as f64) * (e as f64);
                    let m = shrink_lp(e, opts.p, beta);
                    z_acc += (q as f64) - ((v - m) as f64) / (s as f64);
                }
                zeros[gi] = (z_acc / chunk.len() as f64) as f32;
            }
        }
        beta *= opts.kappa;
        let err = (err_sq.sqrt()) as f32;
        if prev_err.is_finite() && (prev_err - err).abs() <= opts.tol * prev_err.max(1e-12) {
            break;
        }
        prev_err = err;
    }

    // Final re-quantization with the converged zero-points so codes and
    // parameters are consistent.
    for r in 0..rows {
        let row = w.row(r);
        for (g, range) in group_ranges(cols, cfg.group_size()) {
            let gi = r * groups_per_row + g;
            let (s, z) = (scales[gi], zeros[gi]);
            for (i, &v) in row[range.clone()].iter().enumerate() {
                codes[r * cols + range.start + i] =
                    (v / s + z).round().clamp(0.0, max_code) as u8;
            }
        }
    }

    QuantizedMatrix::from_parts(*cfg, rows, cols, codes, scales, zeros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;

    fn heavy_tailed(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        WeightDist::StudentT { dof: 5.0, scale: 0.05 }.sample_matrix(rows, cols, &mut rng)
    }

    #[test]
    fn shrink_matches_formula() {
        let (p, beta) = (0.7, 10.0);
        let x = 0.5f32;
        let expected = x - x.powf(p - 1.0) / beta;
        assert!((shrink_lp(x, p, beta) - expected.max(0.0)).abs() < 1e-6);
        assert_eq!(shrink_lp(0.0, p, beta), 0.0);
    }

    #[test]
    fn shrink_is_odd() {
        for &x in &[0.1f32, 0.5, 2.0, 10.0] {
            assert!((shrink_lp(-x, 0.7, 10.0) + shrink_lp(x, 0.7, 10.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn shrink_kills_small_values() {
        // For small |x| the threshold |x|^(p-1)/beta dominates.
        assert_eq!(shrink_lp(1e-4, 0.7, 10.0), 0.0);
    }

    #[test]
    fn hqq_beats_rtn_on_heavy_tails() {
        let w = heavy_tailed(32, 128, 1);
        let cfg = QuantConfig::int3_asym();
        let rtn_err = w
            .sub(&crate::rtn_quantize(&w, &cfg).unwrap().dequantize())
            .unwrap()
            .frobenius_norm();
        let hqq_err = w
            .sub(&hqq_quantize(&w, &cfg, &HqqOptions::default()).unwrap().dequantize())
            .unwrap()
            .frobenius_norm();
        assert!(
            hqq_err < rtn_err,
            "HQQ error {hqq_err} should improve on RTN error {rtn_err}"
        );
    }

    #[test]
    fn hqq_rejects_symmetric_scheme() {
        let w = Matrix::filled(2, 64, 1.0);
        let cfg = QuantConfig::int3_sym();
        assert!(matches!(
            hqq_quantize(&w, &cfg, &HqqOptions::default()),
            Err(QuantError::InvalidConfig(_))
        ));
    }

    #[test]
    fn hqq_codes_are_in_range() {
        let w = heavy_tailed(8, 64, 2);
        let cfg = QuantConfig::int3_asym();
        let q = hqq_quantize(&w, &cfg, &HqqOptions::default()).unwrap();
        assert!(q.codes().iter().all(|&c| c <= 7));
    }

    #[test]
    fn hqq_is_deterministic() {
        let w = heavy_tailed(4, 64, 3);
        let cfg = QuantConfig::int3_asym();
        let a = hqq_quantize(&w, &cfg, &HqqOptions::default()).unwrap();
        let b = hqq_quantize(&w, &cfg, &HqqOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_iteration_close_to_rtn() {
        // One HQQ iteration starts from the RTN grid, so the error should
        // be close to (or better than) RTN's.
        let w = heavy_tailed(8, 64, 4);
        let cfg = QuantConfig::int3_asym();
        let opts = HqqOptions { max_iters: 1, ..HqqOptions::default() };
        let q = hqq_quantize(&w, &cfg, &opts).unwrap();
        let rtn = crate::rtn_quantize(&w, &cfg).unwrap();
        let e_hqq = w.sub(&q.dequantize()).unwrap().frobenius_norm();
        let e_rtn = w.sub(&rtn.dequantize()).unwrap().frobenius_norm();
        assert!(e_hqq <= e_rtn * 1.05, "{e_hqq} vs {e_rtn}");
    }
}
