//! The quantized-matrix container shared by all quantizers.

use crate::{QuantConfig, QuantError, Result, Scheme};
use milo_tensor::Matrix;

/// A grouped-quantized weight matrix.
///
/// Codes are stored one-per-byte for algorithmic convenience; the
/// zero-waste 3-bit packed layout used at inference time lives in
/// `milo-pack`. Memory accounting ([`packed_bytes`](Self::packed_bytes))
/// reflects the *packed* representation plus FP16 scales/zero-points, which
/// is what the paper's memory columns (Tables 3 and 6) report.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    cfg: QuantConfig,
    rows: usize,
    cols: usize,
    /// One code per weight, row-major, each in `0..cfg.levels()`.
    codes: Vec<u8>,
    /// One scale per group, row-major by (row, group).
    scales: Vec<f32>,
    /// One zero-point per group; empty for symmetric schemes (the implicit
    /// zero-point is `2^(bits-1)`).
    zeros: Vec<f32>,
}

impl QuantizedMatrix {
    /// Assembles a quantized matrix from raw parts, validating lengths.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidShape`] if the codes or parameter
    /// vectors do not match the shape implied by `cfg`.
    pub fn from_parts(
        cfg: QuantConfig,
        rows: usize,
        cols: usize,
        codes: Vec<u8>,
        scales: Vec<f32>,
        zeros: Vec<f32>,
    ) -> Result<Self> {
        if codes.len() != rows * cols {
            return Err(QuantError::InvalidShape(format!(
                "{} codes for {rows}x{cols} matrix",
                codes.len()
            )));
        }
        let expected_groups = rows * cfg.groups_per_row(cols);
        if scales.len() != expected_groups {
            return Err(QuantError::InvalidShape(format!(
                "{} scales, expected {expected_groups}",
                scales.len()
            )));
        }
        match cfg.scheme() {
            Scheme::Asymmetric if zeros.len() != expected_groups => {
                return Err(QuantError::InvalidShape(format!(
                    "{} zero-points, expected {expected_groups}",
                    zeros.len()
                )));
            }
            Scheme::Symmetric if !zeros.is_empty() => {
                return Err(QuantError::InvalidShape(
                    "symmetric scheme must not carry zero-points".into(),
                ));
            }
            _ => {}
        }
        let max = cfg.max_code();
        if let Some(&bad) = codes.iter().find(|&&c| c > max) {
            return Err(QuantError::InvalidShape(format!(
                "code {bad} exceeds max code {max} for {}-bit quantization",
                cfg.bits()
            )));
        }
        Ok(Self { cfg, rows, cols, codes, scales, zeros })
    }

    /// The quantizer configuration this matrix was produced with.
    pub fn config(&self) -> &QuantConfig {
        &self.cfg
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw codes, row-major, one per weight.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Per-group scales, row-major by (row, group).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Per-group zero-points (empty for symmetric schemes).
    pub fn zeros(&self) -> &[f32] {
        &self.zeros
    }

    /// De-quantizes back to dense `f32`:
    /// `w = s · (q − z)` (paper Eq. 3), with `z = 2^(bits−1)` implicit for
    /// symmetric schemes.
    pub fn dequantize(&self) -> Matrix {
        let gs = self.cfg.group_size();
        let groups_per_row = self.cfg.groups_per_row(self.cols);
        let sym_zero = (1u32 << (self.cfg.bits() - 1)) as f32;
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let g = r * groups_per_row + c / gs;
                let q = self.codes[r * self.cols + c] as f32;
                let z = match self.cfg.scheme() {
                    Scheme::Asymmetric => self.zeros[g],
                    Scheme::Symmetric => sym_zero,
                };
                out[(r, c)] = self.scales[g] * (q - z);
            }
        }
        out
    }

    /// Memory of the packed deployment representation in bytes:
    /// `bits` per weight plus one FP16 scale (and FP16 zero-point for
    /// asymmetric schemes) per group.
    ///
    /// This is the figure the paper's memory columns report — it does not
    /// include the transient one-byte-per-code working representation.
    pub fn packed_bytes(&self) -> usize {
        let weight_bits = self.codes.len() * self.cfg.bits() as usize;
        let weight_bytes = weight_bits.div_ceil(8);
        let groups = self.scales.len();
        let param_bytes = match self.cfg.scheme() {
            Scheme::Asymmetric => groups * 4, // f16 scale + f16 zero
            Scheme::Symmetric => groups * 2,  // f16 scale
        };
        weight_bytes + param_bytes
    }
}

/// Splits a row into `(group_index, range)` pairs for a config.
///
/// Shared helper for the quantizer implementations.
pub(crate) fn group_ranges(cols: usize, group_size: usize) -> impl Iterator<Item = (usize, std::ops::Range<usize>)> {
    let n_groups = cols.div_ceil(group_size);
    (0..n_groups).map(move |g| {
        let start = g * group_size;
        (g, start..cols.min(start + group_size))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> QuantizedMatrix {
        let cfg = QuantConfig::new(3, 2, Scheme::Asymmetric).unwrap();
        QuantizedMatrix::from_parts(
            cfg,
            1,
            4,
            vec![0, 7, 3, 4],
            vec![0.5, 1.0],
            vec![4.0, 2.0],
        )
        .unwrap()
    }

    #[test]
    fn dequantize_applies_group_params() {
        let w = tiny().dequantize();
        // group 0: s=0.5 z=4 -> (0-4)*0.5, (7-4)*0.5
        // group 1: s=1.0 z=2 -> (3-2)*1.0, (4-2)*1.0
        assert_eq!(w.as_slice(), &[-2.0, 1.5, 1.0, 2.0]);
    }

    #[test]
    fn symmetric_implicit_zero_point() {
        let cfg = QuantConfig::new(3, 4, Scheme::Symmetric).unwrap();
        let q = QuantizedMatrix::from_parts(cfg, 1, 4, vec![4, 0, 7, 4], vec![2.0], vec![])
            .unwrap();
        assert_eq!(q.dequantize().as_slice(), &[0.0, -8.0, 6.0, 0.0]);
    }

    #[test]
    fn code_length_mismatch_rejected() {
        let cfg = QuantConfig::new(3, 2, Scheme::Asymmetric).unwrap();
        assert!(QuantizedMatrix::from_parts(cfg, 1, 4, vec![0; 3], vec![0.0; 2], vec![0.0; 2])
            .is_err());
    }

    #[test]
    fn overflowing_code_rejected() {
        let cfg = QuantConfig::new(3, 2, Scheme::Asymmetric).unwrap();
        assert!(QuantizedMatrix::from_parts(cfg, 1, 2, vec![8, 0], vec![1.0], vec![0.0])
            .is_err());
    }

    #[test]
    fn symmetric_with_zeros_rejected() {
        let cfg = QuantConfig::new(3, 2, Scheme::Symmetric).unwrap();
        assert!(
            QuantizedMatrix::from_parts(cfg, 1, 2, vec![0, 0], vec![1.0], vec![0.0]).is_err()
        );
    }

    #[test]
    fn packed_bytes_counts_bits_and_params() {
        // 1x4 INT3 = 12 bits -> 2 bytes; 2 asym groups -> 8 bytes params.
        assert_eq!(tiny().packed_bytes(), 2 + 8);
    }

    #[test]
    fn group_ranges_cover_row_with_remainder() {
        let ranges: Vec<_> = group_ranges(10, 4).collect();
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges[2].1, 8..10);
    }
}
