//! GPTQ (Frantar et al., 2022) — the calibration-based baseline.
//!
//! GPTQ quantizes a weight matrix column-by-column, each time spreading
//! the rounding error over the not-yet-quantized columns using the inverse
//! of the calibration Hessian `H = 2·Xᵀ·X + λI`. This is the method the
//! paper contrasts MiLo against on two axes: quantization *time* (the
//! Hessian work makes it ~10× slower than RTN/HQQ, paper Table 1 and
//! Fig. 8) and *calibration bias* (the result depends on the calibration
//! set, §1).

use crate::qtensor::group_ranges;
use crate::{QuantConfig, QuantError, QuantizedMatrix, Result, Scheme};
use milo_tensor::linalg::{cholesky_decompose, cholesky_inverse};
use milo_tensor::Matrix;

/// Hyper-parameters of the GPTQ solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GptqOptions {
    /// Relative dampening added to the Hessian diagonal
    /// (`λ = percdamp · mean(diag H)`). The reference implementation
    /// defaults to 0.01; extreme (3-bit) grids benefit from stronger
    /// dampening because the larger rounding errors make aggressive
    /// error propagation unstable, so 0.1 is the default here.
    pub percdamp: f32,
}

impl Default for GptqOptions {
    fn default() -> Self {
        Self { percdamp: 0.1 }
    }
}

/// Quantizes `w` (`out_features × in_features`) with GPTQ using
/// calibration activations `x` (`n_samples × in_features`, one activation
/// vector per row).
///
/// # Errors
///
/// Returns [`QuantError::InvalidShape`] if the activation width does not
/// match `w`'s input dimension, and [`QuantError::InvalidConfig`] for
/// symmetric schemes (the implementation mirrors the paper's asymmetric
/// grouped setting).
pub fn gptq_quantize(
    w: &Matrix,
    x: &Matrix,
    cfg: &QuantConfig,
    opts: &GptqOptions,
) -> Result<QuantizedMatrix> {
    if cfg.scheme() != Scheme::Asymmetric {
        return Err(QuantError::InvalidConfig(
            "this GPTQ implementation supports asymmetric grouped quantization".into(),
        ));
    }
    let (rows, cols) = w.shape();
    if rows == 0 || cols == 0 {
        return Err(QuantError::InvalidShape("cannot quantize an empty matrix".into()));
    }
    if x.cols() != cols {
        return Err(QuantError::InvalidShape(format!(
            "calibration width {} does not match in_features {cols}",
            x.cols()
        )));
    }
    if x.rows() == 0 {
        return Err(QuantError::InvalidShape("calibration set is empty".into()));
    }

    // H = 2 XᵀX, damped for invertibility.
    let mut h = x.transpose().matmul(x)?.scale(2.0);
    let mean_diag: f32 = (0..cols).map(|i| h[(i, i)]).sum::<f32>() / cols as f32;
    let damp = opts.percdamp * mean_diag.max(1e-8);
    for i in 0..cols {
        h[(i, i)] += damp;
    }
    // The fast-GPTQ recursion uses the *upper Cholesky factor* U of H⁻¹
    // (H⁻¹ = Uᵀ·U): its rows encode the sequential OBS updates with the
    // already-quantized rows/columns implicitly removed. Propagating with
    // raw H⁻¹ entries instead over-corrects and destroys accuracy.
    let l = cholesky_decompose(&h)?;
    let hinv = cholesky_inverse(&l)?;
    let u = cholesky_decompose(&hinv)?.transpose();

    // Working copy of W that absorbs the propagated errors.
    let mut work = w.clone();
    let groups_per_row = cfg.groups_per_row(cols);
    let mut codes = vec![0u8; rows * cols];
    let mut scales = vec![0.0f32; rows * groups_per_row];
    let mut zeros = vec![0.0f32; rows * groups_per_row];
    let max_code = cfg.max_code() as f32;

    // Pre-compute group boundaries.
    let ranges: Vec<(usize, std::ops::Range<usize>)> =
        group_ranges(cols, cfg.group_size()).collect();

    for (g, range) in &ranges {
        // Freeze the quantization grid for this group from the *current*
        // (error-adjusted) weights, as the reference implementation does
        // when entering a new group.
        for r in 0..rows {
            let chunk = &work.row(r)[range.clone()];
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &v in chunk {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let s = if hi > lo { (hi - lo) / max_code } else { 1.0 };
            scales[r * groups_per_row + g] = s;
            zeros[r * groups_per_row + g] = -lo / s;
        }
        for j in range.clone() {
            let d = u[(j, j)].max(1e-12);
            for r in 0..rows {
                let gi = r * groups_per_row + g;
                let (s, z) = (scales[gi], zeros[gi]);
                let v = work[(r, j)];
                let q = (v / s + z).round().clamp(0.0, max_code);
                codes[r * cols + j] = q as u8;
                let dq = s * (q - z);
                let err = (v - dq) / d;
                // Spread the rounding error over unquantized columns via
                // the Cholesky-factor row (zero below the diagonal).
                for k in (j + 1)..cols {
                    work[(r, k)] -= err * u[(j, k)];
                }
            }
        }
    }

    QuantizedMatrix::from_parts(*cfg, rows, cols, codes, scales, zeros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;

    fn rng(seed: u64) -> milo_tensor::rng::StdRng {
        milo_tensor::rng::StdRng::seed_from_u64(seed)
    }

    fn weight(rows: usize, cols: usize, seed: u64) -> Matrix {
        WeightDist::StudentT { dof: 6.0, scale: 0.05 }.sample_matrix(rows, cols, &mut rng(seed))
    }

    fn activations(n: usize, dim: usize, seed: u64) -> Matrix {
        WeightDist::Gaussian { std: 1.0 }.sample_matrix(n, dim, &mut rng(seed))
    }

    /// Output-space error ‖(W − Ŵ)·xᵀ‖ on a sample batch.
    fn output_error(w: &Matrix, dq: &Matrix, x: &Matrix) -> f32 {
        let diff = w.sub(dq).unwrap();
        diff.matmul(&x.transpose()).unwrap().frobenius_norm()
    }

    #[test]
    fn gptq_beats_rtn_on_calibration_distribution() {
        let w = weight(16, 64, 1);
        let x = activations(128, 64, 2);
        let cfg = QuantConfig::new(3, 32, Scheme::Asymmetric).unwrap();
        let gptq = gptq_quantize(&w, &x, &cfg, &GptqOptions::default()).unwrap();
        let rtn = crate::rtn_quantize(&w, &cfg).unwrap();
        let e_gptq = output_error(&w, &gptq.dequantize(), &x);
        let e_rtn = output_error(&w, &rtn.dequantize(), &x);
        assert!(
            e_gptq < e_rtn,
            "GPTQ output error {e_gptq} should beat RTN {e_rtn} on its calibration set"
        );
    }

    #[test]
    fn gptq_codes_in_range() {
        let w = weight(8, 32, 3);
        let x = activations(64, 32, 4);
        let cfg = QuantConfig::new(3, 16, Scheme::Asymmetric).unwrap();
        let q = gptq_quantize(&w, &x, &cfg, &GptqOptions::default()).unwrap();
        assert!(q.codes().iter().all(|&c| c <= 7));
    }

    #[test]
    fn mismatched_calibration_width_rejected() {
        let w = weight(4, 32, 5);
        let x = activations(16, 16, 6);
        let cfg = QuantConfig::new(3, 16, Scheme::Asymmetric).unwrap();
        assert!(matches!(
            gptq_quantize(&w, &x, &cfg, &GptqOptions::default()),
            Err(QuantError::InvalidShape(_))
        ));
    }

    #[test]
    fn empty_calibration_rejected() {
        let w = weight(4, 32, 7);
        let x = Matrix::zeros(0, 32);
        let cfg = QuantConfig::new(3, 16, Scheme::Asymmetric).unwrap();
        assert!(gptq_quantize(&w, &x, &cfg, &GptqOptions::default()).is_err());
    }

    #[test]
    fn symmetric_scheme_rejected() {
        let w = weight(4, 32, 8);
        let x = activations(16, 32, 9);
        let cfg = QuantConfig::new(3, 16, Scheme::Symmetric).unwrap();
        assert!(matches!(
            gptq_quantize(&w, &x, &cfg, &GptqOptions::default()),
            Err(QuantError::InvalidConfig(_))
        ));
    }

    #[test]
    fn calibration_bias_is_observable() {
        // GPTQ tuned on distribution A should do worse when evaluated on a
        // very different distribution B than on A itself — the bias the
        // paper's calibration-free pitch targets.
        let w = weight(16, 64, 10);
        // Calibration set with a strongly anisotropic covariance.
        let mut xa = activations(128, 64, 11);
        for r in 0..xa.rows() {
            for c in 0..32 {
                xa[(r, c)] *= 8.0;
            }
        }
        let xb = activations(128, 64, 12);
        let cfg = QuantConfig::new(3, 32, Scheme::Asymmetric).unwrap();
        let q = gptq_quantize(&w, &xa, &cfg, &GptqOptions::default()).unwrap();
        let dq = q.dequantize();
        // Per-sample-normalized output errors.
        let ea = output_error(&w, &dq, &xa) / xa.frobenius_norm();
        let eb = output_error(&w, &dq, &xb) / xb.frobenius_norm();
        assert!(
            eb > ea,
            "normalized error off-calibration ({eb}) should exceed on-calibration ({ea})"
        );
    }
}
