//! Symmetric compensator quantization (paper Eq. 15 and §3.2.6).
//!
//! The low-rank compensator matrices `U` and `V` are themselves quantized
//! to keep the memory overhead small: the paper shows INT3 symmetric
//! quantization of the compensators costs only ~0.2% perplexity versus
//! INT8 while using 37.5% of the memory (Table 6). The scheme is
//! `Q(w) = round(max_code · w / (2s)) + 2^(bits−1)` with `s` the largest
//! absolute value in the group — Eq. 15 instantiated for any bit width
//! (the paper states it for INT3, where `max_code = 7` and the offset is
//! 4).

use crate::{QuantConfig, QuantError, QuantizedMatrix, Result, Scheme};
use milo_tensor::Matrix;

/// Quantizes `w` with the symmetric grouped scheme of paper Eq. 15.
///
/// This is a thin wrapper over [`crate::rtn_quantize`] that enforces the
/// symmetric scheme, provided so call sites that quantize *compensators*
/// read as such.
///
/// # Errors
///
/// Returns [`QuantError::InvalidConfig`] if `cfg` is not symmetric.
pub fn symmetric_quantize(w: &Matrix, cfg: &QuantConfig) -> Result<QuantizedMatrix> {
    if cfg.scheme() != Scheme::Symmetric {
        return Err(QuantError::InvalidConfig(
            "symmetric_quantize requires a symmetric scheme".into(),
        ));
    }
    crate::rtn_quantize(w, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;

    #[test]
    fn eq15_codes_for_known_values() {
        // s = max|w| = 1.0; codes = round(7 w / 2) + 4.
        let w = Matrix::from_rows(&[&[-1.0, -0.5, 0.0, 0.5, 1.0, 0.25, -0.25, 0.75]]);
        let cfg = QuantConfig::new(3, 8, Scheme::Symmetric).unwrap();
        let q = symmetric_quantize(&w, &cfg).unwrap();
        let expected: Vec<u8> = w
            .as_slice()
            .iter()
            .map(|&v| ((7.0 * v / 2.0).round() + 4.0).clamp(0.0, 7.0) as u8)
            .collect();
        assert_eq!(q.codes(), expected.as_slice());
    }

    #[test]
    fn zero_maps_to_midpoint() {
        let w = Matrix::from_rows(&[&[0.0, 1.0]]);
        let cfg = QuantConfig::new(3, 2, Scheme::Symmetric).unwrap();
        let q = symmetric_quantize(&w, &cfg).unwrap();
        assert_eq!(q.codes()[0], 4);
        let dq = q.dequantize();
        assert_eq!(dq[(0, 0)], 0.0);
    }

    #[test]
    fn error_bounded_by_half_step() {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(1);
        let w = WeightDist::Gaussian { std: 0.3 }.sample_matrix(8, 64, &mut rng);
        let cfg = QuantConfig::int3_sym();
        let q = symmetric_quantize(&w, &cfg).unwrap();
        let dq = q.dequantize();
        for (i, (&a, &b)) in w.as_slice().iter().zip(dq.as_slice()).enumerate() {
            let s = q.scales()[i / 64];
            // The negative end of the grid clamps at code 0 = −4·step,
            // which covers −(8/7)s; everything within ±s is within half a
            // step of a grid point.
            assert!((a - b).abs() <= s * 0.5 + 1e-6, "element {i}: {a} vs {b}");
        }
    }

    #[test]
    fn asymmetric_config_rejected() {
        let w = Matrix::filled(1, 8, 1.0);
        assert!(symmetric_quantize(&w, &QuantConfig::int3_asym()).is_err());
    }

    #[test]
    fn int8_uses_more_memory_than_int3() {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(2);
        let w = WeightDist::Gaussian { std: 0.1 }.sample_matrix(64, 64, &mut rng);
        let q3 = symmetric_quantize(&w, &QuantConfig::int3_sym()).unwrap();
        let q8 =
            symmetric_quantize(&w, &QuantConfig::new(8, 64, Scheme::Symmetric).unwrap()).unwrap();
        // Paper Table 6: INT3 compensators use 37.5% of INT8's weight
        // memory (3/8); scales are identical so the ratio is slightly
        // above 0.375.
        let ratio = q3.packed_bytes() as f32 / q8.packed_bytes() as f32;
        assert!(ratio > 0.37 && ratio < 0.42, "ratio {ratio}");
    }

    #[test]
    fn int8_is_more_accurate_than_int3() {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(3);
        let w = WeightDist::Gaussian { std: 0.1 }.sample_matrix(32, 64, &mut rng);
        let e3 = w
            .sub(&symmetric_quantize(&w, &QuantConfig::int3_sym()).unwrap().dequantize())
            .unwrap()
            .frobenius_norm();
        let e8 = w
            .sub(
                &symmetric_quantize(&w, &QuantConfig::new(8, 64, Scheme::Symmetric).unwrap())
                    .unwrap()
                    .dequantize(),
            )
            .unwrap()
            .frobenius_norm();
        assert!(e8 < e3);
    }
}
