//! Shared quantizer configuration.

use crate::{QuantError, Result};

/// Whether the quantization grid is symmetric around zero or has a
/// per-group zero-point.
///
/// The paper's main MiLo pipeline uses *asymmetric* grouped quantization
/// for the weights (better accuracy; the MiLo kernel supports it natively,
/// §4.3.1) and *symmetric* quantization for the compensators (Eq. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Grid `[0, 2^bits)` with per-group scale and floating zero-point.
    Asymmetric,
    /// Grid centred at `2^(bits-1)` with per-group scale only.
    Symmetric,
}

/// Configuration of a grouped weight quantizer.
///
/// Weights are grouped along the input (column) dimension: each row of a
/// weight matrix is split into contiguous groups of `group_size` elements,
/// and each group gets its own scale (and zero-point for
/// [`Scheme::Asymmetric`]). The paper uses `group_size = 64` everywhere
/// (§4 "All methods use a quantization group size of 64").
///
/// # Examples
///
/// ```
/// use milo_quant::{QuantConfig, Scheme};
///
/// let cfg = QuantConfig::new(3, 64, Scheme::Asymmetric).unwrap();
/// assert_eq!(cfg.levels(), 8);
/// assert_eq!(cfg.max_code(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantConfig {
    bits: u8,
    group_size: usize,
    scheme: Scheme,
}

impl QuantConfig {
    /// Creates a configuration, validating the bit width and group size.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] unless `2 <= bits <= 8` and
    /// `group_size > 0`.
    pub fn new(bits: u8, group_size: usize, scheme: Scheme) -> Result<Self> {
        if !(2..=8).contains(&bits) {
            return Err(QuantError::InvalidConfig(format!(
                "bits must be in 2..=8, got {bits}"
            )));
        }
        if group_size == 0 {
            return Err(QuantError::InvalidConfig("group_size must be positive".into()));
        }
        Ok(Self { bits, group_size, scheme })
    }

    /// The paper's default weight configuration: INT3, group 64,
    /// asymmetric.
    pub fn int3_asym() -> Self {
        Self { bits: 3, group_size: 64, scheme: Scheme::Asymmetric }
    }

    /// INT4, group 64, asymmetric (the Table 1 INT4 column).
    pub fn int4_asym() -> Self {
        Self { bits: 4, group_size: 64, scheme: Scheme::Asymmetric }
    }

    /// The compensator configuration of paper Eq. 15: INT3, group 64,
    /// symmetric.
    pub fn int3_sym() -> Self {
        Self { bits: 3, group_size: 64, scheme: Scheme::Symmetric }
    }

    /// Bit width of each code.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of weights sharing one scale/zero-point.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The quantization scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Number of representable levels, `2^bits`.
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Largest representable code, `2^bits − 1`.
    pub fn max_code(&self) -> u8 {
        ((1u32 << self.bits) - 1) as u8
    }

    /// Number of groups per row for a row of `cols` elements (the last
    /// group may be short).
    pub fn groups_per_row(&self, cols: usize) -> usize {
        cols.div_ceil(self.group_size)
    }

    /// Returns a copy with a different bit width.
    ///
    /// # Errors
    ///
    /// Same validation as [`QuantConfig::new`].
    pub fn with_bits(&self, bits: u8) -> Result<Self> {
        Self::new(bits, self.group_size, self.scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = QuantConfig::int3_asym();
        assert_eq!(c.bits(), 3);
        assert_eq!(c.group_size(), 64);
        assert_eq!(c.scheme(), Scheme::Asymmetric);
    }

    #[test]
    fn levels_and_max_code() {
        assert_eq!(QuantConfig::int3_asym().levels(), 8);
        assert_eq!(QuantConfig::int4_asym().max_code(), 15);
        assert_eq!(QuantConfig::new(8, 1, Scheme::Symmetric).unwrap().levels(), 256);
    }

    #[test]
    fn invalid_bits_rejected() {
        assert!(QuantConfig::new(1, 64, Scheme::Asymmetric).is_err());
        assert!(QuantConfig::new(9, 64, Scheme::Asymmetric).is_err());
    }

    #[test]
    fn zero_group_size_rejected() {
        assert!(QuantConfig::new(3, 0, Scheme::Asymmetric).is_err());
    }

    #[test]
    fn groups_per_row_rounds_up() {
        let c = QuantConfig::int3_asym();
        assert_eq!(c.groups_per_row(64), 1);
        assert_eq!(c.groups_per_row(65), 2);
        assert_eq!(c.groups_per_row(128), 2);
    }

    #[test]
    fn with_bits_preserves_other_fields() {
        let c = QuantConfig::int3_asym().with_bits(4).unwrap();
        assert_eq!(c.bits(), 4);
        assert_eq!(c.group_size(), 64);
    }
}
