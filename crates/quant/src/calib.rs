//! Synthetic calibration-set generation for the GPTQ baseline.
//!
//! The paper argues calibration-based methods inherit a *bias* from the
//! choice of calibration data (§1, §2). To reproduce that effect without
//! Wikitext2/C4, this module generates activation sets with controllable
//! covariance structure: an isotropic "generalist" set and anisotropic
//! "domain" sets that emphasize a subspace, standing in for calibration
//! corpora with different topic mixes.

use milo_tensor::rng::{standard_normal, WeightDist};
use milo_tensor::Matrix;
use milo_tensor::rng::StdRng;
use milo_tensor::rng::SeedableRng;

/// A description of how calibration activations are distributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalibProfile {
    /// Isotropic Gaussian activations — the "unbiased" reference.
    Isotropic,
    /// The first `emphasized` coordinates carry `gain`× the energy of the
    /// rest, emulating a calibration corpus that exercises a subspace of
    /// the features much harder than the deployment distribution does.
    Anisotropic {
        /// Number of emphasized leading coordinates.
        emphasized: usize,
        /// Amplitude multiplier on the emphasized coordinates.
        gain: f32,
    },
}

/// Generates `n_samples × dim` calibration activations with the given
/// profile, deterministically from `seed`.
///
/// # Panics
///
/// Panics if an anisotropic profile emphasizes more coordinates than
/// `dim`.
pub fn synthetic_calibration(
    n_samples: usize,
    dim: usize,
    profile: CalibProfile,
    seed: u64,
) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    match profile {
        CalibProfile::Isotropic => {
            WeightDist::Gaussian { std: 1.0 }.sample_matrix(n_samples, dim, &mut rng)
        }
        CalibProfile::Anisotropic { emphasized, gain } => {
            assert!(emphasized <= dim, "cannot emphasize {emphasized} of {dim} coordinates");
            Matrix::from_fn(n_samples, dim, |_, c| {
                let x = standard_normal(&mut rng);
                if c < emphasized {
                    gain * x
                } else {
                    x
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::stats;

    #[test]
    fn isotropic_has_uniform_column_energy() {
        let x = synthetic_calibration(2000, 8, CalibProfile::Isotropic, 1);
        let vars: Vec<f32> = (0..8).map(|c| stats::variance(&x.col(c))).collect();
        for &v in &vars {
            assert!((v - 1.0).abs() < 0.15, "var {v}");
        }
    }

    #[test]
    fn anisotropic_emphasizes_leading_coordinates() {
        let x = synthetic_calibration(
            2000,
            8,
            CalibProfile::Anisotropic { emphasized: 2, gain: 4.0 },
            2,
        );
        let v_lead = stats::variance(&x.col(0));
        let v_tail = stats::variance(&x.col(7));
        assert!(v_lead > 10.0 * v_tail, "lead {v_lead} vs tail {v_tail}");
    }

    #[test]
    fn generation_is_seeded() {
        let a = synthetic_calibration(10, 4, CalibProfile::Isotropic, 7);
        let b = synthetic_calibration(10, 4, CalibProfile::Isotropic, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot emphasize")]
    fn over_emphasis_panics() {
        synthetic_calibration(4, 2, CalibProfile::Anisotropic { emphasized: 3, gain: 2.0 }, 0);
    }
}
