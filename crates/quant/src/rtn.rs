//! Round-to-nearest (RTN) grouped quantization — the cheapest baseline in
//! the paper's Tables 1 and 3.

use crate::qtensor::group_ranges;
use crate::{QuantConfig, QuantizedMatrix, Result, Scheme};
use milo_tensor::Matrix;

/// Quantizes `w` by direct round-to-nearest onto a per-group grid.
///
/// For [`Scheme::Asymmetric`] each group uses
/// `s = (max − min) / (2^bits − 1)` and zero-point `z = −min / s`, so the
/// grid endpoints land exactly on the group extremes (this is the
/// "captures the outliers adequately" behaviour the paper's Observation 2
/// describes). For [`Scheme::Symmetric`] the grid is centred with
/// `s = max|w|` as in paper Eq. 15.
///
/// # Errors
///
/// Returns an error for an empty matrix.
pub fn rtn_quantize(w: &Matrix, cfg: &QuantConfig) -> Result<QuantizedMatrix> {
    if w.is_empty() {
        return Err(crate::QuantError::InvalidShape("cannot quantize an empty matrix".into()));
    }
    let (rows, cols) = w.shape();
    let groups_per_row = cfg.groups_per_row(cols);
    let mut codes = vec![0u8; rows * cols];
    let mut scales = Vec::with_capacity(rows * groups_per_row);
    let mut zeros = Vec::new();
    let max_code = cfg.max_code() as f32;

    for r in 0..rows {
        let row = w.row(r);
        for (_, range) in group_ranges(cols, cfg.group_size()) {
            let chunk = &row[range.clone()];
            match cfg.scheme() {
                Scheme::Asymmetric => {
                    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                    for &v in chunk {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    let s = if hi > lo { (hi - lo) / max_code } else { 1.0 };
                    let z = -lo / s;
                    for (i, &v) in chunk.iter().enumerate() {
                        let q = (v / s + z).round().clamp(0.0, max_code);
                        codes[r * cols + range.start + i] = q as u8;
                    }
                    scales.push(s);
                    zeros.push(z);
                }
                Scheme::Symmetric => {
                    let s = chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    let s = if s > 0.0 { s } else { 1.0 };
                    let half = (cfg.levels() / 2) as f32;
                    // Eq. 15 with general bits: q = round((2^bits - 1) * w / (2 s)) + 2^(bits-1).
                    for (i, &v) in chunk.iter().enumerate() {
                        let q = ((max_code * v) / (2.0 * s)).round() + half;
                        codes[r * cols + range.start + i] = q.clamp(0.0, max_code) as u8;
                    }
                    // Store the grid step so dequantize's s·(q−z) recovers
                    // values: step = 2 s / (2^bits − 1).
                    scales.push(2.0 * s / max_code);
                }
            }
        }
    }
    QuantizedMatrix::from_parts(*cfg, rows, cols, codes, scales, zeros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        WeightDist::Gaussian { std: 0.1 }.sample_matrix(rows, cols, &mut rng)
    }

    #[test]
    fn asym_error_bounded_by_half_step() {
        let w = random(8, 64, 1);
        let cfg = QuantConfig::int3_asym();
        let q = rtn_quantize(&w, &cfg).unwrap();
        let dq = q.dequantize();
        for (r, (&a, &b)) in w.as_slice().iter().zip(dq.as_slice()).enumerate() {
            let g = r / 64;
            let s = q.scales()[g];
            assert!((a - b).abs() <= s * 0.5 + 1e-6, "element {r}: {a} vs {b}, step {s}");
        }
    }

    #[test]
    fn group_extremes_are_exactly_representable() {
        let w = Matrix::from_rows(&[&[-1.0, -0.5, 0.0, 2.0]]);
        let cfg = QuantConfig::new(3, 4, Scheme::Asymmetric).unwrap();
        let dq = rtn_quantize(&w, &cfg).unwrap().dequantize();
        assert!((dq[(0, 0)] - (-1.0)).abs() < 1e-5);
        assert!((dq[(0, 3)] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn higher_bits_reduce_error() {
        let w = random(16, 128, 2);
        let cfg3 = QuantConfig::int3_asym();
        let cfg4 = QuantConfig::int4_asym();
        let e3 = w.sub(&rtn_quantize(&w, &cfg3).unwrap().dequantize()).unwrap().frobenius_norm();
        let e4 = w.sub(&rtn_quantize(&w, &cfg4).unwrap().dequantize()).unwrap().frobenius_norm();
        assert!(e4 < e3, "INT4 error {e4} should beat INT3 error {e3}");
    }

    #[test]
    fn symmetric_round_trip_of_interior_grid_points() {
        // With s = max|w| fixed by a sentinel ±s pair, interior grid
        // points k·(2s/7) for |k| ≤ 3 are exactly representable (code
        // k+4); the sentinels themselves clamp to the grid ends, which is
        // Eq. 15's intended behaviour.
        let s = 1.0f32;
        let step = 2.0 * s / 7.0;
        let mut vals: Vec<f32> = (-3i32..=3).map(|k| k as f32 * step).collect();
        vals.push(s); // sentinel defining the scale
        let w = Matrix::from_vec(1, 8, vals.clone());
        let cfg = QuantConfig::new(3, 8, Scheme::Symmetric).unwrap();
        let dq = rtn_quantize(&w, &cfg).unwrap().dequantize();
        for (k, (a, b)) in vals[..7].iter().zip(dq.as_slice()).enumerate() {
            assert!((a - b).abs() < 1e-5, "grid point {k}: {a} vs {b}");
        }
        // Sentinel s clamps to the top code 7 -> (7-4)·step = 3·step.
        assert!((dq[(0, 7)] - 3.0 * step).abs() < 1e-5);
    }

    #[test]
    fn constant_group_quantizes_without_nan() {
        let w = Matrix::filled(2, 64, 3.0);
        let q = rtn_quantize(&w, &QuantConfig::int3_asym()).unwrap();
        let dq = q.dequantize();
        assert!(dq.as_slice().iter().all(|v| v.is_finite()));
        for &v in dq.as_slice() {
            assert!((v - 3.0).abs() < 1e-4);
        }
    }

    #[test]
    fn empty_matrix_rejected() {
        let w = Matrix::zeros(0, 0);
        assert!(rtn_quantize(&w, &QuantConfig::int3_asym()).is_err());
    }

    #[test]
    fn ragged_tail_group_is_handled() {
        let w = random(3, 70, 3); // 70 = 64 + 6 tail
        let q = rtn_quantize(&w, &QuantConfig::int3_asym()).unwrap();
        assert_eq!(q.scales().len(), 3 * 2);
        let dq = q.dequantize();
        assert_eq!(dq.shape(), (3, 70));
    }
}
