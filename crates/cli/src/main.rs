//! `milo-cli` — the command-line workflow of the reproduction, mirroring
//! the paper artifact's scripts (Appendix F):
//!
//! ```bash
//! # Synthesize a reference model (stands in for downloading a checkpoint).
//! milo-cli synth --model mixtral --scale 0.5 --out ref.moem
//!
//! # Quantize it (the artifact's MiLo_quant_main.py with --dense_rank /
//! # --sparse_rank):
//! milo-cli quantize --model ref.moem --method milo --dense-rank 16 --sparse-rank 2 \
//!     --out compressed.milo
//!
//! # Evaluate perplexity + proxy tasks, optionally writing eval_result.json:
//! milo-cli eval --model ref.moem --compressed compressed.milo --json eval_result.json
//!
//! # Inspect a compressed model:
//! milo-cli info --compressed compressed.milo
//!
//! # Verify artifact integrity (checksums, per-layer status):
//! milo-cli check --artifact compressed.milo [--strict]
//!
//! # Run forwards on the packed engine and print the telemetry report
//! # (per-layer latency percentiles, per-expert activations, load skew):
//! milo-cli stats --model ref.moem --compressed compressed.milo [--trace-out trace.json]
//!
//! # Validate a Chrome trace produced by --trace-out / MILO_TELEMETRY=trace:
//! milo-cli trace-check --trace trace.json --require engine.forward,engine.layer
//! ```
//!
//! Every command honors `MILO_TELEMETRY` (`1`/`metrics`, `trace`); the
//! `--trace-out FILE` flag on `quantize`, `eval`, and `stats` forces
//! trace level and writes Chrome trace-event JSON on success.

use milo_bench::methods::{run_gptq_full, run_milo, run_rtn};
use milo_bench::Args;
use milo_core::serialize::{load_compressed_model, save_compressed_model};
use milo_core::{MiloOptions, RankPolicy, SparseAllocation};
use milo_eval::report::Json;
use milo_eval::{generate_corpus, EvalConfig, EvalContext, Table};
use milo_moe::serialize::{load_model, save_model};
use milo_moe::{apply_compressed, profile_expert_frequency, MoeConfig, MoeModel};
use milo_quant::QuantConfig;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: milo-cli <command> [flags]\n\
         commands:\n  \
         synth     --model mixtral|deepseek [--scale f] [--layers n] [--seed n] --out FILE\n  \
         quantize  --model FILE --method milo|hqq|rtn|gptq [--dense-rank n] [--sparse-rank n]\n            \
                   [--sparse-policy uniform|kurtosis|frequency] [--iters n] --out FILE\n  \
         eval      --model FILE --compressed FILE [--json FILE]\n  \
         info      --compressed FILE\n  \
         check     --artifact FILE [--strict]   (verify MILO/MOEM checksums; \
--strict also rejects\n            \
                   unchecksummed legacy artifacts and trailing data)\n  \
         stats     --model FILE --compressed FILE [--seqs n] [--seq-len n] [--seed n]\n            \
                   (run packed-engine forwards, print telemetry: per-layer latency\n            \
                   percentiles, per-expert activations, load skew, quarantines)\n  \
         trace-check --trace FILE [--require prefix,prefix,...]\n            \
                   (validate Chrome trace JSON: well-formed, monotonic timestamps,\n            \
                   >=1 span per required prefix)\n  \
         soak      [--quick|--full] [--seed n] [--requests n] [--deadline-ms n] [--json FILE]\n            \
                   (seeded chaos soak of the serving layer: kill/poison/slow faults,\n            \
                   burst arrivals; fails on any violated invariant. Env: MILO_SOAK_SEED,\n            \
                   MILO_DEADLINE_MS)\n\
         \n\
         quantize/eval/stats also accept --trace-out FILE (write Chrome trace JSON;\n\
         implies MILO_TELEMETRY=trace)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let command = argv.remove(0);
    let args = Args::from_iter(argv);

    // --trace-out implies trace-level telemetry for the whole run;
    // `stats` always needs at least metrics to have anything to print.
    let trace_out = args.get("trace-out").map(str::to_string);
    if trace_out.is_some() {
        milo_obs::set_level(milo_obs::Level::Trace);
    } else if command == "stats" && !milo_obs::enabled() {
        milo_obs::set_level(milo_obs::Level::Metrics);
    }

    let result = match command.as_str() {
        "synth" => cmd_synth(&args),
        "quantize" => cmd_quantize(&args),
        "eval" => cmd_eval(&args),
        "info" => cmd_info(&args),
        "check" => cmd_check(&args),
        "stats" => cmd_stats(&args),
        "trace-check" => cmd_trace_check(&args),
        "soak" => cmd_soak(&args),
        _ => return usage(),
    };
    let result = result.and_then(|()| {
        if let Some(path) = &trace_out {
            std::fs::write(path, milo_obs::trace::export_chrome())?;
            println!("wrote Chrome trace ({} events) -> {path}", milo_obs::trace::event_count());
        }
        Ok(())
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliError = Box<dyn std::error::Error + Send + Sync>;

fn required<'a>(args: &'a Args, name: &str) -> Result<&'a str, CliError> {
    args.get(name).ok_or_else(|| format!("missing required flag --{name}").into())
}

fn cmd_synth(args: &Args) -> Result<(), CliError> {
    let kind = required(args, "model")?;
    let scale = args.get_f32("scale").unwrap_or(1.0);
    let seed = args.get_u64("seed").unwrap_or(2025);
    let out = required(args, "out")?;
    let mut cfg = match kind {
        "mixtral" => MoeConfig::mixtral_like(),
        "deepseek" => MoeConfig::deepseek_like(),
        other => return Err(format!("unknown model kind {other}").into()),
    }
    .scaled(scale);
    if let Some(layers) = args.get_u64("layers") {
        cfg.n_layers = layers as usize;
    }
    let model = MoeModel::synthesize(&cfg, seed);
    save_model(Path::new(out), &model)?;
    println!(
        "synthesized {} ({} quantizable params, {:.2} MB FP16) -> {out}",
        cfg.name,
        cfg.quantizable_params(),
        cfg.fp16_bytes() as f64 / 1e6
    );
    Ok(())
}

fn cmd_quantize(args: &Args) -> Result<(), CliError> {
    let model_path = required(args, "model")?;
    let method = required(args, "method")?;
    let out = required(args, "out")?;
    let reference = load_model(Path::new(model_path))?;
    let seed = args.get_u64("seed").unwrap_or(2025);
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);

    let outcome = match method {
        "rtn" => run_rtn(&reference, &QuantConfig::int3_asym())?,
        "gptq" => {
            let calib = generate_corpus(&reference, 40, 48, seed ^ 0xca11b)?;
            run_gptq_full(&reference, &QuantConfig::int3_asym(), &calib, seed)?
        }
        "hqq" | "milo" => {
            let policy = if method == "hqq" {
                RankPolicy::uniform(0)
            } else {
                let dense = args.get_u64("dense-rank").unwrap_or(16) as usize;
                let sparse = args.get_u64("sparse-rank").unwrap_or(2) as usize;
                let sparse_alloc = match args.get("sparse-policy").unwrap_or("kurtosis") {
                    "uniform" => SparseAllocation::Uniform(sparse),
                    "kurtosis" => SparseAllocation::Kurtosis { avg_rank: sparse },
                    "frequency" => SparseAllocation::Frequency { avg_rank: sparse },
                    other => return Err(format!("unknown sparse policy {other}").into()),
                };
                RankPolicy::composite(dense, sparse_alloc)
            };
            let corpus = generate_corpus(&reference, 10, 32, seed ^ 0xf3e9)?;
            let profile = profile_expert_frequency(&reference, &corpus)?;
            let iters = args.get_u64("iters").unwrap_or(20) as usize;
            let opts = MiloOptions { max_iters: iters, ..MiloOptions::default() };
            run_milo(&reference, Some(&profile), &policy, &opts, threads)?
        }
        other => return Err(format!("unknown method {other}").into()),
    };
    save_compressed_model(Path::new(out), &outcome.compressed)?;
    println!(
        "{method}: {:.2} MB compressed ({:.1}% of FP16), quantization took {:.1}s -> {out}",
        outcome.memory_bytes as f64 / 1e6,
        100.0 * outcome.memory_bytes as f64 / reference.config.fp16_bytes() as f64,
        outcome.seconds
    );
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), CliError> {
    let model_path = required(args, "model")?;
    let compressed_path = required(args, "compressed")?;
    let reference = load_model(Path::new(model_path))?;
    let compressed = load_compressed_model(Path::new(compressed_path))?;
    let candidate = apply_compressed(&reference, &compressed)?;

    let cfg = EvalConfig {
        n_seqs: args.get_u64("seqs").unwrap_or(16) as usize,
        seq_len: args.get_u64("seq-len").unwrap_or(24) as usize,
        corpus_seed: args.get_u64("seed").unwrap_or(2024),
        task_prompts: args.get_u64("prompts").unwrap_or(32) as usize,
    };
    eprintln!("preparing evaluation context...");
    let ctx = EvalContext::prepare(&reference, &cfg)?;
    let result = ctx.evaluate("compressed", &candidate, compressed.memory_bytes(), 0.0)?;

    let mut t = Table::new(["metric", "value"]);
    t.push_row(["memory (MB)".to_string(), format!("{:.2}", result.memory_bytes as f64 / 1e6)]);
    t.push_row(["perplexity".to_string(), format!("{:.4}", result.ppl)]);
    for (task, score) in &result.task_scores {
        t.push_row([format!("{task} (%)"), format!("{score:.2}")]);
    }
    t.push_row(["zero-shot avg (%)".to_string(), format!("{:.2}", result.zero_shot_avg())]);
    println!("{}", t.render());

    if let Some(json_path) = args.get("json") {
        let json = Json::Obj(vec![
            ("memory_bytes".into(), Json::Num(result.memory_bytes as f64)),
            ("perplexity".into(), Json::Num(result.ppl as f64)),
            (
                "tasks".into(),
                Json::Obj(
                    result
                        .task_scores
                        .iter()
                        .map(|(n, s)| (n.clone(), Json::Num(*s as f64)))
                        .collect(),
                ),
            ),
            ("zero_shot_avg".into(), Json::Num(result.zero_shot_avg() as f64)),
        ]);
        std::fs::write(json_path, json.render())?;
        println!("wrote {json_path}");
    }
    Ok(())
}

/// Verifies an artifact's section checksums without materializing the
/// model, printing per-section integrity and failing (nonzero exit) if
/// any section is damaged. Handles both artifact formats, sniffed from
/// the magic tag: `MILO` (compressed models) and `MOEM` (reference
/// models). With `--strict`, unchecksummed legacy (v1) artifacts and
/// trailing bytes after the final section are also failures.
fn cmd_check(args: &Args) -> Result<(), CliError> {
    let path = required(args, "artifact")?;
    let strict = args.flag("strict");
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);

    use std::io::Read;
    let mut magic = [0u8; 4];
    file.read_exact(&mut magic)?;
    let stream = std::io::Cursor::new(magic).chain(file);
    let (format, report) = match &magic {
        b"MILO" => {
            ("MILO", milo_core::serialize::verify_compressed_stream(&mut { stream })?)
        }
        b"MOEM" => ("MOEM", milo_moe::serialize::verify_model_stream(&mut { stream })?),
        other => {
            return Err(format!(
                "unrecognized artifact magic {:?} (expected MILO or MOEM)",
                String::from_utf8_lossy(other)
            )
            .into())
        }
    };

    println!(
        "{path}: {format} v{} ({})",
        report.version,
        if report.checksummed { "checksummed" } else { "legacy, no checksums" }
    );
    if report.checksummed {
        let mut t = Table::new(["section", "bytes", "status"]);
        for s in &report.sections {
            t.push_row([
                s.name.clone(),
                s.bytes.to_string(),
                match &s.fault {
                    None => "ok".to_string(),
                    Some(f) => format!("CORRUPT: {f}"),
                },
            ]);
        }
        println!("{}", t.render());
        if report.trailing_data {
            println!("warning: trailing data after the final section");
        }
    }

    let n_corrupt = report.n_corrupt();
    if n_corrupt > 0 {
        return Err(format!("{n_corrupt} corrupt section(s) detected").into());
    }
    if strict && !report.checksummed {
        return Err("legacy artifact has no checksums (rejected by --strict)".into());
    }
    if strict && report.trailing_data {
        return Err("trailing data after the final section (rejected by --strict)".into());
    }
    println!(
        "integrity ok: {} section(s) verified",
        if report.checksummed { report.sections.len() } else { 0 }
    );
    Ok(())
}

/// Runs forward passes on the packed engine and prints the telemetry
/// report: per-layer latency percentiles, per-expert activation counts,
/// live load-skew gauges, and the quarantine count — the observability
/// walkthrough of a serving run.
fn cmd_stats(args: &Args) -> Result<(), CliError> {
    use milo_obs::MetricSnapshot;

    let model_path = required(args, "model")?;
    let compressed_path = required(args, "compressed")?;
    let n_seqs = args.get_u64("seqs").unwrap_or(4) as usize;
    let seq_len = args.get_u64("seq-len").unwrap_or(16) as usize;
    let seed = args.get_u64("seed").unwrap_or(2024);

    let reference = load_model(Path::new(model_path))?;
    let compressed = load_compressed_model(Path::new(compressed_path))?;
    let packed = milo_engine::PackedMoeModel::build(&reference, &compressed)?;
    let corpus = generate_corpus(&reference, n_seqs, seq_len, seed)?;

    eprintln!("running {n_seqs} forward passes ({seq_len} tokens each)...");
    for seq in &corpus {
        packed.forward(seq)?;
    }

    // Per-layer forward latency percentiles.
    let layers = milo_obs::registry::snapshot_prefixed("engine.layer");
    if !layers.is_empty() {
        let mut t = Table::new(["layer", "count", "p50", "p95", "p99", "mean"]);
        for (key, m) in &layers {
            let MetricSnapshot::Histogram(h) = m else { continue };
            t.push_row([
                key.clone(),
                h.count.to_string(),
                h.format(h.p50),
                h.format(h.p95),
                h.format(h.p99),
                h.format(h.mean.round() as u64),
            ]);
        }
        println!("per-layer forward latency:\n{}", t.render());
    }

    // Per-expert activation counts with a share column.
    let experts = milo_obs::registry::snapshot_prefixed("engine.expert_tokens");
    let total: u64 = experts
        .iter()
        .filter_map(|(_, m)| match m {
            MetricSnapshot::Counter(v) => Some(*v),
            _ => None,
        })
        .sum();
    if total > 0 {
        let mut t = Table::new(["expert", "tokens routed", "share (%)"]);
        for (key, m) in &experts {
            let MetricSnapshot::Counter(v) = m else { continue };
            t.push_row([
                key.clone(),
                v.to_string(),
                format!("{:.1}", 100.0 * *v as f64 / total as f64),
            ]);
        }
        println!("per-expert activations:\n{}", t.render());
    }

    for (key, m) in milo_obs::registry::snapshot_prefixed("engine.load_skew") {
        if let MetricSnapshot::Gauge(v) = m {
            println!("{key} = {v:.3} (max/mean routed tokens; 1.0 = balanced)");
        }
    }
    println!("experts quarantined: {}", milo_obs::counter_get("moe.quarantine.total"));

    if args.flag("all") {
        println!("\nfull metric registry:\n{}", milo_obs::snapshot::render());
    }
    Ok(())
}

/// Validates a Chrome trace-event file produced by `--trace-out` (or any
/// conforming tool): well-formed JSON, a non-empty `traceEvents` array,
/// monotonic non-negative timestamps, and at least one complete span per
/// `--require` prefix (comma-separated).
fn cmd_trace_check(args: &Args) -> Result<(), CliError> {
    let path = required(args, "trace")?;
    let required_spans: Vec<&str> = args
        .get("require")
        .map(|v| v.split(',').map(str::trim).filter(|s| !s.is_empty()).collect())
        .unwrap_or_default();
    let text = std::fs::read_to_string(path)?;
    let check = milo_obs::validate_trace(&text, &required_spans)
        .map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: ok ({} events: {} spans, {} instants, {} counter samples; {} required prefix(es) present)",
        check.events, check.spans, check.instants, check.counters, required_spans.len()
    );
    Ok(())
}

fn cmd_soak(args: &Args) -> Result<(), CliError> {
    let env_u64 = |name: &str| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
    };
    let seed = args
        .get_u64("seed")
        .or_else(|| env_u64("MILO_SOAK_SEED"))
        .unwrap_or(milo_faults::fault_seed());
    let mut cfg = if args.flag("full") {
        milo_faults::SoakConfig::full(seed)
    } else {
        // --quick is the default profile; the flag is accepted for
        // explicitness in scripts.
        milo_faults::SoakConfig::quick(seed)
    };
    if let Some(n) = args.get_u64("requests") {
        cfg.requests = n as usize;
    }
    if let Some(ms) = args.get_u64("deadline-ms").or_else(|| env_u64("MILO_DEADLINE_MS")) {
        cfg.deadline = std::time::Duration::from_millis(ms);
    }
    println!(
        "soak: seed {}, {} requests, {} workers, queue {}, deadline {:?}",
        cfg.seed, cfg.requests, cfg.workers, cfg.queue_capacity, cfg.deadline
    );
    let report = milo_faults::run_soak(&cfg).map_err(|e| -> CliError { e.into() })?;
    println!("{}", report.to_json());
    println!(
        "soak ok: {} ok / {} admitted ({} rejected, {} shed, {} deadline-exceeded, {} retries), \
         breaker cycle {}→{}→{}, {:.1} req/s",
        report.ok,
        report.admitted,
        report.rejected,
        report.shed,
        report.deadline_exceeded,
        report.retries,
        report.breaker_trips,
        report.breaker_half_open,
        report.breaker_recovered,
        report.throughput_rps,
    );
    if let Some(path) = args.get("json") {
        std::fs::write(path, report.to_json())?;
        println!("wrote soak report -> {path}");
    }
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), CliError> {
    let compressed_path = required(args, "compressed")?;
    let compressed = load_compressed_model(Path::new(compressed_path))?;
    println!(
        "{} layers, {:.2} MB total ({:.2} MB weights + {:.2} MB compensators)",
        compressed.layers.len(),
        compressed.memory_bytes() as f64 / 1e6,
        compressed.weight_bytes() as f64 / 1e6,
        compressed.compensator_bytes() as f64 / 1e6,
    );
    let mut t = Table::new(["layer", "shape", "rank", "bytes", "iters"]);
    let show = compressed.layers.len().min(12);
    for rec in &compressed.layers[..show] {
        t.push_row([
            rec.name.clone(),
            format!("{}x{}", rec.meta.rows, rec.meta.cols),
            rec.rank.to_string(),
            rec.layer.memory_bytes().to_string(),
            rec.layer.iterations().to_string(),
        ]);
    }
    println!("{}", t.render());
    if compressed.layers.len() > show {
        println!("... and {} more layers", compressed.layers.len() - show);
    }
    Ok(())
}
