//! `milo-cli` — the command-line workflow of the reproduction, mirroring
//! the paper artifact's scripts (Appendix F):
//!
//! ```bash
//! # Synthesize a reference model (stands in for downloading a checkpoint).
//! milo-cli synth --model mixtral --scale 0.5 --out ref.moem
//!
//! # Quantize it (the artifact's MiLo_quant_main.py with --dense_rank /
//! # --sparse_rank):
//! milo-cli quantize --model ref.moem --method milo --dense-rank 16 --sparse-rank 2 \
//!     --out compressed.milo
//!
//! # Evaluate perplexity + proxy tasks, optionally writing eval_result.json:
//! milo-cli eval --model ref.moem --compressed compressed.milo --json eval_result.json
//!
//! # Inspect a compressed model:
//! milo-cli info --compressed compressed.milo
//!
//! # Verify artifact integrity (checksums, per-layer status):
//! milo-cli check --artifact compressed.milo [--strict]
//! ```

use milo_bench::methods::{run_gptq_full, run_milo, run_rtn};
use milo_bench::Args;
use milo_core::serialize::{load_compressed_model, save_compressed_model};
use milo_core::{MiloOptions, RankPolicy, SparseAllocation};
use milo_eval::report::Json;
use milo_eval::{generate_corpus, EvalConfig, EvalContext, Table};
use milo_moe::serialize::{load_model, save_model};
use milo_moe::{apply_compressed, profile_expert_frequency, MoeConfig, MoeModel};
use milo_quant::QuantConfig;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: milo-cli <command> [flags]\n\
         commands:\n  \
         synth     --model mixtral|deepseek [--scale f] [--layers n] [--seed n] --out FILE\n  \
         quantize  --model FILE --method milo|hqq|rtn|gptq [--dense-rank n] [--sparse-rank n]\n            \
                   [--sparse-policy uniform|kurtosis|frequency] [--iters n] --out FILE\n  \
         eval      --model FILE --compressed FILE [--json FILE]\n  \
         info      --compressed FILE\n  \
         check     --artifact FILE [--strict]   (verify MILO/MOEM checksums; \
--strict also rejects\n            \
                   unchecksummed legacy artifacts and trailing data)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let command = argv.remove(0);
    let args = Args::from_iter(argv);
    let result = match command.as_str() {
        "synth" => cmd_synth(&args),
        "quantize" => cmd_quantize(&args),
        "eval" => cmd_eval(&args),
        "info" => cmd_info(&args),
        "check" => cmd_check(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliError = Box<dyn std::error::Error + Send + Sync>;

fn required<'a>(args: &'a Args, name: &str) -> Result<&'a str, CliError> {
    args.get(name).ok_or_else(|| format!("missing required flag --{name}").into())
}

fn cmd_synth(args: &Args) -> Result<(), CliError> {
    let kind = required(args, "model")?;
    let scale = args.get_f32("scale").unwrap_or(1.0);
    let seed = args.get_u64("seed").unwrap_or(2025);
    let out = required(args, "out")?;
    let mut cfg = match kind {
        "mixtral" => MoeConfig::mixtral_like(),
        "deepseek" => MoeConfig::deepseek_like(),
        other => return Err(format!("unknown model kind {other}").into()),
    }
    .scaled(scale);
    if let Some(layers) = args.get_u64("layers") {
        cfg.n_layers = layers as usize;
    }
    let model = MoeModel::synthesize(&cfg, seed);
    save_model(Path::new(out), &model)?;
    println!(
        "synthesized {} ({} quantizable params, {:.2} MB FP16) -> {out}",
        cfg.name,
        cfg.quantizable_params(),
        cfg.fp16_bytes() as f64 / 1e6
    );
    Ok(())
}

fn cmd_quantize(args: &Args) -> Result<(), CliError> {
    let model_path = required(args, "model")?;
    let method = required(args, "method")?;
    let out = required(args, "out")?;
    let reference = load_model(Path::new(model_path))?;
    let seed = args.get_u64("seed").unwrap_or(2025);
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);

    let outcome = match method {
        "rtn" => run_rtn(&reference, &QuantConfig::int3_asym())?,
        "gptq" => {
            let calib = generate_corpus(&reference, 40, 48, seed ^ 0xca11b)?;
            run_gptq_full(&reference, &QuantConfig::int3_asym(), &calib, seed)?
        }
        "hqq" | "milo" => {
            let policy = if method == "hqq" {
                RankPolicy::uniform(0)
            } else {
                let dense = args.get_u64("dense-rank").unwrap_or(16) as usize;
                let sparse = args.get_u64("sparse-rank").unwrap_or(2) as usize;
                let sparse_alloc = match args.get("sparse-policy").unwrap_or("kurtosis") {
                    "uniform" => SparseAllocation::Uniform(sparse),
                    "kurtosis" => SparseAllocation::Kurtosis { avg_rank: sparse },
                    "frequency" => SparseAllocation::Frequency { avg_rank: sparse },
                    other => return Err(format!("unknown sparse policy {other}").into()),
                };
                RankPolicy::composite(dense, sparse_alloc)
            };
            let corpus = generate_corpus(&reference, 10, 32, seed ^ 0xf3e9)?;
            let profile = profile_expert_frequency(&reference, &corpus)?;
            let iters = args.get_u64("iters").unwrap_or(20) as usize;
            let opts = MiloOptions { max_iters: iters, ..MiloOptions::default() };
            run_milo(&reference, Some(&profile), &policy, &opts, threads)?
        }
        other => return Err(format!("unknown method {other}").into()),
    };
    save_compressed_model(Path::new(out), &outcome.compressed)?;
    println!(
        "{method}: {:.2} MB compressed ({:.1}% of FP16), quantization took {:.1}s -> {out}",
        outcome.memory_bytes as f64 / 1e6,
        100.0 * outcome.memory_bytes as f64 / reference.config.fp16_bytes() as f64,
        outcome.seconds
    );
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), CliError> {
    let model_path = required(args, "model")?;
    let compressed_path = required(args, "compressed")?;
    let reference = load_model(Path::new(model_path))?;
    let compressed = load_compressed_model(Path::new(compressed_path))?;
    let candidate = apply_compressed(&reference, &compressed)?;

    let cfg = EvalConfig {
        n_seqs: args.get_u64("seqs").unwrap_or(16) as usize,
        seq_len: args.get_u64("seq-len").unwrap_or(24) as usize,
        corpus_seed: args.get_u64("seed").unwrap_or(2024),
        task_prompts: args.get_u64("prompts").unwrap_or(32) as usize,
    };
    eprintln!("preparing evaluation context...");
    let ctx = EvalContext::prepare(&reference, &cfg)?;
    let result = ctx.evaluate("compressed", &candidate, compressed.memory_bytes(), 0.0)?;

    let mut t = Table::new(["metric", "value"]);
    t.push_row(["memory (MB)".to_string(), format!("{:.2}", result.memory_bytes as f64 / 1e6)]);
    t.push_row(["perplexity".to_string(), format!("{:.4}", result.ppl)]);
    for (task, score) in &result.task_scores {
        t.push_row([format!("{task} (%)"), format!("{score:.2}")]);
    }
    t.push_row(["zero-shot avg (%)".to_string(), format!("{:.2}", result.zero_shot_avg())]);
    println!("{}", t.render());

    if let Some(json_path) = args.get("json") {
        let json = Json::Obj(vec![
            ("memory_bytes".into(), Json::Num(result.memory_bytes as f64)),
            ("perplexity".into(), Json::Num(result.ppl as f64)),
            (
                "tasks".into(),
                Json::Obj(
                    result
                        .task_scores
                        .iter()
                        .map(|(n, s)| (n.clone(), Json::Num(*s as f64)))
                        .collect(),
                ),
            ),
            ("zero_shot_avg".into(), Json::Num(result.zero_shot_avg() as f64)),
        ]);
        std::fs::write(json_path, json.render())?;
        println!("wrote {json_path}");
    }
    Ok(())
}

/// Verifies an artifact's section checksums without materializing the
/// model, printing per-section integrity and failing (nonzero exit) if
/// any section is damaged. Handles both artifact formats, sniffed from
/// the magic tag: `MILO` (compressed models) and `MOEM` (reference
/// models). With `--strict`, unchecksummed legacy (v1) artifacts and
/// trailing bytes after the final section are also failures.
fn cmd_check(args: &Args) -> Result<(), CliError> {
    let path = required(args, "artifact")?;
    let strict = args.flag("strict");
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);

    use std::io::Read;
    let mut magic = [0u8; 4];
    file.read_exact(&mut magic)?;
    let stream = std::io::Cursor::new(magic).chain(file);
    let (format, report) = match &magic {
        b"MILO" => {
            ("MILO", milo_core::serialize::verify_compressed_stream(&mut { stream })?)
        }
        b"MOEM" => ("MOEM", milo_moe::serialize::verify_model_stream(&mut { stream })?),
        other => {
            return Err(format!(
                "unrecognized artifact magic {:?} (expected MILO or MOEM)",
                String::from_utf8_lossy(other)
            )
            .into())
        }
    };

    println!(
        "{path}: {format} v{} ({})",
        report.version,
        if report.checksummed { "checksummed" } else { "legacy, no checksums" }
    );
    if report.checksummed {
        let mut t = Table::new(["section", "bytes", "status"]);
        for s in &report.sections {
            t.push_row([
                s.name.clone(),
                s.bytes.to_string(),
                match &s.fault {
                    None => "ok".to_string(),
                    Some(f) => format!("CORRUPT: {f}"),
                },
            ]);
        }
        println!("{}", t.render());
        if report.trailing_data {
            println!("warning: trailing data after the final section");
        }
    }

    let n_corrupt = report.n_corrupt();
    if n_corrupt > 0 {
        return Err(format!("{n_corrupt} corrupt section(s) detected").into());
    }
    if strict && !report.checksummed {
        return Err("legacy artifact has no checksums (rejected by --strict)".into());
    }
    if strict && report.trailing_data {
        return Err("trailing data after the final section (rejected by --strict)".into());
    }
    println!(
        "integrity ok: {} section(s) verified",
        if report.checksummed { report.sections.len() } else { 0 }
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), CliError> {
    let compressed_path = required(args, "compressed")?;
    let compressed = load_compressed_model(Path::new(compressed_path))?;
    println!(
        "{} layers, {:.2} MB total ({:.2} MB weights + {:.2} MB compensators)",
        compressed.layers.len(),
        compressed.memory_bytes() as f64 / 1e6,
        compressed.weight_bytes() as f64 / 1e6,
        compressed.compensator_bytes() as f64 / 1e6,
    );
    let mut t = Table::new(["layer", "shape", "rank", "bytes", "iters"]);
    let show = compressed.layers.len().min(12);
    for rec in &compressed.layers[..show] {
        t.push_row([
            rec.name.clone(),
            format!("{}x{}", rec.meta.rows, rec.meta.cols),
            rec.rank.to_string(),
            rec.layer.memory_bytes().to_string(),
            rec.layer.iterations().to_string(),
        ]);
    }
    println!("{}", t.render());
    if compressed.layers.len() > show {
        println!("... and {} more layers", compressed.layers.len() - show);
    }
    Ok(())
}
