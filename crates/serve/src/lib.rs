//! Request-lifecycle serving layer over the resilient forward paths.
//!
//! The fault-tolerant core (`milo_moe::forward_resilient` and its packed
//! analogue in `milo-engine`) answers *"what happens when an expert
//! fails mid-forward?"*. This crate answers the next question a serving
//! system must: *"what happens when requests arrive faster than they can
//! be answered, take longer than their caller will wait, or fail in ways
//! a retry would fix?"* It wraps a [`ForwardModel`] in a full request
//! lifecycle:
//!
//! * **Bounded admission** — a bounded MPMC [`queue::Bounded`] rejects
//!   work with a typed [`ServeError::Overloaded`] when full; queue depth
//!   can never grow without bound.
//! * **Deadlines** — a per-request budget becomes a
//!   [`milo_moe::CancelToken`] carried through the forward path and
//!   checked at every layer boundary; an expired request unwinds with a
//!   typed [`ServeError::DeadlineExceeded`] naming the [`Stage`] it
//!   reached.
//! * **Retries** — retryable failures (strict-mode expert faults) are
//!   retried under [`retry::RetryPolicy`]: exponential backoff with
//!   seeded jitter from `milo_tensor::prng`, so every schedule is a pure
//!   function of the server seed and request id.
//! * **Circuit breakers** — the shared
//!   [`HealthTracker`](milo_moe::HealthTracker) runs the
//!   closed → open → half-open state machine (see `milo_moe::health`);
//!   the server ticks cooldowns once per served request so quarantined
//!   experts are re-probed and re-admitted deterministically.
//! * **Watchdog + load shedding** — a watchdog thread cancels in-flight
//!   requests past their deadline and, when workers are stalled, sheds
//!   queued load deterministically under a selectable [`ShedPolicy`].
//!
//! Fault-free serving is *bit-identical* to calling the model's
//! `forward_resilient` directly: admission, deadlines, and breakers only
//! ever reject, cancel, or re-run a request — they never perturb the
//! arithmetic of a successful forward pass.

#![warn(missing_docs)]

pub mod queue;
pub mod request;
pub mod retry;
pub mod server;

pub use queue::Bounded;
pub use request::{Request, Response, Ticket};
pub use retry::RetryPolicy;
pub use server::{ForwardError, ForwardModel, Server, ServerConfig, ServerStats};

/// Where in its lifecycle a request was when its deadline expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Still waiting in the admission queue; no work was started.
    Queued,
    /// Executing the forward pass; the cancellation was observed at this
    /// layer boundary (`n_layers` = the pre-head check after the last
    /// layer).
    Layer(usize),
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Queued => write!(f, "queued"),
            Stage::Layer(l) => write!(f, "layer {l}"),
        }
    }
}

/// How the watchdog picks victims when shedding queued load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Shed the request that has waited longest (head-of-line drop):
    /// the oldest request is the most likely to miss its deadline
    /// anyway.
    #[default]
    OldestFirst,
    /// Shed the lowest-priority request, breaking ties oldest-first.
    LowestPriority,
}

impl std::fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedPolicy::OldestFirst => write!(f, "oldest-first"),
            ShedPolicy::LowestPriority => write!(f, "lowest-priority"),
        }
    }
}

/// Typed request-lifecycle errors. Every admitted request terminates
/// with either a [`Response`] or exactly one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue was full; the request was never enqueued.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The queue's fixed capacity.
        capacity: usize,
    },
    /// The request carried a zero-length (or already-expired) deadline;
    /// rejected at admission before any work was queued.
    InvalidDeadline,
    /// The deadline expired; `stage` names how far the request got.
    DeadlineExceeded {
        /// Lifecycle stage at expiry.
        stage: Stage,
    },
    /// Every retry attempt failed with a retryable error; `last` is the
    /// final failure.
    RetriesExhausted {
        /// Number of forward attempts made.
        attempts: u32,
        /// Reason of the last failure.
        last: String,
    },
    /// The watchdog shed this request from the queue to relieve
    /// overload.
    Shed {
        /// The policy that selected it.
        policy: ShedPolicy,
    },
    /// An expert failed and the failure is not retryable under the
    /// request's fault mode / retry budget.
    Expert {
        /// Transformer layer index.
        layer: usize,
        /// Expert index within the layer.
        expert: usize,
        /// Failure cause.
        reason: String,
    },
    /// A non-retryable engine error (invalid token, shape mismatch…).
    Engine(String),
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// A worker panicked outside the isolated expert dispatch; the
    /// panic was contained and converted to this error.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "queue overloaded ({depth}/{capacity})")
            }
            ServeError::InvalidDeadline => write!(f, "zero-length or already-expired deadline"),
            ServeError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded while {stage}")
            }
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            ServeError::Shed { policy } => write!(f, "shed by watchdog ({policy})"),
            ServeError::Expert { layer, expert, reason } => {
                write!(f, "expert {expert} of layer {layer} failed: {reason}")
            }
            ServeError::Engine(msg) => write!(f, "engine error: {msg}"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Internal(msg) => write!(f, "internal worker failure: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Convenient result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;
