//! A bounded MPMC queue with closable semantics and targeted removal.
//!
//! Built on `Mutex<VecDeque>` + `Condvar` — the same zero-dependency
//! primitives as `milo_tensor::pool` — rather than a lock-free ring:
//! the queue sits in front of forward passes that cost milliseconds, so
//! lock contention is noise, while the mutex gives us the two operations
//! a serving queue actually needs and a ring buffer makes hard:
//! *rejection with an observed depth* and *removal of an arbitrary
//! victim* for load shedding.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
///
/// * [`try_push`](Bounded::try_push) never blocks: a full queue is an
///   admission-control signal, not a place to wait.
/// * [`pop`](Bounded::pop) blocks until an item arrives or the queue is
///   closed *and* drained.
/// * [`remove_worst`](Bounded::remove_worst) removes the element that
///   maximizes a caller-supplied score — the shedding primitive.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    cond: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity queue would reject
    /// every request, which is a configuration error, not a policy.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Bounded {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; exact under the caller's own
    /// serialization).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue without blocking. On success returns the
    /// depth *after* the push.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Bounded::close); both return the item.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.cond.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available (FIFO) or the queue is closed
    /// and empty (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.cond.wait(inner).unwrap();
        }
    }

    /// Removes and returns the queued element with the highest `score`
    /// (ties broken towards the front of the queue), or `None` if
    /// empty. This is the load-shedding primitive: the policy supplies
    /// the score, the queue supplies atomicity.
    pub fn remove_worst(&self, score: impl Fn(&T) -> u64) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        let idx = inner
            .items
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| score(a).cmp(&score(b)).then(ib.cmp(ia)))
            .map(|(i, _)| i)?;
        inner.items.remove(idx)
    }

    /// Closes the queue: future pushes fail, and [`pop`](Bounded::pop)
    /// returns `None` once drained. Wakes every blocked consumer.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cond.notify_all();
    }

    /// Drains every queued item immediately (used on shutdown to fail
    /// pending requests with a typed error).
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap();
        inner.items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_with_item_back() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn remove_worst_takes_max_score_front_biased() {
        let q = Bounded::new(8);
        for v in [5u64, 9, 9, 1] {
            q.try_push(v).unwrap();
        }
        // Both 9s tie; the earlier-queued one is removed.
        assert_eq!(q.remove_worst(|&v| v), Some(9));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn mpmc_all_items_delivered_exactly_once() {
        let q = Arc::new(Bounded::<u32>::new(1024));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        q.try_push(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }
}
