//! Exponential backoff with seeded jitter.
//!
//! Jitter protects a real fleet from retry synchronization; *seeded*
//! jitter keeps the test suite deterministic. Every delay is a pure
//! function of `(policy, attempt, rng state)`, and the server derives
//! each request's RNG from `server seed ⊕ request id`, so a soak run's
//! entire retry schedule replays from one seed.

use std::time::Duration;

use milo_tensor::prng::Rng;
use milo_tensor::rng::StdRng;

/// Retry budget and backoff shape for retryable failures.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum forward attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Ceiling on any single backoff delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The jittered delay before retry number `retry` (0-based: the
    /// delay between attempt 1 and attempt 2 is `backoff(0, …)`).
    ///
    /// Full-jitter-style: `min(cap, base · 2^retry) · U[0.5, 1.0)`, so
    /// delays grow exponentially but two requests retrying the same
    /// fault never synchronize.
    pub fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let exp = self.base.saturating_mul(1u32 << retry.min(16));
        let ceiling = exp.min(self.cap);
        let jitter = 0.5 + 0.5 * rng.gen::<f64>();
        Duration::from_secs_f64(ceiling.as_secs_f64() * jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::prng::SeedableRng;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(4),
            cap: Duration::from_millis(20),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let d0 = p.backoff(0, &mut rng);
        let d5 = p.backoff(5, &mut rng);
        // Jitter keeps each delay in [0.5, 1.0)× the un-jittered value.
        assert!(d0 >= Duration::from_millis(2) && d0 < Duration::from_millis(4));
        assert!(d5 >= Duration::from_millis(10) && d5 < Duration::from_millis(20));
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let da: Vec<_> = (0..5).map(|r| p.backoff(r, &mut a)).collect();
        let db: Vec<_> = (0..5).map(|r| p.backoff(r, &mut b)).collect();
        assert_eq!(da, db);
        let mut c = StdRng::seed_from_u64(43);
        let dc: Vec<_> = (0..5).map(|r| p.backoff(r, &mut c)).collect();
        assert_ne!(da, dc, "different seeds should jitter differently");
    }

    #[test]
    fn huge_retry_index_does_not_overflow() {
        let p = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(7);
        let d = p.backoff(u32::MAX, &mut rng);
        assert!(d <= p.cap);
    }
}
