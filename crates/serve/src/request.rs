//! Request, response, and the in-flight state shared between submitter,
//! worker, and watchdog.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use milo_moe::{CancelToken, FaultMode};
use milo_tensor::Matrix;

use crate::Result;

/// A unit of work submitted to the server.
#[derive(Debug, Clone)]
pub struct Request {
    /// Token ids to run through the model.
    pub tokens: Vec<u32>,
    /// Scheduling priority (higher = more important; only consulted by
    /// [`ShedPolicy::LowestPriority`](crate::ShedPolicy::LowestPriority)).
    pub priority: u8,
    /// Per-request deadline budget; `None` falls back to the server's
    /// default (which may itself be `None` = no deadline).
    pub deadline: Option<Duration>,
    /// Per-request fault mode; `None` falls back to the server default.
    pub mode: Option<FaultMode>,
}

impl Request {
    /// A default-priority request with no per-request overrides.
    pub fn new(tokens: Vec<u32>) -> Self {
        Request { tokens, priority: 0, deadline: None, mode: None }
    }

    /// Sets the deadline budget.
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Sets the scheduling priority.
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the fault mode for this request only.
    #[must_use]
    pub fn with_mode(mut self, mode: FaultMode) -> Self {
        self.mode = Some(mode);
        self
    }
}

/// A successful forward pass, as delivered to the submitter.
#[derive(Debug, Clone)]
pub struct Response {
    /// Server-assigned request id (admission order).
    pub id: u64,
    /// Final-position logits matrix from the forward pass.
    pub logits: Matrix,
    /// Number of forward attempts (1 = no retries).
    pub attempts: u32,
    /// Wall time from admission to completion.
    pub latency: Duration,
}

/// Lifecycle state of an in-flight request (see [`Inflight::state`]).
pub(crate) const STATE_QUEUED: u8 = 0;
pub(crate) const STATE_RUNNING: u8 = 1;
pub(crate) const STATE_DONE: u8 = 2;

/// Shared per-request state: the queue holds it, a worker executes it,
/// the watchdog inspects it, and the submitter waits on it.
pub(crate) struct Inflight {
    pub(crate) id: u64,
    pub(crate) tokens: Vec<u32>,
    pub(crate) priority: u8,
    pub(crate) mode: FaultMode,
    pub(crate) admitted: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) cancel: CancelToken,
    /// `STATE_QUEUED` → `STATE_RUNNING` → `STATE_DONE`; the watchdog may
    /// jump `QUEUED` → `DONE` when it sheds or expires a queued request.
    pub(crate) state: AtomicU8,
    slot: Mutex<Option<Result<Response>>>,
    cond: Condvar,
}

impl Inflight {
    pub(crate) fn new(
        id: u64,
        tokens: Vec<u32>,
        priority: u8,
        mode: FaultMode,
        deadline: Option<Instant>,
    ) -> Self {
        let cancel = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        Inflight {
            id,
            tokens,
            priority,
            mode,
            admitted: Instant::now(),
            deadline,
            cancel,
            state: AtomicU8::new(STATE_QUEUED),
            slot: Mutex::new(None),
            cond: Condvar::new(),
        }
    }

    /// Atomically claims the request for execution. Returns `false` if
    /// the watchdog already resolved it (shed / expired while queued).
    pub(crate) fn claim(&self) -> bool {
        self.state
            .compare_exchange(STATE_QUEUED, STATE_RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Atomically resolves a *queued* request (watchdog path). Returns
    /// `false` if a worker claimed it first.
    pub(crate) fn resolve_queued(&self, result: Result<Response>) -> bool {
        if self
            .state
            .compare_exchange(STATE_QUEUED, STATE_DONE, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        self.fill(result);
        true
    }

    /// Resolves a claimed request (worker path).
    pub(crate) fn resolve(&self, result: Result<Response>) {
        self.state.store(STATE_DONE, Ordering::Release);
        self.fill(result);
    }

    fn fill(&self, result: Result<Response>) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.cond.notify_all();
    }

    pub(crate) fn is_done(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_DONE
    }

    pub(crate) fn is_running(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_RUNNING
    }

    pub(crate) fn past_deadline(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    fn wait(&self) -> Result<Response> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cond.wait(slot).unwrap();
        }
    }

    fn try_wait(&self, timeout: Duration) -> Option<Result<Response>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return Some(result);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) = self.cond.wait_timeout(slot, deadline - now).unwrap();
            slot = guard;
        }
    }
}

/// Handle returned by [`Server::submit`](crate::Server::submit); waits
/// for the request's terminal outcome.
pub struct Ticket {
    pub(crate) inner: Arc<Inflight>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("id", &self.inner.id).finish()
    }
}

impl Ticket {
    /// The server-assigned request id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Blocks until the request terminates.
    ///
    /// # Errors
    ///
    /// The request's typed terminal error — see
    /// [`ServeError`](crate::ServeError).
    pub fn wait(self) -> Result<Response> {
        self.inner.wait()
    }

    /// Waits up to `timeout`; `None` means the request is still in
    /// flight (the ticket is consumed either way, mirroring `wait`).
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<Response>> {
        self.inner.try_wait(timeout)
    }
}
