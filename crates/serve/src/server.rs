//! The server: admission, worker pool, retry loop, watchdog.
//!
//! Lifecycle of one request:
//!
//! ```text
//! submit ──admission──▶ queue ──claim──▶ forward (retry loop) ──▶ Response
//!    │                    │                   │
//!    │ Overloaded /       │ watchdog:         │ DeadlineExceeded{Layer} /
//!    │ InvalidDeadline    │ DeadlineExceeded  │ RetriesExhausted /
//!    ▼                    ▼ {Queued} / Shed   ▼ Expert / Engine / Internal
//! ```
//!
//! Invariants the chaos soak asserts (see `milo-faults`):
//!
//! * no panic escapes a worker — expert panics are isolated by
//!   `pool::try_par_map`, anything else by the worker's `catch_unwind`;
//! * every admitted request terminates with a [`Response`] or exactly
//!   one typed [`ServeError`];
//! * queue depth never exceeds the configured capacity;
//! * the fault-free path is bit-identical to calling the model's
//!   `forward_resilient` directly.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use milo_moe::{FaultMode, HealthTracker, InjectedFault, ResilienceContext};
use milo_tensor::prng::SeedableRng;
use milo_tensor::rng::StdRng;
use milo_tensor::Matrix;

use crate::queue::{Bounded, PushError};
use crate::request::{Inflight, Request, Response, Ticket};
use crate::retry::RetryPolicy;
use crate::{Result, ServeError, ShedPolicy, Stage};

/// How a single forward attempt failed, as reported by a
/// [`ForwardModel`]. The server classifies these: `Expert` failures are
/// transient (retryable), `Cancelled` maps to a deadline error, `Other`
/// is a permanent request defect.
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardError {
    /// An expert failed under strict fault handling.
    Expert {
        /// Transformer layer index.
        layer: usize,
        /// Expert index within the layer.
        expert: usize,
        /// Failure cause.
        reason: String,
    },
    /// The request's cancel token fired at a layer boundary.
    Cancelled {
        /// The boundary at which cancellation was observed.
        layer: usize,
    },
    /// Any other failure (invalid token, shape mismatch…); never
    /// retried.
    Other(String),
}

/// A model the server can drive: one resilient forward pass per call.
///
/// Implemented for [`milo_engine::PackedMoeModel`] (the deployment
/// backend) and [`milo_moe::MoeModel`] (the dense reference), so tests
/// can serve either.
pub trait ForwardModel: Send + Sync {
    /// Runs `tokens` through the model under `ctx`.
    ///
    /// # Errors
    ///
    /// See [`ForwardError`].
    fn forward(
        &self,
        tokens: &[u32],
        ctx: &ResilienceContext,
    ) -> std::result::Result<Matrix, ForwardError>;
}

impl ForwardModel for milo_engine::PackedMoeModel {
    fn forward(
        &self,
        tokens: &[u32],
        ctx: &ResilienceContext,
    ) -> std::result::Result<Matrix, ForwardError> {
        self.forward_resilient(tokens, ctx).map_err(|e| match e {
            milo_engine::EngineError::ExpertFailed { layer, expert, reason } => {
                ForwardError::Expert { layer, expert, reason }
            }
            milo_engine::EngineError::Cancelled { layer } => ForwardError::Cancelled { layer },
            other => ForwardError::Other(other.to_string()),
        })
    }
}

/// Closures serve as models too — the soak driver and the test suite
/// use this to script failure sequences without building a real model.
impl<F> ForwardModel for F
where
    F: Fn(&[u32], &ResilienceContext) -> std::result::Result<Matrix, ForwardError>
        + Send
        + Sync,
{
    fn forward(
        &self,
        tokens: &[u32],
        ctx: &ResilienceContext,
    ) -> std::result::Result<Matrix, ForwardError> {
        self(tokens, ctx)
    }
}

impl ForwardModel for milo_moe::MoeModel {
    fn forward(
        &self,
        tokens: &[u32],
        ctx: &ResilienceContext,
    ) -> std::result::Result<Matrix, ForwardError> {
        self.forward_resilient(tokens, ctx).map_err(|e| match e {
            milo_moe::MoeError::ExpertFailed { layer, expert, reason } => {
                ForwardError::Expert { layer, expert, reason }
            }
            milo_moe::MoeError::Cancelled { layer } => ForwardError::Cancelled { layer },
            other => ForwardError::Other(other.to_string()),
        })
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing forward passes.
    pub workers: usize,
    /// Admission queue capacity; pushes beyond it are
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline budget applied to requests that do not carry their own
    /// (`None` = no deadline).
    pub default_deadline: Option<Duration>,
    /// Retry budget and backoff shape for retryable failures.
    pub retry: RetryPolicy,
    /// Victim selection when the watchdog sheds queued load.
    pub shed_policy: ShedPolicy,
    /// Fault mode for requests that do not carry their own.
    pub mode: FaultMode,
    /// Seed for retry jitter; each request derives its own RNG from
    /// `seed ⊕ id`, so schedules are reproducible.
    pub seed: u64,
    /// Circuit-breaker cooldown in ticks (one tick per served request);
    /// 0 keeps quarantine sticky, matching `HealthTracker::new`.
    pub breaker_cooldown: u64,
    /// Watchdog scan interval.
    pub watchdog_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            retry: RetryPolicy::default(),
            shed_policy: ShedPolicy::OldestFirst,
            mode: FaultMode::Degrade,
            seed: 0x4D69_4C6F, // "MiLo"
            breaker_cooldown: 8,
            watchdog_interval: Duration::from_millis(5),
        }
    }
}

#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    retries: AtomicU64,
    panics: AtomicU64,
    watchdog_cancels: AtomicU64,
    max_depth: AtomicU64,
}

/// A point-in-time snapshot of server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests refused with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Requests that produced a [`Response`].
    pub completed: u64,
    /// Requests that terminated with a typed error after admission.
    pub failed: u64,
    /// Requests dropped by the watchdog's load shedding.
    pub shed: u64,
    /// Total retry attempts across all requests.
    pub retries: u64,
    /// Worker panics contained by `catch_unwind`.
    pub panics: u64,
    /// In-flight requests cancelled by the watchdog.
    pub watchdog_cancels: u64,
    /// Highest queue depth observed at admission.
    pub max_depth: u64,
}

struct Shared {
    model: Arc<dyn ForwardModel>,
    cfg: ServerConfig,
    queue: Bounded<Arc<Inflight>>,
    registry: Mutex<Vec<Weak<Inflight>>>,
    health: Arc<HealthTracker>,
    faults: Mutex<Vec<InjectedFault>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    stats: Counters,
}

/// The serving core: a worker pool behind a bounded queue, watched by a
/// deadline/shedding watchdog. See the module docs for the lifecycle.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool and watchdog.
    pub fn start(model: Arc<dyn ForwardModel>, cfg: ServerConfig) -> Self {
        let health = Arc::new(if cfg.breaker_cooldown > 0 {
            HealthTracker::with_cooldown(cfg.breaker_cooldown)
        } else {
            HealthTracker::new()
        });
        let shared = Arc::new(Shared {
            model,
            queue: Bounded::new(cfg.queue_capacity),
            registry: Mutex::new(Vec::new()),
            health,
            faults: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            stats: Counters::default(),
            cfg,
        });
        milo_obs::gauge_set("serve.queue.depth", 0.0);
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&s))
            })
            .collect();
        let watchdog = {
            let s = Arc::clone(&shared);
            Some(std::thread::spawn(move || watchdog_loop(&s)))
        };
        Server { shared, workers, watchdog }
    }

    /// Submits a request; returns a [`Ticket`] to wait on.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is full,
    /// [`ServeError::InvalidDeadline`] for a zero-length budget, and
    /// [`ServeError::ShuttingDown`] after shutdown began. All three
    /// reject *before* enqueueing — a rejected request consumes no
    /// queue slot.
    pub fn submit(&self, req: Request) -> Result<Ticket> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let budget = req.deadline.or(self.shared.cfg.default_deadline);
        if budget.is_some_and(|b| b.is_zero()) {
            return Err(ServeError::InvalidDeadline);
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let deadline = budget.map(|b| Instant::now() + b);
        let mode = req.mode.unwrap_or(self.shared.cfg.mode);
        let inflight = Arc::new(Inflight::new(id, req.tokens, req.priority, mode, deadline));
        self.shared
            .registry
            .lock()
            .unwrap()
            .push(Arc::downgrade(&inflight));
        match self.shared.queue.try_push(Arc::clone(&inflight)) {
            Ok(depth) => {
                self.shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .stats
                    .max_depth
                    .fetch_max(depth as u64, Ordering::Relaxed);
                milo_obs::gauge_set("serve.queue.depth", depth as f64);
                milo_obs::counter_inc("serve.admitted.total");
                Ok(Ticket { inner: inflight })
            }
            Err(PushError::Full(_)) => {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                milo_obs::counter_inc("serve.rejected.total");
                Err(ServeError::Overloaded {
                    depth: self.shared.queue.len(),
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Replaces the injected fault set consulted by subsequent
    /// requests (soak drivers flip faults on and off mid-run).
    pub fn set_faults(&self, faults: Vec<InjectedFault>) {
        *self.shared.faults.lock().unwrap() = faults;
    }

    /// Clears all injected faults.
    pub fn clear_faults(&self) {
        self.shared.faults.lock().unwrap().clear();
    }

    /// The shared circuit-breaker ledger.
    pub fn health(&self) -> &Arc<HealthTracker> {
        &self.shared.health
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.stats;
        ServerStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            watchdog_cancels: c.watchdog_cancels.load(Ordering::Relaxed),
            max_depth: c.max_depth.load(Ordering::Relaxed),
        }
    }

    /// Stops admission, fails queued requests with
    /// [`ServeError::ShuttingDown`], joins workers and watchdog, and
    /// returns the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.queue.close();
        for pending in self.shared.queue.drain() {
            pending.resolve_queued(Err(ServeError::ShuttingDown));
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(wd) = self.watchdog.take() {
            let _ = wd.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(inflight) = shared.queue.pop() {
        milo_obs::gauge_set("serve.queue.depth", shared.queue.len() as f64);
        if !inflight.claim() {
            // Watchdog already resolved it (shed or expired while queued).
            continue;
        }
        let outcome =
            std::panic::catch_unwind(AssertUnwindSafe(|| handle(shared, &inflight)));
        let result = match outcome {
            Ok(result) => result,
            Err(payload) => {
                shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                milo_obs::counter_inc("serve.panic.total");
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(ServeError::Internal(msg))
            }
        };
        match &result {
            Ok(resp) => {
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                milo_obs::counter_inc("serve.completed.total");
                milo_obs::hist_record(
                    "serve.request.latency",
                    resp.latency.as_nanos() as u64,
                    milo_obs::Unit::Nanos,
                );
            }
            Err(_) => {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                milo_obs::counter_inc("serve.failed.total");
            }
        }
        inflight.resolve(result);
    }
}

/// Executes one claimed request: breaker tick, retry loop, typed
/// terminal outcome.
fn handle(shared: &Shared, inflight: &Inflight) -> Result<Response> {
    let _span = milo_obs::span(|| format!("serve.request{{id={}}}", inflight.id));
    if inflight.cancel.is_cancelled() {
        // Expired while queued; no work was started.
        return Err(ServeError::DeadlineExceeded { stage: Stage::Queued });
    }
    // One breaker tick per served request: cooldowns are measured in
    // requests, not wall time, so recovery is deterministic under load.
    shared.health.tick();

    let policy = &shared.cfg.retry;
    let mut rng =
        StdRng::seed_from_u64(shared.cfg.seed ^ inflight.id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let ctx = ResilienceContext::with_shared_health(
            inflight.mode,
            Arc::clone(&shared.health),
        )
        .with_cancel(inflight.cancel.clone());
        let ctx = ResilienceContext {
            injected: shared.faults.lock().unwrap().clone(),
            ..ctx
        };
        match shared.model.forward(&inflight.tokens, &ctx) {
            Ok(logits) => {
                return Ok(Response {
                    id: inflight.id,
                    logits,
                    attempts,
                    latency: inflight.admitted.elapsed(),
                });
            }
            Err(ForwardError::Cancelled { layer }) => {
                return Err(ServeError::DeadlineExceeded { stage: Stage::Layer(layer) });
            }
            Err(ForwardError::Other(msg)) => return Err(ServeError::Engine(msg)),
            Err(ForwardError::Expert { layer, expert, reason }) => {
                if policy.max_attempts <= 1 {
                    // No retry budget configured: surface the raw failure.
                    return Err(ServeError::Expert { layer, expert, reason });
                }
                if attempts >= policy.max_attempts {
                    return Err(ServeError::RetriesExhausted { attempts, last: reason });
                }
                let delay = policy.backoff(attempts - 1, &mut rng);
                if inflight
                    .cancel
                    .remaining()
                    .is_some_and(|left| left <= delay)
                {
                    // Backing off would blow the deadline; stop here with
                    // the retry budget unspent rather than guarantee a
                    // deadline miss.
                    return Err(ServeError::RetriesExhausted { attempts, last: reason });
                }
                shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                milo_obs::counter_inc("serve.retry.total");
                ctx.sleep_interruptible(delay);
            }
        }
    }
}

fn watchdog_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(shared.cfg.watchdog_interval);
        let now = Instant::now();
        let mut stalled = 0usize;
        {
            let mut registry = shared.registry.lock().unwrap();
            registry.retain(|weak| {
                let Some(entry) = weak.upgrade() else { return false };
                if entry.is_done() {
                    return false;
                }
                if !entry.past_deadline(now) {
                    return true;
                }
                if entry.is_running() {
                    // A worker is past budget on this request: cancel it
                    // (it unwinds at the next layer boundary) and count
                    // the stall so load is shed below.
                    if !entry.cancel.cancel_requested() {
                        entry.cancel.cancel();
                        shared
                            .stats
                            .watchdog_cancels
                            .fetch_add(1, Ordering::Relaxed);
                        milo_obs::counter_inc("serve.watchdog.cancel.total");
                    }
                    stalled += 1;
                    return true;
                }
                // Still queued and already expired: resolve it here so
                // the caller is unblocked without waiting for a worker.
                if entry.resolve_queued(Err(ServeError::DeadlineExceeded {
                    stage: Stage::Queued,
                })) {
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    milo_obs::counter_inc("serve.failed.total");
                    milo_obs::counter_inc("serve.deadline.queued.total");
                }
                false
            });
        }
        // Workers are stalled past deadline: relieve pressure by
        // shedding one queued victim per stalled worker, selected by
        // the configured policy.
        for _ in 0..stalled {
            let policy = shared.cfg.shed_policy;
            let Some(victim) = shared.queue.remove_worst(|e| shed_score(policy, e)) else {
                break;
            };
            if victim.resolve_queued(Err(ServeError::Shed { policy })) {
                shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                milo_obs::counter_inc("serve.shed.total");
                milo_obs::counter_inc("serve.failed.total");
                milo_obs::gauge_set("serve.queue.depth", shared.queue.len() as f64);
            }
        }
    }
}

/// Victim score for load shedding: the queue removes the max.
fn shed_score(policy: ShedPolicy, e: &Arc<Inflight>) -> u64 {
    match policy {
        // Oldest first: smaller id = admitted earlier = higher score.
        ShedPolicy::OldestFirst => u64::MAX - e.id,
        // Lowest priority first, oldest within a priority class (ids
        // stay well under 2^56, so the mask never loses ordering).
        ShedPolicy::LowestPriority => {
            (u64::from(u8::MAX - e.priority) << 56) | ((u64::MAX - e.id) & ((1 << 56) - 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn ok_model() -> Arc<dyn ForwardModel> {
        Arc::new(|tokens: &[u32], _ctx: &ResilienceContext| {
            Ok(Matrix::filled(tokens.len(), 4, tokens[0] as f32))
        })
    }

    fn quick_cfg() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            watchdog_interval: Duration::from_millis(2),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn fault_free_request_round_trips() {
        let server = Server::start(ok_model(), quick_cfg());
        let ticket = server.submit(Request::new(vec![3, 1, 4])).unwrap();
        let resp = ticket.wait().unwrap();
        assert_eq!(resp.attempts, 1);
        assert_eq!(resp.logits.rows(), 3);
        assert_eq!(resp.logits.row(0)[0], 3.0);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn full_queue_rejects_with_typed_overloaded() {
        // A model that blocks until cancelled keeps workers busy so the
        // queue genuinely fills.
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let model: Arc<dyn ForwardModel> =
            Arc::new(move |_tokens: &[u32], _ctx: &ResilienceContext| {
                while !g.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(Matrix::zeros(1, 1))
            });
        let server = Server::start(
            model,
            ServerConfig { workers: 1, queue_capacity: 2, ..quick_cfg() },
        );
        let mut tickets = Vec::new();
        // 1 running + 2 queued fill the server.
        let mut rejected = None;
        for _ in 0..8 {
            match server.submit(Request::new(vec![0])) {
                Ok(t) => tickets.push(t),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        match rejected.expect("queue should have filled") {
            ServeError::Overloaded { depth, capacity } => {
                assert_eq!(capacity, 2);
                assert!(depth <= capacity);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        gate.store(true, Ordering::Release);
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.rejected, 1);
        assert!(stats.max_depth <= 2);
    }

    #[test]
    fn zero_deadline_rejected_at_admission() {
        let server = Server::start(ok_model(), quick_cfg());
        let err = server
            .submit(Request::new(vec![1]).with_deadline(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, ServeError::InvalidDeadline);
        let stats = server.shutdown();
        assert_eq!(stats.admitted, 0);
    }

    #[test]
    fn transient_expert_failure_is_retried_to_success() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let model: Arc<dyn ForwardModel> =
            Arc::new(move |_tokens: &[u32], _ctx: &ResilienceContext| {
                if c.fetch_add(1, Ordering::SeqCst) == 0 {
                    Err(ForwardError::Expert {
                        layer: 0,
                        expert: 1,
                        reason: "flaky".into(),
                    })
                } else {
                    Ok(Matrix::zeros(1, 1))
                }
            });
        let server = Server::start(model, quick_cfg());
        let resp = server.submit(Request::new(vec![1])).unwrap().wait().unwrap();
        assert_eq!(resp.attempts, 2);
        let stats = server.shutdown();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn persistent_failure_exhausts_retry_budget() {
        let model: Arc<dyn ForwardModel> =
            Arc::new(|_tokens: &[u32], _ctx: &ResilienceContext| {
                Err(ForwardError::Expert { layer: 2, expert: 5, reason: "dead".into() })
            });
        let server = Server::start(model, quick_cfg());
        let err = server.submit(Request::new(vec![1])).unwrap().wait().unwrap_err();
        assert_eq!(
            err,
            ServeError::RetriesExhausted { attempts: 3, last: "dead".into() }
        );
        server.shutdown();
    }

    #[test]
    fn no_retry_budget_surfaces_raw_expert_error() {
        let model: Arc<dyn ForwardModel> =
            Arc::new(|_tokens: &[u32], _ctx: &ResilienceContext| {
                Err(ForwardError::Expert { layer: 1, expert: 0, reason: "dead".into() })
            });
        let server = Server::start(
            model,
            ServerConfig { retry: RetryPolicy::none(), ..quick_cfg() },
        );
        let err = server.submit(Request::new(vec![1])).unwrap().wait().unwrap_err();
        assert_eq!(
            err,
            ServeError::Expert { layer: 1, expert: 0, reason: "dead".into() }
        );
        server.shutdown();
    }

    #[test]
    fn deadline_mid_forward_maps_to_layer_stage() {
        // The model cooperates with cancellation like a real forward
        // pass: it polls the token and unwinds at "layer 3".
        let model: Arc<dyn ForwardModel> =
            Arc::new(|_tokens: &[u32], ctx: &ResilienceContext| {
                ctx.sleep_interruptible(Duration::from_secs(5));
                if ctx.is_cancelled() {
                    return Err(ForwardError::Cancelled { layer: 3 });
                }
                Ok(Matrix::zeros(1, 1))
            });
        let server = Server::start(model, quick_cfg());
        let err = server
            .submit(Request::new(vec![1]).with_deadline(Duration::from_millis(20)))
            .unwrap()
            .wait()
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded { stage: Stage::Layer(3) });
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn stalled_worker_triggers_shedding_of_queued_load() {
        // One worker wedged on a non-cooperative model (ignores its
        // cancel token) past a short deadline; the queued requests have
        // generous deadlines, so the only way they terminate early is
        // the watchdog shedding them in response to the stall.
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let model: Arc<dyn ForwardModel> =
            Arc::new(move |_tokens: &[u32], _ctx: &ResilienceContext| {
                while !g.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(Matrix::zeros(1, 1))
            });
        let server = Server::start(
            model,
            ServerConfig {
                workers: 1,
                queue_capacity: 8,
                shed_policy: ShedPolicy::OldestFirst,
                ..quick_cfg()
            },
        );
        let stalled = server
            .submit(Request::new(vec![1]).with_deadline(Duration::from_millis(15)))
            .unwrap();
        // Let the worker claim the stalling request before queueing more.
        std::thread::sleep(Duration::from_millis(5));
        let queued: Vec<_> = (0..4)
            .map(|_| {
                server
                    .submit(Request::new(vec![1]).with_deadline(Duration::from_secs(30)))
                    .unwrap()
            })
            .collect();
        let mut shed = 0;
        for t in queued {
            match t.wait() {
                Err(ServeError::Shed { policy }) => {
                    assert_eq!(policy, ShedPolicy::OldestFirst);
                    shed += 1;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(shed, 4, "every queued request should be shed during the stall");
        gate.store(true, Ordering::Release);
        stalled.wait().unwrap();
        let stats = server.shutdown();
        assert!(stats.watchdog_cancels >= 1);
        assert_eq!(stats.shed, 4);
    }

    #[test]
    fn worker_panic_is_contained_as_internal_error() {
        let model: Arc<dyn ForwardModel> =
            Arc::new(|_tokens: &[u32], _ctx: &ResilienceContext| -> std::result::Result<Matrix, ForwardError> {
                panic!("worker bug")
            });
        let server = Server::start(model, quick_cfg());
        let err = server.submit(Request::new(vec![1])).unwrap().wait().unwrap_err();
        match err {
            ServeError::Internal(msg) => assert!(msg.contains("worker bug")),
            other => panic!("expected Internal, got {other:?}"),
        }
        // The worker survives to serve the next request.
        let err2 = server.submit(Request::new(vec![2])).unwrap().wait().unwrap_err();
        assert!(matches!(err2, ServeError::Internal(_)));
        let stats = server.shutdown();
        assert_eq!(stats.panics, 2);
    }

    #[test]
    fn shutdown_fails_pending_requests_and_stops_admission() {
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let model: Arc<dyn ForwardModel> =
            Arc::new(move |_tokens: &[u32], _ctx: &ResilienceContext| {
                while !g.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(Matrix::zeros(1, 1))
            });
        let server = Server::start(
            model,
            ServerConfig { workers: 1, queue_capacity: 4, ..quick_cfg() },
        );
        let running = server.submit(Request::new(vec![1])).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let queued = server.submit(Request::new(vec![2])).unwrap();
        gate.store(true, Ordering::Release);
        // Shutdown closes the queue; the running request completes, the
        // queued one either completes (worker got it first) or fails
        // with ShuttingDown (drained).
        let handle = std::thread::spawn(move || {
            (running.wait(), queued.wait())
        });
        server.shutdown();
        let (r1, r2) = handle.join().unwrap();
        r1.unwrap();
        match r2 {
            Ok(_) | Err(ServeError::ShuttingDown) => {}
            other => panic!("unexpected queued outcome {other:?}"),
        }
    }

    #[test]
    fn lowest_priority_shed_picks_low_priority_victim() {
        let e = |id: u64, priority: u8| {
            Arc::new(Inflight::new(id, vec![], priority, FaultMode::Degrade, None))
        };
        let high = e(0, 9);
        let low = e(1, 1);
        assert!(
            shed_score(ShedPolicy::LowestPriority, &low)
                > shed_score(ShedPolicy::LowestPriority, &high)
        );
        // Same priority: older request sheds first.
        let old = e(2, 5);
        let newer = e(3, 5);
        assert!(
            shed_score(ShedPolicy::LowestPriority, &old)
                > shed_score(ShedPolicy::LowestPriority, &newer)
        );
    }
}
