//! KV-cached incremental decoding on packed weights — the decode loop a
//! real MiLo serving backend runs: one token per step, O(prefix) work,
//! all projections through the packed INT3 path.

use crate::model::PackedMoeModel;
use crate::{EngineError, Result};
use milo_moe::attention::rms_norm;
use milo_tensor::Matrix;

/// Per-layer key/value caches for one packed decoding stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PackedDecodeState {
    kv: Vec<(Vec<f32>, Vec<f32>)>,
    seen: usize,
}

impl PackedDecodeState {
    /// Creates an empty state for `model`.
    pub fn new(model: &PackedMoeModel) -> Self {
        Self { kv: vec![(Vec::new(), Vec::new()); model.n_layers()], seen: 0 }
    }

    /// Number of tokens processed so far.
    pub fn len(&self) -> usize {
        self.seen
    }

    /// Whether no tokens have been processed yet.
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }
}

/// Causal attention of one new query row against cached keys/values
/// (same math as `milo_moe::decode`, kept local to avoid exposing the
/// cache layout across crates).
fn attend_step(q: &[f32], keys: &[f32], values: &[f32], n_heads: usize, d: usize) -> Vec<f32> {
    let seen = keys.len() / d;
    let hd = d / n_heads;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut ctx = vec![0.0f32; d];
    for h in 0..n_heads {
        let off = h * hd;
        let mut scores = Vec::with_capacity(seen);
        let mut max_s = f32::NEG_INFINITY;
        for j in 0..seen {
            let mut s = 0.0;
            for c in 0..hd {
                s += q[off + c] * keys[j * d + off + c];
            }
            let s = s * scale;
            max_s = max_s.max(s);
            scores.push(s);
        }
        let mut denom = 0.0;
        for s in &mut scores {
            *s = (*s - max_s).exp();
            denom += *s;
        }
        for (j, s) in scores.iter().enumerate() {
            let w = s / denom;
            for c in 0..hd {
                ctx[off + c] += w * values[j * d + off + c];
            }
        }
    }
    ctx
}

impl PackedMoeModel {
    /// Processes one token incrementally through the packed projections,
    /// returning this position's logits.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Run`] for invalid tokens or a state built
    /// for a different model.
    pub fn forward_step(
        &self,
        token: u32,
        state: &mut PackedDecodeState,
    ) -> Result<Vec<f32>> {
        if token as usize >= self.vocab() {
            return Err(EngineError::Run(format!("token {token} out of vocabulary")));
        }
        if state.kv.len() != self.n_layers() {
            return Err(EngineError::Run("decode state built for a different model".into()));
        }
        let d = self.d_model();
        let mut x = Matrix::zeros(1, d);
        x.row_mut(0).copy_from_slice(self.embed_row(token as usize));

        for li in 0..self.n_layers() {
            let normed = rms_norm(&x);
            let (q, k, v) = self.project_qkv(li, &normed)?;
            let (keys, values) = &mut state.kv[li];
            keys.extend_from_slice(k.row(0));
            values.extend_from_slice(v.row(0));
            let ctx_vec = attend_step(q.row(0), keys, values, self.layer_heads(li), d);
            let mut ctx = Matrix::zeros(1, d);
            ctx.row_mut(0).copy_from_slice(&ctx_vec);
            let a = self.project_out(li, &ctx)?;
            for (xv, av) in x.row_mut(0).iter_mut().zip(a.row(0)) {
                *xv += av;
            }

            let normed = rms_norm(&x);
            let f = self.ffn_forward(li, &normed)?;
            for (xv, fv) in x.row_mut(0).iter_mut().zip(f.row(0)) {
                *xv += fv;
            }
        }
        state.seen += 1;
        self.project_logits(&x)
    }

    /// Runs a whole prefix through the cache, returning the last
    /// position's logits.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Run`] for an empty prefix.
    pub fn prefill(&self, tokens: &[u32], state: &mut PackedDecodeState) -> Result<Vec<f32>> {
        if tokens.is_empty() {
            return Err(EngineError::Run("empty prefix".into()));
        }
        let mut last = Vec::new();
        for &t in tokens {
            last = self.forward_step(t, state)?;
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_core::{compress_model, MiloOptions, RankPolicy};
    use milo_moe::{layer_tensors, MoeConfig, MoeModel};

    fn engine() -> (MoeModel, PackedMoeModel) {
        let mut cfg = MoeConfig::tiny_mixtral();
        cfg.d_model = 128;
        cfg.expert_ffn = 256;
        cfg.n_layers = 2;
        let reference = MoeModel::synthesize(&cfg, 41);
        let tensors = layer_tensors(&reference, None);
        let opts = MiloOptions { max_iters: 1, ..MiloOptions::default() };
        let compressed = compress_model(&tensors, &RankPolicy::uniform(4), &opts, 1).unwrap();
        let packed = PackedMoeModel::build(&reference, &compressed).unwrap();
        (reference, packed)
    }

    #[test]
    fn stepped_logits_match_batch_engine_forward() {
        let (_, packed) = engine();
        let tokens = [2u32, 11, 40, 5];
        let batch = packed.forward(&tokens).unwrap();
        let mut state = PackedDecodeState::new(&packed);
        for (i, &t) in tokens.iter().enumerate() {
            let step = packed.forward_step(t, &mut state).unwrap();
            for (a, b) in step.iter().zip(batch.row(i)) {
                assert!(
                    (a - b).abs() <= 2e-4 * (1.0 + b.abs()),
                    "position {i}: {a} vs {b}"
                );
            }
        }
        assert_eq!(state.len(), 4);
    }

    #[test]
    fn prefill_and_errors() {
        let (_, packed) = engine();
        let mut state = PackedDecodeState::new(&packed);
        assert!(packed.prefill(&[], &mut state).is_err());
        assert!(packed.forward_step(9999, &mut state).is_err());
        let last = packed.prefill(&[1, 2, 3], &mut state).unwrap();
        assert_eq!(last.len(), packed.vocab());
        assert!(!state.is_empty());
    }
}
