//! Packed-weight MoE inference engine — the functional analogue of the
//! paper's "MiLo Backend" (§4.3.1).
//!
//! The evaluation path in `milo-moe` reconstructs dense FP32 weights
//! before running; this crate instead keeps every quantizable projection
//! in its *deployment* form and computes with it directly:
//!
//! * weights stay in the zero-bit-waste packed INT3 layout and flow
//!   through the fused dequant+GEMM kernel of `milo-pack`;
//! * low-rank compensators are applied as two skinny GEMMs
//!   (`y += (x·Vᵀ)·Uᵀ`), never materializing `U·V`;
//! * routers, embeddings, norms, and the head stay in full precision,
//!   exactly as the real backend keeps them in FP16.
//!
//! Layer shapes that violate the kernel's tile constraints (the paper's
//! kernel has the same restriction) transparently fall back to a dense
//! path built from the same de-quantized values, so the engine runs any
//! model while using the packed kernel wherever it legally can.

#![warn(missing_docs)]

pub mod decode;
pub mod linear;
pub mod model;

pub use decode::PackedDecodeState;
pub use linear::PackedLinear;
pub use model::PackedMoeModel;

/// Errors produced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The compressed model does not match the reference architecture.
    Mismatch(String),
    /// A forward-pass failure (bad token, shape error).
    Run(String),
    /// An expert failed during packed dispatch (panic, non-finite
    /// output, or kernel error) under strict fault handling.
    ExpertFailed {
        /// Transformer layer index.
        layer: usize,
        /// Expert index within the layer (routed first, then shared).
        expert: usize,
        /// Human-readable failure cause.
        reason: String,
    },
    /// The request's [`milo_moe::CancelToken`] fired (deadline passed or
    /// a watchdog cancelled it); the forward pass unwound at a layer
    /// boundary. The serving layer maps this to its typed
    /// deadline-exceeded error naming the stage.
    Cancelled {
        /// The layer boundary at which the cancellation was observed
        /// (`n_layers` = the pre-head check after the last layer).
        layer: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Mismatch(msg) => write!(f, "model mismatch: {msg}"),
            EngineError::Run(msg) => write!(f, "inference failed: {msg}"),
            EngineError::ExpertFailed { layer, expert, reason } => {
                write!(f, "expert {expert} of layer {layer} failed: {reason}")
            }
            EngineError::Cancelled { layer } => {
                write!(f, "request cancelled at layer boundary {layer}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenient result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
