//! The packed MoE model: the full transformer running on deployment-form
//! weights.

use crate::linear::PackedLinear;
use crate::{EngineError, Result};
use milo_core::CompressedModel;
use milo_moe::attention::{attend, rms_norm};
use milo_moe::mlp::silu;
use milo_moe::health::{FaultKind, FaultMode, ResilienceContext};
use milo_moe::router::Router;
use milo_moe::{FfnBlock, MoeModel};
use milo_tensor::{pool, Matrix};

/// Records per-expert routed-token counters for one packed-layer pass
/// and refreshes the layer's live load-skew gauge (max/mean of the
/// cumulative counts; 1.0 is perfectly balanced).
fn record_dispatch_telemetry(layer: usize, assignment: &[Vec<(usize, f32)>]) {
    if !milo_obs::enabled() || assignment.is_empty() {
        return;
    }
    let lv = layer.to_string();
    let mut loads = Vec::with_capacity(assignment.len());
    for (e, toks) in assignment.iter().enumerate() {
        let key = milo_obs::metric_key(
            "engine.expert_tokens",
            &[("layer", &lv), ("expert", &e.to_string())],
        );
        milo_obs::counter_add(&key, toks.len() as u64);
        loads.push(milo_obs::counter_get(&key));
    }
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean > 0.0 {
        let max = *loads.iter().max().expect("non-empty") as f64;
        milo_obs::gauge_set(
            &milo_obs::metric_key("engine.load_skew", &[("layer", &lv)]),
            max / mean,
        );
    }
}

/// Flushes one expert's forward latency (started inside the dispatch
/// closure when telemetry was on) into its per-expert histogram.
fn record_expert_latency(layer: usize, expert: usize, t0: Option<std::time::Instant>) {
    let Some(t0) = t0 else { return };
    milo_obs::hist_record(
        &milo_obs::metric_key(
            "engine.expert_ns",
            &[("layer", &layer.to_string()), ("expert", &expert.to_string())],
        ),
        t0.elapsed().as_nanos() as u64,
        milo_obs::Unit::Nanos,
    );
}

/// A SwiGLU block on packed projections.
#[derive(Debug, Clone, PartialEq)]
struct PackedMlp {
    w1: PackedLinear,
    w2: PackedLinear,
    w3: PackedLinear,
}

impl PackedMlp {
    fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let gate = self.w1.forward(x)?;
        let up = self.w3.forward(x)?;
        let h = Matrix::from_fn(gate.rows(), gate.cols(), |r, c| silu(gate[(r, c)]) * up[(r, c)]);
        self.w2.forward(&h)
    }
}

/// The FFN part of a packed layer.
#[derive(Debug, Clone, PartialEq)]
enum PackedFfn {
    Dense(PackedMlp),
    Moe { router: Router, experts: Vec<PackedMlp>, shared: Vec<PackedMlp> },
}

/// One packed transformer layer.
#[derive(Debug, Clone, PartialEq)]
struct PackedLayer {
    wq: PackedLinear,
    wk: PackedLinear,
    wv: PackedLinear,
    wo: PackedLinear,
    n_heads: usize,
    ffn: PackedFfn,
}

/// A complete MoE model in deployment form: packed INT3 projections,
/// low-rank compensators applied as skinny GEMMs, FP32 routers /
/// embeddings / head.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedMoeModel {
    embed: Matrix,
    head: Matrix,
    head_gain: f32,
    vocab: usize,
    d_model: usize,
    layers: Vec<PackedLayer>,
}

impl PackedMoeModel {
    /// Builds the deployment model from the FP32 reference (which
    /// provides the architecture, routers, embeddings, and head) and the
    /// compressed weights.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Mismatch`] if a layer of the reference has
    /// no counterpart in `compressed`.
    pub fn build(reference: &MoeModel, compressed: &CompressedModel) -> Result<Self> {
        let lin = |name: String| -> Result<PackedLinear> {
            let rec = compressed
                .layer(&name)
                .ok_or_else(|| EngineError::Mismatch(format!("missing layer {name}")))?;
            PackedLinear::build(&rec.layer)
        };
        let mlp = |prefix: String| -> Result<PackedMlp> {
            Ok(PackedMlp {
                w1: lin(format!("{prefix}.w1"))?,
                w2: lin(format!("{prefix}.w2"))?,
                w3: lin(format!("{prefix}.w3"))?,
            })
        };

        let mut layers = Vec::with_capacity(reference.layers.len());
        for (li, layer) in reference.layers.iter().enumerate() {
            let ffn = match &layer.ffn {
                FfnBlock::Dense(_) => PackedFfn::Dense(mlp(format!("layer{li}.dense"))?),
                FfnBlock::Moe(moe) => {
                    let mut experts = Vec::with_capacity(moe.experts.len());
                    for e in 0..moe.experts.len() {
                        experts.push(mlp(format!("layer{li}.expert{e}"))?);
                    }
                    let mut shared = Vec::with_capacity(moe.shared.len());
                    for s in 0..moe.shared.len() {
                        shared.push(mlp(format!("layer{li}.shared{s}"))?);
                    }
                    PackedFfn::Moe { router: moe.router.clone(), experts, shared }
                }
            };
            layers.push(PackedLayer {
                wq: lin(format!("layer{li}.attn.wq"))?,
                wk: lin(format!("layer{li}.attn.wk"))?,
                wv: lin(format!("layer{li}.attn.wv"))?,
                wo: lin(format!("layer{li}.attn.wo"))?,
                n_heads: layer.attn.n_heads(),
                ffn,
            });
        }
        Ok(Self {
            embed: reference.embed.clone(),
            head: reference.head.clone(),
            head_gain: reference.config.head_gain,
            vocab: reference.config.vocab,
            d_model: reference.config.d_model,
            layers,
        })
    }

    /// Runs the model over a token sequence, returning per-position
    /// logits (`seq × vocab`), numerically equivalent (to FP16 rounding)
    /// to evaluating the reconstructed dense model.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Run`] for invalid tokens or empty input.
    pub fn forward(&self, tokens: &[u32]) -> Result<Matrix> {
        let _span = milo_obs::span(|| "engine.forward".into());
        if tokens.is_empty() {
            return Err(EngineError::Run("empty token sequence".into()));
        }
        let mut x = Matrix::zeros(tokens.len(), self.d_model);
        for (i, &t) in tokens.iter().enumerate() {
            if t as usize >= self.vocab {
                return Err(EngineError::Run(format!("token {t} out of vocabulary")));
            }
            x.row_mut(i).copy_from_slice(self.embed.row(t as usize));
        }

        for li in 0..self.layers.len() {
            let _span = milo_obs::span(|| format!("engine.layer{{layer={li}}}"));
            let normed = rms_norm(&x);
            let a = {
                let _attn = milo_obs::span(|| "engine.attn".into());
                let (q, k, v) = self.project_qkv(li, &normed)?;
                let ctx = attend(&q, &k, &v, self.layers[li].n_heads);
                self.project_out(li, &ctx)?
            };
            x = x.add(&a).map_err(|e| EngineError::Run(e.to_string()))?;

            let normed = rms_norm(&x);
            let f = {
                let _ffn = milo_obs::span(|| "engine.ffn".into());
                self.ffn_forward(li, &normed)?
            };
            x = x.add(&f).map_err(|e| EngineError::Run(e.to_string()))?;
        }

        let final_x = rms_norm(&x);
        let logits = final_x
            .matmul(&self.head.transpose())
            .map_err(|e| EngineError::Run(e.to_string()))?;
        Ok(logits.scale(self.head_gain / (self.d_model as f32).sqrt()))
    }

    /// Fault-tolerant forward pass on packed weights: expert dispatch
    /// runs behind panic isolation, expert outputs are checked for
    /// non-finite values at the expert boundary, and failures follow the
    /// context's [`FaultMode`] — typed [`EngineError::ExpertFailed`] in
    /// strict mode, quarantine + top-k mass renormalization over the
    /// surviving experts in degrade mode (mirroring
    /// [`milo_moe::MoeBlock::forward_resilient`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Run`] for invalid tokens, empty input, or
    /// routing failures (a sick router cannot be degraded around), and
    /// [`EngineError::ExpertFailed`] for an expert failure in strict
    /// mode.
    pub fn forward_resilient(
        &self,
        tokens: &[u32],
        ctx: &ResilienceContext,
    ) -> Result<Matrix> {
        let _span = milo_obs::span(|| "engine.forward".into());
        if tokens.is_empty() {
            return Err(EngineError::Run("empty token sequence".into()));
        }
        let mut x = Matrix::zeros(tokens.len(), self.d_model);
        for (i, &t) in tokens.iter().enumerate() {
            if t as usize >= self.vocab {
                return Err(EngineError::Run(format!("token {t} out of vocabulary")));
            }
            x.row_mut(i).copy_from_slice(self.embed.row(t as usize));
        }

        for li in 0..self.layers.len() {
            if ctx.is_cancelled() {
                return Err(EngineError::Cancelled { layer: li });
            }
            let _span = milo_obs::span(|| format!("engine.layer{{layer={li}}}"));
            let normed = rms_norm(&x);
            let a = {
                let _attn = milo_obs::span(|| "engine.attn".into());
                let (q, k, v) = self.project_qkv(li, &normed)?;
                let attn_ctx = attend(&q, &k, &v, self.layers[li].n_heads);
                self.project_out(li, &attn_ctx)?
            };
            x = x.add(&a).map_err(|e| EngineError::Run(e.to_string()))?;

            let normed = rms_norm(&x);
            let f = {
                let _ffn = milo_obs::span(|| "engine.ffn".into());
                self.ffn_forward_resilient(li, &normed, ctx)?
            };
            x = x.add(&f).map_err(|e| EngineError::Run(e.to_string()))?;
        }
        if ctx.is_cancelled() {
            return Err(EngineError::Cancelled { layer: self.layers.len() });
        }

        let final_x = rms_norm(&x);
        let logits = final_x
            .matmul(&self.head.transpose())
            .map_err(|e| EngineError::Run(e.to_string()))?;
        Ok(logits.scale(self.head_gain / (self.d_model as f32).sqrt()))
    }

    /// Fault-tolerant FFN dispatch for layer `li`; see
    /// [`PackedMoeModel::forward_resilient`] for the policy.
    pub(crate) fn ffn_forward_resilient(
        &self,
        li: usize,
        x: &Matrix,
        ctx: &ResilienceContext,
    ) -> Result<Matrix> {
        let PackedFfn::Moe { router, experts, shared } = &self.layers[li].ffn else {
            // A dense FFN has no experts to degrade around.
            return self.ffn_forward(li, x);
        };
        let tokens_n = x.rows();
        let mut out = Matrix::zeros(tokens_n, self.d_model);
        let n_experts = experts.len();

        let mut assignment: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n_experts];
        for t in 0..tokens_n {
            let routed = router
                .try_route(x.row(t))
                .map_err(|e| EngineError::Run(format!("layer {li} routing: {e}")))?;
            for (e, gate) in routed {
                assignment[e].push((t, gate));
            }
        }
        record_dispatch_telemetry(li, &assignment);
        let telemetry = milo_obs::enabled();

        let raw = pool::try_par_map(n_experts, |e| {
            if assignment[e].is_empty() || ctx.health.is_failed(li, e) {
                return None;
            }
            match ctx.injected_kind(li, e) {
                Some(FaultKind::Panic) => {
                    panic!("injected fault: expert {e} of layer {li} killed mid-dispatch");
                }
                Some(FaultKind::Slow { millis }) => {
                    ctx.sleep_interruptible(std::time::Duration::from_millis(millis));
                }
                _ => {}
            }
            let toks = &assignment[e];
            let mut sub = Matrix::zeros(toks.len(), self.d_model);
            for (i, &(t, _)) in toks.iter().enumerate() {
                sub.row_mut(i).copy_from_slice(x.row(t));
            }
            let t0 = telemetry.then(std::time::Instant::now);
            let mut res = experts[e].forward(&sub);
            record_expert_latency(li, e, t0);
            if ctx.injected_kind(li, e) == Some(FaultKind::NanOutput) {
                if let Ok(y) = &mut res {
                    y.row_mut(0)[0] = f32::NAN;
                }
            }
            Some(res)
        });

        let mut outputs: Vec<Option<Matrix>> = Vec::with_capacity(n_experts);
        for (e, task) in raw.into_iter().enumerate() {
            let outcome = match task {
                Err(panic) => Err(panic.message),
                Ok(None) => Ok(None),
                Ok(Some(Err(err))) => Err(format!("kernel error: {err}")),
                Ok(Some(Ok(y))) if !y.as_slice().iter().all(|v| v.is_finite()) => {
                    Err("non-finite output".to_string())
                }
                Ok(Some(Ok(y))) => Ok(Some(y)),
            };
            match outcome {
                Ok(maybe) => {
                    if maybe.is_some() {
                        ctx.health.probe_succeeded(li, e);
                    }
                    outputs.push(maybe);
                }
                Err(reason) => match ctx.mode {
                    FaultMode::Strict => {
                        return Err(EngineError::ExpertFailed { layer: li, expert: e, reason })
                    }
                    FaultMode::Degrade => {
                        ctx.health.record(li, e, reason);
                        outputs.push(None);
                    }
                },
            }
        }

        // Healthy tokens have full == alive, so their rescale factor is
        // exactly 1 and the output matches the non-resilient path.
        let mut full = vec![0f32; tokens_n];
        let mut alive = vec![0f32; tokens_n];
        for (e, toks) in assignment.iter().enumerate() {
            let survived = outputs[e].is_some();
            for &(t, g) in toks {
                full[t] += g;
                if survived {
                    alive[t] += g;
                }
            }
        }
        for (e, maybe) in outputs.iter().enumerate() {
            let Some(y) = maybe else { continue };
            for (i, &(t, gate)) in assignment[e].iter().enumerate() {
                let g = if alive[t] == full[t] { gate } else { gate * full[t] / alive[t] };
                for (o, v) in out.row_mut(t).iter_mut().zip(y.row(i)) {
                    *o += g * v;
                }
            }
        }

        let shared_raw = pool::try_par_map(shared.len(), |s| {
            let idx = n_experts + s;
            if ctx.health.is_failed(li, idx) {
                return None;
            }
            match ctx.injected_kind(li, idx) {
                Some(FaultKind::Panic) => {
                    panic!("injected fault: shared expert {s} of layer {li} killed mid-dispatch");
                }
                Some(FaultKind::Slow { millis }) => {
                    ctx.sleep_interruptible(std::time::Duration::from_millis(millis));
                }
                _ => {}
            }
            Some(shared[s].forward(x))
        });
        for (s, task) in shared_raw.into_iter().enumerate() {
            let idx = n_experts + s;
            let outcome = match task {
                Err(panic) => Err(panic.message),
                Ok(None) => Ok(None),
                Ok(Some(Err(err))) => Err(format!("kernel error: {err}")),
                Ok(Some(Ok(y))) if !y.as_slice().iter().all(|v| v.is_finite()) => {
                    Err("non-finite output".to_string())
                }
                Ok(Some(Ok(y))) => Ok(Some(y)),
            };
            match outcome {
                Ok(None) => {}
                Ok(Some(y)) => {
                    ctx.health.probe_succeeded(li, idx);
                    for t in 0..tokens_n {
                        for (o, v) in out.row_mut(t).iter_mut().zip(y.row(t)) {
                            *o += v;
                        }
                    }
                }
                Err(reason) => match ctx.mode {
                    FaultMode::Strict => {
                        return Err(EngineError::ExpertFailed {
                            layer: li,
                            expert: idx,
                            reason,
                        })
                    }
                    FaultMode::Degrade => ctx.health.record(li, idx, reason),
                },
            }
        }
        Ok(out)
    }

    /// Deployment memory of the quantized projections in bytes (routers,
    /// embeddings, and head — kept FP16 by the paper's backend — are
    /// *not* included, matching the paper's memory columns).
    pub fn memory_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                let mut total = l.wq.memory_bytes()
                    + l.wk.memory_bytes()
                    + l.wv.memory_bytes()
                    + l.wo.memory_bytes();
                let mlp_bytes = |m: &PackedMlp| {
                    m.w1.memory_bytes() + m.w2.memory_bytes() + m.w3.memory_bytes()
                };
                total += match &l.ffn {
                    PackedFfn::Dense(m) => mlp_bytes(m),
                    PackedFfn::Moe { experts, shared, .. } => {
                        experts.iter().map(mlp_bytes).sum::<usize>()
                            + shared.iter().map(mlp_bytes).sum::<usize>()
                    }
                };
                total
            })
            .sum()
    }

    /// Number of transformer layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Model (residual stream) dimension.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding row for a token id (used by the decode loop).
    pub(crate) fn embed_row(&self, token: usize) -> &[f32] {
        self.embed.row(token)
    }

    /// Attention heads of layer `li`.
    pub(crate) fn layer_heads(&self, li: usize) -> usize {
        self.layers[li].n_heads
    }

    /// Runs the q/k/v projections of layer `li`.
    pub(crate) fn project_qkv(
        &self,
        li: usize,
        x: &Matrix,
    ) -> Result<(Matrix, Matrix, Matrix)> {
        let l = &self.layers[li];
        Ok((l.wq.forward(x)?, l.wk.forward(x)?, l.wv.forward(x)?))
    }

    /// Runs the output projection of layer `li`.
    pub(crate) fn project_out(&self, li: usize, ctx: &Matrix) -> Result<Matrix> {
        self.layers[li].wo.forward(ctx)
    }

    /// Runs the FFN block of layer `li` on a batch of token rows.
    ///
    /// Expert forwards run concurrently on the [`milo_tensor::pool`]
    /// (mirroring [`milo_moe::MoeBlock::forward_counting`]); the weighted
    /// scatter-back stays serial in expert order so the output is
    /// bit-identical across thread counts.
    pub(crate) fn ffn_forward(&self, li: usize, x: &Matrix) -> Result<Matrix> {
        match &self.layers[li].ffn {
            PackedFfn::Dense(mlp) => mlp.forward(x),
            PackedFfn::Moe { router, experts, shared } => {
                let tokens_n = x.rows();
                let mut out = Matrix::zeros(tokens_n, self.d_model);
                let mut assignment: Vec<Vec<(usize, f32)>> = vec![Vec::new(); experts.len()];
                for t in 0..tokens_n {
                    for (e, gate) in router.route(x.row(t)) {
                        assignment[e].push((t, gate));
                    }
                }
                record_dispatch_telemetry(li, &assignment);
                let telemetry = milo_obs::enabled();
                let expert_outputs: Vec<Option<Result<Matrix>>> =
                    pool::par_map(experts.len(), |e| {
                        let toks = &assignment[e];
                        if toks.is_empty() {
                            return None;
                        }
                        let mut sub = Matrix::zeros(toks.len(), self.d_model);
                        for (i, &(t, _)) in toks.iter().enumerate() {
                            sub.row_mut(i).copy_from_slice(x.row(t));
                        }
                        let t0 = telemetry.then(std::time::Instant::now);
                        let res = experts[e].forward(&sub);
                        record_expert_latency(li, e, t0);
                        Some(res)
                    });
                for (e, maybe) in expert_outputs.into_iter().enumerate() {
                    let Some(res) = maybe else { continue };
                    let y = res?;
                    for (i, &(t, gate)) in assignment[e].iter().enumerate() {
                        for (o, v) in out.row_mut(t).iter_mut().zip(y.row(i)) {
                            *o += gate * v;
                        }
                    }
                }
                let shared_outputs: Vec<Result<Matrix>> =
                    pool::par_map(shared.len(), |s| shared[s].forward(x));
                for res in shared_outputs {
                    let y = res?;
                    for t in 0..tokens_n {
                        for (o, v) in out.row_mut(t).iter_mut().zip(y.row(t)) {
                            *o += v;
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// Projects a single residual row to logits (norm + head + gain).
    pub(crate) fn project_logits(&self, x: &Matrix) -> Result<Vec<f32>> {
        let final_x = milo_moe::attention::rms_norm(x);
        let logits = final_x
            .matmul(&self.head.transpose())
            .map_err(|e| EngineError::Run(format!("head projection: {e}")))?;
        let gain = self.head_gain / (self.d_model as f32).sqrt();
        Ok(logits.row(0).iter().map(|&l| l * gain).collect())
    }

    /// Fraction of projections served by the packed kernel (the rest use
    /// the dense fallback because of tile-shape constraints).
    pub fn packed_fraction(&self) -> f32 {
        let mut packed = 0usize;
        let mut total = 0usize;
        let mut count = |l: &PackedLinear| {
            total += 1;
            if l.uses_packed_kernel() {
                packed += 1;
            }
        };
        for l in &self.layers {
            count(&l.wq);
            count(&l.wk);
            count(&l.wv);
            count(&l.wo);
            let mut count_mlp = |m: &PackedMlp| {
                count(&m.w1);
                count(&m.w2);
                count(&m.w3);
            };
            match &l.ffn {
                PackedFfn::Dense(m) => count_mlp(m),
                PackedFfn::Moe { experts, shared, .. } => {
                    experts.iter().for_each(&mut count_mlp);
                    shared.iter().for_each(&mut count_mlp);
                }
            }
        }
        packed as f32 / total.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_core::{compress_model, MiloOptions, RankPolicy};
    use milo_moe::{apply_compressed, layer_tensors, MoeConfig};
    use milo_quant::HqqOptions;
    use milo_tensor::stats;

    fn build_pair(rank: usize) -> (MoeModel, CompressedModel) {
        // d=128, experts 128-wide: every projection is tileable, so the
        // packed kernel path is exercised throughout.
        let mut cfg = MoeConfig::tiny_mixtral();
        cfg.d_model = 128;
        cfg.expert_ffn = 256;
        cfg.n_layers = 2;
        cfg.n_heads = 2;
        let reference = MoeModel::synthesize(&cfg, 31);
        let tensors = layer_tensors(&reference, None);
        let opts = MiloOptions {
            max_iters: 1,
            hqq: HqqOptions { max_iters: 5, ..HqqOptions::default() },
            ..MiloOptions::default()
        };
        let compressed =
            compress_model(&tensors, &RankPolicy::uniform(rank), &opts, 2).unwrap();
        (reference, compressed)
    }

    #[test]
    fn engine_matches_reconstructed_dense_model() {
        let (reference, compressed) = build_pair(4);
        let engine = PackedMoeModel::build(&reference, &compressed).unwrap();
        let dense = apply_compressed(&reference, &compressed).unwrap();
        let tokens = [1u32, 7, 13, 2, 40];
        let a = engine.forward(&tokens).unwrap();
        let b = dense.forward(&tokens).unwrap();
        let rel = stats::relative_frobenius_error(&b, &a);
        // The engine rounds weights/activations through FP16; logits must
        // agree to well under a percent.
        assert!(rel < 1e-2, "engine vs dense rel error {rel}");
    }

    #[test]
    fn all_projections_use_packed_kernel_for_tileable_model() {
        let (reference, compressed) = build_pair(2);
        let engine = PackedMoeModel::build(&reference, &compressed).unwrap();
        assert_eq!(engine.packed_fraction(), 1.0);
    }

    #[test]
    fn memory_matches_compressed_model() {
        let (reference, compressed) = build_pair(2);
        let engine = PackedMoeModel::build(&reference, &compressed).unwrap();
        assert_eq!(engine.memory_bytes(), compressed.memory_bytes());
    }

    #[test]
    fn engine_rejects_bad_tokens() {
        let (reference, compressed) = build_pair(0);
        let engine = PackedMoeModel::build(&reference, &compressed).unwrap();
        assert!(engine.forward(&[]).is_err());
        assert!(engine.forward(&[9999]).is_err());
    }

    #[test]
    fn resilient_forward_matches_plain_when_healthy() {
        let (reference, compressed) = build_pair(2);
        let engine = PackedMoeModel::build(&reference, &compressed).unwrap();
        let tokens = [1u32, 7, 13];
        let plain = engine.forward(&tokens).unwrap();
        let ctx = ResilienceContext::degrade();
        let res = engine.forward_resilient(&tokens, &ctx).unwrap();
        assert_eq!(res.as_slice(), plain.as_slice());
        assert_eq!(ctx.health.n_failed(), 0);
    }

    #[test]
    fn packed_dispatch_recovers_from_poisoned_expert() {
        let (reference, compressed) = build_pair(2);
        let engine = PackedMoeModel::build(&reference, &compressed).unwrap();
        let tokens = [1u32, 7, 13, 22, 40];
        // Find an expert that actually receives tokens in layer 0.
        let mut counts = reference.fresh_counts();
        reference.forward_counting(&tokens, Some(&mut counts)).unwrap();
        let busiest = counts[0]
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(e, _)| e)
            .unwrap();
        for kind in [milo_moe::FaultKind::NanOutput, milo_moe::FaultKind::Panic] {
            let fault = milo_moe::InjectedFault { layer: 0, expert: busiest, kind };
            let ctx = ResilienceContext::degrade().with_fault(fault);
            let logits = engine.forward_resilient(&tokens, &ctx).unwrap();
            assert!(logits.as_slice().iter().all(|v| v.is_finite()), "{kind:?}");
            assert!(ctx.health.is_failed(0, busiest), "{kind:?}");

            let strict = ResilienceContext::strict().with_fault(fault);
            match engine.forward_resilient(&tokens, &strict) {
                Err(EngineError::ExpertFailed { layer: 0, expert, .. }) => {
                    assert_eq!(expert, busiest, "{kind:?}");
                }
                other => panic!("expected ExpertFailed for {kind:?}, got {other:?}"),
            }
        }
        // The engine still serves normal traffic afterwards.
        assert!(engine.forward(&tokens).is_ok());
    }

    #[test]
    fn mismatched_compressed_model_rejected() {
        let (reference, _) = build_pair(0);
        let other_cfg = MoeConfig::tiny_deepseek();
        let other = MoeModel::synthesize(&other_cfg, 5);
        let tensors = layer_tensors(&other, None);
        let opts = MiloOptions { max_iters: 1, ..MiloOptions::default() };
        let compressed =
            compress_model(&tensors, &RankPolicy::uniform(0), &opts, 2).unwrap();
        assert!(matches!(
            PackedMoeModel::build(&reference, &compressed),
            Err(EngineError::Mismatch(_))
        ));
    }
}
