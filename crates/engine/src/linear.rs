//! A single projection in deployment form: packed INT3 weight (+ scales
//! and zero-points), optional low-rank compensator factors, and the
//! fused-GEMM / dense fallback dispatch.

use crate::{EngineError, Result};
use milo_core::{CompressedLayer, Compensator};
use milo_pack::{GemmKernel, Packed4Matrix, PackedMatrix, TileShape};
use milo_tensor::Matrix;

/// How the weight is stored and multiplied.
#[derive(Debug, Clone, PartialEq)]
enum Storage {
    /// Zero-waste packed INT3 plus the tile shape the kernel runs with.
    Packed3(PackedMatrix, GemmKernel),
    /// Packed INT4 (the W4A16 baseline format) plus its kernel.
    Packed4(Packed4Matrix, GemmKernel),
    /// Dense fallback (FP16-rounded de-quantized values) for shapes the
    /// kernel's tile rules reject — kept transposed (`in × out`) so the
    /// hot loop is a plain row-major GEMM.
    Dense(Matrix),
}

/// A deployed linear layer: `y = x · Ŵᵀ (+ (x·Vᵀ)·Uᵀ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedLinear {
    storage: Storage,
    /// Compensator factors stored *pre-transposed* as `(Vᵀ: in×r,
    /// Uᵀ: r×out)`, de-quantized and transposed once at build time so the
    /// per-token hot loop runs two plain row-major GEMMs with no
    /// per-batch transpose (deployment keeps them INT3; the memory
    /// accounting below uses the packed size).
    comp_t: Option<(Matrix, Matrix)>,
    out_features: usize,
    in_features: usize,
    /// Deployment memory in bytes (packed weight + packed compensator).
    memory_bytes: usize,
}

/// Picks a tile shape whose `(tile_k, tile_n)` divides `(k, n)`, if any.
fn pick_tile(k: usize, n: usize) -> Option<TileShape> {
    TileShape::all().into_iter().find(|t| {
        let (tk, tn) = t.dims();
        k % tk == 0 && n % tn == 0
    })
}

impl PackedLinear {
    /// Builds the deployment form of one compressed layer. INT3 weights
    /// go to the zero-waste packed layout, INT4 weights to the W4
    /// layout; anything else (or shapes the tile rules reject) falls
    /// back to a dense path built from the same de-quantized values.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (every weight has the dense
    /// fallback), but returns `Result` to keep the door open for strict
    /// deployment modes.
    pub fn build(layer: &CompressedLayer) -> Result<Self> {
        let (out_features, in_features) = layer.qweight.shape();
        let memory_bytes = layer.memory_bytes();

        let tile = pick_tile(in_features, out_features);
        let storage = match (layer.qweight.config().bits(), tile) {
            (3, Some(tile)) => match PackedMatrix::pack(&layer.qweight) {
                Ok(packed) => Storage::Packed3(packed, GemmKernel { tile }),
                Err(_) => Storage::Dense(layer.qweight.dequantize().transpose()),
            },
            (4, Some(tile)) => match Packed4Matrix::pack(&layer.qweight) {
                Ok(packed) => Storage::Packed4(packed, GemmKernel { tile }),
                Err(_) => Storage::Dense(layer.qweight.dequantize().transpose()),
            },
            _ => Storage::Dense(layer.qweight.dequantize().transpose()),
        };
        let comp_t = layer.compensator.as_ref().map(|c| match c {
            Compensator::Fp16(lr) => (lr.v().transpose(), lr.u().transpose()),
            Compensator::Quantized(q) => {
                (q.v().dequantize().transpose(), q.u().dequantize().transpose())
            }
        });
        Ok(Self { storage, comp_t, out_features, in_features, memory_bytes })
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Whether a packed kernel path is active (vs the dense fallback).
    pub fn uses_packed_kernel(&self) -> bool {
        matches!(self.storage, Storage::Packed3(..) | Storage::Packed4(..))
    }

    /// Deployment memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Applies the projection to a batch of token vectors
    /// (`tokens × in`), returning `tokens × out`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Run`] on shape mismatches.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.in_features {
            return Err(EngineError::Run(format!(
                "input width {} != {}",
                x.cols(),
                self.in_features
            )));
        }
        let mut y = match &self.storage {
            Storage::Packed3(packed, kernel) => kernel
                .gemm(x, packed)
                .map_err(|e| EngineError::Run(format!("packed INT3 GEMM failed: {e}")))?,
            Storage::Packed4(packed, kernel) => kernel
                .gemm(x, packed)
                .map_err(|e| EngineError::Run(format!("packed INT4 GEMM failed: {e}")))?,
            Storage::Dense(wt) => x
                .matmul(wt)
                .map_err(|e| EngineError::Run(format!("dense GEMM failed: {e}")))?,
        };
        if let Some((vt, ut)) = &self.comp_t {
            // Low-rank fast path: y += (x·Vᵀ)·Uᵀ — two skinny GEMMs on
            // the factors transposed once at build time; the U·V product
            // is never materialized.
            let xv = x
                .matmul(vt)
                .map_err(|e| EngineError::Run(format!("compensator V failed: {e}")))?;
            let delta = xv
                .matmul(ut)
                .map_err(|e| EngineError::Run(format!("compensator U failed: {e}")))?;
            y = y
                .add(&delta)
                .map_err(|e| EngineError::Run(format!("compensator add failed: {e}")))?;
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_core::{milo_compress, MiloOptions};
    use milo_tensor::rng::WeightDist;
    use milo_tensor::stats;
    use milo_tensor::rng::SeedableRng;

    fn compressed(rows: usize, cols: usize, rank: usize) -> (Matrix, CompressedLayer) {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(3);
        let w = WeightDist::Gaussian { std: 0.06 }.sample_matrix(rows, cols, &mut rng);
        let opts = MiloOptions { max_iters: 2, ..MiloOptions::default() };
        let layer = milo_compress(&w, rank, &opts).unwrap();
        (w, layer)
    }

    #[test]
    fn packed_path_selected_for_tileable_shapes() {
        let (_, layer) = compressed(256, 128, 4);
        let lin = PackedLinear::build(&layer).unwrap();
        assert!(lin.uses_packed_kernel());
    }

    #[test]
    fn dense_fallback_for_untileable_shapes() {
        let (_, layer) = compressed(96, 192, 4);
        let lin = PackedLinear::build(&layer).unwrap();
        assert!(!lin.uses_packed_kernel());
    }

    #[test]
    fn forward_matches_effective_weight() {
        for (rows, cols) in [(256usize, 128usize), (96, 192)] {
            let (_, layer) = compressed(rows, cols, 4);
            let lin = PackedLinear::build(&layer).unwrap();
            let mut rng = milo_tensor::rng::StdRng::seed_from_u64(9);
            let x = WeightDist::Gaussian { std: 1.0 }.sample_matrix(3, cols, &mut rng);
            let y = lin.forward(&x).unwrap();
            let reference = x.matmul(&layer.effective_weight().transpose()).unwrap();
            let rel = stats::relative_frobenius_error(&reference, &y);
            assert!(rel < 5e-3, "({rows},{cols}): rel {rel}");
        }
    }

    #[test]
    fn no_compensator_path_works() {
        let (_, layer) = compressed(128, 128, 0);
        let lin = PackedLinear::build(&layer).unwrap();
        assert!(lin.forward(&Matrix::filled(1, 128, 0.5)).is_ok());
    }

    #[test]
    fn int4_weights_use_the_w4_packed_path() {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(13);
        let w = WeightDist::Gaussian { std: 0.06 }.sample_matrix(256, 128, &mut rng);
        let q = milo_quant::rtn_quantize(&w, &milo_quant::QuantConfig::int4_asym()).unwrap();
        let layer = CompressedLayer { qweight: q.clone(), compensator: None, convergence: vec![] };
        let lin = PackedLinear::build(&layer).unwrap();
        assert!(lin.uses_packed_kernel());
        let x = WeightDist::Gaussian { std: 1.0 }.sample_matrix(2, 128, &mut rng);
        let y = lin.forward(&x).unwrap();
        let reference = x.matmul(&q.dequantize().transpose()).unwrap();
        assert!(stats::relative_frobenius_error(&reference, &y) < 5e-3);
    }

    #[test]
    fn wrong_width_rejected() {
        let (_, layer) = compressed(128, 128, 2);
        let lin = PackedLinear::build(&layer).unwrap();
        assert!(lin.forward(&Matrix::zeros(1, 64)).is_err());
    }

    #[test]
    fn memory_matches_compressed_layer() {
        let (_, layer) = compressed(256, 128, 8);
        let lin = PackedLinear::build(&layer).unwrap();
        assert_eq!(lin.memory_bytes(), layer.memory_bytes());
        assert_eq!(lin.out_features(), 256);
        assert_eq!(lin.in_features(), 128);
    }
}
