//! Calibration-activation capture.
//!
//! GPTQ needs the activations each weight matrix actually sees. The real
//! pipeline runs Wikitext-2 through the model with forward hooks; this
//! module plays that role for the synthetic models: it re-runs the
//! forward pass over a corpus and records, per quantizable weight, the
//! rows that flow into it (attention inputs, per-expert routed token
//! subsets, post-activation hiddens for the down projections).
//!
//! The recorded names match [`crate::tensors::layer_tensors`], so the
//! captured map plugs straight into a per-layer GPTQ run.

use crate::attention::rms_norm;
use crate::model::{FfnBlock, MoeModel};
use crate::{MoeError, Result};
use milo_tensor::Matrix;
use std::collections::HashMap;

/// Accumulates activation rows per layer name, capped per layer.
#[derive(Debug, Clone)]
pub struct ActivationStore {
    max_rows: usize,
    width: HashMap<String, usize>,
    rows: HashMap<String, Vec<f32>>,
}

impl ActivationStore {
    /// Creates a store. Each layer keeps at most
    /// `max(max_rows, 2·width + 16)` rows — the floor guarantees enough
    /// rows for a well-conditioned GPTQ Hessian regardless of `max_rows`.
    pub fn new(max_rows: usize) -> Self {
        Self { max_rows, width: HashMap::new(), rows: HashMap::new() }
    }

    /// Records all rows of `x` under `name`, up to the per-layer cap.
    pub fn record(&mut self, name: &str, x: &Matrix) {
        let width = *self.width.entry(name.to_string()).or_insert(x.cols());
        debug_assert_eq!(width, x.cols(), "inconsistent activation width for {name}");
        let cap = self.max_rows.max(2 * width + 16);
        let buf = self.rows.entry(name.to_string()).or_default();
        for r in 0..x.rows() {
            if buf.len() / width >= cap {
                return;
            }
            buf.extend_from_slice(x.row(r));
        }
    }

    /// Number of rows captured for `name`.
    pub fn n_rows(&self, name: &str) -> usize {
        match (self.rows.get(name), self.width.get(name)) {
            (Some(buf), Some(&w)) if w > 0 => buf.len() / w,
            _ => 0,
        }
    }

    /// Finalizes into per-layer activation matrices.
    pub fn into_matrices(self) -> HashMap<String, Matrix> {
        let mut out = HashMap::new();
        for (name, buf) in self.rows {
            let w = self.width[&name];
            if w == 0 || buf.is_empty() {
                continue;
            }
            let rows = buf.len() / w;
            out.insert(name, Matrix::from_vec(rows, w, buf));
        }
        out
    }
}

/// Runs the forward pass over `tokens`, recording every quantizable
/// weight's input activations into `store`. Returns the logits, which
/// are bit-identical to [`MoeModel::forward`]'s.
///
/// # Errors
///
/// Same failure modes as [`MoeModel::forward`].
pub fn forward_capturing(
    model: &MoeModel,
    tokens: &[u32],
    store: &mut ActivationStore,
) -> Result<Matrix> {
    match forward_capturing_until(model, tokens, store, model.layers.len())? {
        Some(logits) => Ok(logits),
        None => Err(crate::MoeError::InvalidInput(
            "capture ended before the final layer produced logits".into(),
        )),
    }
}

/// Like [`forward_capturing`] but stops after processing layer
/// `stop_after` (exclusive upper bound on layer index). When stopping
/// early no logits are produced and `Ok(None)` is returned — used by
/// sequential (layer-by-layer) GPTQ, which only needs the prefix.
///
/// # Errors
///
/// Same failure modes as [`MoeModel::forward`].
pub fn forward_capturing_until(
    model: &MoeModel,
    tokens: &[u32],
    store: &mut ActivationStore,
    stop_after: usize,
) -> Result<Option<Matrix>> {
    if tokens.is_empty() {
        return Err(MoeError::InvalidInput("empty token sequence".into()));
    }
    let d = model.config.d_model;
    let mut x = Matrix::zeros(tokens.len(), d);
    for (i, &t) in tokens.iter().enumerate() {
        if t as usize >= model.config.vocab {
            return Err(MoeError::InvalidToken { token: t, vocab: model.config.vocab });
        }
        x.row_mut(i).copy_from_slice(model.embed.row(t as usize));
    }

    for (li, layer) in model.layers.iter().enumerate() {
        if li >= stop_after {
            return Ok(None);
        }
        let normed = rms_norm(&x);
        for suffix in ["wq", "wk", "wv"] {
            store.record(&format!("layer{li}.attn.{suffix}"), &normed);
        }
        let (ctx, a) = layer.attn.forward_with_ctx(&normed)?;
        store.record(&format!("layer{li}.attn.wo"), &ctx);
        x = x.add(&a)?;

        let normed = rms_norm(&x);
        let f = match &layer.ffn {
            FfnBlock::Dense(mlp) => {
                store.record(&format!("layer{li}.dense.w1"), &normed);
                store.record(&format!("layer{li}.dense.w3"), &normed);
                let (h, y) = mlp.forward_with_hidden(&normed)?;
                store.record(&format!("layer{li}.dense.w2"), &h);
                y
            }
            FfnBlock::Moe(moe) => {
                let tokens_n = normed.rows();
                let mut out = Matrix::zeros(tokens_n, d);
                // Same gather/scatter as MoeBlock::forward_counting, with
                // per-expert capture.
                let mut assignment: Vec<Vec<(usize, f32)>> =
                    vec![Vec::new(); moe.experts.len()];
                for t in 0..tokens_n {
                    for (e, gate) in moe.router.route(normed.row(t)) {
                        assignment[e].push((t, gate));
                    }
                }
                for (e, toks) in assignment.iter().enumerate() {
                    if toks.is_empty() {
                        continue;
                    }
                    let mut sub = Matrix::zeros(toks.len(), d);
                    for (i, &(t, _)) in toks.iter().enumerate() {
                        sub.row_mut(i).copy_from_slice(normed.row(t));
                    }
                    store.record(&format!("layer{li}.expert{e}.w1"), &sub);
                    store.record(&format!("layer{li}.expert{e}.w3"), &sub);
                    let (h, y) = moe.experts[e].forward_with_hidden(&sub)?;
                    store.record(&format!("layer{li}.expert{e}.w2"), &h);
                    for (i, &(t, gate)) in toks.iter().enumerate() {
                        for (o, v) in out.row_mut(t).iter_mut().zip(y.row(i)) {
                            *o += gate * v;
                        }
                    }
                }
                for (s, shared) in moe.shared.iter().enumerate() {
                    store.record(&format!("layer{li}.shared{s}.w1"), &normed);
                    store.record(&format!("layer{li}.shared{s}.w3"), &normed);
                    let (h, y) = shared.forward_with_hidden(&normed)?;
                    store.record(&format!("layer{li}.shared{s}.w2"), &h);
                    for t in 0..tokens_n {
                        for (o, v) in out.row_mut(t).iter_mut().zip(y.row(t)) {
                            *o += v;
                        }
                    }
                }
                out
            }
        };
        x = x.add(&f)?;
    }

    let final_x = rms_norm(&x);
    let logits = final_x.matmul(&model.head.transpose())?;
    Ok(Some(logits.scale(model.config.head_gain / (d as f32).sqrt())))
}

/// Captures activations for every quantizable weight by running the
/// corpus through the model, keeping at most `max_rows` rows per weight.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn capture_activations(
    model: &MoeModel,
    corpus: &[Vec<u32>],
    max_rows: usize,
) -> Result<HashMap<String, Matrix>> {
    let mut store = ActivationStore::new(max_rows);
    for seq in corpus {
        forward_capturing(model, seq, &mut store)?;
    }
    Ok(store.into_matrices())
}

/// Captures activations for the weights of a single layer only, running
/// the forward pass just far enough (`0..=layer`) and discarding other
/// layers' records. Used by sequential GPTQ.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn capture_layer_activations(
    model: &MoeModel,
    corpus: &[Vec<u32>],
    layer: usize,
    max_rows: usize,
) -> Result<HashMap<String, Matrix>> {
    let mut store = ActivationStore::new(max_rows);
    for seq in corpus {
        forward_capturing_until(model, seq, &mut store, layer + 1)?;
    }
    let prefix = format!("layer{layer}.");
    Ok(store
        .into_matrices()
        .into_iter()
        .filter(|(name, _)| name.starts_with(&prefix))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MoeConfig;
    use crate::tensors::layer_tensors;

    fn model() -> MoeModel {
        MoeModel::synthesize(&MoeConfig::tiny_deepseek(), 9)
    }

    #[test]
    fn capturing_forward_matches_plain_forward() {
        let m = model();
        let seq = [1u32, 5, 9, 2, 7, 30];
        let mut store = ActivationStore::new(64);
        let a = forward_capturing(&m, &seq, &mut store).unwrap();
        let b = m.forward(&seq).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn captured_names_match_layer_tensors() {
        let m = model();
        let corpus: Vec<Vec<u32>> = (0..4).map(|i| vec![i, i + 1, i + 2, i + 3]).collect();
        let acts = capture_activations(&m, &corpus, 64).unwrap();
        let names: std::collections::HashSet<String> =
            layer_tensors(&m, None).into_iter().map(|t| t.name).collect();
        for name in acts.keys() {
            assert!(names.contains(name), "captured unknown layer {name}");
        }
        // Dense and attention layers see every token, so they must be
        // captured; rarely-routed experts may legitimately be absent.
        assert!(acts.contains_key("layer0.attn.wq"));
        assert!(acts.contains_key("layer0.dense.w2"));
    }

    #[test]
    fn captured_widths_match_weight_input_dims() {
        let m = model();
        let corpus = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
        let acts = capture_activations(&m, &corpus, 32).unwrap();
        let tensors = layer_tensors(&m, None);
        for (name, x) in &acts {
            let t = tensors.iter().find(|t| &t.name == name).unwrap();
            assert_eq!(x.cols(), t.weight.cols(), "width mismatch for {name}");
        }
    }

    #[test]
    fn row_cap_is_respected() {
        let m = model();
        let corpus: Vec<Vec<u32>> = (0..30).map(|_| (0..32).collect()).collect();
        let acts = capture_activations(&m, &corpus, 10).unwrap();
        let tensors = layer_tensors(&m, None);
        for (name, x) in &acts {
            let width = tensors.iter().find(|t| &t.name == name).unwrap().weight.cols();
            let cap = 10usize.max(2 * width + 16);
            assert!(x.rows() <= cap, "{name}: {} rows exceeds cap {cap}", x.rows());
        }
        // The 64-wide attention inputs should actually hit their floor cap
        // (2·64 + 16 = 144) given 960 corpus tokens.
        assert_eq!(acts["layer0.attn.wq"].rows(), 144);
    }
}
