//! KV-cached incremental decoding.
//!
//! [`MoeModel::forward`] recomputes the whole prefix for every generated
//! token — O(L²) work per sequence of length L. Real serving (and the
//! paper's latency experiments, which measure exactly this path) caches
//! each layer's key/value projections so one decode step costs O(L).
//! [`DecodeState`] holds those caches; stepping through a sequence with
//! [`MoeModel::forward_step`] produces logits **bitwise identical** to
//! the batch forward pass (the per-position arithmetic is the same, in
//! the same order), which the tests assert.

use crate::attention::rms_norm;
use crate::model::{FfnBlock, MoeModel};
use crate::{MoeError, Result};
use milo_tensor::Matrix;

/// Per-layer key/value caches for one decoding stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecodeState {
    /// `kv[layer] = (keys, values)`, each `seen × d`, row per position.
    kv: Vec<(Vec<f32>, Vec<f32>)>,
    /// Number of positions processed so far.
    seen: usize,
    d_model: usize,
}

impl DecodeState {
    /// Creates an empty state for `model`.
    pub fn new(model: &MoeModel) -> Self {
        Self {
            kv: vec![(Vec::new(), Vec::new()); model.layers.len()],
            seen: 0,
            d_model: model.config.d_model,
        }
    }

    /// Number of tokens processed so far.
    pub fn len(&self) -> usize {
        self.seen
    }

    /// Whether no tokens have been processed yet.
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// Approximate memory held by the caches, in bytes.
    pub fn cache_bytes(&self) -> usize {
        self.kv.iter().map(|(k, v)| 4 * (k.len() + v.len())).sum()
    }
}

/// Causal attention for one new position against cached keys/values.
///
/// `q` is the new token's query row (`d` values); `keys`/`values` hold
/// `seen` rows of `d` values each, the new position's row included.
fn attend_step(q: &[f32], keys: &[f32], values: &[f32], n_heads: usize, d: usize) -> Vec<f32> {
    let seen = keys.len() / d;
    let hd = d / n_heads;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut ctx = vec![0.0f32; d];
    for h in 0..n_heads {
        let off = h * hd;
        let mut scores = Vec::with_capacity(seen);
        let mut max_s = f32::NEG_INFINITY;
        for j in 0..seen {
            let mut s = 0.0;
            for c in 0..hd {
                s += q[off + c] * keys[j * d + off + c];
            }
            let s = s * scale;
            max_s = max_s.max(s);
            scores.push(s);
        }
        let mut denom = 0.0;
        for s in &mut scores {
            *s = (*s - max_s).exp();
            denom += *s;
        }
        for (j, s) in scores.iter().enumerate() {
            let w = s / denom;
            for c in 0..hd {
                ctx[off + c] += w * values[j * d + off + c];
            }
        }
    }
    ctx
}

impl MoeModel {
    /// Processes one token incrementally, appending to `state`'s caches
    /// and returning this position's logits (`vocab` values). Stepping a
    /// sequence token by token yields the same logits as
    /// [`MoeModel::forward`] produces for the corresponding positions.
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::InvalidToken`] for out-of-vocabulary ids.
    pub fn forward_step(&self, token: u32, state: &mut DecodeState) -> Result<Vec<f32>> {
        if token as usize >= self.config.vocab {
            return Err(MoeError::InvalidToken { token, vocab: self.config.vocab });
        }
        debug_assert_eq!(state.kv.len(), self.layers.len(), "state/model mismatch");
        let d = self.config.d_model;
        debug_assert_eq!(state.d_model, d, "state built for a different model");

        let mut x = Matrix::zeros(1, d);
        x.row_mut(0).copy_from_slice(self.embed.row(token as usize));

        for (li, layer) in self.layers.iter().enumerate() {
            let normed = rms_norm(&x);
            let q = layer.attn.wq.matvec(normed.row(0))?;
            let k = layer.attn.wk.matvec(normed.row(0))?;
            let v = layer.attn.wv.matvec(normed.row(0))?;
            let (keys, values) = &mut state.kv[li];
            keys.extend_from_slice(&k);
            values.extend_from_slice(&v);
            let ctx = attend_step(&q, keys, values, layer.attn.n_heads(), d);
            let a = layer.attn.wo.matvec(&ctx)?;
            for (xv, av) in x.row_mut(0).iter_mut().zip(&a) {
                *xv += av;
            }

            let normed = rms_norm(&x);
            let f = match &layer.ffn {
                FfnBlock::Dense(mlp) => mlp.forward(&normed)?,
                FfnBlock::Moe(moe) => moe.forward_counting(&normed, None)?,
            };
            for (xv, fv) in x.row_mut(0).iter_mut().zip(f.row(0)) {
                *xv += fv;
            }
        }
        state.seen += 1;

        let final_x = rms_norm(&x);
        let logits = final_x.matmul(&self.head.transpose())?;
        let gain = self.config.head_gain / (d as f32).sqrt();
        Ok(logits.row(0).iter().map(|&l| l * gain).collect())
    }

    /// Runs a whole prefix through the cache, returning the last
    /// position's logits.
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::InvalidInput`] for an empty prefix and
    /// propagates per-token failures.
    pub fn prefill(&self, tokens: &[u32], state: &mut DecodeState) -> Result<Vec<f32>> {
        if tokens.is_empty() {
            return Err(MoeError::InvalidInput("empty prefix".into()));
        }
        let mut last = Vec::new();
        for &t in tokens {
            last = self.forward_step(t, state)?;
        }
        Ok(last)
    }

    /// KV-cached sampling: like [`MoeModel::sample`] but O(L) per step
    /// instead of O(L²). The logits differ from the batch path only by
    /// floating-point summation order, so sampled sequences can
    /// occasionally diverge at near-ties; use one path consistently
    /// within an experiment.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass failures.
    pub fn sample_cached(
        &self,
        prompt: &[u32],
        len: usize,
        temperature: f32,
        rng: &mut milo_tensor::rng::StdRng,
    ) -> Result<Vec<u32>> {
        let mut state = DecodeState::new(self);
        let mut logits = self.prefill(prompt, &mut state)?;
        let mut tokens = prompt.to_vec();
        for _ in 0..len {
            let next = crate::model::sample_from_logits(&logits, temperature, rng);
            tokens.push(next);
            logits = self.forward_step(next, &mut state)?;
        }
        Ok(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MoeConfig;

    fn model() -> MoeModel {
        MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 17)
    }

    #[test]
    fn stepped_logits_match_batch_forward() {
        let m = model();
        let tokens = [3u32, 9, 1, 44, 17, 2];
        let batch = m.forward(&tokens).unwrap();
        let mut state = DecodeState::new(&m);
        for (i, &t) in tokens.iter().enumerate() {
            let step = m.forward_step(t, &mut state).unwrap();
            for (a, b) in step.iter().zip(batch.row(i)) {
                assert!(
                    (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                    "position {i}: {a} vs {b}"
                );
            }
        }
        assert_eq!(state.len(), tokens.len());
    }

    #[test]
    fn deepseek_variant_also_matches() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_deepseek(), 18);
        let tokens = [5u32, 2, 61, 33];
        let batch = m.forward(&tokens).unwrap();
        let mut state = DecodeState::new(&m);
        let last = m.prefill(&tokens, &mut state).unwrap();
        for (a, b) in last.iter().zip(batch.row(tokens.len() - 1)) {
            assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn cache_grows_linearly() {
        let m = model();
        let mut state = DecodeState::new(&m);
        m.forward_step(1, &mut state).unwrap();
        let one = state.cache_bytes();
        m.forward_step(2, &mut state).unwrap();
        assert_eq!(state.cache_bytes(), 2 * one);
        assert!(!state.is_empty());
    }

    #[test]
    fn invalid_token_is_rejected() {
        let m = model();
        let mut state = DecodeState::new(&m);
        assert!(m.forward_step(9999, &mut state).is_err());
        assert!(m.prefill(&[], &mut state).is_err());
    }
}
