//! Expert health tracking and fault-handling policy for resilient
//! serving.
//!
//! A production MoE server keeps answering queries when a single expert
//! produces garbage (bit-flipped weights, NaN activations) or its worker
//! panics. This module provides the bookkeeping for that: a
//! [`FaultMode`] policy choosing between failing fast and degrading
//! gracefully, a [`HealthTracker`] recording which `(layer, expert)`
//! pairs have been quarantined and why, and [`InjectedFault`] hooks the
//! deterministic fault-injection harness (`milo-faults`) uses to
//! exercise the recovery paths.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// What the forward pass does when an expert fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail the whole request with a typed
    /// [`MoeError::ExpertFailed`](crate::MoeError::ExpertFailed).
    Strict,
    /// Quarantine the expert, renormalize the router's top-k mass over
    /// the survivors, and keep serving.
    Degrade,
}

/// The kind of fault an [`InjectedFault`] simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The expert's worker panics mid-dispatch.
    Panic,
    /// The expert returns an output poisoned with NaN.
    NanOutput,
}

/// A deterministic fault wired into a specific expert of a specific
/// layer, consulted by the resilient forward paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Transformer layer index.
    pub layer: usize,
    /// Expert index within the layer (routed experts come first; shared
    /// experts follow at `n_experts + s`).
    pub expert: usize,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// Records quarantined experts as `(layer, expert) → reason`.
///
/// Shared by the dispatch workers (reads) and the supervising thread
/// (writes), hence the internal mutex. Quarantine is sticky: once an
/// expert fails it is skipped by every later token and layer pass.
#[derive(Debug, Default)]
pub struct HealthTracker {
    failed: Mutex<BTreeMap<(usize, usize), String>>,
}

impl HealthTracker {
    /// Creates a tracker with every expert healthy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Quarantines an expert. The first recorded reason wins.
    ///
    /// A quarantine used to be invisible outside the tracker itself; a
    /// *new* quarantine now also emits telemetry — a
    /// `moe.quarantine.total` counter tick and, at trace level, a
    /// structured instant event carrying the layer, expert, and reason —
    /// so `milo-cli stats` and trace consumers can see degraded capacity.
    pub fn record(&self, layer: usize, expert: usize, reason: impl Into<String>) {
        let reason = reason.into();
        let mut map = self.failed.lock().expect("health tracker lock");
        if map.contains_key(&(layer, expert)) {
            return; // sticky: re-records are not new quarantines
        }
        map.insert((layer, expert), reason.clone());
        drop(map);
        milo_obs::counter_inc("moe.quarantine.total");
        milo_obs::trace::push_instant(
            "moe.quarantine",
            &[
                ("layer", milo_obs::trace::ArgValue::Num(layer as f64)),
                ("expert", milo_obs::trace::ArgValue::Num(expert as f64)),
                ("reason", milo_obs::trace::ArgValue::Str(reason)),
            ],
        );
    }

    /// Whether the expert has been quarantined.
    pub fn is_failed(&self, layer: usize, expert: usize) -> bool {
        self.failed.lock().expect("health tracker lock").contains_key(&(layer, expert))
    }

    /// Number of quarantined experts.
    pub fn n_failed(&self) -> usize {
        self.failed.lock().expect("health tracker lock").len()
    }

    /// Snapshot of all quarantined experts in `(layer, expert)` order.
    pub fn failures(&self) -> Vec<((usize, usize), String)> {
        self.failed
            .lock()
            .expect("health tracker lock")
            .iter()
            .map(|(&k, v)| (k, v.clone()))
            .collect()
    }
}

/// Everything the resilient forward paths need to decide how to react
/// to a failing expert: the policy, the quarantine ledger, and any
/// injected faults driving a test.
#[derive(Debug)]
pub struct ResilienceContext {
    /// Fail-fast or degrade.
    pub mode: FaultMode,
    /// Sticky per-expert quarantine ledger.
    pub health: HealthTracker,
    /// Faults to simulate, consulted at dispatch time.
    pub injected: Vec<InjectedFault>,
}

impl ResilienceContext {
    /// A context with the given policy, no quarantined experts, and no
    /// injected faults.
    pub fn new(mode: FaultMode) -> Self {
        Self { mode, health: HealthTracker::new(), injected: Vec::new() }
    }

    /// Shorthand for a fail-fast context.
    pub fn strict() -> Self {
        Self::new(FaultMode::Strict)
    }

    /// Shorthand for a graceful-degradation context.
    pub fn degrade() -> Self {
        Self::new(FaultMode::Degrade)
    }

    /// Adds an injected fault (builder style).
    #[must_use]
    pub fn with_fault(mut self, fault: InjectedFault) -> Self {
        self.injected.push(fault);
        self
    }

    /// The fault kind injected into `(layer, expert)`, if any.
    pub fn injected_kind(&self, layer: usize, expert: usize) -> Option<FaultKind> {
        self.injected
            .iter()
            .find(|f| f.layer == layer && f.expert == expert)
            .map(|f| f.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_is_sticky_and_first_reason_wins() {
        let h = HealthTracker::new();
        assert!(!h.is_failed(0, 3));
        h.record(0, 3, "nan output");
        h.record(0, 3, "second reason");
        assert!(h.is_failed(0, 3));
        assert_eq!(h.n_failed(), 1);
        assert_eq!(h.failures(), vec![((0, 3), "nan output".to_string())]);
    }

    #[test]
    fn injected_faults_are_looked_up_by_layer_and_expert() {
        let ctx = ResilienceContext::degrade()
            .with_fault(InjectedFault { layer: 1, expert: 2, kind: FaultKind::Panic });
        assert_eq!(ctx.injected_kind(1, 2), Some(FaultKind::Panic));
        assert_eq!(ctx.injected_kind(1, 3), None);
        assert_eq!(ctx.injected_kind(0, 2), None);
    }

    #[test]
    fn tracker_is_shared_across_threads() {
        let h = HealthTracker::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let h = &h;
                s.spawn(move || h.record(0, i, format!("worker {i}")));
            }
        });
        assert_eq!(h.n_failed(), 4);
    }
}
