//! Expert health tracking and fault-handling policy for resilient
//! serving.
//!
//! A production MoE server keeps answering queries when a single expert
//! produces garbage (bit-flipped weights, NaN activations) or its worker
//! panics. This module provides the bookkeeping for that: a
//! [`FaultMode`] policy choosing between failing fast and degrading
//! gracefully, a [`HealthTracker`] that is a per-expert **circuit
//! breaker** (closed → open → half-open, with probe-based recovery), a
//! [`CancelToken`] propagating per-request deadlines into the forward
//! path, and [`InjectedFault`] hooks the deterministic fault-injection
//! harness (`milo-faults`) uses to exercise the recovery paths.
//!
//! # Circuit-breaker state machine
//!
//! ```text
//!            failure (record)
//!   Closed ──────────────────────▶ Open ◀───────────────┐
//!      ▲                            │                   │
//!      │                            │ cooldown ticks    │ probe fails
//!      │ probe succeeds             │ elapse (tick)     │ (record;
//!      │ (probe_succeeded)          ▼                   │  cooldown ×2)
//!      └───────────────────── Half-open ────────────────┘
//! ```
//!
//! * **Closed** — healthy; the expert is dispatched normally.
//! * **Open** — quarantined; the expert is skipped, its gate mass is
//!   renormalized over survivors. Each [`HealthTracker::tick`] (one per
//!   served request) decrements the cooldown.
//! * **Half-open** — the cooldown elapsed; the *next* request that
//!   routes to the expert dispatches it as a probe. Success closes the
//!   breaker ([`HealthTracker::probe_succeeded`]); another failure
//!   re-opens it with the cooldown doubled (capped).
//!
//! A tracker built with [`HealthTracker::new`] has **no cooldown**
//! (sticky quarantine, the pre-breaker behaviour); serving layers opt
//! into recovery with [`HealthTracker::with_cooldown`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What the forward pass does when an expert fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail the whole request with a typed
    /// [`MoeError::ExpertFailed`](crate::MoeError::ExpertFailed).
    Strict,
    /// Quarantine the expert, renormalize the router's top-k mass over
    /// the survivors, and keep serving.
    Degrade,
}

/// The kind of fault an [`InjectedFault`] simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The expert's worker panics mid-dispatch.
    Panic,
    /// The expert returns an output poisoned with NaN.
    NanOutput,
    /// The expert's forward is delayed by `millis` milliseconds before
    /// computing (a slow or stalled worker). The delay sleeps in small
    /// slices and aborts early if the request's [`CancelToken`] fires,
    /// so a stalled expert cannot hold a worker hostage much past its
    /// deadline. The output itself is *correct* — latency faults
    /// exercise deadline and watchdog paths, not value guards.
    Slow {
        /// Injected delay in milliseconds.
        millis: u64,
    },
}

/// A deterministic fault wired into a specific expert of a specific
/// layer, consulted by the resilient forward paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Transformer layer index.
    pub layer: usize,
    /// Expert index within the layer (routed experts come first; shared
    /// experts follow at `n_experts + s`).
    pub expert: usize,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// Circuit-breaker state of one `(layer, expert)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: dispatched normally.
    Closed,
    /// Quarantined: skipped by every forward pass.
    Open,
    /// Cooldown elapsed: the next dispatch is a recovery probe.
    HalfOpen,
}

/// Internal ledger entry for a non-closed breaker.
#[derive(Debug)]
struct BreakerEntry {
    /// `true` while half-open (probing); `false` while open.
    half_open: bool,
    /// First recorded failure reason (sticky across re-records).
    reason: String,
    /// Number of times the breaker has tripped (first failure plus every
    /// failed probe); scales the cooldown.
    trips: u32,
    /// Remaining [`HealthTracker::tick`] calls before open → half-open.
    cooldown_left: u64,
}

/// Per-expert circuit breakers keyed by `(layer, expert)`.
///
/// Shared by the dispatch workers (reads) and the supervising threads
/// (writes), hence the internal mutex; an atomic entry count gives the
/// hot healthy path a lock-free fast exit.
///
/// Telemetry: a *new* quarantine ticks `moe.quarantine.total` and emits
/// a structured `moe.quarantine` instant event; breaker transitions tick
/// `moe.breaker.half_open.total` / `moe.breaker.recovered.total` /
/// `moe.breaker.reopened.total` and emit `moe.breaker` instant events
/// carrying the layer, expert, and new state.
#[derive(Debug, Default)]
pub struct HealthTracker {
    entries: Mutex<BTreeMap<(usize, usize), BreakerEntry>>,
    /// Lock-free mirror of `entries.len()` so `probe_succeeded` and
    /// `tick` are a single relaxed load on the healthy path.
    n_entries: AtomicUsize,
    /// Base cooldown in ticks; 0 = sticky quarantine (never half-open).
    cooldown: u64,
    /// Cumulative transition counts, independent of telemetry level, so
    /// soak drivers can assert a full quarantine → half-open → recovered
    /// cycle without sampling the (transient) states.
    trips_total: AtomicUsize,
    half_open_total: AtomicUsize,
    recovered_total: AtomicUsize,
}

/// Emits a breaker state-transition instant event (trace level only).
fn breaker_event(layer: usize, expert: usize, state: &str) {
    milo_obs::trace::push_instant(
        "moe.breaker",
        &[
            ("layer", milo_obs::trace::ArgValue::Num(layer as f64)),
            ("expert", milo_obs::trace::ArgValue::Num(expert as f64)),
            ("state", milo_obs::trace::ArgValue::Str(state.to_string())),
        ],
    );
}

impl HealthTracker {
    /// Creates a tracker with every expert healthy and **sticky**
    /// quarantine (no recovery; the pre-breaker behaviour).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracker whose breakers move open → half-open after
    /// `cooldown` ticks (one tick per served request in `milo-serve`).
    /// `cooldown = 0` means sticky quarantine.
    pub fn with_cooldown(cooldown: u64) -> Self {
        Self { cooldown, ..Self::default() }
    }

    /// The configured base cooldown (ticks), 0 when sticky.
    pub fn cooldown(&self) -> u64 {
        self.cooldown
    }

    /// Records an expert failure. The first recorded reason wins.
    ///
    /// * **Closed → Open**: a new quarantine; emits the quarantine
    ///   telemetry described on the type.
    /// * **Half-open → Open**: the recovery probe failed; the cooldown
    ///   restarts doubled (capped at 64× the base) and a `reopened`
    ///   transition is emitted.
    /// * **Open → Open**: sticky; re-records are not new quarantines.
    pub fn record(&self, layer: usize, expert: usize, reason: impl Into<String>) {
        let reason = reason.into();
        let mut map = self.entries.lock().expect("health tracker lock");
        match map.get_mut(&(layer, expert)) {
            Some(entry) if entry.half_open => {
                // Failed probe: re-open with escalated cooldown.
                entry.half_open = false;
                entry.trips = entry.trips.saturating_add(1);
                let scale = 1u64 << (entry.trips - 1).min(6);
                entry.cooldown_left = self.cooldown.saturating_mul(scale);
                drop(map);
                self.trips_total.fetch_add(1, Ordering::Relaxed);
                milo_obs::counter_inc("moe.breaker.reopened.total");
                if milo_obs::tracing() {
                    breaker_event(layer, expert, "open");
                }
            }
            Some(_) => {} // sticky: already open
            None => {
                map.insert(
                    (layer, expert),
                    BreakerEntry {
                        half_open: false,
                        reason: reason.clone(),
                        trips: 1,
                        cooldown_left: self.cooldown,
                    },
                );
                self.n_entries.store(map.len(), Ordering::Relaxed);
                drop(map);
                self.trips_total.fetch_add(1, Ordering::Relaxed);
                milo_obs::counter_inc("moe.quarantine.total");
                milo_obs::trace::push_instant(
                    "moe.quarantine",
                    &[
                        ("layer", milo_obs::trace::ArgValue::Num(layer as f64)),
                        ("expert", milo_obs::trace::ArgValue::Num(expert as f64)),
                        ("reason", milo_obs::trace::ArgValue::Str(reason)),
                    ],
                );
            }
        }
    }

    /// Whether the expert is quarantined (breaker **open**). A half-open
    /// expert reports healthy so the next forward pass dispatches it as
    /// its recovery probe.
    pub fn is_failed(&self, layer: usize, expert: usize) -> bool {
        if self.n_entries.load(Ordering::Relaxed) == 0 {
            return false;
        }
        self.entries
            .lock()
            .expect("health tracker lock")
            .get(&(layer, expert))
            .is_some_and(|e| !e.half_open)
    }

    /// The breaker state of `(layer, expert)`.
    pub fn state(&self, layer: usize, expert: usize) -> BreakerState {
        if self.n_entries.load(Ordering::Relaxed) == 0 {
            return BreakerState::Closed;
        }
        match self.entries.lock().expect("health tracker lock").get(&(layer, expert)) {
            None => BreakerState::Closed,
            Some(e) if e.half_open => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// Advances every open breaker by one cooldown tick; breakers whose
    /// cooldown elapses move to half-open (next dispatch probes). Called
    /// once per served request by the serving layer. No-op for sticky
    /// trackers (`cooldown == 0`) and when every expert is healthy.
    pub fn tick(&self) {
        if self.cooldown == 0 || self.n_entries.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut transitions: Vec<(usize, usize)> = Vec::new();
        {
            let mut map = self.entries.lock().expect("health tracker lock");
            for (&(layer, expert), entry) in map.iter_mut() {
                if entry.half_open {
                    continue;
                }
                entry.cooldown_left = entry.cooldown_left.saturating_sub(1);
                if entry.cooldown_left == 0 {
                    entry.half_open = true;
                    transitions.push((layer, expert));
                }
            }
        }
        for (layer, expert) in transitions {
            self.half_open_total.fetch_add(1, Ordering::Relaxed);
            milo_obs::counter_inc("moe.breaker.half_open.total");
            if milo_obs::tracing() {
                breaker_event(layer, expert, "half_open");
            }
        }
    }

    /// Reports a successful dispatch of `(layer, expert)`. Closes the
    /// breaker (returns `true`) if it was half-open — the recovery probe
    /// passed; no-op (returns `false`) otherwise. The forward paths call
    /// this for every expert that completes cleanly, which is what makes
    /// half-open probes self-resolving.
    pub fn probe_succeeded(&self, layer: usize, expert: usize) -> bool {
        if self.n_entries.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let mut map = self.entries.lock().expect("health tracker lock");
        let Some(entry) = map.get(&(layer, expert)) else { return false };
        if !entry.half_open {
            return false;
        }
        map.remove(&(layer, expert));
        self.n_entries.store(map.len(), Ordering::Relaxed);
        drop(map);
        self.recovered_total.fetch_add(1, Ordering::Relaxed);
        milo_obs::counter_inc("moe.breaker.recovered.total");
        if milo_obs::tracing() {
            breaker_event(layer, expert, "closed");
        }
        true
    }

    /// Cumulative breaker trips (first quarantines plus failed probes).
    pub fn trips_total(&self) -> usize {
        self.trips_total.load(Ordering::Relaxed)
    }

    /// Cumulative open → half-open transitions.
    pub fn half_open_total(&self) -> usize {
        self.half_open_total.load(Ordering::Relaxed)
    }

    /// Cumulative half-open → closed recoveries (successful probes;
    /// [`reset`](HealthTracker::reset) is not counted).
    pub fn recovered_total(&self) -> usize {
        self.recovered_total.load(Ordering::Relaxed)
    }

    /// Force-closes the breaker for `(layer, expert)` regardless of
    /// state, returning `true` if an entry was removed. This is the
    /// operator override (and the half-open probe path's test hook); it
    /// emits a `closed` transition when it actually clears something.
    pub fn reset(&self, layer: usize, expert: usize) -> bool {
        let mut map = self.entries.lock().expect("health tracker lock");
        let removed = map.remove(&(layer, expert)).is_some();
        self.n_entries.store(map.len(), Ordering::Relaxed);
        drop(map);
        if removed {
            milo_obs::counter_inc("moe.breaker.reset.total");
            if milo_obs::tracing() {
                breaker_event(layer, expert, "closed");
            }
        }
        removed
    }

    /// Number of non-closed experts (open or half-open).
    pub fn n_failed(&self) -> usize {
        self.n_entries.load(Ordering::Relaxed)
    }

    /// Snapshot of all non-closed experts in `(layer, expert)` order with
    /// their first failure reason.
    pub fn failures(&self) -> Vec<((usize, usize), String)> {
        self.entries
            .lock()
            .expect("health tracker lock")
            .iter()
            .map(|(&k, v)| (k, v.reason.clone()))
            .collect()
    }
}

/// A cooperative cancellation token carried by a request: an explicit
/// cancel flag (set by a watchdog or a client) plus an optional hard
/// deadline. The resilient forward paths check it at every layer
/// boundary, so a cancelled or expired request unwinds with a typed
/// error within one layer's compute time instead of running to
/// completion.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires on its own (cancel is still manual).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that reports cancelled once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self { flag: Arc::new(AtomicBool::new(false)), deadline: Some(deadline) }
    }

    /// The hard deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Sets the cancel flag. Clones share the flag, so a watchdog can
    /// cancel a request it only holds a clone of.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the explicit flag was set (deadline not consulted).
    pub fn cancel_requested(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Whether the request should stop: explicitly cancelled or past its
    /// deadline.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time remaining until the deadline (`None` = no deadline;
    /// `Some(ZERO)` = already expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// Everything the resilient forward paths need to decide how to react
/// to a failing expert: the policy, the quarantine ledger, any injected
/// faults driving a test, and the request's cancellation token.
#[derive(Debug)]
pub struct ResilienceContext {
    /// Fail-fast or degrade.
    pub mode: FaultMode,
    /// Per-expert circuit-breaker ledger. Behind an [`Arc`] so a serving
    /// layer can share one tracker across many per-request contexts.
    pub health: Arc<HealthTracker>,
    /// Faults to simulate, consulted at dispatch time.
    pub injected: Vec<InjectedFault>,
    /// Cooperative cancellation, checked at layer boundaries.
    pub cancel: Option<CancelToken>,
}

impl ResilienceContext {
    /// A context with the given policy, no quarantined experts, and no
    /// injected faults.
    pub fn new(mode: FaultMode) -> Self {
        Self { mode, health: Arc::new(HealthTracker::new()), injected: Vec::new(), cancel: None }
    }

    /// A context sharing an existing health tracker (how `milo-serve`
    /// builds one context per request over one set of breakers).
    pub fn with_shared_health(mode: FaultMode, health: Arc<HealthTracker>) -> Self {
        Self { mode, health, injected: Vec::new(), cancel: None }
    }

    /// Shorthand for a fail-fast context.
    pub fn strict() -> Self {
        Self::new(FaultMode::Strict)
    }

    /// Shorthand for a graceful-degradation context.
    pub fn degrade() -> Self {
        Self::new(FaultMode::Degrade)
    }

    /// Adds an injected fault (builder style).
    #[must_use]
    pub fn with_fault(mut self, fault: InjectedFault) -> Self {
        self.injected.push(fault);
        self
    }

    /// Attaches a cancellation token (builder style).
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The fault kind injected into `(layer, expert)`, if any.
    pub fn injected_kind(&self, layer: usize, expert: usize) -> Option<FaultKind> {
        self.injected
            .iter()
            .find(|f| f.layer == layer && f.expert == expert)
            .map(|f| f.kind)
    }

    /// Whether the request was cancelled or its deadline passed.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Sleeps up to `delay`, waking early (in ≤1 ms) if the request is
    /// cancelled. Injected [`FaultKind::Slow`] delays run through this so
    /// a stalled expert releases its worker promptly once the watchdog
    /// fires.
    pub fn sleep_interruptible(&self, delay: Duration) {
        const SLICE: Duration = Duration::from_millis(1);
        let until = Instant::now() + delay;
        loop {
            if self.is_cancelled() {
                return;
            }
            let now = Instant::now();
            if now >= until {
                return;
            }
            std::thread::sleep(SLICE.min(until - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_is_sticky_and_first_reason_wins() {
        let h = HealthTracker::new();
        assert!(!h.is_failed(0, 3));
        h.record(0, 3, "nan output");
        h.record(0, 3, "second reason");
        assert!(h.is_failed(0, 3));
        assert_eq!(h.n_failed(), 1);
        assert_eq!(h.failures(), vec![((0, 3), "nan output".to_string())]);
        // Sticky tracker: ticks never open a probe window.
        for _ in 0..100 {
            h.tick();
        }
        assert_eq!(h.state(0, 3), BreakerState::Open);
        assert!(!h.probe_succeeded(0, 3));
    }

    #[test]
    fn injected_faults_are_looked_up_by_layer_and_expert() {
        let ctx = ResilienceContext::degrade()
            .with_fault(InjectedFault { layer: 1, expert: 2, kind: FaultKind::Panic });
        assert_eq!(ctx.injected_kind(1, 2), Some(FaultKind::Panic));
        assert_eq!(ctx.injected_kind(1, 3), None);
        assert_eq!(ctx.injected_kind(0, 2), None);
    }

    #[test]
    fn tracker_is_shared_across_threads() {
        let h = HealthTracker::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let h = &h;
                s.spawn(move || h.record(0, i, format!("worker {i}")));
            }
        });
        assert_eq!(h.n_failed(), 4);
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let h = HealthTracker::with_cooldown(3);
        assert_eq!(h.state(1, 2), BreakerState::Closed);
        h.record(1, 2, "panic");
        assert_eq!(h.state(1, 2), BreakerState::Open);
        assert!(h.is_failed(1, 2));
        h.tick();
        h.tick();
        assert_eq!(h.state(1, 2), BreakerState::Open, "cooldown not yet elapsed");
        h.tick();
        assert_eq!(h.state(1, 2), BreakerState::HalfOpen);
        // Half-open experts dispatch (probe), so they report healthy.
        assert!(!h.is_failed(1, 2));
        assert!(h.probe_succeeded(1, 2), "probe should close the breaker");
        assert_eq!(h.state(1, 2), BreakerState::Closed);
        assert_eq!(h.n_failed(), 0);
    }

    #[test]
    fn failed_probe_reopens_with_doubled_cooldown() {
        let h = HealthTracker::with_cooldown(2);
        h.record(0, 0, "first failure");
        h.tick();
        h.tick();
        assert_eq!(h.state(0, 0), BreakerState::HalfOpen);
        // Probe fails: breaker re-opens and now needs 2 * 2 = 4 ticks.
        h.record(0, 0, "probe failed");
        assert_eq!(h.state(0, 0), BreakerState::Open);
        for _ in 0..3 {
            h.tick();
            assert_eq!(h.state(0, 0), BreakerState::Open);
        }
        h.tick();
        assert_eq!(h.state(0, 0), BreakerState::HalfOpen);
        // The first reason is still the sticky one.
        assert_eq!(h.failures()[0].1, "first failure");
    }

    #[test]
    fn reset_force_closes_any_state() {
        let h = HealthTracker::with_cooldown(5);
        assert!(!h.reset(0, 7), "nothing to reset");
        h.record(0, 7, "dead");
        assert!(h.is_failed(0, 7));
        assert!(h.reset(0, 7));
        assert_eq!(h.state(0, 7), BreakerState::Closed);
        assert_eq!(h.n_failed(), 0);
        // Reset also clears a half-open probe window.
        h.record(1, 1, "dead");
        for _ in 0..5 {
            h.tick();
        }
        assert_eq!(h.state(1, 1), BreakerState::HalfOpen);
        assert!(h.reset(1, 1));
        assert_eq!(h.state(1, 1), BreakerState::Closed);
    }

    #[test]
    fn probe_succeeded_ignores_closed_and_open_experts() {
        let h = HealthTracker::with_cooldown(4);
        assert!(!h.probe_succeeded(0, 0), "closed expert is not a probe");
        h.record(0, 0, "x");
        assert!(!h.probe_succeeded(0, 0), "open expert is not probing yet");
        assert_eq!(h.state(0, 0), BreakerState::Open);
    }

    #[test]
    fn cancel_token_flag_and_deadline() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled(), "clones share the flag");

        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_cancelled());
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
        assert!(!expired.cancel_requested(), "deadline expiry is not an explicit cancel");

        let live = CancelToken::with_deadline(Instant::now() + Duration::from_secs(60));
        assert!(!live.is_cancelled());
        assert!(live.remaining().unwrap() > Duration::from_secs(59));
    }

    #[test]
    fn interruptible_sleep_exits_early_on_cancel() {
        let token = CancelToken::new();
        let ctx = ResilienceContext::degrade().with_cancel(token.clone());
        let start = Instant::now();
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                token.cancel();
            });
            ctx.sleep_interruptible(Duration::from_secs(30));
        });
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "sleep should abort shortly after cancel, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn shared_health_context_sees_cross_context_quarantines() {
        let shared = Arc::new(HealthTracker::with_cooldown(2));
        let a = ResilienceContext::with_shared_health(FaultMode::Degrade, Arc::clone(&shared));
        let b = ResilienceContext::with_shared_health(FaultMode::Degrade, Arc::clone(&shared));
        a.health.record(0, 1, "dead");
        assert!(b.health.is_failed(0, 1));
        assert_eq!(shared.n_failed(), 1);
    }
}
