//! Mixture-of-Experts transformer substrate.
//!
//! The paper evaluates MiLo on Mixtral-8×7B and DeepSeek-MoE. Neither
//! checkpoint (nor a GPU to run them) is available in this environment,
//! so this crate provides the substitution described in `DESIGN.md`:
//! scaled-down synthetic MoE transformers whose *per-layer weight
//! statistics* and *routing behaviour* are controlled to match the
//! paper's analysis:
//!
//! * attention projections are heavy-tailed (Student-t), experts are
//!   light-tailed (uniform), shared experts in between — matching the
//!   kurtosis ordering of paper Table 2;
//! * routers carry a per-expert bias so activation frequencies are
//!   skewed, strongly so for the DeepSeek-like fine-grained
//!   configuration — matching paper Fig. 3 (≈12× max/min frequency);
//! * the architecture skeleton matches: Mixtral-like (8 experts, top-2)
//!   and DeepSeek-like (64 routed experts top-6, 2 shared experts, first
//!   layer dense).
//!
//! Everything MiLo consumes — weight matrices, layer-kind metadata,
//! kurtosis, expert frequencies — is exercised on the same code paths the
//! real models would use.
//!
//! Modules:
//!
//! * [`config`] — architecture configurations and the scaled presets.
//! * [`mlp`] — the SwiGLU feed-forward block (`w2·(silu(w1·x) ⊙ w3·x)`).
//! * [`attention`] — multi-head causal self-attention.
//! * [`router`] — top-k softmax routing with per-expert bias.
//! * [`model`] — the full transformer, synthesis, and the forward pass.
//! * [`profile`] — expert-activation-frequency profiling (paper Fig. 3).
//! * [`tensors`] — enumeration of quantizable weights as
//!   [`milo_core::LayerTensor`]s and substitution of compressed weights.

#![warn(missing_docs)]

pub mod attention;
pub mod capture;
pub mod config;
pub mod decode;
pub mod health;
pub mod mlp;
pub mod model;
pub mod profile;
pub mod prune;
pub mod router;
pub mod serialize;
pub mod tensors;

pub use capture::{capture_activations, capture_layer_activations, ActivationStore};
pub use config::MoeConfig;
pub use decode::DecodeState;
pub use health::{
    BreakerState, CancelToken, FaultKind, FaultMode, HealthTracker, InjectedFault,
    ResilienceContext,
};
pub use model::{FfnBlock, MoeBlock, MoeModel, TransformerLayer};
pub use profile::{profile_expert_frequency, FrequencyProfile};
pub use tensors::{apply_compressed, layer_tensors};

/// Errors produced by the MoE substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MoeError {
    /// A token id is outside the vocabulary.
    InvalidToken {
        /// The offending token id.
        token: u32,
        /// The model's vocabulary size.
        vocab: usize,
    },
    /// An input sequence is empty or otherwise unusable.
    InvalidInput(String),
    /// A weight substitution referenced an unknown layer or had the wrong
    /// shape.
    WeightMismatch(String),
    /// An underlying tensor operation failed.
    Tensor(milo_tensor::TensorError),
    /// An expert failed during dispatch (panic, non-finite output, or
    /// tensor error) and the fault mode is
    /// [`FaultMode::Strict`](health::FaultMode::Strict).
    ExpertFailed {
        /// Transformer layer index.
        layer: usize,
        /// Expert index within the layer (routed first, then shared).
        expert: usize,
        /// Human-readable failure cause.
        reason: String,
    },
    /// The request's [`CancelToken`](health::CancelToken) fired (deadline
    /// passed or a watchdog cancelled it); the forward pass unwound at a
    /// layer boundary.
    Cancelled {
        /// The layer boundary at which the cancellation was observed
        /// (`n_layers` = the pre-head check after the last layer).
        layer: usize,
    },
}

impl std::fmt::Display for MoeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoeError::InvalidToken { token, vocab } => {
                write!(f, "token {token} out of vocabulary (size {vocab})")
            }
            MoeError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            MoeError::WeightMismatch(msg) => write!(f, "weight mismatch: {msg}"),
            MoeError::Tensor(e) => write!(f, "tensor error: {e}"),
            MoeError::ExpertFailed { layer, expert, reason } => {
                write!(f, "expert {expert} of layer {layer} failed: {reason}")
            }
            MoeError::Cancelled { layer } => {
                write!(f, "request cancelled at layer boundary {layer}")
            }
        }
    }
}

impl std::error::Error for MoeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MoeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<milo_tensor::TensorError> for MoeError {
    fn from(e: milo_tensor::TensorError) -> Self {
        MoeError::Tensor(e)
    }
}

/// Convenient result alias for MoE operations.
pub type Result<T> = std::result::Result<T, MoeError>;
