//! Top-k softmax expert routing.
//!
//! Each token's routing logits are `W_r · x + b`, where the per-expert
//! bias `b` is the synthesis knob that reproduces the skewed activation
//! frequencies of paper Fig. 3 (DeepSeek-MoE's most-used expert fires
//! 11.7× more often than its least-used sibling). The selected experts'
//! weights are the softmax of their logits renormalized over the top-k,
//! as in Mixtral.

use crate::{MoeError, Result};
use milo_tensor::Matrix;

/// A top-k router over `n_experts`.
#[derive(Debug, Clone, PartialEq)]
pub struct Router {
    /// Routing projection, `n_experts × d`.
    pub weight: Matrix,
    /// Per-expert logit bias, length `n_experts`.
    pub bias: Vec<f32>,
    top_k: usize,
}

impl Router {
    /// Creates a router.
    ///
    /// # Panics
    ///
    /// Panics if the bias length does not match the expert count or
    /// `top_k` is zero or exceeds the expert count.
    pub fn new(weight: Matrix, bias: Vec<f32>, top_k: usize) -> Self {
        assert_eq!(weight.rows(), bias.len(), "one bias per expert");
        assert!(top_k >= 1 && top_k <= weight.rows(), "invalid top_k {top_k}");
        Self { weight, bias, top_k }
    }

    /// Number of experts.
    pub fn n_experts(&self) -> usize {
        self.weight.rows()
    }

    /// Router top-k.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Routes one token vector, returning `(expert index, gate weight)`
    /// pairs for the top-k experts. Gate weights are softmax-normalized
    /// over the selected experts and sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if the token dimension does not match the router weight
    /// width (a structural invariant of a well-formed model). Use
    /// [`Router::try_route`] for the fallible variant that also rejects
    /// non-finite routing logits.
    pub fn route(&self, x: &[f32]) -> Vec<(usize, f32)> {
        let logits = self
            .weight
            .matvec(x)
            .expect("router weight width matches token dim");
        self.select(&logits)
    }

    /// Fallible routing: returns a typed error instead of panicking on a
    /// dimension mismatch, and rejects non-finite routing logits (a NaN
    /// or Inf activation reaching the router would otherwise silently
    /// poison every gate weight downstream).
    ///
    /// # Errors
    ///
    /// [`MoeError::Tensor`] on a dimension mismatch,
    /// [`MoeError::InvalidInput`] if any routing logit is non-finite.
    pub fn try_route(&self, x: &[f32]) -> Result<Vec<(usize, f32)>> {
        let base = self.weight.matvec(x)?;
        let logits: Vec<f32> =
            base.iter().zip(&self.bias).map(|(l, b)| l + b).collect();
        if let Some(i) = logits.iter().position(|l| !l.is_finite()) {
            return Err(MoeError::InvalidInput(format!(
                "non-finite routing logit for expert {i}"
            )));
        }
        Ok(self.pick_top_k(&logits))
    }

    fn select(&self, base: &[f32]) -> Vec<(usize, f32)> {
        let logits: Vec<f32> =
            base.iter().zip(&self.bias).map(|(l, b)| l + b).collect();
        self.pick_top_k(&logits)
    }

    /// Top-k selection + softmax over the selected logits. Uses a total
    /// order so a stray NaN cannot panic the comparator (NaNs sort
    /// deterministically; `try_route` screens them out before this).
    fn pick_top_k(&self, logits: &[f32]) -> Vec<(usize, f32)> {
        let mut order: Vec<usize> = (0..logits.len()).collect();
        order.sort_by(|&a, &b| logits[b].total_cmp(&logits[a]));
        let selected = &order[..self.top_k];
        let max_l = logits[selected[0]];
        let exps: Vec<f32> = selected.iter().map(|&i| (logits[i] - max_l).exp()).collect();
        let denom: f32 = exps.iter().sum();
        selected.iter().zip(&exps).map(|(&i, &e)| (i, e / denom)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;

    fn router(n: usize, d: usize, top_k: usize, bias_std: f32, seed: u64) -> Router {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        let w = WeightDist::Gaussian { std: 0.5 }.sample_matrix(n, d, &mut rng);
        let bias: Vec<f32> = (0..n)
            .map(|_| WeightDist::Gaussian { std: bias_std }.sample(&mut rng))
            .collect();
        Router::new(w, bias, top_k)
    }

    #[test]
    fn gates_sum_to_one() {
        let r = router(8, 16, 2, 0.0, 1);
        let x = vec![0.3; 16];
        let routes = r.route(&x);
        assert_eq!(routes.len(), 2);
        let total: f32 = routes.iter().map(|(_, g)| g).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn top_k_selects_highest_logits() {
        // Identity-ish weight: logits = x (padded); biggest coordinates win.
        let w = Matrix::identity(4);
        let r = Router::new(w, vec![0.0; 4], 2);
        let routes = r.route(&[0.1, 5.0, -2.0, 3.0]);
        let chosen: Vec<usize> = routes.iter().map(|&(i, _)| i).collect();
        assert_eq!(chosen, vec![1, 3]);
        assert!(routes[0].1 > routes[1].1);
    }

    #[test]
    fn bias_skews_selection() {
        let mut r = router(4, 8, 1, 0.0, 2);
        r.bias = vec![100.0, 0.0, 0.0, 0.0];
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let x: Vec<f32> =
                (0..8).map(|_| WeightDist::Gaussian { std: 1.0 }.sample(&mut rng)).collect();
            assert_eq!(r.route(&x)[0].0, 0, "biased expert must always win");
        }
    }

    #[test]
    fn distinct_experts_selected() {
        let r = router(8, 16, 3, 0.5, 4);
        let routes = r.route(&vec![0.7; 16]);
        let mut idx: Vec<usize> = routes.iter().map(|&(i, _)| i).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 3, "top-k must not repeat experts");
    }

    #[test]
    #[should_panic(expected = "invalid top_k")]
    fn zero_top_k_panics() {
        let _ = Router::new(Matrix::zeros(4, 8), vec![0.0; 4], 0);
    }

    #[test]
    fn try_route_matches_route_on_healthy_input() {
        let r = router(8, 16, 2, 0.5, 9);
        let x = vec![0.4; 16];
        assert_eq!(r.try_route(&x).unwrap(), r.route(&x));
    }

    #[test]
    fn try_route_rejects_nan_activations_without_panicking() {
        let r = router(4, 8, 2, 0.0, 10);
        let mut x = vec![0.1; 8];
        x[3] = f32::NAN;
        assert!(matches!(r.try_route(&x), Err(crate::MoeError::InvalidInput(_))));
    }

    #[test]
    fn try_route_rejects_dimension_mismatch() {
        let r = router(4, 8, 2, 0.0, 11);
        assert!(matches!(r.try_route(&[0.0; 5]), Err(crate::MoeError::Tensor(_))));
    }
}
