//! Multi-head causal self-attention.
//!
//! The attention projections are the paper's canonical *dense* layers:
//! always activated, heavy-tailed (Table 2), most rank-sensitive
//! (§3.2.5). This is a straightforward batched implementation — no KV
//! cache, since evaluation processes whole sequences at once.

use crate::Result;
use milo_tensor::Matrix;

/// Multi-head causal self-attention with square projections.
#[derive(Debug, Clone, PartialEq)]
pub struct Attention {
    /// Query projection, `d × d`.
    pub wq: Matrix,
    /// Key projection, `d × d`.
    pub wk: Matrix,
    /// Value projection, `d × d`.
    pub wv: Matrix,
    /// Output projection, `d × d`.
    pub wo: Matrix,
    n_heads: usize,
}

impl Attention {
    /// Creates an attention block.
    ///
    /// # Panics
    ///
    /// Panics if the projections are not all `d × d` or `d` is not
    /// divisible by `n_heads`.
    pub fn new(wq: Matrix, wk: Matrix, wv: Matrix, wo: Matrix, n_heads: usize) -> Self {
        let d = wq.rows();
        for (name, w) in [("wq", &wq), ("wk", &wk), ("wv", &wv), ("wo", &wo)] {
            assert_eq!(w.shape(), (d, d), "{name} must be {d}x{d}");
        }
        assert!(n_heads > 0 && d % n_heads == 0, "d={d} must divide by heads={n_heads}");
        Self { wq, wk, wv, wo, n_heads }
    }

    /// Number of attention heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Applies causal self-attention over a sequence (`seq × d`),
    /// returning `seq × d`.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong width.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        Ok(self.forward_with_ctx(x)?.1)
    }

    /// Like [`Attention::forward`] but also returns the pre-`wo` context
    /// (the concatenated head outputs) — the input of the output
    /// projection, needed by calibration capture.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong width.
    pub fn forward_with_ctx(&self, x: &Matrix) -> Result<(Matrix, Matrix)> {
        let q = x.matmul(&self.wq.transpose())?;
        let k = x.matmul(&self.wk.transpose())?;
        let v = x.matmul(&self.wv.transpose())?;
        let ctx = attend(&q, &k, &v, self.n_heads);
        let out = ctx.matmul(&self.wo.transpose())?;
        Ok((ctx, out))
    }
}

/// Causal scaled-dot-product attention over already-projected `q`, `k`,
/// `v` (each `seq × d`), returning the concatenated head context
/// (`seq × d`). Shared by the FP32 model and the packed inference
/// engine, which produce q/k/v through different GEMM paths.
///
/// # Panics
///
/// Panics if the shapes disagree or `d` is not divisible by `n_heads`.
pub fn attend(q: &Matrix, k: &Matrix, v: &Matrix, n_heads: usize) -> Matrix {
    let (seq, d) = q.shape();
    assert_eq!(k.shape(), (seq, d), "k shape mismatch");
    assert_eq!(v.shape(), (seq, d), "v shape mismatch");
    assert!(n_heads > 0 && d % n_heads == 0, "bad head count");
    let hd = d / n_heads;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut ctx = Matrix::zeros(seq, d);
    for h in 0..n_heads {
        let off = h * hd;
        for i in 0..seq {
            // Scores over positions 0..=i (causal mask).
            let mut scores = Vec::with_capacity(i + 1);
            let mut max_s = f32::NEG_INFINITY;
            for j in 0..=i {
                let mut s = 0.0;
                for c in 0..hd {
                    s += q[(i, off + c)] * k[(j, off + c)];
                }
                let s = s * scale;
                max_s = max_s.max(s);
                scores.push(s);
            }
            let mut denom = 0.0;
            for s in &mut scores {
                *s = (*s - max_s).exp();
                denom += *s;
            }
            for (j, s) in scores.iter().enumerate() {
                let w = s / denom;
                for c in 0..hd {
                    ctx[(i, off + c)] += w * v[(j, off + c)];
                }
            }
        }
    }
    ctx
}

/// RMS normalization over the feature dimension (no learnable gain, as
/// the synthetic models have no trained norm parameters).
pub fn rms_norm(x: &Matrix) -> Matrix {
    let d = x.cols();
    Matrix::from_fn(x.rows(), d, |r, c| {
        let row = x.row(r);
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / d as f32;
        x[(r, c)] / (ms + 1e-6).sqrt()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;

    fn attn(d: usize, heads: usize, seed: u64) -> Attention {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        let dist = WeightDist::Gaussian { std: 0.1 };
        Attention::new(
            dist.sample_matrix(d, d, &mut rng),
            dist.sample_matrix(d, d, &mut rng),
            dist.sample_matrix(d, d, &mut rng),
            dist.sample_matrix(d, d, &mut rng),
            heads,
        )
    }

    #[test]
    fn forward_preserves_shape() {
        let a = attn(16, 2, 1);
        let x = Matrix::filled(5, 16, 0.3);
        assert_eq!(a.forward(&x).unwrap().shape(), (5, 16));
    }

    #[test]
    fn causality_holds() {
        // Changing a later token must not affect earlier outputs.
        let a = attn(16, 2, 2);
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(3);
        let x1 = WeightDist::Gaussian { std: 1.0 }.sample_matrix(6, 16, &mut rng);
        let mut x2 = x1.clone();
        for c in 0..16 {
            x2[(5, c)] += 10.0;
        }
        let y1 = a.forward(&x1).unwrap();
        let y2 = a.forward(&x2).unwrap();
        for i in 0..5 {
            for c in 0..16 {
                assert_eq!(y1[(i, c)], y2[(i, c)], "position {i} leaked future info");
            }
        }
        // The changed position itself must differ.
        assert_ne!(y1.row(5), y2.row(5));
    }

    #[test]
    fn single_token_attends_to_itself() {
        let a = attn(8, 1, 4);
        let x = Matrix::filled(1, 8, 0.5);
        // With one token, attention weights are all 1 on itself:
        // y = wo · wv · x.
        let v = x.matmul(&a.wv.transpose()).unwrap();
        let expected = v.matmul(&a.wo.transpose()).unwrap();
        let y = a.forward(&x).unwrap();
        for (p, q) in y.as_slice().iter().zip(expected.as_slice()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn rms_norm_produces_unit_rms() {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(5);
        let x = WeightDist::Gaussian { std: 3.0 }.sample_matrix(4, 32, &mut rng);
        let y = rms_norm(&x);
        for r in 0..4 {
            let ms: f32 = y.row(r).iter().map(|v| v * v).sum::<f32>() / 32.0;
            assert!((ms - 1.0).abs() < 1e-3, "row {r} rms² {ms}");
        }
    }

    #[test]
    #[should_panic(expected = "must divide by heads")]
    fn bad_head_count_panics() {
        let w = Matrix::zeros(10, 10);
        let _ = Attention::new(w.clone(), w.clone(), w.clone(), w, 3);
    }
}
