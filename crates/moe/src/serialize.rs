//! Binary serialization of the synthetic MoE models, so a reference model
//! can be shared between the quantization run and later evaluation runs
//! (the role the HuggingFace checkpoint directory plays in the paper's
//! artifact).

use crate::attention::Attention;
use crate::config::MoeConfig;
use crate::mlp::Mlp;
use crate::model::{FfnBlock, MoeBlock, MoeModel, TransformerLayer};
use crate::router::Router;
use milo_tensor::io::{
    expect_tag, read_f32, read_f32_vec, read_matrix, read_string, read_u32, read_u64,
    write_f32, write_f32_slice, write_matrix, write_string, write_tag, write_u32, write_u64,
};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"MOEM";
const VERSION: u32 = 1;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_config(w: &mut impl Write, c: &MoeConfig) -> io::Result<()> {
    write_string(w, &c.name)?;
    for v in [
        c.n_layers,
        c.d_model,
        c.n_heads,
        c.vocab,
        c.n_experts,
        c.top_k,
        c.expert_ffn,
        c.n_shared_experts,
        c.shared_ffn,
    ] {
        write_u64(w, v as u64)?;
    }
    write_u32(w, c.first_layer_dense as u32)?;
    for v in [c.router_imbalance, c.attn_dof, c.expert_channel_spread, c.head_gain] {
        write_f32(w, v)?;
    }
    Ok(())
}

fn read_config(r: &mut impl Read) -> io::Result<MoeConfig> {
    let name = read_string(r)?;
    let mut us = [0usize; 9];
    for v in &mut us {
        *v = read_u64(r)? as usize;
    }
    let first_layer_dense = read_u32(r)? != 0;
    let mut fs = [0f32; 4];
    for v in &mut fs {
        *v = read_f32(r)?;
    }
    Ok(MoeConfig {
        name,
        n_layers: us[0],
        d_model: us[1],
        n_heads: us[2],
        vocab: us[3],
        n_experts: us[4],
        top_k: us[5],
        expert_ffn: us[6],
        n_shared_experts: us[7],
        shared_ffn: us[8],
        first_layer_dense,
        router_imbalance: fs[0],
        attn_dof: fs[1],
        expert_channel_spread: fs[2],
        head_gain: fs[3],
    })
}

fn write_mlp(w: &mut impl Write, m: &Mlp) -> io::Result<()> {
    write_matrix(w, &m.w1)?;
    write_matrix(w, &m.w2)?;
    write_matrix(w, &m.w3)
}

fn read_mlp(r: &mut impl Read) -> io::Result<Mlp> {
    let w1 = read_matrix(r)?;
    let w2 = read_matrix(r)?;
    let w3 = read_matrix(r)?;
    if w1.shape() != w3.shape() || w2.shape() != (w1.cols(), w1.rows()) {
        return Err(invalid("inconsistent MLP projection shapes"));
    }
    Ok(Mlp::new(w1, w2, w3))
}

/// Writes an [`MoeModel`] to a binary stream.
///
/// # Errors
///
/// Propagates IO failures.
pub fn write_model(w: &mut impl Write, model: &MoeModel) -> io::Result<()> {
    write_tag(w, MAGIC)?;
    write_u32(w, VERSION)?;
    write_config(w, &model.config)?;
    write_matrix(w, &model.embed)?;
    write_matrix(w, &model.head)?;
    write_u64(w, model.layers.len() as u64)?;
    for layer in &model.layers {
        for m in [&layer.attn.wq, &layer.attn.wk, &layer.attn.wv, &layer.attn.wo] {
            write_matrix(w, m)?;
        }
        write_u64(w, layer.attn.n_heads() as u64)?;
        match &layer.ffn {
            FfnBlock::Dense(mlp) => {
                write_u32(w, 0)?;
                write_mlp(w, mlp)?;
            }
            FfnBlock::Moe(moe) => {
                write_u32(w, 1)?;
                write_matrix(w, &moe.router.weight)?;
                write_f32_slice(w, &moe.router.bias)?;
                write_u64(w, moe.router.top_k() as u64)?;
                write_u64(w, moe.experts.len() as u64)?;
                for e in &moe.experts {
                    write_mlp(w, e)?;
                }
                write_u64(w, moe.shared.len() as u64)?;
                for s in &moe.shared {
                    write_mlp(w, s)?;
                }
            }
        }
    }
    Ok(())
}

/// Reads an [`MoeModel`] from a binary stream.
///
/// # Errors
///
/// Returns `InvalidData` for malformed input or unsupported versions.
pub fn read_model(r: &mut impl Read) -> io::Result<MoeModel> {
    expect_tag(r, MAGIC)?;
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(invalid(format!("unsupported model format version {version}")));
    }
    let config = read_config(r)?;
    let embed = read_matrix(r)?;
    let head = read_matrix(r)?;
    let n_layers = read_u64(r)? as usize;
    if n_layers > 1 << 16 {
        return Err(invalid("layer count exceeds sanity limit"));
    }
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let wq = read_matrix(r)?;
        let wk = read_matrix(r)?;
        let wv = read_matrix(r)?;
        let wo = read_matrix(r)?;
        let n_heads = read_u64(r)? as usize;
        let d = wq.rows();
        if wq.shape() != (d, d) || n_heads == 0 || d % n_heads != 0 {
            return Err(invalid("inconsistent attention shapes"));
        }
        let attn = Attention::new(wq, wk, wv, wo, n_heads);
        let ffn = match read_u32(r)? {
            0 => FfnBlock::Dense(read_mlp(r)?),
            1 => {
                let router_w = read_matrix(r)?;
                let bias = read_f32_vec(r)?;
                let top_k = read_u64(r)? as usize;
                if bias.len() != router_w.rows() || top_k == 0 || top_k > router_w.rows() {
                    return Err(invalid("inconsistent router"));
                }
                let router = Router::new(router_w, bias, top_k);
                let n_experts = read_u64(r)? as usize;
                let mut experts = Vec::with_capacity(n_experts.min(1 << 16));
                for _ in 0..n_experts {
                    experts.push(read_mlp(r)?);
                }
                let n_shared = read_u64(r)? as usize;
                let mut shared = Vec::with_capacity(n_shared.min(1 << 16));
                for _ in 0..n_shared {
                    shared.push(read_mlp(r)?);
                }
                if experts.len() != router.n_experts() {
                    return Err(invalid("router/expert count mismatch"));
                }
                FfnBlock::Moe(MoeBlock { router, experts, shared })
            }
            other => return Err(invalid(format!("unknown FFN tag {other}"))),
        };
        layers.push(TransformerLayer { attn, ffn });
    }
    Ok(MoeModel { config, embed, head, layers })
}

/// Saves a model to a file.
///
/// # Errors
///
/// Propagates filesystem and serialization failures.
pub fn save_model(path: &std::path::Path, model: &MoeModel) -> io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_model(&mut file, model)
}

/// Loads a model from a file.
///
/// # Errors
///
/// Propagates filesystem and deserialization failures.
pub fn load_model(path: &std::path::Path) -> io::Result<MoeModel> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    read_model(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn mixtral_like_round_trips_exactly() {
        let model = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 3);
        let mut buf = Vec::new();
        write_model(&mut buf, &model).unwrap();
        let out = read_model(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out, model);
    }

    #[test]
    fn deepseek_like_round_trips_exactly() {
        let model = MoeModel::synthesize(&MoeConfig::tiny_deepseek(), 4);
        let mut buf = Vec::new();
        write_model(&mut buf, &model).unwrap();
        let out = read_model(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out, model);
        // Loaded model computes identically.
        let tokens = [1u32, 2, 3];
        assert_eq!(out.forward(&tokens).unwrap(), model.forward(&tokens).unwrap());
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let model = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 5);
        let mut buf = Vec::new();
        write_model(&mut buf, &model).unwrap();
        buf[1] = b'X';
        assert!(read_model(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn file_round_trip() {
        let model = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 6);
        let dir = std::env::temp_dir().join("milo_moe_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.moem");
        save_model(&path, &model).unwrap();
        assert_eq!(load_model(&path).unwrap(), model);
        std::fs::remove_file(&path).ok();
    }
}
