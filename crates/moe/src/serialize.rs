//! Binary serialization of the synthetic MoE models, so a reference model
//! can be shared between the quantization run and later evaluation runs
//! (the role the HuggingFace checkpoint directory plays in the paper's
//! artifact).
//!
//! Since version 2 the stream is split into checksummed sections (see
//! [`milo_tensor::io`]): one for the model header (config + embeddings +
//! output head) and one per transformer layer. Corruption or truncation
//! surfaces as a typed [`CorruptSection`](milo_tensor::io::CorruptSection)
//! error naming the damaged section; version-1 artifacts (no checksums)
//! are still read.

use crate::attention::Attention;
use crate::config::MoeConfig;
use crate::mlp::Mlp;
use crate::model::{FfnBlock, MoeBlock, MoeModel, TransformerLayer};
use crate::router::Router;
use milo_tensor::io::{
    expect_tag, read_f32, read_f32_vec, read_matrix, read_section_lenient, read_string,
    read_u32, read_u64, write_f32, write_f32_slice, write_matrix, write_section,
    write_string, write_tag, write_u32, write_u64, IntegrityReport, SectionFault,
    SectionReport,
};
use std::io::{self, Cursor, Read, Write};

const MAGIC: &[u8; 4] = b"MOEM";
/// Current format version (checksummed sections).
const VERSION: u32 = 2;
/// The pre-checksum format; still accepted by the reader.
const LEGACY_VERSION: u32 = 1;
/// Sanity limit on the layer count read from a (possibly corrupt) header.
const MAX_LAYERS: u64 = 1 << 16;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_config(w: &mut impl Write, c: &MoeConfig) -> io::Result<()> {
    write_string(w, &c.name)?;
    for v in [
        c.n_layers,
        c.d_model,
        c.n_heads,
        c.vocab,
        c.n_experts,
        c.top_k,
        c.expert_ffn,
        c.n_shared_experts,
        c.shared_ffn,
    ] {
        write_u64(w, v as u64)?;
    }
    write_u32(w, c.first_layer_dense as u32)?;
    for v in [c.router_imbalance, c.attn_dof, c.expert_channel_spread, c.head_gain] {
        write_f32(w, v)?;
    }
    Ok(())
}

fn read_config(r: &mut impl Read) -> io::Result<MoeConfig> {
    let name = read_string(r)?;
    let mut us = [0usize; 9];
    for v in &mut us {
        *v = read_u64(r)? as usize;
    }
    let first_layer_dense = read_u32(r)? != 0;
    let mut fs = [0f32; 4];
    for v in &mut fs {
        *v = read_f32(r)?;
    }
    Ok(MoeConfig {
        name,
        n_layers: us[0],
        d_model: us[1],
        n_heads: us[2],
        vocab: us[3],
        n_experts: us[4],
        top_k: us[5],
        expert_ffn: us[6],
        n_shared_experts: us[7],
        shared_ffn: us[8],
        first_layer_dense,
        router_imbalance: fs[0],
        attn_dof: fs[1],
        expert_channel_spread: fs[2],
        head_gain: fs[3],
    })
}

fn write_mlp(w: &mut impl Write, m: &Mlp) -> io::Result<()> {
    write_matrix(w, &m.w1)?;
    write_matrix(w, &m.w2)?;
    write_matrix(w, &m.w3)
}

fn read_mlp(r: &mut impl Read) -> io::Result<Mlp> {
    let w1 = read_matrix(r)?;
    let w2 = read_matrix(r)?;
    let w3 = read_matrix(r)?;
    if w1.shape() != w3.shape() || w2.shape() != (w1.cols(), w1.rows()) {
        return Err(invalid("inconsistent MLP projection shapes"));
    }
    Ok(Mlp::new(w1, w2, w3))
}

/// Writes the model-header payload: config, embeddings, output head.
fn write_header(w: &mut impl Write, model: &MoeModel) -> io::Result<()> {
    write_config(w, &model.config)?;
    write_matrix(w, &model.embed)?;
    write_matrix(w, &model.head)
}

fn read_header(r: &mut impl Read) -> io::Result<(MoeConfig, milo_tensor::Matrix, milo_tensor::Matrix)> {
    let config = read_config(r)?;
    let embed = read_matrix(r)?;
    let head = read_matrix(r)?;
    Ok((config, embed, head))
}

/// Writes one transformer layer's payload (the version-1 layer layout,
/// which version 2 wraps in a checksummed section).
fn write_layer(w: &mut impl Write, layer: &TransformerLayer) -> io::Result<()> {
    for m in [&layer.attn.wq, &layer.attn.wk, &layer.attn.wv, &layer.attn.wo] {
        write_matrix(w, m)?;
    }
    write_u64(w, layer.attn.n_heads() as u64)?;
    match &layer.ffn {
        FfnBlock::Dense(mlp) => {
            write_u32(w, 0)?;
            write_mlp(w, mlp)?;
        }
        FfnBlock::Moe(moe) => {
            write_u32(w, 1)?;
            write_matrix(w, &moe.router.weight)?;
            write_f32_slice(w, &moe.router.bias)?;
            write_u64(w, moe.router.top_k() as u64)?;
            write_u64(w, moe.experts.len() as u64)?;
            for e in &moe.experts {
                write_mlp(w, e)?;
            }
            write_u64(w, moe.shared.len() as u64)?;
            for s in &moe.shared {
                write_mlp(w, s)?;
            }
        }
    }
    Ok(())
}

/// Reads one transformer layer's payload.
fn read_layer(r: &mut impl Read) -> io::Result<TransformerLayer> {
    let wq = read_matrix(r)?;
    let wk = read_matrix(r)?;
    let wv = read_matrix(r)?;
    let wo = read_matrix(r)?;
    let n_heads = read_u64(r)? as usize;
    let d = wq.rows();
    if wq.shape() != (d, d) || n_heads == 0 || d % n_heads != 0 {
        return Err(invalid("inconsistent attention shapes"));
    }
    let attn = Attention::new(wq, wk, wv, wo, n_heads);
    let ffn = match read_u32(r)? {
        0 => FfnBlock::Dense(read_mlp(r)?),
        1 => {
            let router_w = read_matrix(r)?;
            let bias = read_f32_vec(r)?;
            let top_k = read_u64(r)? as usize;
            if bias.len() != router_w.rows() || top_k == 0 || top_k > router_w.rows() {
                return Err(invalid("inconsistent router"));
            }
            let router = Router::new(router_w, bias, top_k);
            let n_experts = read_u64(r)? as usize;
            let mut experts = Vec::with_capacity(n_experts.min(1 << 16));
            for _ in 0..n_experts {
                experts.push(read_mlp(r)?);
            }
            let n_shared = read_u64(r)? as usize;
            let mut shared = Vec::with_capacity(n_shared.min(1 << 16));
            for _ in 0..n_shared {
                shared.push(read_mlp(r)?);
            }
            if experts.len() != router.n_experts() {
                return Err(invalid("router/expert count mismatch"));
            }
            FfnBlock::Moe(MoeBlock { router, experts, shared })
        }
        other => return Err(invalid(format!("unknown FFN tag {other}"))),
    };
    Ok(TransformerLayer { attn, ffn })
}

fn read_layer_count(r: &mut impl Read) -> io::Result<usize> {
    let n = read_u64(r)?;
    if n > MAX_LAYERS {
        return Err(invalid("layer count exceeds sanity limit"));
    }
    Ok(n as usize)
}

fn expect_eof(r: &mut impl Read) -> io::Result<()> {
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(()),
        _ => Err(invalid("trailing data after final layer (corrupt layer count?)")),
    }
}

/// Writes an [`MoeModel`] to a binary stream (current format: version 2,
/// checksummed sections).
///
/// # Errors
///
/// Propagates IO failures.
pub fn write_model(w: &mut impl Write, model: &MoeModel) -> io::Result<()> {
    write_tag(w, MAGIC)?;
    write_u32(w, VERSION)?;
    let mut header = Vec::new();
    write_header(&mut header, model)?;
    write_section(w, &header)?;
    write_u64(w, model.layers.len() as u64)?;
    for layer in &model.layers {
        let mut payload = Vec::new();
        write_layer(&mut payload, layer)?;
        write_section(w, &payload)?;
    }
    Ok(())
}

/// Writes an [`MoeModel`] in the legacy version-1 layout (no checksums).
/// Kept for compatibility tests; new code should use [`write_model`].
///
/// # Errors
///
/// Propagates IO failures.
pub fn write_model_v1(w: &mut impl Write, model: &MoeModel) -> io::Result<()> {
    write_tag(w, MAGIC)?;
    write_u32(w, LEGACY_VERSION)?;
    write_header(w, model)?;
    write_u64(w, model.layers.len() as u64)?;
    for layer in &model.layers {
        write_layer(w, layer)?;
    }
    Ok(())
}

/// Reads an [`MoeModel`] from a binary stream (versions 1 and 2).
///
/// # Errors
///
/// Returns `InvalidData` for malformed input or unsupported versions.
/// For version-2 artifacts a checksum failure or truncation surfaces as
/// a typed [`CorruptSection`](milo_tensor::io::CorruptSection) naming
/// the damaged section.
pub fn read_model(r: &mut impl Read) -> io::Result<MoeModel> {
    expect_tag(r, MAGIC)?;
    let version = read_u32(r)?;
    match version {
        LEGACY_VERSION => {
            let (config, embed, head) = read_header(r)?;
            let n_layers = read_layer_count(r)?;
            let mut layers = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                layers.push(read_layer(r)?);
            }
            Ok(MoeModel { config, embed, head, layers })
        }
        VERSION => {
            let header = read_checked_section(r, "model header")?;
            let (config, embed, head) = read_header(&mut Cursor::new(header))?;
            let n_layers = read_layer_count(r)?;
            let mut layers = Vec::with_capacity(n_layers);
            for i in 0..n_layers {
                let payload = read_checked_section(r, &format!("layer {i}"))?;
                let layer = read_layer(&mut Cursor::new(payload))
                    .map_err(|e| invalid(format!("layer {i}: {e}")))?;
                layers.push(layer);
            }
            expect_eof(r)?;
            Ok(MoeModel { config, embed, head, layers })
        }
        other => Err(invalid(format!("unsupported model format version {other}"))),
    }
}

/// Reads a section and promotes a checksum mismatch to an error.
fn read_checked_section(r: &mut impl Read, name: &str) -> io::Result<Vec<u8>> {
    let (payload, fault) = read_section_lenient(r, name)?;
    match fault {
        None => Ok(payload),
        Some(c) => Err(c.into()),
    }
}

/// Walks a model stream verifying every section checksum without
/// materializing the model, reporting per-section integrity. Keeps
/// scanning past checksum mismatches; stops only on truncation.
///
/// # Errors
///
/// Returns `InvalidData` only if the stream is not a `MOEM` artifact at
/// all (bad magic / unknown version / implausible layer count).
pub fn verify_model_stream(r: &mut impl Read) -> io::Result<IntegrityReport> {
    expect_tag(r, MAGIC)?;
    let version = read_u32(r)?;
    if version == LEGACY_VERSION {
        return Ok(IntegrityReport {
            version,
            checksummed: false,
            sections: Vec::new(),
            trailing_data: false,
        });
    }
    if version != VERSION {
        return Err(invalid(format!("unsupported model format version {version}")));
    }
    fn scan<R: Read>(
        r: &mut R,
        name: String,
        sections: &mut Vec<SectionReport>,
    ) -> bool {
        match read_section_lenient(r, &name) {
            Ok((payload, fault)) => {
                sections.push(SectionReport {
                    name,
                    bytes: payload.len() as u64,
                    fault: fault.map(|f| f.fault),
                });
                true
            }
            Err(e) => {
                let fault = milo_tensor::io::corrupt_section_info(&e)
                    .map(|c| c.fault.clone())
                    .unwrap_or(SectionFault::Truncated);
                sections.push(SectionReport { name, bytes: 0, fault: Some(fault) });
                false
            }
        }
    }
    let mut sections = Vec::new();
    if !scan(r, "model header".to_string(), &mut sections) {
        return Ok(IntegrityReport { version, checksummed: true, sections, trailing_data: false });
    }
    let n_layers = match read_layer_count(r) {
        Ok(n) => n,
        Err(_) => {
            sections.push(SectionReport {
                name: "layer table".to_string(),
                bytes: 0,
                fault: Some(SectionFault::Truncated),
            });
            return Ok(IntegrityReport { version, checksummed: true, sections, trailing_data: false });
        }
    };
    for i in 0..n_layers {
        if !scan(r, format!("layer {i}"), &mut sections) {
            return Ok(IntegrityReport { version, checksummed: true, sections, trailing_data: false });
        }
    }
    let trailing_data = expect_eof(r).is_err();
    Ok(IntegrityReport { version, checksummed: true, sections, trailing_data })
}

/// Saves a model to a file.
///
/// # Errors
///
/// Propagates filesystem and serialization failures.
pub fn save_model(path: &std::path::Path, model: &MoeModel) -> io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_model(&mut file, model)
}

/// Loads a model from a file.
///
/// # Errors
///
/// Propagates filesystem and deserialization failures.
pub fn load_model(path: &std::path::Path) -> io::Result<MoeModel> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    read_model(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::io::corrupt_section_info;
    use std::io::Cursor;

    #[test]
    fn mixtral_like_round_trips_exactly() {
        let model = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 3);
        let mut buf = Vec::new();
        write_model(&mut buf, &model).unwrap();
        let out = read_model(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out, model);
    }

    #[test]
    fn deepseek_like_round_trips_exactly() {
        let model = MoeModel::synthesize(&MoeConfig::tiny_deepseek(), 4);
        let mut buf = Vec::new();
        write_model(&mut buf, &model).unwrap();
        let out = read_model(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out, model);
        // Loaded model computes identically.
        let tokens = [1u32, 2, 3];
        assert_eq!(out.forward(&tokens).unwrap(), model.forward(&tokens).unwrap());
    }

    #[test]
    fn legacy_v1_artifacts_still_read() {
        let model = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 9);
        let mut v1 = Vec::new();
        write_model_v1(&mut v1, &model).unwrap();
        assert_eq!(v1[4], LEGACY_VERSION as u8);
        assert_eq!(read_model(&mut Cursor::new(v1)).unwrap(), model);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let model = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 5);
        let mut buf = Vec::new();
        write_model(&mut buf, &model).unwrap();
        buf[1] = b'X';
        assert!(read_model(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn corrupt_layer_section_is_a_typed_error() {
        let model = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 6);
        let mut buf = Vec::new();
        write_model(&mut buf, &model).unwrap();
        let off = buf.len() - 20;
        buf[off] ^= 0x01;
        let err = read_model(&mut Cursor::new(buf)).unwrap_err();
        let info = corrupt_section_info(&err).expect("typed CorruptSection");
        assert!(info.section.starts_with("layer "), "section = {}", info.section);
    }

    #[test]
    fn verify_reports_sections_and_damage() {
        let model = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 7);
        let mut buf = Vec::new();
        write_model(&mut buf, &model).unwrap();
        let clean = verify_model_stream(&mut Cursor::new(&buf[..])).unwrap();
        assert!(clean.is_ok());
        assert_eq!(clean.sections.len(), 1 + model.layers.len());
        assert_eq!(clean.sections[0].name, "model header");

        let mut bad = buf.clone();
        let last = bad.len() - 30;
        bad[last] ^= 0x80;
        let report = verify_model_stream(&mut Cursor::new(&bad[..])).unwrap();
        assert!(!report.is_ok());
        assert_eq!(report.n_corrupt(), 1);
    }

    #[test]
    fn file_round_trip() {
        let model = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 6);
        let dir = std::env::temp_dir().join("milo_moe_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.moem");
        save_model(&path, &model).unwrap();
        assert_eq!(load_model(&path).unwrap(), model);
        std::fs::remove_file(&path).ok();
    }
}
