//! Bridging the MoE model and the MiLo compressor: enumerate quantizable
//! weights with their policy metadata, and substitute compressed weights
//! back into a model for evaluation.
//!
//! Routers, embeddings, and the output head stay in full precision —
//! they are a negligible fraction of MoE memory and the paper (like all
//! the weight-only baselines it compares against) quantizes only the
//! large projection matrices.

use crate::model::{FfnBlock, MoeModel};
use crate::profile::FrequencyProfile;
use crate::{MoeError, Result};
use milo_core::{CompressedModel, LayerKind, LayerMeta, LayerTensor};
use milo_tensor::{stats, Matrix};
use std::collections::HashMap;

/// Visits every quantizable weight with its name and layer kind.
fn for_each_weight(model: &MoeModel, mut f: impl FnMut(String, LayerKind, &Matrix)) {
    for (li, layer) in model.layers.iter().enumerate() {
        for (suffix, w) in [
            ("wq", &layer.attn.wq),
            ("wk", &layer.attn.wk),
            ("wv", &layer.attn.wv),
            ("wo", &layer.attn.wo),
        ] {
            f(format!("layer{li}.attn.{suffix}"), LayerKind::Attention, w);
        }
        match &layer.ffn {
            FfnBlock::Dense(mlp) => {
                for (suffix, w) in [("w1", &mlp.w1), ("w2", &mlp.w2), ("w3", &mlp.w3)] {
                    f(format!("layer{li}.dense.{suffix}"), LayerKind::DenseFfn, w);
                }
            }
            FfnBlock::Moe(moe) => {
                for (e, mlp) in moe.experts.iter().enumerate() {
                    for (suffix, w) in [("w1", &mlp.w1), ("w2", &mlp.w2), ("w3", &mlp.w3)] {
                        f(
                            format!("layer{li}.expert{e}.{suffix}"),
                            LayerKind::Expert { index: e },
                            w,
                        );
                    }
                }
                for (s, mlp) in moe.shared.iter().enumerate() {
                    for (suffix, w) in [("w1", &mlp.w1), ("w2", &mlp.w2), ("w3", &mlp.w3)] {
                        f(
                            format!("layer{li}.shared{s}.{suffix}"),
                            LayerKind::SharedExpert,
                            w,
                        );
                    }
                }
            }
        }
    }
}

/// Visits every quantizable weight mutably with its name.
fn for_each_weight_mut(model: &mut MoeModel, mut f: impl FnMut(&str, &mut Matrix)) {
    for (li, layer) in model.layers.iter_mut().enumerate() {
        for (suffix, w) in [
            ("wq", &mut layer.attn.wq),
            ("wk", &mut layer.attn.wk),
            ("wv", &mut layer.attn.wv),
            ("wo", &mut layer.attn.wo),
        ] {
            f(&format!("layer{li}.attn.{suffix}"), w);
        }
        match &mut layer.ffn {
            FfnBlock::Dense(mlp) => {
                for (suffix, w) in
                    [("w1", &mut mlp.w1), ("w2", &mut mlp.w2), ("w3", &mut mlp.w3)]
                {
                    f(&format!("layer{li}.dense.{suffix}"), w);
                }
            }
            FfnBlock::Moe(moe) => {
                for (e, mlp) in moe.experts.iter_mut().enumerate() {
                    for (suffix, w) in
                        [("w1", &mut mlp.w1), ("w2", &mut mlp.w2), ("w3", &mut mlp.w3)]
                    {
                        f(&format!("layer{li}.expert{e}.{suffix}"), w);
                    }
                }
                for (s, mlp) in moe.shared.iter_mut().enumerate() {
                    for (suffix, w) in
                        [("w1", &mut mlp.w1), ("w2", &mut mlp.w2), ("w3", &mut mlp.w3)]
                    {
                        f(&format!("layer{li}.shared{s}.{suffix}"), w);
                    }
                }
            }
        }
    }
}

/// Extracts the layer index from a tensor name (`"layer{i}. ..."`).
fn layer_index(name: &str) -> usize {
    name.strip_prefix("layer")
        .and_then(|rest| rest.split('.').next())
        .and_then(|n| n.parse().ok())
        .expect("tensor names start with layer{i}.")
}

/// Enumerates every quantizable weight as a [`LayerTensor`] with
/// kurtosis and (if a profile is given) expert activation frequency
/// filled in — exactly what [`milo_core::compress_model`] consumes.
pub fn layer_tensors(model: &MoeModel, freq: Option<&FrequencyProfile>) -> Vec<LayerTensor> {
    let mut out = Vec::new();
    for_each_weight(model, |name, kind, w| {
        let (rows, cols) = w.shape();
        let frequency = match (kind, freq) {
            (LayerKind::Expert { index }, Some(p)) => {
                p.frequency(layer_index(&name), index)
            }
            (LayerKind::Expert { .. }, None) => 0.0,
            _ => 1.0,
        };
        out.push(LayerTensor {
            name,
            meta: LayerMeta {
                kind,
                rows,
                cols,
                kurtosis: stats::matrix_kurtosis(w),
                frequency,
            },
            weight: w.clone(),
        });
    });
    out
}

/// Builds an inference model from a compressed model by replacing every
/// compressed layer's weight with its effective reconstruction
/// `Q⁻¹(W_q) + U·V`.
///
/// # Errors
///
/// Returns [`MoeError::WeightMismatch`] if a compressed layer's name or
/// shape does not match the model.
pub fn apply_compressed(model: &MoeModel, compressed: &CompressedModel) -> Result<MoeModel> {
    let mut effective: HashMap<&str, Matrix> = HashMap::new();
    for rec in &compressed.layers {
        effective.insert(rec.name.as_str(), rec.layer.effective_weight());
    }

    let mut out = model.clone();
    let mut error: Option<MoeError> = None;
    let mut replaced = 0usize;
    for_each_weight_mut(&mut out, |name, w| {
        if let Some(new_w) = effective.remove(name) {
            if new_w.shape() != w.shape() {
                error.get_or_insert(MoeError::WeightMismatch(format!(
                    "layer {name}: model is {:?}, compressed is {:?}",
                    w.shape(),
                    new_w.shape()
                )));
                return;
            }
            *w = new_w;
            replaced += 1;
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    if let Some(name) = effective.keys().next() {
        return Err(MoeError::WeightMismatch(format!(
            "compressed layer {name} does not exist in the model"
        )));
    }
    if replaced == 0 {
        return Err(MoeError::WeightMismatch(
            "compressed model shares no layers with this model".into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MoeConfig;
    use crate::profile::profile_expert_frequency;
    use milo_core::{compress_model, MiloOptions, RankPolicy};
    use milo_quant::HqqOptions;

    fn fast_opts() -> MiloOptions {
        MiloOptions {
            max_iters: 1,
            hqq: HqqOptions { max_iters: 3, ..HqqOptions::default() },
            compensator_cfg: None,
            ..MiloOptions::default()
        }
    }

    #[test]
    fn tensor_enumeration_counts_match_architecture() {
        let cfg = MoeConfig::tiny_mixtral();
        let m = MoeModel::synthesize(&cfg, 1);
        let tensors = layer_tensors(&m, None);
        // Per layer: 4 attention + n_experts × 3.
        let expected = cfg.n_layers * (4 + cfg.n_experts * 3);
        assert_eq!(tensors.len(), expected);
    }

    #[test]
    fn deepseek_enumeration_includes_dense_and_shared() {
        let cfg = MoeConfig::tiny_deepseek();
        let m = MoeModel::synthesize(&cfg, 2);
        let tensors = layer_tensors(&m, None);
        assert!(tensors.iter().any(|t| t.name.contains("dense")));
        assert!(tensors.iter().any(|t| t.name.contains("shared")));
        let dense_count =
            tensors.iter().filter(|t| matches!(t.meta.kind, LayerKind::DenseFfn)).count();
        assert_eq!(dense_count, 3); // first layer only
    }

    #[test]
    fn expert_frequency_is_attached() {
        let cfg = MoeConfig::tiny_mixtral();
        let m = MoeModel::synthesize(&cfg, 3);
        let corpus = vec![vec![1u32, 2, 3, 4, 5, 6, 7, 8]];
        let profile = profile_expert_frequency(&m, &corpus).unwrap();
        let tensors = layer_tensors(&m, Some(&profile));
        let expert_freqs: Vec<f32> = tensors
            .iter()
            .filter(|t| matches!(t.meta.kind, LayerKind::Expert { .. }))
            .map(|t| t.meta.frequency)
            .collect();
        assert!(expert_freqs.iter().any(|&f| f > 0.0));
        for t in tensors.iter().filter(|t| t.meta.kind.is_dense()) {
            assert_eq!(t.meta.frequency, 1.0);
        }
    }

    #[test]
    fn apply_compressed_round_trips_structure() {
        let cfg = MoeConfig::tiny_mixtral();
        let m = MoeModel::synthesize(&cfg, 4);
        let tensors = layer_tensors(&m, None);
        let compressed =
            compress_model(&tensors, &RankPolicy::dense_only(4), &fast_opts(), 2).unwrap();
        let restored = apply_compressed(&m, &compressed).unwrap();
        // Same architecture, different (quantized) weights.
        assert_eq!(restored.layers.len(), m.layers.len());
        assert_ne!(restored.layers[0].attn.wq, m.layers[0].attn.wq);
        // Routers and embeddings untouched.
        assert_eq!(restored.embed, m.embed);
    }

    #[test]
    fn compressed_model_is_close_to_original() {
        let cfg = MoeConfig::tiny_mixtral();
        let m = MoeModel::synthesize(&cfg, 5);
        let tensors = layer_tensors(&m, None);
        let compressed =
            compress_model(&tensors, &RankPolicy::uniform(8), &fast_opts(), 2).unwrap();
        let restored = apply_compressed(&m, &compressed).unwrap();
        let w = &m.layers[0].attn.wq;
        let w_hat = &restored.layers[0].attn.wq;
        let rel = stats::relative_frobenius_error(w, w_hat);
        assert!(rel < 0.5, "relative error {rel} unreasonably large");
    }

    #[test]
    fn mismatched_compressed_model_is_rejected() {
        let a = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 6);
        let b = MoeModel::synthesize(&MoeConfig::tiny_deepseek(), 7);
        let tensors = layer_tensors(&b, None);
        let compressed =
            compress_model(&tensors, &RankPolicy::dense_only(2), &fast_opts(), 2).unwrap();
        assert!(matches!(
            apply_compressed(&a, &compressed),
            Err(MoeError::WeightMismatch(_))
        ));
    }

    #[test]
    fn layer_index_parser() {
        assert_eq!(layer_index("layer0.attn.wq"), 0);
        assert_eq!(layer_index("layer12.expert3.w1"), 12);
    }
}
