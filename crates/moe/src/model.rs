//! The synthetic MoE transformer: synthesis, forward pass, and sampling.

use crate::attention::{rms_norm, Attention};
use crate::config::MoeConfig;
use crate::health::{FaultKind, FaultMode, ResilienceContext};
use crate::mlp::Mlp;
use crate::router::Router;
use crate::{MoeError, Result};
use milo_tensor::rng::WeightDist;
use milo_tensor::{pool, Matrix};
use milo_tensor::rng::StdRng;
use milo_tensor::rng::{Rng, SeedableRng};

/// Records one token's routing entropy `-Σ g·ln g` (nats, stored ×1e6)
/// into the `moe.gate_entropy_micro` histogram. Low entropy means the
/// router is confident (mass on one expert); the paper's Fig. 3 skew
/// shows up here as a depressed median.
fn record_gate_entropy(routes: &[(usize, f32)]) {
    let h: f64 = routes
        .iter()
        .map(|&(_, g)| {
            let g = g as f64;
            if g > 0.0 {
                -g * g.ln()
            } else {
                0.0
            }
        })
        .sum();
    milo_obs::hist_record(
        "moe.gate_entropy_micro",
        (h * 1e6).round().max(0.0) as u64,
        milo_obs::Unit::Micro,
    );
}

/// Records per-expert routed-token counters for one layer pass and
/// refreshes the layer's live load-skew gauge (max/mean of the
/// *cumulative* per-expert counts — 1.0 is perfectly balanced; Fig. 3's
/// imbalance pushes it up). `layer = None` (a bare [`MoeBlock`] outside
/// a model stack) labels the metrics `layer=na`.
fn record_routing_telemetry(layer: Option<usize>, assignment: &[Vec<(usize, f32)>]) {
    if !milo_obs::enabled() || assignment.is_empty() {
        return;
    }
    let label = layer.map(|l| l.to_string());
    let lv = label.as_deref().unwrap_or("na");
    let mut loads = Vec::with_capacity(assignment.len());
    for (e, toks) in assignment.iter().enumerate() {
        let key = milo_obs::metric_key(
            "moe.expert_tokens",
            &[("layer", lv), ("expert", &e.to_string())],
        );
        milo_obs::counter_add(&key, toks.len() as u64);
        loads.push(milo_obs::counter_get(&key));
    }
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean > 0.0 {
        let max = *loads.iter().max().expect("non-empty") as f64;
        milo_obs::gauge_set(
            &milo_obs::metric_key("moe.load_skew", &[("layer", lv)]),
            max / mean,
        );
    }
}

/// The feed-forward part of a transformer layer.
#[derive(Debug, Clone, PartialEq)]
pub enum FfnBlock {
    /// A dense FFN (DeepSeek-MoE's first layer).
    Dense(Mlp),
    /// A routed mixture of experts.
    Moe(MoeBlock),
}

/// A mixture-of-experts FFN block: router, routed experts, and optional
/// always-active shared experts.
#[derive(Debug, Clone, PartialEq)]
pub struct MoeBlock {
    /// The top-k router.
    pub router: Router,
    /// Routed experts.
    pub experts: Vec<Mlp>,
    /// Shared experts applied to every token (DeepSeek-style).
    pub shared: Vec<Mlp>,
}

impl MoeBlock {
    /// Applies the block to a batch of token vectors (`tokens × d`),
    /// optionally recording per-expert activation counts.
    ///
    /// Experts are independent once the token→expert assignment is
    /// built, so their batched GEMMs run concurrently on the
    /// [`milo_tensor::pool`]; the weighted scatter-back into the output
    /// stays serial in expert order, which keeps the result bit-identical
    /// to the single-threaded path at every `MILO_THREADS` setting.
    pub fn forward_counting(
        &self,
        x: &Matrix,
        counts: Option<&mut [u64]>,
    ) -> Result<Matrix> {
        self.forward_counting_labeled(x, counts, None)
    }

    /// [`MoeBlock::forward_counting`] with an optional layer index used
    /// only to label telemetry ([`MoeModel`] passes its layer number; the
    /// block alone has no position in a stack).
    fn forward_counting_labeled(
        &self,
        x: &Matrix,
        mut counts: Option<&mut [u64]>,
        layer: Option<usize>,
    ) -> Result<Matrix> {
        let (tokens, d) = x.shape();
        let mut out = Matrix::zeros(tokens, d);
        let telemetry = milo_obs::enabled();

        // Group tokens by expert so each expert runs one batched GEMM —
        // the same gather/scatter structure real MoE inference uses.
        let mut assignment: Vec<Vec<(usize, f32)>> = vec![Vec::new(); self.experts.len()];
        for t in 0..tokens {
            let routes = self.router.route(x.row(t));
            if telemetry {
                record_gate_entropy(&routes);
            }
            for (e, gate) in routes {
                assignment[e].push((t, gate));
                if let Some(c) = counts.as_deref_mut() {
                    c[e] += 1;
                }
            }
        }
        record_routing_telemetry(layer, &assignment);

        // Parallel expert dispatch: gather + forward per expert, in
        // index-ordered result slots.
        let expert_outputs: Vec<Option<Result<Matrix>>> =
            pool::par_map(self.experts.len(), |e| {
                let toks = &assignment[e];
                if toks.is_empty() {
                    return None;
                }
                let mut sub = Matrix::zeros(toks.len(), d);
                for (i, &(t, _)) in toks.iter().enumerate() {
                    sub.row_mut(i).copy_from_slice(x.row(t));
                }
                Some(self.experts[e].forward(&sub))
            });
        // Deterministic scatter-back: expert order, then token order.
        for (e, maybe) in expert_outputs.into_iter().enumerate() {
            let Some(res) = maybe else { continue };
            let y = res?;
            for (i, &(t, gate)) in assignment[e].iter().enumerate() {
                for (o, v) in out.row_mut(t).iter_mut().zip(y.row(i)) {
                    *o += gate * v;
                }
            }
        }

        let shared_outputs: Vec<Result<Matrix>> =
            pool::par_map(self.shared.len(), |s| self.shared[s].forward(x));
        for res in shared_outputs {
            let y = res?;
            for t in 0..tokens {
                for (o, v) in out.row_mut(t).iter_mut().zip(y.row(t)) {
                    *o += v;
                }
            }
        }
        Ok(out)
    }

    /// Fault-tolerant variant of [`MoeBlock::forward_counting`]: experts
    /// run behind panic isolation ([`pool::try_par_map`]), every expert
    /// output is checked for non-finite values at the expert boundary,
    /// and failures are handled per the context's [`FaultMode`]:
    ///
    /// * **Strict** — the first failure aborts the request with
    ///   [`MoeError::ExpertFailed`] naming the layer, expert, and cause.
    /// * **Degrade** — the expert is quarantined in the health tracker
    ///   and, for every token that had routed to it, the surviving
    ///   experts' gates are rescaled so the token keeps its original
    ///   top-k probability mass. Tokens whose assigned experts all
    ///   failed lose their routed contribution (shared experts and the
    ///   residual stream still flow). Tokens untouched by the failure
    ///   are bit-identical to the non-resilient path.
    ///
    /// Shared experts (indexed `n_experts + s` in the health ledger) get
    /// the same guard; a failed shared expert is dropped without
    /// rescaling since shared contributions are additive, not gated.
    ///
    /// Injected faults from the context fire when the matching expert is
    /// dispatched, which is how the fault-injection harness exercises
    /// these paths deterministically.
    ///
    /// # Errors
    ///
    /// Routing errors (dimension mismatch, non-finite router logits)
    /// always propagate — a sick router poisons every expert, so there
    /// is nothing to degrade to. Expert failures propagate only in
    /// strict mode.
    pub fn forward_resilient(
        &self,
        x: &Matrix,
        layer: usize,
        ctx: &ResilienceContext,
    ) -> Result<Matrix> {
        let (tokens, d) = x.shape();
        let mut out = Matrix::zeros(tokens, d);
        let n_experts = self.experts.len();

        let telemetry = milo_obs::enabled();
        let mut assignment: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n_experts];
        for t in 0..tokens {
            let routes = self.router.try_route(x.row(t))?;
            if telemetry {
                record_gate_entropy(&routes);
            }
            for (e, gate) in routes {
                assignment[e].push((t, gate));
            }
        }
        record_routing_telemetry(Some(layer), &assignment);

        let raw = pool::try_par_map(n_experts, |e| {
            if assignment[e].is_empty() || ctx.health.is_failed(layer, e) {
                return None;
            }
            match ctx.injected_kind(layer, e) {
                Some(FaultKind::Panic) => {
                    panic!("injected fault: expert {e} of layer {layer} killed mid-dispatch")
                }
                Some(FaultKind::Slow { millis }) => {
                    ctx.sleep_interruptible(std::time::Duration::from_millis(millis));
                }
                _ => {}
            }
            let toks = &assignment[e];
            let mut sub = Matrix::zeros(toks.len(), d);
            for (i, &(t, _)) in toks.iter().enumerate() {
                sub.row_mut(i).copy_from_slice(x.row(t));
            }
            let mut res = self.experts[e].forward(&sub);
            if ctx.injected_kind(layer, e) == Some(FaultKind::NanOutput) {
                if let Ok(y) = &mut res {
                    y.row_mut(0)[0] = f32::NAN;
                }
            }
            Some(res)
        });

        // Classify outcomes serially so quarantine order is deterministic.
        let mut outputs: Vec<Option<Matrix>> = Vec::with_capacity(n_experts);
        for (e, task) in raw.into_iter().enumerate() {
            let outcome = match task {
                Err(panic) => Err(panic.message),
                Ok(None) => Ok(None),
                Ok(Some(Err(err))) => Err(format!("tensor error: {err}")),
                Ok(Some(Ok(y))) if !matrix_is_finite(&y) => {
                    Err("non-finite output".to_string())
                }
                Ok(Some(Ok(y))) => Ok(Some(y)),
            };
            match outcome {
                Ok(maybe) => {
                    // A clean dispatch of a half-open expert is its
                    // recovery probe passing; no-op for healthy experts.
                    if maybe.is_some() {
                        ctx.health.probe_succeeded(layer, e);
                    }
                    outputs.push(maybe);
                }
                Err(reason) => match ctx.mode {
                    FaultMode::Strict => {
                        return Err(MoeError::ExpertFailed { layer, expert: e, reason })
                    }
                    FaultMode::Degrade => {
                        ctx.health.record(layer, e, reason);
                        outputs.push(None);
                    }
                },
            }
        }

        // Per-token full and surviving gate mass. A quarantined expert
        // (this call or a previous one) contributes to `full` but not
        // `alive`; healthy tokens have full == alive so their rescale
        // factor is exactly 1 and the result stays bit-identical.
        let mut full = vec![0f32; tokens];
        let mut alive = vec![0f32; tokens];
        for (e, toks) in assignment.iter().enumerate() {
            let survived = outputs[e].is_some();
            for &(t, g) in toks {
                full[t] += g;
                if survived {
                    alive[t] += g;
                }
            }
        }

        for (e, maybe) in outputs.iter().enumerate() {
            let Some(y) = maybe else { continue };
            for (i, &(t, gate)) in assignment[e].iter().enumerate() {
                let g = if alive[t] == full[t] { gate } else { gate * full[t] / alive[t] };
                for (o, v) in out.row_mut(t).iter_mut().zip(y.row(i)) {
                    *o += g * v;
                }
            }
        }

        let shared_raw = pool::try_par_map(self.shared.len(), |s| {
            let idx = n_experts + s;
            if ctx.health.is_failed(layer, idx) {
                return None;
            }
            match ctx.injected_kind(layer, idx) {
                Some(FaultKind::Panic) => panic!(
                    "injected fault: shared expert {s} of layer {layer} killed mid-dispatch"
                ),
                Some(FaultKind::Slow { millis }) => {
                    ctx.sleep_interruptible(std::time::Duration::from_millis(millis));
                }
                _ => {}
            }
            let mut res = self.shared[s].forward(x);
            if ctx.injected_kind(layer, idx) == Some(FaultKind::NanOutput) {
                if let Ok(y) = &mut res {
                    y.row_mut(0)[0] = f32::NAN;
                }
            }
            Some(res)
        });
        for (s, task) in shared_raw.into_iter().enumerate() {
            let idx = n_experts + s;
            let outcome = match task {
                Err(panic) => Err(panic.message),
                Ok(None) => Ok(None),
                Ok(Some(Err(err))) => Err(format!("tensor error: {err}")),
                Ok(Some(Ok(y))) if !matrix_is_finite(&y) => {
                    Err("non-finite output".to_string())
                }
                Ok(Some(Ok(y))) => Ok(Some(y)),
            };
            match outcome {
                Ok(None) => {}
                Ok(Some(y)) => {
                    ctx.health.probe_succeeded(layer, idx);
                    for t in 0..tokens {
                        for (o, v) in out.row_mut(t).iter_mut().zip(y.row(t)) {
                            *o += v;
                        }
                    }
                }
                Err(reason) => match ctx.mode {
                    FaultMode::Strict => {
                        return Err(MoeError::ExpertFailed { layer, expert: idx, reason })
                    }
                    FaultMode::Degrade => ctx.health.record(layer, idx, reason),
                },
            }
        }
        Ok(out)
    }
}

/// Whether every element of a matrix is finite.
fn matrix_is_finite(m: &Matrix) -> bool {
    m.as_slice().iter().all(|v| v.is_finite())
}

/// One transformer layer: attention followed by the FFN block, both with
/// pre-RMS-norm residual connections.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerLayer {
    /// The self-attention block.
    pub attn: Attention,
    /// The feed-forward block (dense or MoE).
    pub ffn: FfnBlock,
}

/// A complete synthetic MoE language model.
///
/// # Examples
///
/// ```
/// use milo_moe::{MoeConfig, MoeModel};
///
/// let model = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 7);
/// let logits = model.forward(&[1, 2, 3])?;
/// assert_eq!(logits.shape(), (3, model.config.vocab));
/// # Ok::<(), milo_moe::MoeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MoeModel {
    /// The architecture configuration this model was synthesized from.
    pub config: MoeConfig,
    /// Token embedding, `vocab × d`.
    pub embed: Matrix,
    /// Transformer layers.
    pub layers: Vec<TransformerLayer>,
    /// Output head, `vocab × d` (logits = head · x).
    pub head: Matrix,
}

impl MoeModel {
    /// Synthesizes a model from the configuration, deterministically from
    /// `seed`.
    ///
    /// Weight classes follow the paper's statistical profile (Table 2):
    /// attention is Student-t (heavy-tailed), routed experts are uniform
    /// (light-tailed), shared experts / dense FFNs are Gaussian
    /// (in between). Router biases are Gaussian with the configured
    /// imbalance, which skews expert activation frequencies (Fig. 3).
    pub fn synthesize(config: &MoeConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = config.d_model;
        // Base init scale ~ 1/sqrt(d); each distribution is normalized to
        // the same variance so only the tail shape differs between layer
        // classes.
        let std = 1.0 / (d as f32).sqrt();
        let t_var = if config.attn_dof > 2.0 {
            config.attn_dof / (config.attn_dof - 2.0)
        } else {
            3.0
        };
        let attn_dist =
            WeightDist::StudentT { dof: config.attn_dof, scale: std / t_var.sqrt() };
        let expert_dist = WeightDist::Uniform { bound: std * 3f32.sqrt() };
        let shared_dist = WeightDist::Gaussian { std };

        let mlp = |dist: WeightDist, ffn: usize, rng: &mut StdRng| {
            Mlp::new(
                dist.sample_matrix(ffn, d, rng),
                dist.sample_matrix(d, ffn, rng),
                dist.sample_matrix(ffn, d, rng),
            )
        };
        // Routed experts additionally carry per-input-channel-group gains
        // (log-normal, variance-normalized, constant over 64-column
        // blocks): trained experts specialize per token subset and
        // develop channel-scale divergence. This reproduces the paper's
        // Table 2 expert statistics — excess kurtosis ≈ −0.5 (a scale
        // mixture of uniforms rather than pure uniform's −1.2) and a
        // *high* residual rank: the block gains set the quantization-group
        // scales, so the residual spectrum spreads and many singular
        // values fall below τ·σ_max. See `MoeConfig::expert_channel_spread`.
        let spread = config.expert_channel_spread;
        let expert_mlp = |dist: WeightDist, ffn: usize, rng: &mut StdRng| {
            let mut m = mlp(dist, ffn, rng);
            if spread > 0.0 {
                for w in [&mut m.w1, &mut m.w2, &mut m.w3] {
                    scale_column_blocks_lognormal(w, spread, 64, rng);
                }
            }
            m
        };

        let embed = WeightDist::Gaussian { std: 1.0 }.sample_matrix(config.vocab, d, &mut rng);
        let mut layers = Vec::with_capacity(config.n_layers);
        for layer in 0..config.n_layers {
            let attn = Attention::new(
                attn_dist.sample_matrix(d, d, &mut rng),
                attn_dist.sample_matrix(d, d, &mut rng),
                attn_dist.sample_matrix(d, d, &mut rng),
                attn_dist.sample_matrix(d, d, &mut rng),
                config.n_heads,
            );
            let ffn = if config.first_layer_dense && layer == 0 {
                FfnBlock::Dense(mlp(shared_dist, config.shared_ffn.max(config.expert_ffn), &mut rng))
            } else {
                let router_w =
                    WeightDist::Gaussian { std: 0.5 }.sample_matrix(config.n_experts, d, &mut rng);
                let bias: Vec<f32> = (0..config.n_experts)
                    .map(|_| {
                        WeightDist::Gaussian { std: config.router_imbalance }.sample(&mut rng)
                    })
                    .collect();
                let experts = (0..config.n_experts)
                    .map(|_| expert_mlp(expert_dist, config.expert_ffn, &mut rng))
                    .collect();
                let shared = (0..config.n_shared_experts)
                    .map(|_| mlp(shared_dist, config.shared_ffn, &mut rng))
                    .collect();
                FfnBlock::Moe(MoeBlock {
                    router: Router::new(router_w, bias, config.top_k),
                    experts,
                    shared,
                })
            };
            layers.push(TransformerLayer { attn, ffn });
        }
        let head = WeightDist::Gaussian { std: 1.0 }.sample_matrix(config.vocab, d, &mut rng);
        Self { config: config.clone(), embed, layers, head }
    }

    /// Runs the model over a token sequence, returning per-position
    /// logits (`seq × vocab`). Position `i`'s logits predict token
    /// `i + 1`. Optionally records expert activation counts per MoE
    /// layer into `counts[layer][expert]`.
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::InvalidToken`] for out-of-vocabulary ids and
    /// [`MoeError::InvalidInput`] for an empty sequence.
    pub fn forward_counting(
        &self,
        tokens: &[u32],
        mut counts: Option<&mut Vec<Vec<u64>>>,
    ) -> Result<Matrix> {
        if tokens.is_empty() {
            return Err(MoeError::InvalidInput("empty token sequence".into()));
        }
        let d = self.config.d_model;
        let mut x = Matrix::zeros(tokens.len(), d);
        for (i, &t) in tokens.iter().enumerate() {
            if t as usize >= self.config.vocab {
                return Err(MoeError::InvalidToken { token: t, vocab: self.config.vocab });
            }
            x.row_mut(i).copy_from_slice(self.embed.row(t as usize));
        }

        for (li, layer) in self.layers.iter().enumerate() {
            let _span = milo_obs::span(|| format!("moe.layer{{layer={li}}}"));
            let a = layer.attn.forward(&rms_norm(&x))?;
            x = x.add(&a)?;
            let normed = rms_norm(&x);
            let f = match &layer.ffn {
                FfnBlock::Dense(mlp) => mlp.forward(&normed)?,
                FfnBlock::Moe(moe) => {
                    let slot = counts.as_deref_mut().map(|c| &mut c[li]);
                    moe.forward_counting_labeled(
                        &normed,
                        slot.map(|v| v.as_mut_slice()),
                        Some(li),
                    )?
                }
            };
            x = x.add(&f)?;
        }

        let final_x = rms_norm(&x);
        let logits = final_x.matmul(&self.head.transpose())?;
        Ok(logits.scale(self.config.head_gain / (d as f32).sqrt()))
    }

    /// Runs the model over a token sequence, returning per-position
    /// logits (`seq × vocab`).
    ///
    /// # Errors
    ///
    /// See [`MoeModel::forward_counting`].
    pub fn forward(&self, tokens: &[u32]) -> Result<Matrix> {
        self.forward_counting(tokens, None)
    }

    /// Fault-tolerant forward pass: MoE blocks dispatch through
    /// [`MoeBlock::forward_resilient`], so a panicking or NaN-producing
    /// expert either fails the request with a typed
    /// [`MoeError::ExpertFailed`] (strict) or is quarantined while the
    /// router's top-k mass renormalizes over the survivors (degrade).
    ///
    /// # Errors
    ///
    /// See [`MoeModel::forward_counting`] and
    /// [`MoeBlock::forward_resilient`].
    pub fn forward_resilient(
        &self,
        tokens: &[u32],
        ctx: &ResilienceContext,
    ) -> Result<Matrix> {
        if tokens.is_empty() {
            return Err(MoeError::InvalidInput("empty token sequence".into()));
        }
        let d = self.config.d_model;
        let mut x = Matrix::zeros(tokens.len(), d);
        for (i, &t) in tokens.iter().enumerate() {
            if t as usize >= self.config.vocab {
                return Err(MoeError::InvalidToken { token: t, vocab: self.config.vocab });
            }
            x.row_mut(i).copy_from_slice(self.embed.row(t as usize));
        }

        for (li, layer) in self.layers.iter().enumerate() {
            // Cooperative cancellation: a request whose deadline passed
            // (or that a watchdog cancelled) unwinds at the next layer
            // boundary instead of running to completion.
            if ctx.is_cancelled() {
                return Err(MoeError::Cancelled { layer: li });
            }
            let _span = milo_obs::span(|| format!("moe.layer{{layer={li}}}"));
            let a = layer.attn.forward(&rms_norm(&x))?;
            x = x.add(&a)?;
            let normed = rms_norm(&x);
            let f = match &layer.ffn {
                FfnBlock::Dense(mlp) => mlp.forward(&normed)?,
                FfnBlock::Moe(moe) => moe.forward_resilient(&normed, li, ctx)?,
            };
            x = x.add(&f)?;
        }
        if ctx.is_cancelled() {
            return Err(MoeError::Cancelled { layer: self.layers.len() });
        }

        let final_x = rms_norm(&x);
        let logits = final_x.matmul(&self.head.transpose())?;
        Ok(logits.scale(self.config.head_gain / (d as f32).sqrt()))
    }

    /// Samples a continuation of `prompt` of length `len` at the given
    /// softmax temperature, re-running the full forward pass per step
    /// (no KV cache; sequences in this reproduction are short).
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn sample(
        &self,
        prompt: &[u32],
        len: usize,
        temperature: f32,
        rng: &mut StdRng,
    ) -> Result<Vec<u32>> {
        let mut tokens = prompt.to_vec();
        for _ in 0..len {
            let logits = self.forward(&tokens)?;
            let last = logits.row(logits.rows() - 1);
            let next = sample_from_logits(last, temperature, rng);
            tokens.push(next);
        }
        Ok(tokens)
    }

    /// Empty per-layer expert-count buffers shaped for
    /// [`MoeModel::forward_counting`].
    pub fn fresh_counts(&self) -> Vec<Vec<u64>> {
        self.layers
            .iter()
            .map(|l| match &l.ffn {
                FfnBlock::Moe(moe) => vec![0u64; moe.experts.len()],
                FfnBlock::Dense(_) => Vec::new(),
            })
            .collect()
    }
}

/// Scales each `block`-wide column block of `w` by a variance-normalized
/// log-normal gain `exp(s·z − s²)` with `z ~ N(0,1)`, so `E[gain²] = 1`
/// and the overall weight variance is unchanged while input-channel-group
/// scales diverge. Blocks are aligned with the quantization group size so
/// the structure propagates into the quantization residual.
fn scale_column_blocks_lognormal(
    w: &mut milo_tensor::Matrix,
    s: f32,
    block: usize,
    rng: &mut StdRng,
) {
    let cols = w.cols();
    let gains: Vec<f32> = (0..cols.div_ceil(block))
        .map(|_| {
            let z = milo_tensor::rng::standard_normal(rng);
            (s * z - s * s).exp()
        })
        .collect();
    for r in 0..w.rows() {
        for (c, v) in w.row_mut(r).iter_mut().enumerate() {
            *v *= gains[c / block];
        }
    }
}

/// Samples a token index from logits at the given temperature.
pub fn sample_from_logits(logits: &[f32], temperature: f32, rng: &mut StdRng) -> u32 {
    let t = temperature.max(1e-3);
    let max_l = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| ((l - max_l) / t).exp()).collect();
    let total: f32 = exps.iter().sum();
    let mut u: f32 = rng.gen::<f32>() * total;
    for (i, &e) in exps.iter().enumerate() {
        u -= e;
        if u <= 0.0 {
            return i as u32;
        }
    }
    (exps.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::stats;

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = MoeConfig::tiny_mixtral();
        let a = MoeModel::synthesize(&cfg, 7);
        let b = MoeModel::synthesize(&cfg, 7);
        assert_eq!(a.embed, b.embed);
        assert_eq!(a.layers.len(), b.layers.len());
    }

    #[test]
    fn forward_shapes_are_correct() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 1);
        let logits = m.forward(&[1, 2, 3, 4]).unwrap();
        assert_eq!(logits.shape(), (4, 64));
    }

    #[test]
    fn out_of_vocab_token_is_error() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 1);
        assert!(matches!(
            m.forward(&[1000]),
            Err(MoeError::InvalidToken { .. })
        ));
    }

    #[test]
    fn empty_sequence_is_error() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 1);
        assert!(m.forward(&[]).is_err());
    }

    #[test]
    fn deepseek_first_layer_is_dense() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_deepseek(), 2);
        assert!(matches!(m.layers[0].ffn, FfnBlock::Dense(_)));
        assert!(matches!(m.layers[1].ffn, FfnBlock::Moe(_)));
    }

    #[test]
    fn expert_counts_accumulate_topk_per_token() {
        let cfg = MoeConfig::tiny_mixtral();
        let m = MoeModel::synthesize(&cfg, 3);
        let mut counts = m.fresh_counts();
        let seq = [0u32, 5, 9, 13, 21];
        m.forward_counting(&seq, Some(&mut counts)).unwrap();
        for layer_counts in counts.iter().filter(|c| !c.is_empty()) {
            let total: u64 = layer_counts.iter().sum();
            assert_eq!(total, (seq.len() * cfg.top_k) as u64);
        }
    }

    #[test]
    fn attention_weights_have_higher_kurtosis_than_experts() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 4);
        let attn_k = stats::matrix_kurtosis(&m.layers[0].attn.wq);
        if let FfnBlock::Moe(moe) = &m.layers[0].ffn {
            let exp_k = stats::matrix_kurtosis(&moe.experts[0].w1);
            assert!(
                attn_k > exp_k,
                "attention kurtosis {attn_k} should exceed expert kurtosis {exp_k}"
            );
        } else {
            panic!("tiny mixtral layer 0 should be MoE");
        }
    }

    #[test]
    fn sampling_extends_prompt() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 5);
        let mut rng = StdRng::seed_from_u64(6);
        let out = m.sample(&[1, 2], 5, 1.0, &mut rng).unwrap();
        assert_eq!(out.len(), 7);
        assert_eq!(&out[..2], &[1, 2]);
        assert!(out.iter().all(|&t| (t as usize) < 64));
    }

    #[test]
    fn sample_from_logits_respects_temperature() {
        let mut rng = StdRng::seed_from_u64(7);
        // With a dominant logit and tiny temperature, the argmax is
        // picked almost surely.
        let logits = vec![0.0, 10.0, 0.0, 0.0];
        for _ in 0..20 {
            assert_eq!(sample_from_logits(&logits, 0.01, &mut rng), 1);
        }
    }

    #[test]
    fn parallel_expert_dispatch_is_bit_identical_to_serial() {
        // Both architectures: Mixtral-like (8 experts, top-2) and
        // DeepSeek-like (fine-grained experts + shared experts).
        for (cfg, seed) in [(MoeConfig::tiny_mixtral(), 11u64), (MoeConfig::tiny_deepseek(), 12)]
        {
            let m = MoeModel::synthesize(&cfg, seed);
            let seq: Vec<u32> = (0..16).map(|i| (i * 5) % cfg.vocab as u32).collect();
            let mut serial_counts = m.fresh_counts();
            let serial = pool::with_threads(1, || {
                m.forward_counting(&seq, Some(&mut serial_counts)).unwrap()
            });
            for t in [2, 4, 7] {
                let mut counts = m.fresh_counts();
                let par = pool::with_threads(t, || {
                    m.forward_counting(&seq, Some(&mut counts)).unwrap()
                });
                assert_eq!(par.as_slice(), serial.as_slice(), "threads={t}");
                assert_eq!(counts, serial_counts, "threads={t}");
            }
        }
    }

    #[test]
    fn resilient_forward_matches_plain_forward_when_healthy() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 13);
        let seq = [1u32, 4, 9];
        let plain = m.forward(&seq).unwrap();
        for ctx in [ResilienceContext::strict(), ResilienceContext::degrade()] {
            let res = m.forward_resilient(&seq, &ctx).unwrap();
            assert_eq!(res.as_slice(), plain.as_slice());
            assert_eq!(ctx.health.n_failed(), 0);
        }
    }

    #[test]
    fn nan_expert_degrades_to_finite_output_with_renormalized_mass() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 14);
        let seq = [1u32, 4, 9, 16];
        let mut counts = m.fresh_counts();
        m.forward_counting(&seq, Some(&mut counts)).unwrap();
        let busiest = counts[0]
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(e, _)| e)
            .unwrap();
        let fault = crate::health::InjectedFault {
            layer: 0,
            expert: busiest,
            kind: FaultKind::NanOutput,
        };

        // Degrade: finite logits, expert quarantined.
        let ctx = ResilienceContext::degrade().with_fault(fault);
        let logits = m.forward_resilient(&seq, &ctx).unwrap();
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
        assert!(ctx.health.is_failed(0, busiest));
        let ((l, e), reason) = ctx.health.failures().remove(0);
        assert_eq!((l, e), (0, busiest));
        assert!(reason.contains("non-finite"), "reason = {reason}");

        // Strict: typed error naming the expert.
        let strict = ResilienceContext::strict().with_fault(fault);
        match m.forward_resilient(&seq, &strict) {
            Err(MoeError::ExpertFailed { layer: 0, expert, reason }) => {
                assert_eq!(expert, busiest);
                assert!(reason.contains("non-finite"), "reason = {reason}");
            }
            other => panic!("expected ExpertFailed, got {other:?}"),
        }
    }

    #[test]
    fn panicking_expert_is_captured_not_fatal() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 15);
        let seq = [2u32, 7, 11];
        // Kill the busiest expert of layer 1 so the fault is guaranteed
        // to fire during dispatch.
        let mut counts = m.fresh_counts();
        m.forward_counting(&seq, Some(&mut counts)).unwrap();
        let busiest = counts[1]
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(e, _)| e)
            .unwrap();
        let fault =
            crate::health::InjectedFault { layer: 1, expert: busiest, kind: FaultKind::Panic };

        let ctx = ResilienceContext::degrade().with_fault(fault);
        let logits = m.forward_resilient(&seq, &ctx).unwrap();
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
        assert!(ctx.health.is_failed(1, busiest));

        let strict = ResilienceContext::strict().with_fault(fault);
        match m.forward_resilient(&seq, &strict) {
            Err(MoeError::ExpertFailed { layer: 1, expert, reason }) => {
                assert_eq!(expert, busiest);
                assert!(reason.contains("injected fault"), "reason = {reason}");
            }
            other => panic!("expected ExpertFailed, got {other:?}"),
        }

        // The pool (and the model) stay fully usable afterwards.
        assert_eq!(
            m.forward(&seq).unwrap().as_slice(),
            m.forward_resilient(&seq, &ResilienceContext::strict()).unwrap().as_slice()
        );
    }

    #[test]
    fn degraded_tokens_keep_their_topk_mass() {
        // With top-2 routing and one dead expert, affected tokens run on
        // the surviving expert with its gate scaled back up to the full
        // top-k mass — so the output stays in the healthy dynamic range.
        let cfg = MoeConfig::tiny_mixtral();
        let m = MoeModel::synthesize(&cfg, 16);
        let seq: Vec<u32> = (0..12).map(|i| (i * 3) % cfg.vocab as u32).collect();
        let mut counts = m.fresh_counts();
        m.forward_counting(&seq, Some(&mut counts)).unwrap();
        let busiest = counts[0]
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(e, _)| e)
            .unwrap();
        let ctx = ResilienceContext::degrade().with_fault(crate::health::InjectedFault {
            layer: 0,
            expert: busiest,
            kind: FaultKind::NanOutput,
        });
        let degraded = m.forward_resilient(&seq, &ctx).unwrap();
        let healthy = m.forward(&seq).unwrap();
        assert!(degraded.as_slice().iter().all(|v| v.is_finite()));
        // Degradation perturbs but does not explode the logits.
        let h_norm: f32 = healthy.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt();
        let d_norm: f32 = degraded.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(d_norm < 4.0 * h_norm, "degraded norm {d_norm} vs healthy {h_norm}");
    }

    #[test]
    fn shared_expert_failure_degrades_gracefully() {
        let cfg = MoeConfig::tiny_deepseek();
        let m = MoeModel::synthesize(&cfg, 17);
        let seq = [3u32, 8];
        // Layer 1 is the first MoE layer; shared experts live at
        // n_experts + s in the health ledger.
        let idx = cfg.n_experts;
        let ctx = ResilienceContext::degrade().with_fault(crate::health::InjectedFault {
            layer: 1,
            expert: idx,
            kind: FaultKind::Panic,
        });
        let logits = m.forward_resilient(&seq, &ctx).unwrap();
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
        assert!(ctx.health.is_failed(1, idx));
    }

    #[test]
    fn logits_change_when_weights_change() {
        let cfg = MoeConfig::tiny_mixtral();
        let a = MoeModel::synthesize(&cfg, 8);
        let mut b = a.clone();
        b.layers[0].attn.wq = b.layers[0].attn.wq.scale(1.5);
        let la = a.forward(&[3, 1, 4]).unwrap();
        let lb = b.forward(&[3, 1, 4]).unwrap();
        assert_ne!(la, lb);
    }
}
