//! Architecture configurations for the synthetic MoE models.
//!
//! The presets scale the paper's two evaluation models down to CPU-friendly
//! sizes while preserving everything the MiLo algorithm interacts with:
//! layer classes, expert counts, router top-k, matrix aspect ratios, and
//! the statistical profile of each weight class (see `DESIGN.md` §5).

/// Configuration of a synthetic MoE transformer.
#[derive(Debug, Clone, PartialEq)]
pub struct MoeConfig {
    /// Human-readable model name used in reports.
    pub name: String,
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Model (residual stream) dimension.
    pub d_model: usize,
    /// Number of attention heads (`d_model` must be divisible by this).
    pub n_heads: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of routed experts per MoE layer.
    pub n_experts: usize,
    /// Router top-k.
    pub top_k: usize,
    /// Hidden dimension of each routed expert's FFN.
    pub expert_ffn: usize,
    /// Number of always-active shared experts (DeepSeek-style); 0 for
    /// Mixtral-style models.
    pub n_shared_experts: usize,
    /// Hidden dimension of each shared expert (and of the dense FFN when
    /// [`MoeConfig::first_layer_dense`] is set).
    pub shared_ffn: usize,
    /// Whether layer 0 uses a dense FFN instead of experts (DeepSeek-MoE
    /// does).
    pub first_layer_dense: bool,
    /// Standard deviation of the per-expert router bias; larger values
    /// skew expert activation frequencies harder (paper Fig. 3).
    pub router_imbalance: f32,
    /// Student-t degrees of freedom for attention weights (lower = heavier
    /// tails; paper Table 2 shows attention kurtosis ≈ 1.57 for Mixtral,
    /// which dof ≈ 8 matches).
    pub attn_dof: f32,
    /// Log-normal spread of per-output-channel gains on routed-expert
    /// weights. Trained experts specialize on token subsets and develop
    /// per-channel scale divergence; this reproduces paper Table 2's
    /// expert statistics (excess kurtosis ≈ −0.5 rather than pure
    /// uniform's −1.2, and a residual spectrum with many singular values
    /// below τ·σ_max). 0 disables the structure.
    pub expert_channel_spread: f32,
    /// Logit sharpening factor applied to the output head; larger values
    /// make the synthetic language model more confident, giving perplexity
    /// measurements more dynamic range.
    pub head_gain: f32,
}

impl MoeConfig {
    /// The scaled Mixtral-8×7B analogue: 8 experts, top-2, FFN/d ratio
    /// 14336/4096 = 3.5, no shared experts, balanced-ish router.
    pub fn mixtral_like() -> Self {
        Self {
            name: "Mixtral-like".into(),
            n_layers: 8,
            d_model: 256,
            n_heads: 4,
            vocab: 512,
            n_experts: 8,
            top_k: 2,
            expert_ffn: 896, // 3.5 × d_model, and a multiple of 128
            n_shared_experts: 0,
            shared_ffn: 0,
            first_layer_dense: false,
            router_imbalance: 0.3,
            attn_dof: 8.0,
            expert_channel_spread: 0.29,
            head_gain: 2.0,
        }
    }

    /// The scaled DeepSeek-MoE analogue: 64 fine-grained experts, top-6,
    /// 2 shared experts, dense first layer, strongly skewed router.
    pub fn deepseek_like() -> Self {
        Self {
            name: "DeepSeek-like".into(),
            n_layers: 8,
            d_model: 192,
            n_heads: 4,
            vocab: 512,
            n_experts: 64,
            top_k: 6,
            expert_ffn: 96,
            n_shared_experts: 2,
            shared_ffn: 192,
            first_layer_dense: true,
            router_imbalance: 1.0,
            attn_dof: 20.0, // paper Table 2: DeepSeek attention kurtosis ≈ 0.016
            expert_channel_spread: 0.29,
            head_gain: 2.0,
        }
    }

    /// A tiny Mixtral-like config for fast tests.
    pub fn tiny_mixtral() -> Self {
        Self {
            name: "Tiny-Mixtral".into(),
            n_layers: 2,
            d_model: 64,
            n_heads: 2,
            vocab: 64,
            n_experts: 4,
            top_k: 2,
            expert_ffn: 128,
            n_shared_experts: 0,
            shared_ffn: 0,
            first_layer_dense: false,
            router_imbalance: 0.3,
            attn_dof: 6.0,
            expert_channel_spread: 0.29,
            head_gain: 2.0,
        }
    }

    /// A tiny DeepSeek-like config for fast tests.
    pub fn tiny_deepseek() -> Self {
        Self {
            name: "Tiny-DeepSeek".into(),
            n_layers: 2,
            d_model: 64,
            n_heads: 2,
            vocab: 64,
            n_experts: 8,
            top_k: 2,
            expert_ffn: 32,
            n_shared_experts: 1,
            shared_ffn: 64,
            first_layer_dense: true,
            router_imbalance: 1.0,
            attn_dof: 20.0,
            expert_channel_spread: 0.29,
            head_gain: 2.0,
        }
    }

    /// Returns a copy uniformly scaled: dimensions multiplied by `f`
    /// (rounded to multiples of 32 so kernels can pack them), layer count
    /// untouched. Useful for sweeping experiment sizes.
    pub fn scaled(&self, f: f32) -> Self {
        let round32 = |v: usize| (((v as f32 * f) / 32.0).round().max(1.0) as usize) * 32;
        Self {
            d_model: round32(self.d_model),
            expert_ffn: round32(self.expert_ffn),
            shared_ffn: if self.shared_ffn > 0 { round32(self.shared_ffn) } else { 0 },
            ..self.clone()
        }
    }

    /// Per-head dimension.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.d_model % self.n_heads, 0, "d_model must divide by n_heads");
        self.d_model / self.n_heads
    }

    /// Total parameter count of the quantizable weights (attention +
    /// experts + shared/dense FFNs), excluding embeddings and routers,
    /// which the paper keeps in half precision.
    pub fn quantizable_params(&self) -> usize {
        let attn = 4 * self.d_model * self.d_model;
        let expert = 3 * self.expert_ffn * self.d_model;
        let shared = 3 * self.shared_ffn * self.d_model;
        let mut total = 0;
        for layer in 0..self.n_layers {
            total += attn;
            if self.first_layer_dense && layer == 0 {
                total += shared.max(expert);
            } else {
                total += self.n_experts * expert + self.n_shared_experts * shared;
            }
        }
        total
    }

    /// FP16 memory of the quantizable weights, in bytes.
    pub fn fp16_bytes(&self) -> usize {
        2 * self.quantizable_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for cfg in [
            MoeConfig::mixtral_like(),
            MoeConfig::deepseek_like(),
            MoeConfig::tiny_mixtral(),
            MoeConfig::tiny_deepseek(),
        ] {
            assert_eq!(cfg.d_model % cfg.n_heads, 0, "{}", cfg.name);
            assert!(cfg.top_k <= cfg.n_experts, "{}", cfg.name);
            assert!(cfg.head_dim() > 0);
        }
    }

    #[test]
    fn mixtral_preserves_ffn_ratio() {
        let cfg = MoeConfig::mixtral_like();
        let ratio = cfg.expert_ffn as f32 / cfg.d_model as f32;
        // Mixtral-8x7B: 14336 / 4096 = 3.5.
        assert!((ratio - 3.5).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn deepseek_is_fine_grained() {
        let cfg = MoeConfig::deepseek_like();
        assert!(cfg.n_experts >= 32);
        assert!(cfg.expert_ffn < cfg.d_model);
        assert!(cfg.first_layer_dense);
        assert!(cfg.n_shared_experts > 0);
    }

    #[test]
    fn scaled_rounds_to_32() {
        let cfg = MoeConfig::mixtral_like().scaled(0.5);
        assert_eq!(cfg.d_model % 32, 0);
        assert_eq!(cfg.expert_ffn % 32, 0);
        assert!(cfg.d_model < MoeConfig::mixtral_like().d_model);
    }

    #[test]
    fn param_counts_scale_with_experts() {
        let mix = MoeConfig::tiny_mixtral();
        let mut more = mix.clone();
        more.n_experts *= 2;
        assert!(more.quantizable_params() > mix.quantizable_params());
        assert_eq!(mix.fp16_bytes(), 2 * mix.quantizable_params());
    }

    #[test]
    fn dense_first_layer_counts_differently() {
        let ds = MoeConfig::tiny_deepseek();
        let mut all_moe = ds.clone();
        all_moe.first_layer_dense = false;
        assert!(all_moe.quantizable_params() > ds.quantizable_params());
    }
}
