//! Expert pruning — the paper's stated future-work combination
//! ("combining MiLo with other MoE compression techniques, such as
//! pruning", §5).
//!
//! Pruning drops the least-activated experts of each MoE layer entirely
//! (router rows included); the kept experts are re-indexed. Combined
//! with MiLo quantization this trades a little routing fidelity for a
//! large additional memory cut — the `extra_pruning_combo` experiment
//! binary evaluates the trade.

use crate::model::{FfnBlock, MoeBlock, MoeModel};
use crate::profile::FrequencyProfile;
use crate::router::Router;
use crate::{MoeError, Result};
use milo_tensor::Matrix;

/// Returns a copy of `model` where every MoE layer keeps only its `keep`
/// most-frequently-activated experts (per `profile`), with routers
/// shrunk accordingly. Dense layers and shared experts are untouched.
///
/// # Errors
///
/// Returns [`MoeError::InvalidInput`] if `keep` is zero or exceeds the
/// expert count, or if the profile does not cover the model.
pub fn prune_experts(
    model: &MoeModel,
    profile: &FrequencyProfile,
    keep: usize,
) -> Result<MoeModel> {
    if keep == 0 {
        return Err(MoeError::InvalidInput("must keep at least one expert".into()));
    }
    let mut out = model.clone();
    for (li, layer) in out.layers.iter_mut().enumerate() {
        let FfnBlock::Moe(moe) = &mut layer.ffn else {
            continue;
        };
        let n = moe.experts.len();
        if keep > n {
            return Err(MoeError::InvalidInput(format!(
                "keep {keep} exceeds {n} experts in layer {li}"
            )));
        }
        let freqs = &profile.per_layer.get(li).cloned().unwrap_or_default();
        if freqs.len() != n {
            return Err(MoeError::InvalidInput(format!(
                "profile covers {} experts in layer {li}, model has {n}",
                freqs.len()
            )));
        }
        // Rank experts by activation frequency, descending.
        let mut order: Vec<usize> = (0..n).collect();
        // Total order so a NaN frequency (e.g. from a zero-token profile)
        // cannot panic the sort.
        order.sort_by(|&a, &b| freqs[b].total_cmp(&freqs[a]));
        let mut kept: Vec<usize> = order[..keep].to_vec();
        kept.sort_unstable(); // stable re-indexing

        let d = moe.router.weight.cols();
        let mut router_w = Matrix::zeros(keep, d);
        let mut bias = Vec::with_capacity(keep);
        let mut experts = Vec::with_capacity(keep);
        for (new_idx, &old_idx) in kept.iter().enumerate() {
            router_w.row_mut(new_idx).copy_from_slice(moe.router.weight.row(old_idx));
            bias.push(moe.router.bias[old_idx]);
            experts.push(moe.experts[old_idx].clone());
        }
        let top_k = moe.router.top_k().min(keep);
        *moe = MoeBlock {
            router: Router::new(router_w, bias, top_k),
            experts,
            shared: moe.shared.clone(),
        };
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MoeConfig;
    use crate::profile::profile_expert_frequency;
    use crate::tensors::layer_tensors;

    fn setup() -> (MoeModel, FrequencyProfile) {
        let model = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 21);
        let corpus: Vec<Vec<u32>> = (0..6).map(|i| (i..i + 12).map(|t| t % 64).collect()).collect();
        let profile = profile_expert_frequency(&model, &corpus).expect("profile");
        (model, profile)
    }

    #[test]
    fn pruned_model_has_fewer_experts() {
        let (model, profile) = setup();
        let pruned = prune_experts(&model, &profile, 2).unwrap();
        for layer in &pruned.layers {
            if let FfnBlock::Moe(moe) = &layer.ffn {
                assert_eq!(moe.experts.len(), 2);
                assert_eq!(moe.router.n_experts(), 2);
                assert_eq!(moe.router.top_k(), 2);
            }
        }
    }

    #[test]
    fn pruned_model_still_runs() {
        let (model, profile) = setup();
        let pruned = prune_experts(&model, &profile, 2).unwrap();
        let logits = pruned.forward(&[1, 2, 3, 4]).unwrap();
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn keeps_the_most_frequent_experts() {
        let (model, profile) = setup();
        let keep = 2;
        let pruned = prune_experts(&model, &profile, keep).unwrap();
        // The kept experts' total frequency share must be at least
        // keep/n of the mass (they're the top ones).
        for (li, layer) in model.layers.iter().enumerate() {
            let FfnBlock::Moe(moe) = &layer.ffn else { continue };
            let mut freqs = profile.per_layer[li].clone();
            freqs.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let top_share: f32 = freqs[..keep].iter().sum();
            assert!(top_share >= keep as f32 / moe.experts.len() as f32);
        }
        // Parameter count shrinks proportionally.
        let before = layer_tensors(&model, None).len();
        let after = layer_tensors(&pruned, None).len();
        assert!(after < before);
    }

    #[test]
    fn pruning_everything_or_nothing_is_rejected() {
        let (model, profile) = setup();
        assert!(prune_experts(&model, &profile, 0).is_err());
        assert!(prune_experts(&model, &profile, 99).is_err());
    }

    #[test]
    fn keep_all_is_behavior_preserving() {
        let (model, profile) = setup();
        let n = match &model.layers[0].ffn {
            FfnBlock::Moe(moe) => moe.experts.len(),
            _ => unreachable!(),
        };
        let same = prune_experts(&model, &profile, n).unwrap();
        let a = model.forward(&[3, 1, 4, 1]).unwrap();
        let b = same.forward(&[3, 1, 4, 1]).unwrap();
        assert_eq!(a, b);
    }
}
