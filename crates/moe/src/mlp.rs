//! The SwiGLU feed-forward block used by both evaluation models:
//! `y = w2 · (silu(w1 · x) ⊙ (w3 · x))`.
//!
//! The three projection shapes (`w1, w3: ffn × d`, `w2: d × ffn`) are the
//! GEMMs the paper's kernel experiments target (Table 9 lists them per
//! model).

use crate::Result;
use milo_tensor::Matrix;

/// SiLU activation `x · σ(x)`.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// A SwiGLU MLP block.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// Gate projection, `ffn × d`.
    pub w1: Matrix,
    /// Down projection, `d × ffn`.
    pub w2: Matrix,
    /// Up projection, `ffn × d`.
    pub w3: Matrix,
}

impl Mlp {
    /// Creates an MLP, validating that the three projections agree on
    /// `(ffn, d)`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    pub fn new(w1: Matrix, w2: Matrix, w3: Matrix) -> Self {
        let (ffn, d) = w1.shape();
        assert_eq!(w3.shape(), (ffn, d), "w3 must match w1");
        assert_eq!(w2.shape(), (d, ffn), "w2 must be the transpose shape of w1");
        Self { w1, w2, w3 }
    }

    /// Hidden (FFN) dimension.
    pub fn ffn_dim(&self) -> usize {
        self.w1.rows()
    }

    /// Model dimension.
    pub fn d_model(&self) -> usize {
        self.w1.cols()
    }

    /// Applies the block to a batch of token vectors (`tokens × d`),
    /// returning the same shape.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong width.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        Ok(self.forward_with_hidden(x)?.1)
    }

    /// Like [`Mlp::forward`] but also returns the post-activation hidden
    /// `h = silu(w1·x) ⊙ (w3·x)` — the input of the `w2` projection,
    /// needed by calibration capture.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong width.
    pub fn forward_with_hidden(&self, x: &Matrix) -> Result<(Matrix, Matrix)> {
        // x: T×d. gate = x·w1ᵗ: T×ffn, up = x·w3ᵗ, h = silu(gate)⊙up,
        // y = h·w2ᵗ: T×d.
        let gate = x.matmul(&self.w1.transpose())?;
        let up = x.matmul(&self.w3.transpose())?;
        let h = Matrix::from_fn(gate.rows(), gate.cols(), |r, c| {
            silu(gate[(r, c)]) * up[(r, c)]
        });
        let y = h.matmul(&self.w2.transpose())?;
        Ok((h, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;

    fn mlp(ffn: usize, d: usize, seed: u64) -> Mlp {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        let dist = WeightDist::Gaussian { std: 0.1 };
        Mlp::new(
            dist.sample_matrix(ffn, d, &mut rng),
            dist.sample_matrix(d, ffn, &mut rng),
            dist.sample_matrix(ffn, d, &mut rng),
        )
    }

    #[test]
    fn silu_properties() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(10.0) - 10.0).abs() < 1e-3); // ≈ identity for large x
        assert!(silu(-10.0).abs() < 1e-3); // ≈ 0 for very negative x
    }

    #[test]
    fn forward_preserves_shape() {
        let m = mlp(32, 16, 1);
        let x = Matrix::filled(5, 16, 0.1);
        let y = m.forward(&x).unwrap();
        assert_eq!(y.shape(), (5, 16));
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let m = mlp(16, 8, 2);
        let y = m.forward(&Matrix::zeros(3, 8)).unwrap();
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn forward_is_token_independent() {
        // Each row is processed independently: permuting rows permutes
        // outputs.
        let m = mlp(16, 8, 3);
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(4);
        let x = WeightDist::Gaussian { std: 1.0 }.sample_matrix(2, 8, &mut rng);
        let y = m.forward(&x).unwrap();
        let x_swapped = Matrix::from_fn(2, 8, |r, c| x[(1 - r, c)]);
        let y_swapped = m.forward(&x_swapped).unwrap();
        for c in 0..8 {
            assert_eq!(y[(0, c)], y_swapped[(1, c)]);
            assert_eq!(y[(1, c)], y_swapped[(0, c)]);
        }
    }

    #[test]
    #[should_panic(expected = "w2 must be the transpose shape")]
    fn inconsistent_shapes_panic() {
        let w1 = Matrix::zeros(8, 4);
        let w2 = Matrix::zeros(8, 4); // wrong orientation
        let w3 = Matrix::zeros(8, 4);
        let _ = Mlp::new(w1, w2, w3);
    }

    #[test]
    fn wrong_input_width_is_error() {
        let m = mlp(16, 8, 5);
        assert!(m.forward(&Matrix::zeros(2, 9)).is_err());
    }
}
