//! Expert activation-frequency profiling (paper Fig. 3).
//!
//! The paper routes Wikitext-2 through the models and plots how often
//! each expert fires; DeepSeek-MoE's most-used expert is activated 11.7×
//! more often than the least-used one in the same layer. This module
//! produces the same per-layer × per-expert frequency map from a
//! synthetic corpus, and those frequencies feed the `Frequency-{r}` rank
//! policy.

use crate::model::{FfnBlock, MoeModel};
use crate::Result;

/// Per-layer, per-expert activation frequencies. Layers without routed
/// experts (dense FFN layers) have an empty row.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyProfile {
    /// `per_layer[layer][expert]` is the expert's share of that layer's
    /// activations, normalized to sum to 1 per MoE layer.
    pub per_layer: Vec<Vec<f32>>,
}

impl FrequencyProfile {
    /// Frequency share of `expert` in `layer` (0 for dense layers).
    pub fn frequency(&self, layer: usize, expert: usize) -> f32 {
        self.per_layer
            .get(layer)
            .and_then(|l| l.get(expert))
            .copied()
            .unwrap_or(0.0)
    }

    /// Max/min activation ratio within one layer (∞-safe: returns
    /// `f32::INFINITY` when an expert never fired). This is the imbalance
    /// statistic the paper quotes (11.7× for DeepSeek-MoE).
    pub fn imbalance_ratio(&self, layer: usize) -> f32 {
        let freqs = &self.per_layer[layer];
        if freqs.is_empty() {
            return 1.0;
        }
        let max = freqs.iter().cloned().fold(0.0f32, f32::max);
        let min = freqs.iter().cloned().fold(f32::INFINITY, f32::min);
        if min == 0.0 {
            f32::INFINITY
        } else {
            max / min
        }
    }

    /// The largest per-layer imbalance ratio in the model.
    pub fn max_imbalance(&self) -> f32 {
        (0..self.per_layer.len())
            .filter(|&l| !self.per_layer[l].is_empty())
            .map(|l| self.imbalance_ratio(l))
            .fold(1.0, f32::max)
    }
}

/// Routes every sequence of `corpus` through the model and returns the
/// normalized expert activation frequencies.
///
/// # Errors
///
/// Propagates forward-pass errors (bad tokens, empty sequences).
pub fn profile_expert_frequency(
    model: &MoeModel,
    corpus: &[Vec<u32>],
) -> Result<FrequencyProfile> {
    let mut counts = model.fresh_counts();
    for seq in corpus {
        model.forward_counting(seq, Some(&mut counts))?;
    }
    let per_layer = counts
        .into_iter()
        .zip(&model.layers)
        .map(|(layer_counts, layer)| match &layer.ffn {
            FfnBlock::Dense(_) => Vec::new(),
            FfnBlock::Moe(_) => {
                let total: u64 = layer_counts.iter().sum();
                if total == 0 {
                    vec![0.0; layer_counts.len()]
                } else {
                    layer_counts.iter().map(|&c| c as f32 / total as f32).collect()
                }
            }
        })
        .collect();
    Ok(FrequencyProfile { per_layer })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MoeConfig;
    use milo_tensor::rng::{Rng, SeedableRng};

    fn corpus(vocab: usize, n: usize, len: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..len).map(|_| rng.gen_range(0..vocab as u32)).collect())
            .collect()
    }

    #[test]
    fn frequencies_normalize_per_layer() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 1);
        let p = profile_expert_frequency(&m, &corpus(64, 4, 16, 2)).unwrap();
        for (li, layer) in p.per_layer.iter().enumerate() {
            if layer.is_empty() {
                continue;
            }
            let sum: f32 = layer.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "layer {li} sums to {sum}");
        }
    }

    #[test]
    fn dense_layers_have_empty_rows() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_deepseek(), 3);
        let p = profile_expert_frequency(&m, &corpus(64, 2, 8, 4)).unwrap();
        assert!(p.per_layer[0].is_empty());
        assert!(!p.per_layer[1].is_empty());
    }

    #[test]
    fn imbalanced_router_shows_in_profile() {
        // Strong router imbalance should produce a clearly skewed
        // distribution.
        let mut cfg = MoeConfig::tiny_mixtral();
        cfg.router_imbalance = 2.0;
        let skewed = MoeModel::synthesize(&cfg, 5);
        let p = profile_expert_frequency(&skewed, &corpus(64, 8, 24, 6)).unwrap();
        assert!(
            p.max_imbalance() > 2.0,
            "imbalance {} too small for a biased router",
            p.max_imbalance()
        );
    }

    #[test]
    fn frequency_accessor_is_bounded() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 7);
        let p = profile_expert_frequency(&m, &corpus(64, 2, 8, 8)).unwrap();
        assert_eq!(p.frequency(999, 0), 0.0);
        assert_eq!(p.frequency(0, 999), 0.0);
        let f = p.frequency(0, 0);
        assert!((0.0..=1.0).contains(&f));
    }
}
