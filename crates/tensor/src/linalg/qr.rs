//! Householder thin QR factorization.

use crate::{Matrix, Result, TensorError};

/// Computes the thin QR factorization `A = Q · R` of an `m × n` matrix
/// with `m ≥ n`, where `Q` is `m × n` with orthonormal columns and `R` is
/// `n × n` upper triangular.
///
/// Uses Householder reflections accumulated in `f64` for stability; the
/// randomized SVD uses this to orthonormalize its sketch.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `m < n` or the matrix is
/// empty.
pub fn thin_qr(a: &Matrix) -> Result<(Matrix, Matrix)> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(TensorError::InvalidArgument("QR of an empty matrix".into()));
    }
    if m < n {
        return Err(TensorError::InvalidArgument(format!(
            "thin QR requires rows >= cols, got {m}x{n}"
        )));
    }

    // Work in f64 column-major for numerical headroom.
    let mut r: Vec<f64> = a.as_slice().iter().map(|&v| v as f64).collect();
    let idx = |row: usize, col: usize| row * n + col;
    // Householder vectors, one per column, each of length m (zero-padded
    // above the diagonal).
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

    for k in 0..n {
        // Build the Householder vector for column k.
        let mut norm2 = 0.0;
        for i in k..m {
            norm2 += r[idx(i, k)] * r[idx(i, k)];
        }
        let norm = norm2.sqrt();
        let mut v = vec![0.0; m];
        if norm == 0.0 {
            vs.push(v);
            continue;
        }
        let alpha = if r[idx(k, k)] >= 0.0 { -norm } else { norm };
        for i in k..m {
            v[i] = r[idx(i, k)];
        }
        v[k] -= alpha;
        let vnorm2: f64 = v[k..].iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            vs.push(vec![0.0; m]);
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to the trailing block of R.
        for j in k..n {
            let dot: f64 = (k..m).map(|i| v[i] * r[idx(i, j)]).sum();
            let coef = 2.0 * dot / vnorm2;
            for i in k..m {
                r[idx(i, j)] -= coef * v[i];
            }
        }
        vs.push(v);
    }

    // Form Q by applying the reflections to the first n columns of I,
    // in reverse order.
    let mut q = vec![0.0f64; m * n];
    for j in 0..n {
        q[idx(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        let vnorm2: f64 = v[k..].iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        for j in 0..n {
            let dot: f64 = (k..m).map(|i| v[i] * q[idx(i, j)]).sum();
            let coef = 2.0 * dot / vnorm2;
            for i in k..m {
                q[idx(i, j)] -= coef * v[i];
            }
        }
    }

    let q_mat = Matrix::from_vec(m, n, q.iter().map(|&v| v as f32).collect());
    let mut r_mat = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r_mat[(i, j)] = r[idx(i, j)] as f32;
        }
    }
    Ok((q_mat, r_mat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::WeightDist;
    use crate::rng::SeedableRng;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn qr_reconstructs_input() {
        let mut rng = crate::rng::StdRng::seed_from_u64(1);
        let a = WeightDist::Gaussian { std: 1.0 }.sample_matrix(20, 8, &mut rng);
        let (q, r) = thin_qr(&a).unwrap();
        assert_close(&q.matmul(&r).unwrap(), &a, 1e-4);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let mut rng = crate::rng::StdRng::seed_from_u64(2);
        let a = WeightDist::Gaussian { std: 1.0 }.sample_matrix(30, 10, &mut rng);
        let (q, _) = thin_qr(&a).unwrap();
        let qtq = q.transpose().matmul(&q).unwrap();
        assert_close(&qtq, &Matrix::identity(10), 1e-4);
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = crate::rng::StdRng::seed_from_u64(3);
        let a = WeightDist::Gaussian { std: 1.0 }.sample_matrix(12, 6, &mut rng);
        let (_, r) = thin_qr(&a).unwrap();
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn square_identity_factors_trivially() {
        let i = Matrix::identity(5);
        let (q, r) = thin_qr(&i).unwrap();
        assert_close(&q.matmul(&r).unwrap(), &i, 1e-6);
    }

    #[test]
    fn wide_matrix_is_rejected() {
        let a = Matrix::zeros(2, 5);
        assert!(thin_qr(&a).is_err());
    }

    #[test]
    fn rank_deficient_column_does_not_panic() {
        // Second column is zero.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[3.0, 0.0]]);
        let (q, r) = thin_qr(&a).unwrap();
        assert_close(&q.matmul(&r).unwrap(), &a, 1e-5);
    }
}
