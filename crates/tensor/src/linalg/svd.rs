//! Singular value decomposition.
//!
//! Two routines back the paper's pipeline:
//!
//! * [`jacobi_svd`] — a one-sided Jacobi SVD that computes *all* singular
//!   values. The paper's Table 2 residual-rank measure needs the whole
//!   spectrum, and Jacobi is simple, robust, and accurate at the matrix
//!   sizes the scaled models use.
//! * [`truncated_svd`] — randomized subspace iteration producing only the
//!   top-`r` triple. This plays the role of `torch.svd_lowrank` in the
//!   paper's implementation (Appendix B): the low-rank compensator only
//!   needs the leading `r` singular directions of the residual, and
//!   computing the full SVD of every residual would dominate quantization
//!   time.

use crate::linalg::qr::thin_qr;
use crate::rng::standard_normal;
use crate::{Matrix, Result, TensorError};
use crate::rng::StdRng;
use crate::rng::SeedableRng;

/// The result of a singular value decomposition `A = U · diag(σ) · Vᵗ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × k` with orthonormal columns.
    pub u: Matrix,
    /// Singular values in non-increasing order, length `k`.
    pub sigma: Vec<f32>,
    /// Right singular vectors **transposed**, `k × n` with orthonormal rows.
    pub vt: Matrix,
}

impl Svd {
    /// Reconstructs `U · diag(σ) · Vᵗ`.
    pub fn reconstruct(&self) -> Matrix {
        let mut us = self.u.clone();
        for r in 0..us.rows() {
            for (c, &s) in self.sigma.iter().enumerate() {
                us[(r, c)] *= s;
            }
        }
        us.matmul(&self.vt).expect("shapes are consistent by construction")
    }

    /// Splits into the paper's compensator form `U' = U·√Σ`, `V' = √Σ·Vᵗ`
    /// (Eq. 12), so that `U'·V'` equals the truncated reconstruction.
    pub fn split_balanced(&self) -> (Matrix, Matrix) {
        let mut u = self.u.clone();
        let mut vt = self.vt.clone();
        for (c, &s) in self.sigma.iter().enumerate() {
            let sqrt_s = s.max(0.0).sqrt();
            for r in 0..u.rows() {
                u[(r, c)] *= sqrt_s;
            }
            for j in 0..vt.cols() {
                vt[(c, j)] *= sqrt_s;
            }
        }
        (u, vt)
    }
}

/// Computes the full SVD of `a` by one-sided Jacobi rotations.
///
/// Returns all `min(m, n)` singular values in non-increasing order. The
/// sweep terminates when every column pair is orthogonal to relative
/// tolerance `1e-10`, or after 60 sweeps.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for an empty matrix and
/// [`TensorError::NoConvergence`] if the sweeps fail to orthogonalize.
pub fn jacobi_svd(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(TensorError::InvalidArgument("SVD of an empty matrix".into()));
    }
    // One-sided Jacobi orthogonalizes columns; work on the orientation with
    // fewer columns and swap U/V afterwards if we transposed.
    if m < n {
        let svd_t = jacobi_svd(&a.transpose())?;
        return Ok(Svd { u: svd_t.vt.transpose(), sigma: svd_t.sigma, vt: svd_t.u.transpose() });
    }

    // Column-major f64 working copy of A (m rows, n cols) and V (n x n).
    let mut cols: Vec<Vec<f64>> =
        (0..n).map(|j| (0..m).map(|i| a[(i, j)] as f64).collect()).collect();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut col = vec![0.0; n];
            col[j] = 1.0;
            col
        })
        .collect();

    const MAX_SWEEPS: usize = 60;
    const TOL: f64 = 1e-10;
    let mut converged = false;
    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for i in 0..m {
                    alpha += cols[p][i] * cols[p][i];
                    beta += cols[q][i] * cols[q][i];
                    gamma += cols[p][i] * cols[q][i];
                }
                if alpha == 0.0 || beta == 0.0 {
                    continue;
                }
                let denom = (alpha * beta).sqrt();
                if gamma.abs() / denom <= TOL {
                    continue;
                }
                off = off.max(gamma.abs() / denom);
                // Jacobi rotation that zeroes the (p,q) inner product.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let (xp, xq) = (cols[p][i], cols[q][i]);
                    cols[p][i] = c * xp - s * xq;
                    cols[q][i] = s * xp + c * xq;
                }
                for i in 0..n {
                    let (vp, vq) = (v[p][i], v[q][i]);
                    v[p][i] = c * vp - s * vq;
                    v[q][i] = s * vp + c * vq;
                }
            }
        }
        if off <= TOL {
            converged = true;
            break;
        }
    }
    if !converged {
        // One extra check: tiny matrices may simply be done.
        // Treat near-orthogonal as converged rather than erroring eagerly.
        let mut worst = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let dot: f64 = (0..m).map(|i| cols[p][i] * cols[q][i]).sum();
                let np: f64 = cols[p].iter().map(|x| x * x).sum();
                let nq: f64 = cols[q].iter().map(|x| x * x).sum();
                if np > 0.0 && nq > 0.0 {
                    worst = worst.max(dot.abs() / (np * nq).sqrt());
                }
            }
        }
        if worst > 1e-6 {
            return Err(TensorError::NoConvergence { iterations: MAX_SWEEPS });
        }
    }

    // Singular values are the column norms; sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> =
        cols.iter().map(|col| col.iter().map(|x| x * x).sum::<f64>().sqrt()).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).expect("norms are finite"));

    let mut u = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (out_idx, &src) in order.iter().enumerate() {
        let s = norms[src];
        sigma.push(s as f32);
        if s > 0.0 {
            for i in 0..m {
                u[(i, out_idx)] = (cols[src][i] / s) as f32;
            }
        }
        for i in 0..n {
            vt[(out_idx, i)] = v[src][i] as f32;
        }
    }
    Ok(Svd { u, sigma, vt })
}

/// Computes a rank-`r` truncated SVD by randomized subspace iteration.
///
/// Sketches `A` with a Gaussian test matrix of width `r + oversample`,
/// runs `power_iters` rounds of power iteration with QR
/// re-orthonormalization, then solves the small projected problem exactly
/// with [`jacobi_svd`]. `seed` makes the sketch deterministic.
///
/// With `oversample ≈ 8` and `power_iters ≈ 2` the leading singular
/// triples are accurate to well below the quantization noise floor this
/// library cares about.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `r == 0` or
/// `r > min(m, n)`.
pub fn truncated_svd(
    a: &Matrix,
    r: usize,
    oversample: usize,
    power_iters: usize,
    seed: u64,
) -> Result<Svd> {
    let (m, n) = a.shape();
    let k_max = m.min(n);
    if r == 0 || r > k_max {
        return Err(TensorError::InvalidArgument(format!(
            "rank {r} out of range for {m}x{n} matrix"
        )));
    }
    let k = (r + oversample).min(k_max);

    let mut rng = StdRng::seed_from_u64(seed);
    let omega = Matrix::from_fn(n, k, |_, _| standard_normal(&mut rng));
    let mut y = a.matmul(&omega)?; // m x k
    let (mut q, _) = thin_qr(&y)?;
    for _ in 0..power_iters {
        let z = a.transpose().matmul(&q)?; // n x k
        let (qz, _) = thin_qr(&z)?;
        y = a.matmul(&qz)?;
        let (qy, _) = thin_qr(&y)?;
        q = qy;
    }
    let b = q.transpose().matmul(a)?; // k x n
    let small = jacobi_svd(&b)?;
    let u_full = q.matmul(&small.u)?; // m x k

    // Truncate to rank r.
    let u = u_full.submatrix(0, m, 0, r);
    let vt = small.vt.submatrix(0, r, 0, n);
    let sigma = small.sigma[..r].to_vec();
    Ok(Svd { u, sigma, vt })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::WeightDist;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    fn random(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        WeightDist::Gaussian { std: 1.0 }.sample_matrix(m, n, &mut rng)
    }

    #[test]
    fn jacobi_reconstructs_tall_matrix() {
        let a = random(16, 8, 1);
        let svd = jacobi_svd(&a).unwrap();
        assert_close(&svd.reconstruct(), &a, 1e-4);
    }

    #[test]
    fn jacobi_reconstructs_wide_matrix() {
        let a = random(6, 14, 2);
        let svd = jacobi_svd(&a).unwrap();
        assert_close(&svd.reconstruct(), &a, 1e-4);
    }

    #[test]
    fn singular_values_are_sorted_and_nonnegative() {
        let a = random(12, 12, 3);
        let svd = jacobi_svd(&a).unwrap();
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn u_and_v_are_orthonormal() {
        let a = random(10, 7, 4);
        let svd = jacobi_svd(&a).unwrap();
        assert_close(&svd.u.transpose().matmul(&svd.u).unwrap(), &Matrix::identity(7), 1e-4);
        assert_close(&svd.vt.matmul(&svd.vt.transpose()).unwrap(), &Matrix::identity(7), 1e-4);
    }

    #[test]
    fn known_diagonal_spectrum() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        let svd = jacobi_svd(&a).unwrap();
        assert!((svd.sigma[0] - 4.0).abs() < 1e-5);
        assert!((svd.sigma[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn rank_one_matrix_has_one_singular_value() {
        let u = random(9, 1, 5);
        let v = random(1, 6, 6);
        let a = u.matmul(&v).unwrap();
        let svd = jacobi_svd(&a).unwrap();
        assert!(svd.sigma[0] > 0.1);
        for &s in &svd.sigma[1..] {
            assert!(s < 1e-4, "trailing sigma {s}");
        }
    }

    #[test]
    fn truncated_matches_jacobi_on_leading_triples() {
        // A flat Gaussian spectrum is the hard case for subspace
        // iteration; 1% on each leading singular value is the realistic
        // bar there (structured spectra are tested separately below).
        let a = random(40, 24, 7);
        let full = jacobi_svd(&a).unwrap();
        let trunc = truncated_svd(&a, 5, 8, 4, 99).unwrap();
        for i in 0..5 {
            assert!(
                (full.sigma[i] - trunc.sigma[i]).abs() / full.sigma[i] < 1e-2,
                "sigma[{i}]: {} vs {}",
                full.sigma[i],
                trunc.sigma[i]
            );
        }
    }

    #[test]
    fn truncated_is_near_exact_on_decaying_spectrum() {
        // Build A = U diag(4^-i) Vᵗ: with a geometric spectrum the
        // randomized solver should recover the leading triples to ~1e-4.
        let base = random(24, 16, 21);
        let full = jacobi_svd(&base).unwrap();
        let mut scaled = full.u.clone();
        for r in 0..scaled.rows() {
            for c in 0..scaled.cols() {
                scaled[(r, c)] *= 4.0f32.powi(-(c as i32));
            }
        }
        let a = scaled.matmul(&full.vt).unwrap();
        let trunc = truncated_svd(&a, 4, 6, 2, 5).unwrap();
        for (i, &s) in trunc.sigma.iter().enumerate() {
            let expected = 4.0f32.powi(-(i as i32));
            assert!(
                (s - expected).abs() / expected < 1e-3,
                "sigma[{i}]: {s} vs {expected}"
            );
        }
    }

    #[test]
    fn truncated_rank_r_is_best_approximation_error() {
        // Eckart–Young: error of rank-r truncation equals sqrt of the sum
        // of squared discarded singular values.
        let a = random(30, 20, 8);
        let full = jacobi_svd(&a).unwrap();
        let r = 4;
        let trunc = truncated_svd(&a, r, 10, 3, 13).unwrap();
        let approx = trunc.reconstruct();
        let err = a.sub(&approx).unwrap().frobenius_norm();
        let optimal: f32 =
            full.sigma[r..].iter().map(|&s| (s as f64) * (s as f64)).sum::<f64>().sqrt() as f32;
        assert!(
            (err - optimal).abs() / optimal < 0.01,
            "err {err} vs Eckart-Young optimum {optimal}"
        );
    }

    #[test]
    fn split_balanced_product_equals_reconstruction() {
        let a = random(15, 10, 9);
        let svd = truncated_svd(&a, 3, 5, 2, 1).unwrap();
        let (u, v) = svd.split_balanced();
        assert_close(&u.matmul(&v).unwrap(), &svd.reconstruct(), 1e-4);
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let a = random(8, 8, 10);
        assert!(truncated_svd(&a, 0, 2, 1, 0).is_err());
        assert!(truncated_svd(&a, 9, 2, 1, 0).is_err());
    }

    #[test]
    fn zero_matrix_has_zero_spectrum() {
        let a = Matrix::zeros(5, 5);
        let svd = jacobi_svd(&a).unwrap();
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
    }
}
