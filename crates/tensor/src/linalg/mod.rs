//! Linear-algebra routines backing the MiLo pipeline.
//!
//! * [`qr`] — Householder thin QR, used inside the randomized SVD.
//! * [`svd`] — one-sided Jacobi SVD (exact, for rank analysis in paper
//!   Table 2) and randomized truncated SVD (fast, the role
//!   `torch.svd_lowrank` plays in the paper's implementation).
//! * [`cholesky`] — Cholesky factorization for the GPTQ baseline's inverse
//!   Hessian.

pub mod cholesky;
pub mod qr;
pub mod svd;

pub use cholesky::{cholesky_decompose, cholesky_inverse, cholesky_solve};
pub use qr::thin_qr;
pub use svd::{jacobi_svd, truncated_svd, Svd};
