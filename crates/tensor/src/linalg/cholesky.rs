//! Cholesky factorization, used by the GPTQ baseline to invert the
//! (damped) calibration Hessian `H = 2·X·Xᵀ + λI`.

use crate::{Matrix, Result, TensorError};

/// Computes the lower-triangular Cholesky factor `L` with `A = L · Lᵗ`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `a` is not square and
/// [`TensorError::NotPositiveDefinite`] if a non-positive pivot is
/// encountered.
pub fn cholesky_decompose(a: &Matrix) -> Result<Matrix> {
    let (m, n) = a.shape();
    if m != n {
        return Err(TensorError::InvalidArgument(format!("Cholesky needs a square matrix, got {m}x{n}")));
    }
    let mut l = vec![0.0f64; n * n];
    let idx = |r: usize, c: usize| r * n + c;
    for j in 0..n {
        let mut diag = a[(j, j)] as f64;
        for k in 0..j {
            diag -= l[idx(j, k)] * l[idx(j, k)];
        }
        if diag <= 0.0 {
            return Err(TensorError::NotPositiveDefinite);
        }
        let ljj = diag.sqrt();
        l[idx(j, j)] = ljj;
        for i in (j + 1)..n {
            let mut v = a[(i, j)] as f64;
            for k in 0..j {
                v -= l[idx(i, k)] * l[idx(j, k)];
            }
            l[idx(i, j)] = v / ljj;
        }
    }
    Ok(Matrix::from_vec(n, n, l.iter().map(|&v| v as f32).collect()))
}

/// Solves `A · x = b` given the Cholesky factor `L` of `A`, by forward
/// then backward substitution.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `b.len()` differs from the
/// factor's dimension.
pub fn cholesky_solve(l: &Matrix, b: &[f32]) -> Result<Vec<f32>> {
    let n = l.rows();
    if b.len() != n {
        return Err(TensorError::ShapeMismatch(format!(
            "solve: factor is {n}x{n}, rhs has length {}",
            b.len()
        )));
    }
    // Forward: L y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut v = b[i] as f64;
        for k in 0..i {
            v -= l[(i, k)] as f64 * y[k];
        }
        y[i] = v / l[(i, i)] as f64;
    }
    // Backward: Lᵗ x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut v = y[i];
        for k in (i + 1)..n {
            v -= l[(k, i)] as f64 * x[k];
        }
        x[i] = v / l[(i, i)] as f64;
    }
    Ok(x.iter().map(|&v| v as f32).collect())
}

/// Computes `A⁻¹` from the Cholesky factor `L` of `A` by solving against
/// the identity columns.
///
/// # Errors
///
/// Propagates errors from [`cholesky_solve`].
pub fn cholesky_inverse(l: &Matrix) -> Result<Matrix> {
    let n = l.rows();
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0f32; n];
    for j in 0..n {
        e[j] = 1.0;
        let col = cholesky_solve(l, &e)?;
        for (i, &v) in col.iter().enumerate() {
            inv[(i, j)] = v;
        }
        e[j] = 0.0;
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::WeightDist;
    use crate::rng::SeedableRng;

    fn spd(n: usize, seed: u64) -> Matrix {
        let mut rng = crate::rng::StdRng::seed_from_u64(seed);
        let b = WeightDist::Gaussian { std: 1.0 }.sample_matrix(n, n, &mut rng);
        // B·Bᵗ + n·I is symmetric positive definite.
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f32;
        }
        a
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn factor_reconstructs_spd_matrix() {
        let a = spd(8, 1);
        let l = cholesky_decompose(&a).unwrap();
        assert_close(&l.matmul(&l.transpose()).unwrap(), &a, 1e-3);
    }

    #[test]
    fn factor_is_lower_triangular() {
        let a = spd(6, 2);
        let l = cholesky_decompose(&a).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd(10, 3);
        let l = cholesky_decompose(&a).unwrap();
        let x_true: Vec<f32> = (0..10).map(|i| i as f32 - 4.5).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = cholesky_solve(&l, &b).unwrap();
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-2, "{xs} vs {xt}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd(7, 4);
        let l = cholesky_decompose(&a).unwrap();
        let inv = cholesky_inverse(&l).unwrap();
        assert_close(&a.matmul(&inv).unwrap(), &Matrix::identity(7), 1e-2);
    }

    #[test]
    fn non_square_is_rejected() {
        assert!(cholesky_decompose(&Matrix::zeros(3, 4)).is_err());
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(cholesky_decompose(&a), Err(TensorError::NotPositiveDefinite)));
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let a = spd(4, 5);
        let l = cholesky_decompose(&a).unwrap();
        assert!(cholesky_solve(&l, &[1.0, 2.0]).is_err());
    }
}
