//! Vendored CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! The artifact formats (`MILO`, `MOEM`) carry a per-section checksum so
//! a flipped bit or a truncated download is reported as a typed error
//! naming the damaged section instead of silently producing garbage
//! weights. CRC-32 detects *every* burst error of up to 32 bits — in
//! particular every single-byte corruption — which is exactly the fault
//! class the serving core must never mistake for valid data. Vendored
//! here per the workspace's zero-external-dependency policy (PR 1).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// A streaming CRC-32 hasher.
///
/// # Examples
///
/// ```
/// use milo_tensor::crc32::Crc32;
///
/// let mut h = Crc32::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finalize(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the checksum of everything fed so far.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_check() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 499, 999, 1000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn every_single_byte_flip_changes_the_checksum() {
        let data = b"a small weight section payload".to_vec();
        let clean = crc32(&data);
        for offset in 0..data.len() {
            for xor in [0x01u8, 0x80, 0xFF] {
                let mut bad = data.clone();
                bad[offset] ^= xor;
                assert_ne!(crc32(&bad), clean, "flip at {offset} xor {xor:#x}");
            }
        }
    }

    #[test]
    fn truncation_changes_the_checksum() {
        let data: Vec<u8> = (0u8..=200).collect();
        let clean = crc32(&data);
        for cut in 0..data.len() {
            assert_ne!(crc32(&data[..cut]), clean, "truncated to {cut}");
        }
    }
}
