//! Dense-matrix substrate for the MiLo reproduction.
//!
//! This crate provides everything the higher layers need from a numerical
//! library, implemented from scratch so the reproduction has no native or
//! GPU dependencies:
//!
//! * [`Matrix`] — a row-major `f32` matrix with the arithmetic used by the
//!   quantizers and the MoE substrate.
//! * [`f16`](crate::half) — a bit-level IEEE 754 binary16 implementation.
//!   The MiLo kernel's binary-manipulation dequantization (paper §3.3)
//!   manipulates half-precision *bit patterns*, so a faithful reproduction
//!   needs access to the representation, not just the arithmetic.
//! * [`prng`] — a vendored seeded PRNG (SplitMix64 + xoshiro256++) with
//!   `Rng`/`SeedableRng` traits, so the workspace needs no external `rand`
//!   crate and builds fully offline.
//! * [`rng`] — seeded samplers for the weight distributions the paper's
//!   analysis relies on (Gaussian, Student-t, uniform), so synthetic models
//!   can match the kurtosis profile of Mixtral-8×7B and DeepSeek-MoE
//!   (paper Table 2).
//! * [`proptest`] — a minimal property-testing harness (seeded generation
//!   plus input shrinking) replacing the external `proptest` crate.
//! * [`pool`] — a scoped, work-stealing-free fork-join pool (sized by
//!   `MILO_THREADS` / `available_parallelism`) that the hot paths — dense
//!   matmul row blocks, the fused GEMM's `n`-tiles, MoE expert dispatch —
//!   run on, with bit-identical results at every thread count.
//! * [`stats`] — kurtosis, Frobenius norms, and the residual-rank measure
//!   from paper Table 2.
//! * [`crc32`] — vendored CRC-32 for the checksummed artifact sections;
//!   [`io`] builds length+checksum framed sections on top of it so the
//!   serving core detects corruption/truncation instead of loading
//!   garbage weights.
//! * [`linalg`] — Householder QR, one-sided Jacobi SVD, randomized
//!   truncated SVD (the role `torch.svd_lowrank` plays in the paper's
//!   implementation, Appendix B), and Cholesky factorization (used by the
//!   GPTQ baseline).

#![warn(missing_docs)]

pub mod crc32;
pub mod half;
pub mod io;
pub mod linalg;
pub mod matrix;
pub mod pool;
pub mod prng;
pub mod proptest;
pub mod rng;
pub mod stats;

pub use half::F16;
pub use matrix::Matrix;

/// Errors produced by linear-algebra routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes; the payload is a human-readable
    /// description of the mismatch.
    ShapeMismatch(String),
    /// A factorization could not proceed (e.g. Cholesky on a matrix that is
    /// not positive definite).
    NotPositiveDefinite,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations attempted before giving up.
        iterations: usize,
    },
    /// An argument was out of the valid range (e.g. a rank larger than the
    /// matrix dimensions).
    InvalidArgument(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            TensorError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            TensorError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenient result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
