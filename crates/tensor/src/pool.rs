//! A scoped, work-stealing-free fork-join pool for the hot numeric paths.
//!
//! The paper's kernel (§3.3) maps its tiled decomposition onto parallel
//! threadblocks; this module is the CPU analogue every hot path in the
//! workspace routes through: [`Matrix::matmul`](crate::Matrix::matmul)
//! row blocks, the fused GEMM's `n`-tiles, and MoE expert dispatch.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Work is split into *statically assigned contiguous
//!    chunks* (no work stealing, no atomics on the data path), and every
//!    output element is produced entirely by one task with its reduction
//!    order unchanged from the serial code. Parallel results are therefore
//!    bit-identical to serial results for every thread count.
//! 2. **Hermeticity.** Built on `std::thread::scope` only (PR 1 policy:
//!    no external crates).
//! 3. **No oversubscription.** Worker threads are flagged; nested
//!    parallel calls made from inside a pool task run serially, so an
//!    expert-parallel MoE layer does not spawn a thread per matmul.
//!
//! Sizing: `MILO_THREADS` (read once per process) overrides
//! `std::thread::available_parallelism`. Tests and benches use
//! [`with_threads`] for a calling-thread-scoped override that needs no
//! environment mutation and cannot race across test threads.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::OnceLock;

/// Upper bound on the thread count accepted from the environment or
/// [`with_threads`]; a typo like `MILO_THREADS=1000000` must not try to
/// spawn a million OS threads.
pub const MAX_THREADS: usize = 512;

thread_local! {
    /// Calling-thread-scoped thread-count override (0 = unset).
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// Set while this thread is executing a pool task; forces nested
    /// parallel calls onto the serial path.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Process-wide default worker count: `MILO_THREADS` if set and valid,
/// otherwise `available_parallelism`. Resolved once.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let env = std::env::var("MILO_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        env.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1)
        })
        .min(MAX_THREADS)
    })
}

/// The number of threads a parallel operation started on this thread may
/// use right now: 1 inside a pool task (nested calls stay serial),
/// otherwise the innermost [`with_threads`] override, otherwise the
/// process default (`MILO_THREADS` / `available_parallelism`).
pub fn max_threads() -> usize {
    if IN_POOL.with(Cell::get) {
        return 1;
    }
    let o = OVERRIDE.with(Cell::get);
    if o > 0 {
        o.min(MAX_THREADS)
    } else {
        default_threads()
    }
}

/// Runs `f` with the pool sized to `n` threads for parallel operations
/// started on the calling thread, restoring the previous setting on exit
/// (including on panic). `n = 0` is treated as 1.
///
/// This is the override the equivalence tests and benches use to sweep
/// thread counts without touching the process environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(n.clamp(1, MAX_THREADS))));
    f()
}

/// Joins a scoped worker, re-raising the worker's *original* panic
/// payload (message included) on the joining thread instead of a
/// second-hand "worker panicked" message that hides the cause.
fn join_propagating<T>(h: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match h.join() {
        Ok(v) => v,
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

thread_local! {
    /// Set while a task body runs under [`try_par_map`]; the panic hook
    /// stays quiet for these, since the panic is captured and returned
    /// as a value rather than propagated.
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that suppresses output for
/// panics captured by [`try_par_map`] and delegates to the previous hook
/// otherwise.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Starts a busy-time measurement for one worker's chunk, or `None` when
/// telemetry is off or the call is already nested inside a pool task
/// (nested serial fallbacks are part of the enclosing worker's busy time
/// and must not be double-counted).
fn busy_timer() -> Option<std::time::Instant> {
    if milo_obs::enabled() && !IN_POOL.with(Cell::get) {
        Some(std::time::Instant::now())
    } else {
        None
    }
}

/// Flushes one worker's chunk into `pool.busy_ns{worker=…}` and
/// `pool.tasks{worker=…}`. Worker 0 is the calling thread.
fn record_busy(worker: usize, tasks: u64, start: Option<std::time::Instant>) {
    let Some(start) = start else { return };
    let w = worker.to_string();
    milo_obs::counter_add(
        &milo_obs::metric_key("pool.busy_ns", &[("worker", &w)]),
        start.elapsed().as_nanos() as u64,
    );
    milo_obs::counter_add(&milo_obs::metric_key("pool.tasks", &[("worker", &w)]), tasks);
}

/// RAII guard that marks the current thread as executing a pool task.
struct TaskGuard(bool);

impl TaskGuard {
    fn enter() -> Self {
        Self(IN_POOL.with(|c| c.replace(true)))
    }
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        IN_POOL.with(|c| c.set(self.0));
    }
}

/// Calls `body(i)` for every `i in 0..tasks`, splitting the index range
/// into contiguous chunks across up to [`max_threads`] scoped threads
/// (the calling thread processes the first chunk). Serial when one
/// thread is configured, when `tasks <= 1`, or when called from inside
/// another pool task.
///
/// # Panics
///
/// Propagates panics from `body` (the scope joins every worker).
pub fn parallel_for(tasks: usize, body: impl Fn(usize) + Sync) {
    let threads = max_threads().min(tasks);
    if threads <= 1 {
        let t0 = busy_timer();
        for i in 0..tasks {
            body(i);
        }
        record_busy(0, tasks as u64, t0);
        return;
    }
    let chunk = tasks.div_ceil(threads);
    std::thread::scope(|scope| {
        let body = &body;
        let handles: Vec<_> = (1..threads)
            .map(|t| {
                scope.spawn(move || {
                    let t0 = busy_timer();
                    let _guard = TaskGuard::enter();
                    let (lo, hi) = (t * chunk, tasks.min((t + 1) * chunk));
                    for i in lo..hi {
                        body(i);
                    }
                    record_busy(t, (hi - lo) as u64, t0);
                })
            })
            .collect();
        {
            let t0 = busy_timer();
            let _guard = TaskGuard::enter();
            for i in 0..chunk.min(tasks) {
                body(i);
            }
            record_busy(0, chunk.min(tasks) as u64, t0);
        }
        for h in handles {
            join_propagating(h);
        }
    });
}

/// Maps `f` over `0..n`, returning results in index order. Same
/// scheduling and nesting rules as [`parallel_for`].
pub fn par_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = max_threads().min(n);
    if threads <= 1 {
        let t0 = busy_timer();
        let out: Vec<T> = (0..n).map(f).collect();
        record_busy(0, n as u64, t0);
        return out;
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (1..threads)
            .map(|t| {
                scope.spawn(move || {
                    let t0 = busy_timer();
                    let _guard = TaskGuard::enter();
                    let out: Vec<T> =
                        (t * chunk..n.min((t + 1) * chunk)).map(f).collect();
                    record_busy(t, out.len() as u64, t0);
                    out
                })
            })
            .collect();
        let head = {
            let t0 = busy_timer();
            let _guard = TaskGuard::enter();
            let out: Vec<T> = (0..chunk.min(n)).map(f).collect();
            record_busy(0, out.len() as u64, t0);
            out
        };
        let mut out = vec![head];
        out.extend(handles.into_iter().map(join_propagating));
        out
    });
    let mut flat = Vec::with_capacity(n);
    for c in &mut chunks {
        flat.append(c);
    }
    flat
}

/// A captured per-task panic from [`try_par_map`]: which task index
/// failed and the original panic message. Callers attribute failures
/// (e.g. "expert 3 of layer 1 died") without parsing strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// The task index `i` whose `f(i)` panicked.
    pub index: usize,
    /// The original panic message (or a placeholder for non-string
    /// payloads).
    pub message: String,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskError {}

/// Like [`par_map`], but panics in `f` are *captured per task* instead of
/// tearing down the process: index `i` maps to `Err(TaskError)` carrying
/// the failing index and the original panic message when `f(i)` panics,
/// `Ok(value)` otherwise.
///
/// This is the isolation primitive MoE expert dispatch uses — one
/// poisoned expert becomes a per-expert failure the router can degrade
/// around, while the pool, the scope, and every other expert's result
/// stay usable. Captured panics are suppressed from the global panic
/// hook (no spurious backtrace spew); everything else about scheduling
/// and nesting matches [`par_map`].
pub fn try_par_map<T: Send>(
    n: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<std::result::Result<T, TaskError>> {
    install_quiet_hook();
    let guarded = |i: usize| -> std::result::Result<T, TaskError> {
        struct Quiet(bool);
        impl Drop for Quiet {
            fn drop(&mut self) {
                CAPTURING.with(|c| c.set(self.0));
            }
        }
        let _quiet = Quiet(CAPTURING.with(|c| c.replace(true)));
        panic::catch_unwind(AssertUnwindSafe(|| f(i)))
            .map_err(|payload| TaskError { index: i, message: panic_message(payload.as_ref()) })
    };
    par_map(n, guarded)
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the
/// last may be shorter) and calls `body(chunk_index, chunk)` for each,
/// distributing contiguous *runs of chunks* across up to [`max_threads`]
/// scoped threads. This is how mutable output buffers (matmul row
/// blocks, GEMM `n`-tile strips) are handed out without locks: each
/// chunk is a disjoint `&mut` slice.
///
/// # Panics
///
/// Panics if `chunk_len == 0`; propagates panics from `body`.
pub fn parallel_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = max_threads().min(n_chunks);
    if threads <= 1 {
        let t0 = busy_timer();
        for (i, c) in data.chunks_mut(chunk_len).enumerate() {
            body(i, c);
        }
        record_busy(0, n_chunks as u64, t0);
        return;
    }
    // Group whole chunks into one contiguous run per thread.
    let per_thread = n_chunks.div_ceil(threads);
    let mut runs: Vec<(usize, &mut [T])> = Vec::with_capacity(threads);
    let mut rest = data;
    let mut first_chunk = 0;
    while !rest.is_empty() {
        let take = (per_thread * chunk_len).min(rest.len());
        let (run, tail) = rest.split_at_mut(take);
        runs.push((first_chunk, run));
        first_chunk += per_thread;
        rest = tail;
    }
    std::thread::scope(|scope| {
        let body = &body;
        let mut iter = runs.into_iter();
        let head = iter.next().expect("data is non-empty");
        let handles: Vec<_> = iter
            .enumerate()
            .map(|(w, (first, run))| {
                scope.spawn(move || {
                    let t0 = busy_timer();
                    let _guard = TaskGuard::enter();
                    let mut done = 0u64;
                    for (off, c) in run.chunks_mut(chunk_len).enumerate() {
                        body(first + off, c);
                        done += 1;
                    }
                    record_busy(w + 1, done, t0);
                })
            })
            .collect();
        {
            let t0 = busy_timer();
            let _guard = TaskGuard::enter();
            let (first, run) = head;
            let mut done = 0u64;
            for (off, c) in run.chunks_mut(chunk_len).enumerate() {
                body(first + off, c);
                done += 1;
            }
            record_busy(0, done, t0);
        }
        for h in handles {
            join_propagating(h);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_index_order() {
        for t in [1, 2, 4, 7] {
            let out = with_threads(t, || par_map(23, |i| i * i));
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={t}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert!(par_map(0, |i| i).is_empty());
        assert_eq!(with_threads(4, || par_map(1, |i| i + 7)), vec![7]);
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        for t in [1, 2, 4, 7] {
            let hits: Vec<AtomicUsize> = (0..19).map(|_| AtomicUsize::new(0)).collect();
            with_threads(t, || {
                parallel_for(19, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                })
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "threads={t}");
        }
    }

    #[test]
    fn parallel_chunks_mut_covers_all_chunks() {
        for t in [1, 2, 4, 7] {
            let mut data = vec![0usize; 37];
            with_threads(t, || {
                parallel_chunks_mut(&mut data, 5, |ci, chunk| {
                    for v in chunk.iter_mut() {
                        *v = ci + 1;
                    }
                })
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i / 5 + 1, "threads={t}, index {i}");
            }
        }
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let before = max_threads();
        with_threads(7, || {
            assert_eq!(max_threads(), 7);
            with_threads(2, || assert_eq!(max_threads(), 2));
            assert_eq!(max_threads(), 7);
        });
        assert_eq!(max_threads(), before);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        with_threads(0, || assert_eq!(max_threads(), 1));
    }

    #[test]
    fn nested_parallel_calls_run_serially() {
        // Every body invocation observes max_threads() == 1, i.e. a
        // nested matmul inside a pool task cannot spawn its own workers.
        for t in [2, 4] {
            let nested: Vec<usize> = with_threads(t, || par_map(8, |_| max_threads()));
            assert!(nested.iter().all(|&n| n == 1), "threads={t}: {nested:?}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_panics() {
        parallel_chunks_mut(&mut [1, 2, 3], 0, |_, _| {});
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_for(8, |i| {
                    if i == 5 {
                        panic!("boom");
                    }
                })
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn worker_panic_reraises_the_original_message() {
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_for(8, |i| {
                    // Panic on a worker-thread index (not the caller's
                    // chunk) so the join path is what re-raises.
                    if i == 7 {
                        panic!("expert 7 exploded: {}", 6 * 7);
                    }
                })
            })
        });
        let payload = r.unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "expert 7 exploded: 42");
    }

    #[test]
    fn try_par_map_isolates_panics_per_task() {
        for t in [1, 2, 4, 7] {
            let out = with_threads(t, || {
                try_par_map(9, |i| {
                    if i % 4 == 2 {
                        panic!("task {i} failed");
                    }
                    i * 10
                })
            });
            assert_eq!(out.len(), 9, "threads={t}");
            for (i, r) in out.iter().enumerate() {
                if i % 4 == 2 {
                    let err = r.clone().unwrap_err();
                    assert_eq!(err.index, i, "threads={t}");
                    assert_eq!(err.message, format!("task {i} failed"));
                    assert_eq!(err.to_string(), format!("task {i} panicked: task {i} failed"));
                } else {
                    assert_eq!(*r, Ok(i * 10), "threads={t}");
                }
            }
        }
    }

    #[test]
    fn pool_stays_usable_after_captured_panics() {
        let bad = with_threads(4, || try_par_map(4, |i| -> usize { panic!("down {i}") }));
        assert!(bad.iter().all(|r| r.is_err()));
        // The pool (and process) survive: a follow-up parallel call works.
        let good = with_threads(4, || par_map(16, |i| i + 1));
        assert_eq!(good, (1..=16).collect::<Vec<_>>());
    }
}
