//! A minimal in-repo property-testing harness.
//!
//! Replaces the external `proptest` crate for the hermetic workspace:
//! seeded case generation through the vendored [`Xoshiro256pp`]
//! generator, greedy input shrinking on failure, and assumption
//! (rejection) support. The API is deliberately tiny — a [`Strategy`]
//! trait, a [`check`] runner, and the [`prop_assert!`],
//! [`prop_assert_eq!`], and [`prop_assume!`] macros — but it keeps the
//! properties in `tests/properties.rs` seeded and reproducible: a
//! failure report always names the seed and case index that produced it.
//!
//! # Examples
//!
//! ```
//! use milo_tensor::proptest::{check, vec_of, uniform_f32, Config};
//! use milo_tensor::prop_assert;
//!
//! check(&Config::default(), &vec_of(uniform_f32(-1.0, 1.0), 16), |xs| {
//!     prop_assert!(xs.iter().all(|x| x.abs() <= 1.0));
//!     Ok(())
//! });
//! ```

use crate::prng::{Rng, SeedableRng, Xoshiro256pp};

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseFailure {
    /// The case's inputs violated an assumption; the case is discarded
    /// and regenerated rather than counted as a failure.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

impl CaseFailure {
    /// Builds an assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseFailure::Fail(msg.into())
    }

    /// Builds an assumption rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        CaseFailure::Reject(msg.into())
    }
}

/// Outcome of one property evaluation: `Ok(())`, a rejection, or a
/// failure with a message.
pub type CaseResult = Result<(), CaseFailure>;

/// Harness configuration: number of cases, master seed, shrink budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
    /// Master seed; every generated input derives from it.
    pub seed: u64,
    /// Maximum number of shrinking steps after a failure.
    pub max_shrink_steps: u32,
    /// Maximum number of rejected cases before the run aborts (a guard
    /// against assumptions that almost never hold).
    pub max_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64, seed: 0x4d69_4c6f_5052_4e47, max_shrink_steps: 512, max_rejects: 4096 }
    }
}

impl Config {
    /// A config running `cases` cases with the default seed and budgets.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// A generator of test inputs plus a shrinker toward "simpler" inputs.
pub trait Strategy {
    /// The type of generated inputs.
    type Value: Clone + std::fmt::Debug;

    /// Generates one input from the given seeded generator.
    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value;

    /// Proposes strictly simpler variants of `value` to try when a case
    /// fails; an empty vector ends shrinking. Candidates are tried in
    /// order and the first still-failing one is recursed on.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Runs `property` on `cfg.cases` inputs drawn from `strategy`,
/// shrinking and panicking on the first failure.
///
/// # Panics
///
/// Panics with the minimal failing input (plus seed and case index for
/// reproduction) if the property fails, or if `cfg.max_rejects`
/// assumptions fail before enough cases are accepted.
pub fn check<S: Strategy>(
    cfg: &Config,
    strategy: &S,
    property: impl Fn(&S::Value) -> CaseResult,
) {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while accepted < cfg.cases {
        case_index += 1;
        let input = strategy.generate(&mut rng);
        match property(&input) {
            Ok(()) => accepted += 1,
            Err(CaseFailure::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= cfg.max_rejects,
                    "property rejected {rejected} inputs before accepting {} \
                     (seed {:#x}); the assumption is too strict",
                    cfg.cases,
                    cfg.seed,
                );
            }
            Err(CaseFailure::Fail(msg)) => {
                let (minimal, min_msg, steps) =
                    shrink_failure(cfg, strategy, &property, input, msg);
                panic!(
                    "property failed (seed {:#x}, case {case_index}, \
                     {steps} shrink steps)\n  failure: {min_msg}\n  minimal input: \
                     {minimal:?}",
                    cfg.seed,
                );
            }
        }
    }
}

/// Greedily shrinks a failing input: repeatedly takes the first shrink
/// candidate that still fails, until no candidate fails or the step
/// budget runs out. Returns the minimal input, its failure message, and
/// the number of successful shrink steps.
fn shrink_failure<S: Strategy>(
    cfg: &Config,
    strategy: &S,
    property: &impl Fn(&S::Value) -> CaseResult,
    mut current: S::Value,
    mut message: String,
    ) -> (S::Value, String, u32) {
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in strategy.shrink(&current) {
            if let Err(CaseFailure::Fail(msg)) = property(&candidate) {
                current = candidate;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, message, steps)
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Uniform `f32` on `[lo, hi)`; shrinks toward `0.0` (or the in-range
/// endpoint closest to it).
#[derive(Debug, Clone, Copy)]
pub struct UniformF32 {
    lo: f32,
    hi: f32,
}

/// Uniform `f32` strategy on `[lo, hi)`.
pub fn uniform_f32(lo: f32, hi: f32) -> UniformF32 {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    UniformF32 { lo, hi }
}

impl UniformF32 {
    fn origin(&self) -> f32 {
        0.0f32.clamp(self.lo, self.hi - f32::EPSILON * self.hi.abs().max(1.0))
    }
}

impl Strategy for UniformF32 {
    type Value = f32;

    fn generate(&self, rng: &mut Xoshiro256pp) -> f32 {
        rng.gen_range(self.lo..self.hi)
    }

    fn shrink(&self, value: &f32) -> Vec<f32> {
        let origin = self.origin();
        if *value == origin {
            return Vec::new();
        }
        let half = origin + (value - origin) / 2.0;
        let mut out = vec![origin];
        if half != *value && half != origin {
            out.push(half);
        }
        out
    }
}

/// Uniform integer strategy on `[lo, hi)`; shrinks toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct UniformU8 {
    lo: u8,
    hi: u8,
}

/// Uniform `u8` strategy on `[lo, hi)`.
pub fn uniform_u8(lo: u8, hi: u8) -> UniformU8 {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    UniformU8 { lo, hi }
}

impl Strategy for UniformU8 {
    type Value = u8;

    fn generate(&self, rng: &mut Xoshiro256pp) -> u8 {
        rng.gen_range(self.lo..self.hi)
    }

    fn shrink(&self, value: &u8) -> Vec<u8> {
        if *value == self.lo {
            return Vec::new();
        }
        let mid = self.lo + (value - self.lo) / 2;
        let mut out = vec![self.lo];
        if mid != *value && mid != self.lo {
            out.push(mid);
        }
        out
    }
}

/// Fixed-length vector of draws from an element strategy. Shrinking
/// keeps the length (the properties under test require exact shapes)
/// and simplifies elements, coarse-to-fine: first the whole vector
/// toward the element origin, then halves, then single elements.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: usize,
}

/// Fixed-length vector strategy.
pub fn vec_of<S: Strategy>(elem: S, len: usize) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Xoshiro256pp) -> Vec<S::Value> {
        (0..self.len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Pass 1: simplify every element at once (first shrink candidate
        // of each, usually the origin).
        let firsts: Vec<Option<S::Value>> =
            value.iter().map(|v| self.elem.shrink(v).into_iter().next()).collect();
        if firsts.iter().any(|f| f.is_some()) {
            out.push(
                value
                    .iter()
                    .zip(&firsts)
                    .map(|(v, f)| f.clone().unwrap_or_else(|| v.clone()))
                    .collect(),
            );
        }
        // Pass 2: simplify each half.
        if value.len() >= 2 {
            for (start, end) in [(0, value.len() / 2), (value.len() / 2, value.len())] {
                let mut candidate = value.clone();
                let mut changed = false;
                for (i, slot) in candidate[start..end].iter_mut().enumerate() {
                    if let Some(f) = &firsts[start + i] {
                        *slot = f.clone();
                        changed = true;
                    }
                }
                if changed {
                    out.push(candidate);
                }
            }
        }
        // Pass 3: single-element shrinks (bounded to keep candidate lists
        // small on wide inputs).
        for (i, v) in value.iter().enumerate().take(16) {
            for simpler in self.elem.shrink(v).into_iter().take(2) {
                let mut candidate = value.clone();
                candidate[i] = simpler;
                out.push(candidate);
            }
        }
        out
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(&value.0)
            .into_iter()
            .map(|a| (a, value.1.clone()))
            .collect();
        out.extend(self.1.shrink(&value.1).into_iter().map(|b| (value.0.clone(), b)));
        out
    }
}

/// Asserts a property-scope condition, returning a [`CaseFailure::Fail`]
/// from the enclosing closure when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::proptest::CaseFailure::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::proptest::CaseFailure::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality in a property scope.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::proptest::CaseFailure::fail(format!(
                "assertion failed: {} == {} ({}:{})\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r
            )));
        }
    }};
}

/// Discards the current case (without failing) when its inputs violate
/// an assumption.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::proptest::CaseFailure::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        check(&Config::with_cases(32), &uniform_f32(-1.0, 1.0), |x| {
            count.set(count.get() + 1);
            prop_assert!(x.abs() <= 1.0);
            Ok(())
        });
        assert_eq!(count.get(), 32);
    }

    #[test]
    fn failing_property_panics_and_shrinks() {
        let panic = std::panic::catch_unwind(|| {
            check(&Config::default(), &uniform_f32(0.0, 100.0), |x| {
                prop_assert!(*x < 10.0, "x = {x}");
                Ok(())
            });
        })
        .expect_err("property should fail");
        let msg = panic.downcast_ref::<String>().expect("panic carries a String");
        assert!(msg.contains("minimal input"), "{msg}");
        // Greedy bisection toward 0 should land near the 10.0 boundary,
        // far below the ~90 mean of raw failing draws.
        let minimal: f32 = msg
            .rsplit("minimal input: ")
            .next()
            .unwrap()
            .trim()
            .parse()
            .expect("minimal input parses");
        assert!((10.0..20.5).contains(&minimal), "shrunk to {minimal}");
    }

    #[test]
    fn failure_reports_are_deterministic() {
        let run = || {
            std::panic::catch_unwind(|| {
                check(&Config::default(), &vec_of(uniform_u8(0, 200), 8), |xs| {
                    prop_assert!(xs.iter().all(|&x| x < 150), "xs = {xs:?}");
                    Ok(())
                });
            })
            .expect_err("must fail")
            .downcast_ref::<String>()
            .expect("string panic")
            .clone()
        };
        assert_eq!(run(), run(), "same seed must reproduce the same minimal case");
    }

    #[test]
    fn vector_shrinking_zeroes_irrelevant_elements() {
        let panic = std::panic::catch_unwind(|| {
            check(&Config::default(), &vec_of(uniform_u8(0, 255), 8), |xs| {
                // Fails whenever element 3 is large; the other elements are
                // irrelevant and should shrink to the origin.
                prop_assert!(xs[3] < 100, "xs = {xs:?}");
                Ok(())
            });
        })
        .expect_err("must fail");
        let msg = panic.downcast_ref::<String>().unwrap();
        let minimal = msg.rsplit("minimal input: ").next().expect("minimal input section");
        let list_start = minimal.find('[').expect("vector debug output");
        let nums: Vec<u32> = minimal[list_start + 1..minimal.rfind(']').unwrap()]
            .split(',')
            .map(|s| s.trim().parse().unwrap())
            .collect();
        assert_eq!(nums.len(), 8);
        for (i, &n) in nums.iter().enumerate() {
            if i != 3 {
                assert_eq!(n, 0, "irrelevant element {i} should shrink to 0: {nums:?}");
            }
        }
        assert!(nums[3] >= 100, "culprit element must still fail: {nums:?}");
    }

    #[test]
    fn rejection_regenerates_without_failing() {
        let accepted = std::cell::Cell::new(0u32);
        check(&Config::with_cases(16), &uniform_f32(0.0, 1.0), |x| {
            prop_assume!(*x >= 0.5);
            accepted.set(accepted.get() + 1);
            prop_assert!(*x >= 0.5);
            Ok(())
        });
        assert_eq!(accepted.get(), 16);
    }

    #[test]
    #[should_panic(expected = "too strict")]
    fn impossible_assumption_aborts() {
        check(
            &Config { max_rejects: 32, ..Config::default() },
            &uniform_f32(0.0, 1.0),
            |x| {
                prop_assume!(*x > 2.0);
                Ok(())
            },
        );
    }

    #[test]
    fn tuple_strategy_generates_and_shrinks_both_sides() {
        let strat = (uniform_f32(0.0, 4.0), uniform_u8(0, 16));
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let v = strat.generate(&mut rng);
        assert!((0.0..4.0).contains(&v.0) && v.1 < 16);
        let shrunk = strat.shrink(&(2.0, 8));
        assert!(shrunk.iter().any(|&(a, b)| a == 0.0 && b == 8));
        assert!(shrunk.iter().any(|&(a, b)| a == 2.0 && b == 0));
    }
}
