//! Statistics used by the paper's analysis: kurtosis (Table 2, Fig. 5),
//! relative Frobenius error (Fig. 5), residual-matrix rank (Table 2), and
//! histogram utilities for the information-loss figures (Figs. 2 and 4).

use crate::Matrix;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64) as f32
}

/// Population variance; 0 for an empty slice.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs) as f64;
    (xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64) as f32
}

/// Excess kurtosis `E[(X−μ)⁴]/σ⁴ − 3`.
///
/// The paper's Table 2 reports kurtosis values where the Gaussian baseline
/// is 0 (e.g. attention ≈ 1.57, experts ≈ −0.53), i.e. *excess* kurtosis,
/// which is what this returns. Returns 0 for slices with fewer than two
/// elements or zero variance.
pub fn excess_kurtosis(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs) as f64;
    let n = xs.len() as f64;
    let (mut m2, mut m4) = (0.0f64, 0.0f64);
    for &x in xs {
        let d = x as f64 - m;
        let d2 = d * d;
        m2 += d2;
        m4 += d2 * d2;
    }
    m2 /= n;
    m4 /= n;
    if m2 <= 0.0 {
        return 0.0;
    }
    (m4 / (m2 * m2) - 3.0) as f32
}

/// Excess kurtosis of all entries of a matrix.
pub fn matrix_kurtosis(w: &Matrix) -> f32 {
    excess_kurtosis(w.as_slice())
}

/// Relative Frobenius error `‖W − Ŵ‖_F / ‖W‖_F` (paper Fig. 5).
///
/// Returns 0 when `w` has zero norm.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn relative_frobenius_error(w: &Matrix, w_hat: &Matrix) -> f32 {
    assert_eq!(w.shape(), w_hat.shape(), "relative error needs equal shapes");
    let denom = w.frobenius_norm();
    if denom == 0.0 {
        return 0.0;
    }
    let diff = w.sub(w_hat).expect("shapes checked above");
    diff.frobenius_norm() / denom
}

/// The paper's residual-rank measure (Table 2): the number of singular
/// values `σ_i` **smaller than** `τ · σ_max`.
///
/// Counterintuitively this counts the *small* singular values — the paper
/// uses it as a tail-mass indicator: a large count means the spectrum
/// decays quickly relative to `σ_max`, which correlates negatively with
/// kurtosis in Table 2.
pub fn residual_rank(singular_values: &[f32], tau: f32) -> usize {
    let sigma_max = singular_values.iter().fold(0.0f32, |m, &s| m.max(s));
    if sigma_max == 0.0 {
        return 0;
    }
    singular_values.iter().filter(|&&s| s < tau * sigma_max).count()
}

/// A fixed-width histogram over a symmetric value range, used to reproduce
/// the information-loss overlap plots (paper Figs. 2 and 4).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    /// Samples outside `[lo, hi]`, kept so overlap metrics remain honest.
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width buckets.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self { lo, hi, counts: vec![0; bins], outliers: 0 }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f32) {
        if !(self.lo..=self.hi).contains(&x) {
            self.outliers += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds every sample in the slice.
    pub fn add_all(&mut self, xs: &[f32]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Center value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f32 {
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        self.lo + width * (i as f32 + 0.5)
    }

    /// Overlap coefficient with another histogram over the same range:
    /// `Σ min(pᵢ, qᵢ)` over normalized bins, in `[0, 1]`.
    ///
    /// This is the "green overlapping region" metric from paper Fig. 4 — a
    /// quantization that preserves the weight distribution scores near 1.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different ranges or bin counts.
    pub fn overlap(&self, other: &Histogram) -> f32 {
        assert_eq!(self.counts.len(), other.counts.len(), "bin counts differ");
        assert_eq!((self.lo, self.hi), (other.lo, other.hi), "ranges differ");
        let n1: u64 = self.counts.iter().sum::<u64>() + self.outliers;
        let n2: u64 = other.counts.iter().sum::<u64>() + other.outliers;
        if n1 == 0 || n2 == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| (a as f64 / n1 as f64).min(b as f64 / n2 as f64))
            .sum::<f64>() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_constant() {
        let xs = [2.0; 10];
        assert_eq!(mean(&xs), 2.0);
        assert_eq!(variance(&xs), 0.0);
    }

    #[test]
    fn empty_slices_yield_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(excess_kurtosis(&[]), 0.0);
    }

    #[test]
    fn kurtosis_of_two_point_distribution() {
        // Rademacher (±1) has excess kurtosis -2, the minimum possible.
        let xs: Vec<f32> = (0..1000).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!((excess_kurtosis(&xs) - (-2.0)).abs() < 1e-3);
    }

    #[test]
    fn kurtosis_increases_with_outliers() {
        let mut xs = vec![0.1f32; 1000];
        let base = excess_kurtosis(&xs);
        xs[0] = 100.0;
        xs[1] = -100.0;
        assert!(excess_kurtosis(&xs) > base);
    }

    #[test]
    fn relative_error_zero_for_identical() {
        let w = Matrix::from_fn(4, 4, |r, c| (r * c) as f32);
        assert_eq!(relative_frobenius_error(&w, &w), 0.0);
    }

    #[test]
    fn relative_error_one_for_zero_estimate() {
        let w = Matrix::filled(3, 3, 2.0);
        let z = Matrix::zeros(3, 3);
        assert!((relative_frobenius_error(&w, &z) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn residual_rank_counts_small_singulars() {
        let sv = [10.0, 6.0, 4.0, 1.0];
        // tau=0.5: threshold 5.0, singular values below: 4.0 and 1.0.
        assert_eq!(residual_rank(&sv, 0.5), 2);
        assert_eq!(residual_rank(&sv, 0.05), 0);
        assert_eq!(residual_rank(&sv, 1.1), 4);
    }

    #[test]
    fn residual_rank_of_zero_spectrum() {
        assert_eq!(residual_rank(&[0.0, 0.0], 0.5), 0);
    }

    #[test]
    fn histogram_counts_and_outliers() {
        let mut h = Histogram::new(-1.0, 1.0, 4);
        h.add_all(&[-0.9, -0.1, 0.1, 0.9, 5.0]);
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
        assert_eq!(h.outliers(), 1);
    }

    #[test]
    fn histogram_self_overlap_is_one() {
        let mut h = Histogram::new(-1.0, 1.0, 10);
        h.add_all(&[-0.5, 0.0, 0.5, 0.7, -0.2]);
        assert!((h.overlap(&h) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_disjoint_overlap_is_zero() {
        let mut a = Histogram::new(-1.0, 1.0, 2);
        let mut b = Histogram::new(-1.0, 1.0, 2);
        a.add(-0.5);
        b.add(0.5);
        assert_eq!(a.overlap(&b), 0.0);
    }

    #[test]
    fn bin_center_is_midpoint() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-6);
        assert!((h.bin_center(1) - 0.75).abs() < 1e-6);
    }
}
