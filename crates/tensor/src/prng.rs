//! Self-contained seeded pseudo-random number generation.
//!
//! The workspace builds hermetically with no external crates, so this
//! module vendors the small slice of a PRNG library the reproduction
//! needs: a [`SplitMix64`] seeder, a [`Xoshiro256pp`] generator
//! (xoshiro256++, Blackman & Vigna), and [`Rng`]/[`SeedableRng`] traits
//! whose surface mirrors the subset of `rand 0.8` the codebase was
//! originally written against (`gen`, `gen_range`, `gen_bool`). Every
//! experiment stays bit-for-bit reproducible from a `u64` seed.
//!
//! # Examples
//!
//! ```
//! use milo_tensor::rng::{Rng, SeedableRng, Xoshiro256pp};
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0..10u32);
//! assert!(k < 10);
//! ```

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words. Everything else is derived
/// from [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of a 64-bit draw,
    /// which carries the best-mixed bits of xoshiro-family generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction of a generator from a `u64` seed.
///
/// Mirrors `rand::SeedableRng::seed_from_u64`, the only constructor the
/// codebase uses: every test, example, and experiment derives its whole
/// random stream from one integer.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 (Steele, Lea & Flood): a tiny 64-bit generator used both
/// directly and to expand a single `u64` seed into xoshiro state. Passes
/// through every output of a 64-bit counter exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 generator from a raw state word.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ (Blackman & Vigna, 2019): the workspace's standard
/// generator. 256 bits of state, period 2^256 − 1, and excellent
/// statistical quality for non-cryptographic simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from explicit state. At least one word must be
    /// nonzero; all-zero state is remapped to a fixed nonzero state.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            // The all-zero state is the one fixed point of the transition
            // function; substitute the expansion of seed 0 instead.
            return Self::seed_from_u64(0);
        }
        Self { s }
    }
}

impl SeedableRng for Xoshiro256pp {
    /// Expands `seed` through SplitMix64, the seeding procedure the
    /// xoshiro authors recommend (it guarantees a nonzero state and
    /// decorrelates nearby seeds).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }
}

impl RngCore for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Default workspace generator; the name is kept so call sites read the
/// same as they did against the `rand` crate, but the algorithm is the
/// vendored [`Xoshiro256pp`] (streams therefore differ from `rand`'s).
pub type StdRng = Xoshiro256pp;

/// Types that can be sampled from their "standard" distribution:
/// uniform over `[0, 1)` for floats, uniform over the full domain for
/// integers, a fair coin for `bool`.
pub trait SampleStandard {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform on [0, 1) with full f64 density.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, n)` using Lemire's multiply-shift reduction
/// with a rejection step for exact uniformity.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "empty sampling range");
    let mul = |x: u64| -> (u64, u64) {
        let wide = (x as u128) * (n as u128);
        ((wide >> 64) as u64, wide as u64)
    };
    let (mut hi, mut lo) = mul(rng.next_u64());
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            let next = mul(rng.next_u64());
            hi = next.0;
            lo = next.1;
        }
    }
    hi
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64/usize domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: $t = SampleStandard::sample_standard(rng); // [0, 1)
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                // 53 (or 24) bits scaled by 1/(2^bits − 1) → closed [0, 1].
                let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                start + u as $t * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`]. The method set intentionally matches the subset of
/// `rand::Rng` the codebase uses.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (uniform `[0, 1)` for floats, full domain for integers).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_under_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0, "adjacent seeds should decorrelate via SplitMix64");
    }

    #[test]
    fn zero_state_is_remapped() {
        let mut rng = Xoshiro256pp::from_state([0; 4]);
        // The all-zero state would emit zeros forever; the remap must not.
        assert!((0..8).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn gen_range_covers_all_integer_values() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear: {seen:?}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v), "{v}");
            let f: f32 = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&f), "{f}");
        }
    }

    #[test]
    fn inclusive_float_range_can_hit_both_ends_region() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let (mut lo_half, mut hi_half) = (0u32, 0u32);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.0f64..=1.0);
            if v < 0.5 {
                lo_half += 1;
            } else {
                hi_half += 1;
            }
        }
        // Crude balance check: both halves within 10% of each other.
        let ratio = lo_half as f64 / hi_half as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn uniform_below_is_unbiased_over_small_modulus() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[uniform_below(&mut rng, 3) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "counts {counts:?}");
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        // &mut Xoshiro256pp must itself satisfy Rng (reborrow pattern used
        // throughout the samplers).
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
