//! Bit-level IEEE 754 binary16 ("FP16") implementation.
//!
//! The MiLo kernel's I2F de-quantization (paper §3.3, Fig. 6b) works by
//! splicing INT3 payloads into the mantissa of the half-precision constant
//! `1024.0` (bit pattern `0x6400`): for a 3-bit value `e`, the bit pattern
//! `0x6400 | e` is exactly the half-precision number `1024 + e`, so a
//! bitwise OR plus one fused subtract turns packed integers into floats
//! without any int→float cast. Reproducing that trick requires a half type
//! whose bit representation is accessible, which is what [`F16`] provides.
//!
//! The [`h2`] module emulates the CUDA paired-register intrinsics
//! (`__hsub2`, `__hfma2`, `__hmul2`) that operate on two halves packed into
//! one 32-bit register.

/// An IEEE 754 binary16 value stored as its raw bit pattern.
///
/// Arithmetic is performed by widening to `f32` and rounding back, which
/// matches the behaviour of scalar half arithmetic on hardware that lacks
/// native FP16 ALUs.
///
/// # Examples
///
/// ```
/// use milo_tensor::F16;
///
/// let x = F16::from_f32(1024.0);
/// assert_eq!(x.to_bits(), 0x6400);
/// // Splice a 3-bit payload into the mantissa: 1024 + e for e in 0..8.
/// let e = 5u16;
/// assert_eq!(F16::from_bits(0x6400 | e).to_f32(), 1029.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// The constant `1024.0`, whose mantissa low bits are all zero — the
    /// anchor value for the MiLo dequantization bit trick.
    pub const B1024: F16 = F16(0x6400);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);

    /// Reinterprets a raw bit pattern as a half value.
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even, the IEEE default.
    pub fn from_f32(value: f32) -> F16 {
        F16(f32_to_f16_bits(value))
    }

    /// Widens to `f32` exactly (every finite half is representable in f32).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Whether the value is +∞ or −∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Half-precision addition (widen, add, round).
    pub fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }

    /// Half-precision subtraction (widen, subtract, round).
    pub fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }

    /// Half-precision multiplication (widen, multiply, round).
    pub fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }

    /// Fused multiply-add `self * a + b`, rounded once like hardware FMA.
    pub fn fma(self, a: F16, b: F16) -> F16 {
        let wide = (self.to_f32() as f64) * (a.to_f32() as f64) + (b.to_f32() as f64);
        F16::from_f32(wide as f32)
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> F16 {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> f32 {
        v.to_f32()
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Converts an `f32` to half bits with round-to-nearest-even.
fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Infinity or NaN. Preserve a quiet-NaN payload bit.
        return if mant == 0 { sign | 0x7C00 } else { sign | 0x7E00 };
    }

    // Unbiased exponent, re-biased for half (bias 15 vs 127).
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflows half range: round to infinity.
        return sign | 0x7C00;
    }
    if unbiased >= -14 {
        // Normal half. 23-bit mantissa → 10-bit with RNE.
        let half_exp = ((unbiased + 15) as u16) << 10;
        let shifted = mant >> 13;
        let round_bits = mant & 0x1FFF;
        let mut out = sign | half_exp | (shifted as u16);
        // Round to nearest, ties to even.
        if round_bits > 0x1000 || (round_bits == 0x1000 && (shifted & 1) == 1) {
            out = out.wrapping_add(1); // may carry into exponent: correct behaviour
        }
        return out;
    }
    if unbiased >= -25 {
        // Subnormal half.
        let full_mant = mant | 0x0080_0000; // implicit leading 1
        let shift = (-14 - unbiased) as u32 + 13;
        let shifted = full_mant >> shift;
        let remainder = full_mant & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut out = sign | (shifted as u16);
        if remainder > halfway || (remainder == halfway && (shifted & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    // Underflows to zero.
    sign
}

/// Converts half bits to the exactly-equal `f32`.
fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let mant = (bits & 0x03FF) as u32;

    let out = if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal: value = mant * 2^-24. Normalize into f32: after k
            // left-shifts the leading bit sits at position 10 and the f32
            // exponent field is 113 - k (value = 1.f * 2^(-14-k)).
            let mut k = 0u32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                k += 1;
            }
            m &= 0x03FF;
            let f32_exp = (113 - k) << 23;
            sign | f32_exp | (m << 13)
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13) // inf / NaN
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Emulation of CUDA's packed-half intrinsics on a 32-bit register.
///
/// A `u32` holds two halves: the low 16 bits are lane 0 and the high 16
/// bits are lane 1, matching the `__half2` layout the MiLo kernel uses to
/// dequantize two INT3 values per instruction.
pub mod h2 {
    use super::F16;

    /// Packs two halves into one register (`lo` in bits 0..16).
    pub fn pack(lo: F16, hi: F16) -> u32 {
        (lo.to_bits() as u32) | ((hi.to_bits() as u32) << 16)
    }

    /// Unpacks a register into `(lo, hi)` halves.
    pub fn unpack(reg: u32) -> (F16, F16) {
        (F16::from_bits((reg & 0xFFFF) as u16), F16::from_bits((reg >> 16) as u16))
    }

    /// Lane-wise subtraction, like CUDA `__hsub2`.
    pub fn hsub2(a: u32, b: u32) -> u32 {
        let (al, ah) = unpack(a);
        let (bl, bh) = unpack(b);
        pack(al.sub(bl), ah.sub(bh))
    }

    /// Lane-wise multiplication, like CUDA `__hmul2`.
    pub fn hmul2(a: u32, b: u32) -> u32 {
        let (al, ah) = unpack(a);
        let (bl, bh) = unpack(b);
        pack(al.mul(bl), ah.mul(bh))
    }

    /// Lane-wise fused multiply-add `a * b + c`, like CUDA `__hfma2`.
    pub fn hfma2(a: u32, b: u32, c: u32) -> u32 {
        let (al, ah) = unpack(a);
        let (bl, bh) = unpack(b);
        let (cl, ch) = unpack(c);
        pack(al.fma(bl, cl), ah.fma(bh, ch))
    }

    /// Broadcasts one half into both lanes.
    pub fn splat(v: F16) -> u32 {
        pack(v, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_bit_patterns() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(1024.0).to_bits(), 0x6400);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xC000);
    }

    #[test]
    fn mantissa_splice_produces_1024_plus_e() {
        // The core identity behind MiLo Dequant: 0x6400 | e == 1024 + e.
        for e in 0u16..8 {
            assert_eq!(F16::from_bits(0x6400 | e).to_f32(), 1024.0 + e as f32);
        }
    }

    #[test]
    fn shifted_splice_produces_1024_plus_8e() {
        // Placing the payload 3 bits higher yields 1024 + 8e, which the
        // kernel rescales with a fused multiply-add.
        for e in 0u16..8 {
            assert_eq!(F16::from_bits(0x6400 | (e << 3)).to_f32(), 1024.0 + 8.0 * e as f32);
        }
    }

    #[test]
    fn round_trip_is_exact_for_all_finite_halves() {
        // Exhaustive: every half value must survive f16 -> f32 -> f16.
        for bits in 0u16..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn rne_rounds_ties_to_even() {
        // 2049 is exactly between 2048 and 2050 in half precision; RNE
        // picks 2048 (even mantissa).
        assert_eq!(F16::from_f32(2049.0).to_f32(), 2048.0);
        assert_eq!(F16::from_f32(2051.0).to_f32(), 2052.0);
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert!(F16::from_f32(1e30).is_infinite());
        assert!(F16::from_f32(-1e30).is_infinite());
    }

    #[test]
    fn subnormals_round_trip() {
        let tiny = 5.96e-8f32; // smallest positive subnormal half ≈ 2^-24
        let h = F16::from_f32(tiny);
        assert!(h.to_f32() > 0.0);
        assert!(h.to_f32() < 1e-7);
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(F16::from_f32(1e-10).to_bits(), 0);
        assert_eq!(F16::from_f32(-1e-10).to_bits(), 0x8000);
    }

    #[test]
    fn nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_bits(0x7E00).to_f32().is_nan());
    }

    #[test]
    fn arithmetic_matches_f32_for_small_ints() {
        let a = F16::from_f32(3.0);
        let b = F16::from_f32(4.0);
        assert_eq!(a.add(b).to_f32(), 7.0);
        assert_eq!(a.sub(b).to_f32(), -1.0);
        assert_eq!(a.mul(b).to_f32(), 12.0);
        assert_eq!(a.fma(b, F16::ONE).to_f32(), 13.0);
    }

    #[test]
    fn h2_lanes_are_independent() {
        let a = h2::pack(F16::from_f32(10.0), F16::from_f32(20.0));
        let b = h2::pack(F16::from_f32(1.0), F16::from_f32(2.0));
        let (lo, hi) = h2::unpack(h2::hsub2(a, b));
        assert_eq!(lo.to_f32(), 9.0);
        assert_eq!(hi.to_f32(), 18.0);
        let (lo, hi) = h2::unpack(h2::hmul2(a, b));
        assert_eq!(lo.to_f32(), 10.0);
        assert_eq!(hi.to_f32(), 40.0);
        let c = h2::splat(F16::from_f32(0.5));
        let (lo, hi) = h2::unpack(h2::hfma2(a, b, c));
        assert_eq!(lo.to_f32(), 10.5);
        assert_eq!(hi.to_f32(), 40.5);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let reg = h2::pack(F16::from_bits(0x1234), F16::from_bits(0xABCD));
        let (lo, hi) = h2::unpack(reg);
        assert_eq!(lo.to_bits(), 0x1234);
        assert_eq!(hi.to_bits(), 0xABCD);
    }
}
