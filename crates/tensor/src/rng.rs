//! Seeded samplers for the weight distributions used by the synthetic
//! models.
//!
//! The paper's analysis (§3.1.1, Table 2) characterizes MoE weights by
//! their tail behaviour: attention projections are heavy-tailed (positive
//! excess kurtosis), expert weights are sub-Gaussian (negative excess
//! kurtosis). To synthesize models that exercise the same code paths, this
//! module provides:
//!
//! * Gaussian sampling (excess kurtosis 0) via Box–Muller,
//! * Student-t sampling (excess kurtosis `6/(ν−4)` for ν > 4) for
//!   heavy-tailed attention-like weights,
//! * uniform sampling (excess kurtosis −1.2) for light-tailed expert-like
//!   weights,
//!
//! all driven by any [`Rng`] (usually the vendored [`Xoshiro256pp`]), so
//! every experiment is reproducible from a seed with no external crates.

use crate::Matrix;
pub use crate::prng::{
    Rng, RngCore, SampleRange, SampleStandard, SeedableRng, SplitMix64, StdRng, Xoshiro256pp,
};

/// A weight distribution with a chosen tail shape.
///
/// # Examples
///
/// ```
/// use milo_tensor::rng::{SeedableRng, WeightDist, Xoshiro256pp};
///
/// let mut rng = Xoshiro256pp::seed_from_u64(7);
/// let w = WeightDist::StudentT { dof: 5.0, scale: 0.02 }.sample_matrix(64, 64, &mut rng);
/// assert_eq!(w.shape(), (64, 64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightDist {
    /// Zero-mean Gaussian with the given standard deviation.
    Gaussian {
        /// Standard deviation of the distribution.
        std: f32,
    },
    /// Zero-mean Student-t with `dof` degrees of freedom, multiplied by
    /// `scale`. Lower `dof` means heavier tails; excess kurtosis is
    /// `6/(dof−4)` for `dof > 4`.
    StudentT {
        /// Degrees of freedom (must be > 0; kurtosis finite only for > 4).
        dof: f32,
        /// Multiplicative scale applied to each draw.
        scale: f32,
    },
    /// Uniform on `[-bound, bound]`; excess kurtosis −1.2.
    Uniform {
        /// Half-width of the support.
        bound: f32,
    },
}

impl WeightDist {
    /// Draws a single sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f32 {
        match *self {
            WeightDist::Gaussian { std } => std * standard_normal(rng),
            WeightDist::StudentT { dof, scale } => scale * student_t(dof, rng),
            WeightDist::Uniform { bound } => rng.gen_range(-bound..=bound),
        }
    }

    /// Fills a `rows × cols` matrix with independent samples.
    pub fn sample_matrix(&self, rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let data = (0..rows * cols).map(|_| self.sample(rng)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Theoretical excess kurtosis of the distribution, if finite.
    pub fn excess_kurtosis(&self) -> Option<f32> {
        match *self {
            WeightDist::Gaussian { .. } => Some(0.0),
            WeightDist::StudentT { dof, .. } => {
                if dof > 4.0 {
                    Some(6.0 / (dof - 4.0))
                } else {
                    None
                }
            }
            WeightDist::Uniform { .. } => Some(-1.2),
        }
    }
}

/// Draws from the standard normal distribution via the Box–Muller
/// transform (both variates are consumed independently per call for
/// simplicity; the cost is negligible at our scales).
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Draws from the Student-t distribution with `dof` degrees of freedom.
///
/// Uses the representation `t = Z / sqrt(V / ν)` with `Z ~ N(0,1)` and
/// `V ~ χ²(ν)`; the chi-squared draw is `2 · Gamma(ν/2, 1)` via
/// Marsaglia–Tsang.
///
/// # Panics
///
/// Panics if `dof <= 0`.
pub fn student_t(dof: f32, rng: &mut impl Rng) -> f32 {
    assert!(dof > 0.0, "degrees of freedom must be positive, got {dof}");
    let z = standard_normal(rng) as f64;
    let v = 2.0 * gamma_sample(dof as f64 / 2.0, rng);
    (z / (v / dof as f64).sqrt()) as f32
}

/// Draws from Gamma(shape, 1) using the Marsaglia–Tsang squeeze method,
/// with the standard boost for shape < 1.
fn gamma_sample(shape: f64, rng: &mut impl Rng) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng) as f64;
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(42)
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = rng();
        let xs: Vec<f32> = (0..200_000).map(|_| standard_normal(&mut r)).collect();
        let mean = stats::mean(&xs);
        let var = stats::variance(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_kurtosis_is_near_zero() {
        let mut r = rng();
        let xs: Vec<f32> = (0..200_000).map(|_| standard_normal(&mut r)).collect();
        let k = stats::excess_kurtosis(&xs);
        assert!(k.abs() < 0.1, "kurtosis {k}");
    }

    #[test]
    fn student_t_is_heavier_tailed_than_normal() {
        let mut r = rng();
        let xs: Vec<f32> = (0..200_000).map(|_| student_t(6.0, &mut r)).collect();
        let k = stats::excess_kurtosis(&xs);
        // Theoretical excess kurtosis for dof=6 is 3.0.
        assert!(k > 1.0, "kurtosis {k} not heavy-tailed");
    }

    #[test]
    fn uniform_kurtosis_is_negative() {
        let mut r = rng();
        let d = WeightDist::Uniform { bound: 1.0 };
        let xs: Vec<f32> = (0..100_000).map(|_| d.sample(&mut r)).collect();
        let k = stats::excess_kurtosis(&xs);
        assert!((k - (-1.2)).abs() < 0.1, "kurtosis {k}");
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let d = WeightDist::Gaussian { std: 1.0 };
        let a = d.sample_matrix(8, 8, &mut rng());
        let b = d.sample_matrix(8, 8, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = rng();
        let shape = 2.5;
        let xs: Vec<f64> = (0..100_000).map(|_| gamma_sample(shape, &mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - shape).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gamma_boost_handles_small_shape() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| gamma_sample(0.5, &mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn distinct_seeds_give_distinct_matrices() {
        let d = WeightDist::Gaussian { std: 1.0 };
        let a = d.sample_matrix(8, 8, &mut Xoshiro256pp::seed_from_u64(1));
        let b = d.sample_matrix(8, 8, &mut Xoshiro256pp::seed_from_u64(2));
        assert_ne!(a, b, "distinct seeds must give distinct weight streams");
    }

    #[test]
    fn gaussian_moments_match_std() {
        // Table 2 regime: synthetic weights must realize the documented
        // mean/variance so kurtosis-driven rank policies see honest stats.
        let mut r = rng();
        let std = 0.05f32;
        let d = WeightDist::Gaussian { std };
        let xs: Vec<f32> = (0..200_000).map(|_| d.sample(&mut r)).collect();
        assert!(stats::mean(&xs).abs() < 1e-3, "mean {}", stats::mean(&xs));
        let var = stats::variance(&xs);
        assert!((var - std * std).abs() < 0.05 * std * std, "var {var}");
        assert!(stats::excess_kurtosis(&xs).abs() < 0.1);
    }

    #[test]
    fn student_t_moments_in_table2_regime() {
        // dof = 6: variance dof/(dof-2) = 1.5 per unit scale, excess
        // kurtosis 6/(dof-4) = 3.
        let mut r = rng();
        let d = WeightDist::StudentT { dof: 6.0, scale: 0.02 };
        let xs: Vec<f32> = (0..400_000).map(|_| d.sample(&mut r)).collect();
        assert!(stats::mean(&xs).abs() < 2e-4, "mean {}", stats::mean(&xs));
        let var = stats::variance(&xs);
        let expected = 0.02f32 * 0.02 * 1.5;
        assert!((var - expected).abs() < 0.2 * expected, "var {var} vs {expected}");
        let k = stats::excess_kurtosis(&xs);
        assert!(k > 1.0, "heavy tail lost: kurtosis {k}");
    }

    #[test]
    fn uniform_moments_match_bound() {
        // Variance of U(-b, b) is b²/3; excess kurtosis −1.2.
        let mut r = rng();
        let d = WeightDist::Uniform { bound: 0.08 };
        let xs: Vec<f32> = (0..200_000).map(|_| d.sample(&mut r)).collect();
        assert!(stats::mean(&xs).abs() < 1e-3);
        let var = stats::variance(&xs);
        let expected = 0.08f32 * 0.08 / 3.0;
        assert!((var - expected).abs() < 0.05 * expected, "var {var} vs {expected}");
        assert!(stats::excess_kurtosis(&xs) < -1.0);
    }

    #[test]
    fn kurtosis_ordering_matches_table2() {
        // The paper's Table 2 ordering: attention-like Student-t weights
        // are heavier-tailed than Gaussian, which is heavier than uniform
        // expert-like weights.
        let mut r = rng();
        let sample = |d: WeightDist, r: &mut Xoshiro256pp| -> f32 {
            let xs: Vec<f32> = (0..100_000).map(|_| d.sample(r)).collect();
            stats::excess_kurtosis(&xs)
        };
        let kt = sample(WeightDist::StudentT { dof: 5.0, scale: 0.05 }, &mut r);
        let kg = sample(WeightDist::Gaussian { std: 0.05 }, &mut r);
        let ku = sample(WeightDist::Uniform { bound: 0.08 }, &mut r);
        assert!(kt > kg && kg > ku, "ordering violated: t={kt} g={kg} u={ku}");
    }

    #[test]
    fn theoretical_kurtosis_accessor() {
        assert_eq!(WeightDist::Gaussian { std: 1.0 }.excess_kurtosis(), Some(0.0));
        assert_eq!(WeightDist::StudentT { dof: 10.0, scale: 1.0 }.excess_kurtosis(), Some(1.0));
        assert_eq!(WeightDist::StudentT { dof: 3.0, scale: 1.0 }.excess_kurtosis(), None);
    }
}
