//! Row-major dense `f32` matrix.
//!
//! The matrix type is deliberately small: the MiLo pipeline only needs
//! construction, element access, slicing by rows/columns, matrix products,
//! transposes, and elementwise arithmetic. Shapes are validated on every
//! binary operation and reported through [`TensorError::ShapeMismatch`].

use crate::{Result, TensorError};

/// Minimum number of multiply-adds (`rows · k · cols`) before
/// [`Matrix::matmul`] fans out over row blocks; below this the scoped
/// thread spawn costs more than the arithmetic saves.
pub const PAR_MATMUL_MIN_WORK: usize = 64 * 1024;

/// A dense row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use milo_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix of the given shape where every element is `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or the input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows are not allowed");
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self · rhs`.
    ///
    /// Uses a cache-friendly i-k-j loop order; adequate for the matrix sizes
    /// used by the scaled models in this reproduction. Products above
    /// [`PAR_MATMUL_MIN_WORK`] multiply-adds are split over row blocks on
    /// the [`crate::pool`]; each output row is produced entirely by one
    /// block with the `k`-reduction order unchanged, so the result is
    /// bit-identical to the serial path at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch(format!(
                "matmul: {}x{} · {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let threads = crate::pool::max_threads();
        let work = self.rows * self.cols * rhs.cols;
        if threads > 1 && self.rows > 1 && work >= PAR_MATMUL_MIN_WORK {
            let block_rows = self.rows.div_ceil(threads);
            crate::pool::parallel_chunks_mut(
                &mut out.data,
                block_rows * rhs.cols,
                |blk, out_block| {
                    let r0 = blk * block_rows;
                    for (i, out_row) in out_block.chunks_mut(rhs.cols).enumerate() {
                        self.matmul_row_into(rhs, r0 + i, out_row);
                    }
                },
            );
        } else {
            for i in 0..self.rows {
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                self.matmul_row_into(rhs, i, out_row);
            }
        }
        Ok(out)
    }

    /// Accumulates row `i` of `self · rhs` into `out_row` (i-k-j order;
    /// the single code path both the serial and the row-block-parallel
    /// matmul run, which is what makes them bit-identical).
    fn matmul_row_into(&self, rhs: &Matrix, i: usize, out_row: &mut [f32]) {
        for (k, &a_ik) in self.row(i).iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = rhs.row(k);
            for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ik * b_kj;
            }
        }
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(&self, rhs: &Matrix, op: &str, f: impl Fn(f32, f32) -> f32) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch(format!(
                "{op}: {}x{} vs {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Scales every element by `s`, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * s).collect(),
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Matrix-vector product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch(format!(
                "matvec: {}x{} · {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(&a, &b)| a * b).sum())
            .collect())
    }

    /// Extracts the sub-matrix of rows `r0..r1` and columns `c0..c1`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges fall outside the matrix.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row range {r0}..{r1} out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "col range {c0}..{c1} out of bounds");
        Matrix::from_fn(r1 - r0, c1 - c0, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Frobenius norm `sqrt(Σ w_ij²)` (accumulated in `f64` for stability).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt() as f32
    }

    /// Largest absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(TensorError::ShapeMismatch(_))));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_fn(4, 7, |r, c| (r * 7 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_shape() {
        let a = Matrix::zeros(4, 7);
        assert_eq!(a.transpose().shape(), (7, 4));
    }

    #[test]
    fn add_sub_inverse() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(3, 3, |r, c| (r * c) as f32);
        let back = a.add(&b).unwrap().sub(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let y = a.matvec(&[1.0, -1.0]).unwrap();
        assert_eq!(y, vec![-1.0, -1.0]);
    }

    #[test]
    fn frobenius_norm_of_unit_rows() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn submatrix_extracts_block() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let s = a.submatrix(1, 3, 2, 4);
        assert_eq!(s, Matrix::from_rows(&[&[6.0, 7.0], &[10.0, 11.0]]));
    }

    #[test]
    fn max_abs_finds_negative_extreme() {
        let a = Matrix::from_rows(&[&[1.0, -9.0], &[3.0, 4.0]]);
        assert_eq!(a.max_abs(), 9.0);
    }

    #[test]
    fn col_returns_column() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn hadamard_is_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.hadamard(&b).unwrap(), Matrix::from_rows(&[&[3.0, 8.0]]));
    }

    #[test]
    fn map_and_scale_agree() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        assert_eq!(a.scale(2.0), a.map(|v| v * 2.0));
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_serial() {
        // 64×64×64 = 256k multiply-adds: above PAR_MATMUL_MIN_WORK, so
        // thread counts > 1 exercise the row-block path.
        let a = Matrix::from_fn(64, 64, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(64, 64, |r, c| ((r * 17 + c * 3) % 11) as f32 * 0.25);
        let serial = crate::pool::with_threads(1, || a.matmul(&b).unwrap());
        for t in [2, 4, 7] {
            let par = crate::pool::with_threads(t, || a.matmul(&b).unwrap());
            assert_eq!(par.as_slice(), serial.as_slice(), "threads={t}");
        }
    }

    #[test]
    fn parallel_matmul_handles_row_counts_not_divisible_by_threads() {
        let a = Matrix::from_fn(33, 64, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(64, 65, |r, c| ((r + c) % 7) as f32);
        let serial = crate::pool::with_threads(1, || a.matmul(&b).unwrap());
        for t in [2, 4, 7] {
            let par = crate::pool::with_threads(t, || a.matmul(&b).unwrap());
            assert_eq!(par.as_slice(), serial.as_slice(), "threads={t}");
        }
    }
}
