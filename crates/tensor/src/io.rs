//! Minimal little-endian binary serialization primitives.
//!
//! The compressed-model formats in `milo-quant`/`milo-core`/`milo-moe`
//! are built from these; keeping them here avoids a serde dependency for
//! what is a handful of fixed-layout records.

use crate::crc32::crc32;
use crate::Matrix;
use std::io::{self, Read, Write};

/// Upper bound on a framed section's payload length; corrupt length
/// headers must not trigger multi-gigabyte allocations.
pub const MAX_SECTION_BYTES: u64 = 1 << 32;

/// How a framed section failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionFault {
    /// The stored CRC-32 does not match the payload.
    ChecksumMismatch {
        /// Checksum recorded in the stream.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
    /// The stream ended before the declared payload length.
    Truncated,
    /// The declared payload length exceeds [`MAX_SECTION_BYTES`].
    OversizedLength(u64),
}

/// Typed error for a damaged artifact section, naming the section (for
/// model artifacts: the offending layer) so callers and operators know
/// *what* is corrupt, not just that something is.
///
/// Readers surface this wrapped in an [`io::Error`] of kind
/// `InvalidData`; use [`corrupt_section_info`] to recover the structured
/// form from a propagated error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptSection {
    /// Human-readable section name (e.g. `layer 3 (layer0.expert1.w1)`).
    pub section: String,
    /// What exactly failed.
    pub fault: SectionFault,
}

impl std::fmt::Display for SectionFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SectionFault::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SectionFault::Truncated => write!(f, "truncated"),
            SectionFault::OversizedLength(n) => {
                write!(f, "implausible length ({n} bytes)")
            }
        }
    }
}

impl std::fmt::Display for CorruptSection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.fault {
            SectionFault::ChecksumMismatch { stored, computed } => write!(
                f,
                "section `{}` is corrupt: checksum mismatch (stored {stored:#010x}, computed {computed:#010x})",
                self.section
            ),
            SectionFault::Truncated => {
                write!(f, "section `{}` is truncated", self.section)
            }
            SectionFault::OversizedLength(n) => write!(
                f,
                "section `{}` declares an implausible length of {n} bytes",
                self.section
            ),
        }
    }
}

impl std::error::Error for CorruptSection {}

impl From<CorruptSection> for io::Error {
    fn from(c: CorruptSection) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, c)
    }
}

/// Recovers the structured [`CorruptSection`] from an [`io::Error`]
/// produced by a section reader, if that is what it carries.
pub fn corrupt_section_info(e: &io::Error) -> Option<&CorruptSection> {
    e.get_ref().and_then(|inner| inner.downcast_ref::<CorruptSection>())
}

/// Writes a framed section: `u64` payload length, `u32` CRC-32 of the
/// payload, then the payload bytes.
pub fn write_section(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    write_u64(w, payload.len() as u64)?;
    write_u32(w, crc32(payload))?;
    w.write_all(payload)
}

/// Reads a framed section written by [`write_section`], validating the
/// checksum. `section` names the section in any [`CorruptSection`] error.
///
/// # Errors
///
/// Returns an `InvalidData` error carrying a [`CorruptSection`] when the
/// declared length is implausible, the stream ends early, or the
/// checksum does not match; propagates other IO failures.
pub fn read_section(r: &mut impl Read, section: &str) -> io::Result<Vec<u8>> {
    match read_section_lenient(r, section)? {
        (payload, None) => Ok(payload),
        (_, Some(fault)) => Err(fault.into()),
    }
}

/// Like [`read_section`], but a checksum mismatch is returned as data —
/// `(payload, Some(fault))` — instead of an error, so integrity scanners
/// can report the damage *and keep walking the stream* (the framing is
/// still intact when only payload bytes are wrong). Truncation and
/// oversized lengths still error: past those the stream cannot be
/// followed.
///
/// # Errors
///
/// Returns `CorruptSection` (wrapped in `InvalidData`) for truncation or
/// an implausible length; propagates other IO failures.
pub fn read_section_lenient(
    r: &mut impl Read,
    section: &str,
) -> io::Result<(Vec<u8>, Option<CorruptSection>)> {
    let fault = |fault: SectionFault| -> io::Error {
        CorruptSection { section: section.to_string(), fault }.into()
    };
    let len = read_u64(r).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            fault(SectionFault::Truncated)
        } else {
            e
        }
    })?;
    if len > MAX_SECTION_BYTES {
        return Err(fault(SectionFault::OversizedLength(len)));
    }
    let stored = read_u32(r).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            fault(SectionFault::Truncated)
        } else {
            e
        }
    })?;
    // Grow the buffer only as data actually arrives: a corrupt length
    // header below the cap must fail fast on truncation, not allocate
    // gigabytes up front.
    let mut payload = Vec::with_capacity((len as usize).min(1 << 20));
    let mut chunk = [0u8; 64 * 1024];
    let mut remaining = len as usize;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take]).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                fault(SectionFault::Truncated)
            } else {
                e
            }
        })?;
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    let computed = crc32(&payload);
    if computed != stored {
        let c = CorruptSection {
            section: section.to_string(),
            fault: SectionFault::ChecksumMismatch { stored, computed },
        };
        return Ok((payload, Some(c)));
    }
    Ok((payload, None))
}

/// Integrity status of one framed section, as reported by an artifact
/// verifier (`milo-cli check`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionReport {
    /// Section name (for model artifacts, the layer it holds).
    pub name: String,
    /// Payload length in bytes.
    pub bytes: u64,
    /// `None` when the checksum verified; the fault otherwise.
    pub fault: Option<SectionFault>,
}

/// Whole-artifact integrity report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Format version found in the artifact header.
    pub version: u32,
    /// Whether the format version carries checksums at all (v1 legacy
    /// artifacts do not; they can be read but not verified).
    pub checksummed: bool,
    /// Per-section status, in stream order. Scanning stops early only on
    /// faults that make the framing unfollowable (truncation).
    pub sections: Vec<SectionReport>,
    /// Bytes found after the final section (corrupt layer count or
    /// appended garbage).
    pub trailing_data: bool,
}

impl IntegrityReport {
    /// Whether every section verified and no trailing bytes were found.
    pub fn is_ok(&self) -> bool {
        !self.trailing_data && self.sections.iter().all(|s| s.fault.is_none())
    }

    /// Number of damaged sections.
    pub fn n_corrupt(&self) -> usize {
        self.sections.iter().filter(|s| s.fault.is_some()).count()
    }
}

/// Writes a 4-byte section tag.
pub fn write_tag(w: &mut impl Write, tag: &[u8; 4]) -> io::Result<()> {
    w.write_all(tag)
}

/// Reads and validates a 4-byte section tag.
pub fn expect_tag(r: &mut impl Read, tag: &[u8; 4]) -> io::Result<()> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    if &buf != tag {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "expected tag {:?}, found {:?}",
                String::from_utf8_lossy(tag),
                String::from_utf8_lossy(&buf)
            ),
        ));
    }
    Ok(())
}

/// Writes a `u32` (little endian).
pub fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u32` (little endian).
pub fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes a `u64` (little endian).
pub fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u64` (little endian).
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes an `f32` (little endian).
pub fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads an `f32` (little endian).
pub fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Reads a length header, guarding against absurd allocations from
/// corrupt input.
fn read_len(r: &mut impl Read, what: &str) -> io::Result<usize> {
    let n = read_u64(r)?;
    const LIMIT: u64 = 1 << 34; // 16 Gi elements: far beyond any model here
    if n > LIMIT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{what} length {n} exceeds sanity limit"),
        ));
    }
    Ok(n as usize)
}

/// Writes a UTF-8 string with a length header.
pub fn write_string(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

/// Reads a UTF-8 string.
pub fn read_string(r: &mut impl Read) -> io::Result<String> {
    let n = read_len(r, "string")?;
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad utf-8: {e}")))
}

/// Writes a `Vec<f32>` with a length header.
pub fn write_f32_slice(w: &mut impl Write, xs: &[f32]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        write_f32(w, x)?;
    }
    Ok(())
}

/// Reads a `Vec<f32>`.
pub fn read_f32_vec(r: &mut impl Read) -> io::Result<Vec<f32>> {
    let n = read_len(r, "f32 vector")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_f32(r)?);
    }
    Ok(out)
}

/// Writes a byte slice with a length header.
pub fn write_bytes(w: &mut impl Write, xs: &[u8]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    w.write_all(xs)
}

/// Reads a byte vector.
pub fn read_bytes(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let n = read_len(r, "byte vector")?;
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Writes a matrix (shape header + row-major f32 data).
pub fn write_matrix(w: &mut impl Write, m: &Matrix) -> io::Result<()> {
    write_u64(w, m.rows() as u64)?;
    write_u64(w, m.cols() as u64)?;
    for &v in m.as_slice() {
        write_f32(w, v)?;
    }
    Ok(())
}

/// Reads a matrix.
pub fn read_matrix(r: &mut impl Read) -> io::Result<Matrix> {
    let rows = read_len(r, "matrix rows")?;
    let cols = read_len(r, "matrix cols")?;
    let n = rows.checked_mul(cols).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "matrix shape overflows")
    })?;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(read_f32(r)?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn scalar_round_trips() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        write_u64(&mut buf, u64::MAX - 7).unwrap();
        write_f32(&mut buf, -1.5e-4).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_u32(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 7);
        assert_eq!(read_f32(&mut r).unwrap(), -1.5e-4);
    }

    #[test]
    fn string_and_vectors_round_trip() {
        let mut buf = Vec::new();
        write_string(&mut buf, "layer3.expert5.w1").unwrap();
        write_f32_slice(&mut buf, &[1.0, -2.0, 0.5]).unwrap();
        write_bytes(&mut buf, &[7, 0, 255]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_string(&mut r).unwrap(), "layer3.expert5.w1");
        assert_eq!(read_f32_vec(&mut r).unwrap(), vec![1.0, -2.0, 0.5]);
        assert_eq!(read_bytes(&mut r).unwrap(), vec![7, 0, 255]);
    }

    #[test]
    fn matrix_round_trips() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 - 7.0);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        let out = read_matrix(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out, m);
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut buf = Vec::new();
        write_tag(&mut buf, b"MILO").unwrap();
        assert!(expect_tag(&mut Cursor::new(&buf), b"MILQ").is_err());
        assert!(expect_tag(&mut Cursor::new(&buf), b"MILO").is_ok());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        write_matrix(&mut buf, &Matrix::filled(4, 4, 1.0)).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_matrix(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn absurd_length_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        assert!(read_string(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn section_round_trips() {
        let payload = b"some layer record bytes".to_vec();
        let mut buf = Vec::new();
        write_section(&mut buf, &payload).unwrap();
        let out = read_section(&mut Cursor::new(buf), "layer 0").unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn corrupt_section_is_a_typed_checksum_error() {
        let mut buf = Vec::new();
        write_section(&mut buf, b"payload-payload-payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x10;
        let err = read_section(&mut Cursor::new(buf), "layer 7 (w1)").unwrap_err();
        let info = corrupt_section_info(&err).expect("typed CorruptSection");
        assert_eq!(info.section, "layer 7 (w1)");
        assert!(matches!(info.fault, SectionFault::ChecksumMismatch { .. }));
        assert!(err.to_string().contains("layer 7 (w1)"));
    }

    #[test]
    fn truncated_section_is_a_typed_truncation_error() {
        let mut buf = Vec::new();
        write_section(&mut buf, &[7u8; 100]).unwrap();
        for cut in 0..buf.len() {
            let err = read_section(&mut Cursor::new(&buf[..cut]), "s").unwrap_err();
            let info = corrupt_section_info(&err)
                .unwrap_or_else(|| panic!("cut {cut}: untyped error {err}"));
            assert!(
                matches!(
                    info.fault,
                    SectionFault::Truncated | SectionFault::ChecksumMismatch { .. }
                ),
                "cut {cut}: {info:?}"
            );
        }
    }

    #[test]
    fn oversized_section_length_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, MAX_SECTION_BYTES + 1).unwrap();
        write_u32(&mut buf, 0).unwrap();
        let err = read_section(&mut Cursor::new(buf), "s").unwrap_err();
        let info = corrupt_section_info(&err).unwrap();
        assert!(matches!(info.fault, SectionFault::OversizedLength(_)));
    }
}
