//! Minimal little-endian binary serialization primitives.
//!
//! The compressed-model formats in `milo-quant`/`milo-core`/`milo-moe`
//! are built from these; keeping them here avoids a serde dependency for
//! what is a handful of fixed-layout records.

use crate::Matrix;
use std::io::{self, Read, Write};

/// Writes a 4-byte section tag.
pub fn write_tag(w: &mut impl Write, tag: &[u8; 4]) -> io::Result<()> {
    w.write_all(tag)
}

/// Reads and validates a 4-byte section tag.
pub fn expect_tag(r: &mut impl Read, tag: &[u8; 4]) -> io::Result<()> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    if &buf != tag {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "expected tag {:?}, found {:?}",
                String::from_utf8_lossy(tag),
                String::from_utf8_lossy(&buf)
            ),
        ));
    }
    Ok(())
}

/// Writes a `u32` (little endian).
pub fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u32` (little endian).
pub fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes a `u64` (little endian).
pub fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u64` (little endian).
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes an `f32` (little endian).
pub fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads an `f32` (little endian).
pub fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Reads a length header, guarding against absurd allocations from
/// corrupt input.
fn read_len(r: &mut impl Read, what: &str) -> io::Result<usize> {
    let n = read_u64(r)?;
    const LIMIT: u64 = 1 << 34; // 16 Gi elements: far beyond any model here
    if n > LIMIT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{what} length {n} exceeds sanity limit"),
        ));
    }
    Ok(n as usize)
}

/// Writes a UTF-8 string with a length header.
pub fn write_string(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

/// Reads a UTF-8 string.
pub fn read_string(r: &mut impl Read) -> io::Result<String> {
    let n = read_len(r, "string")?;
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad utf-8: {e}")))
}

/// Writes a `Vec<f32>` with a length header.
pub fn write_f32_slice(w: &mut impl Write, xs: &[f32]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        write_f32(w, x)?;
    }
    Ok(())
}

/// Reads a `Vec<f32>`.
pub fn read_f32_vec(r: &mut impl Read) -> io::Result<Vec<f32>> {
    let n = read_len(r, "f32 vector")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_f32(r)?);
    }
    Ok(out)
}

/// Writes a byte slice with a length header.
pub fn write_bytes(w: &mut impl Write, xs: &[u8]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    w.write_all(xs)
}

/// Reads a byte vector.
pub fn read_bytes(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let n = read_len(r, "byte vector")?;
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Writes a matrix (shape header + row-major f32 data).
pub fn write_matrix(w: &mut impl Write, m: &Matrix) -> io::Result<()> {
    write_u64(w, m.rows() as u64)?;
    write_u64(w, m.cols() as u64)?;
    for &v in m.as_slice() {
        write_f32(w, v)?;
    }
    Ok(())
}

/// Reads a matrix.
pub fn read_matrix(r: &mut impl Read) -> io::Result<Matrix> {
    let rows = read_len(r, "matrix rows")?;
    let cols = read_len(r, "matrix cols")?;
    let n = rows.checked_mul(cols).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "matrix shape overflows")
    })?;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(read_f32(r)?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn scalar_round_trips() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        write_u64(&mut buf, u64::MAX - 7).unwrap();
        write_f32(&mut buf, -1.5e-4).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_u32(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 7);
        assert_eq!(read_f32(&mut r).unwrap(), -1.5e-4);
    }

    #[test]
    fn string_and_vectors_round_trip() {
        let mut buf = Vec::new();
        write_string(&mut buf, "layer3.expert5.w1").unwrap();
        write_f32_slice(&mut buf, &[1.0, -2.0, 0.5]).unwrap();
        write_bytes(&mut buf, &[7, 0, 255]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_string(&mut r).unwrap(), "layer3.expert5.w1");
        assert_eq!(read_f32_vec(&mut r).unwrap(), vec![1.0, -2.0, 0.5]);
        assert_eq!(read_bytes(&mut r).unwrap(), vec![7, 0, 255]);
    }

    #[test]
    fn matrix_round_trips() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 - 7.0);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        let out = read_matrix(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out, m);
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut buf = Vec::new();
        write_tag(&mut buf, b"MILO").unwrap();
        assert!(expect_tag(&mut Cursor::new(&buf), b"MILQ").is_err());
        assert!(expect_tag(&mut Cursor::new(&buf), b"MILO").is_ok());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        write_matrix(&mut buf, &Matrix::filled(4, 4, 1.0)).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_matrix(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn absurd_length_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        assert!(read_string(&mut Cursor::new(buf)).is_err());
    }
}
