//! Corruption fuzz-lite: seeded single-byte flips and exhaustive
//! truncation sweeps over both serialized artifact formats. The
//! checksummed readers must reject every corruption with a typed error —
//! a panic fails the test, an `Ok` means a corruption slipped through.

use milo_core::{compress_model, LayerKind, LayerMeta, LayerTensor, MiloOptions, RankPolicy};
use milo_faults::{corrupt_samples, fault_rng, truncation_points};
use milo_moe::{MoeConfig, MoeModel};
use milo_tensor::proptest::{self, Config, Strategy};
use milo_tensor::prng::Rng;
use milo_tensor::Matrix;
use std::io::Cursor;

/// A small compressed model whose MILO stream stays a few KiB so the
/// exhaustive truncation sweep is cheap.
fn small_milo_stream() -> Vec<u8> {
    let tensors: Vec<LayerTensor> = (0..3)
        .map(|i| {
            let rows = 16;
            let cols = 32;
            LayerTensor {
                name: format!("layer0.expert{i}.w1"),
                meta: LayerMeta {
                    kind: LayerKind::Expert { index: i },
                    rows,
                    cols,
                    kurtosis: 0.0,
                    frequency: 0.5,
                },
                weight: Matrix::from_fn(rows, cols, |r, c| {
                    ((r * cols + c + i) as f32).sin()
                }),
            }
        })
        .collect();
    let opts = MiloOptions { max_iters: 1, ..MiloOptions::default() };
    let model = compress_model(&tensors, &RankPolicy::uniform(2), &opts, 1).unwrap();
    let mut buf = Vec::new();
    milo_core::serialize::write_compressed_model(&mut buf, &model).unwrap();
    buf
}

/// A small MOEM stream (one-layer toy architecture).
fn small_moem_stream() -> Vec<u8> {
    let cfg = MoeConfig {
        name: "fuzz-toy".into(),
        n_layers: 1,
        d_model: 16,
        n_heads: 2,
        vocab: 16,
        n_experts: 2,
        top_k: 1,
        expert_ffn: 16,
        n_shared_experts: 0,
        shared_ffn: 0,
        first_layer_dense: false,
        router_imbalance: 0.1,
        attn_dof: 6.0,
        expert_channel_spread: 0.0,
        head_gain: 1.0,
    };
    let model = MoeModel::synthesize(&cfg, 23);
    let mut buf = Vec::new();
    milo_moe::serialize::write_model(&mut buf, &model).unwrap();
    buf
}

/// Strategy drawing a `(relative offset, xor mask)` byte corruption;
/// shrinks toward offset 0 and mask 1.
struct ByteFlip {
    len: usize,
}

impl Strategy for ByteFlip {
    type Value = (usize, u8);

    fn generate(&self, rng: &mut milo_tensor::prng::Xoshiro256pp) -> Self::Value {
        let off = (rng.gen::<u64>() % self.len as u64) as usize;
        let mask = (rng.gen::<u64>() % 255) as u8 + 1;
        (off, mask)
    }

    fn shrink(&self, &(off, mask): &Self::Value) -> Vec<Self::Value> {
        let mut c = Vec::new();
        if off > 0 {
            c.push((off / 2, mask));
        }
        if mask > 1 {
            c.push((off, mask >> 1));
        }
        c
    }
}

#[test]
fn every_sampled_byte_flip_of_a_milo_stream_is_rejected() {
    let clean = small_milo_stream();
    // The clean stream parses.
    assert!(milo_core::serialize::read_compressed_model(&mut Cursor::new(&clean[..])).is_ok());
    let strategy = ByteFlip { len: clean.len() };
    proptest::check(&Config::with_cases(128), &strategy, |&(off, mask)| {
        let mut bad = clean.clone();
        bad[off] ^= mask;
        match milo_core::serialize::read_compressed_model(&mut Cursor::new(&bad[..])) {
            Err(_) => Ok(()),
            Ok(_) => Err(proptest::CaseFailure::fail(format!(
                "byte flip at {off} (mask {mask:#04x}) was not detected"
            ))),
        }
    });
}

#[test]
fn every_sampled_byte_flip_of_a_moem_stream_is_rejected() {
    let clean = small_moem_stream();
    assert!(milo_moe::serialize::read_model(&mut Cursor::new(&clean[..])).is_ok());
    let strategy = ByteFlip { len: clean.len() };
    proptest::check(&Config::with_cases(128), &strategy, |&(off, mask)| {
        let mut bad = clean.clone();
        bad[off] ^= mask;
        match milo_moe::serialize::read_model(&mut Cursor::new(&bad[..])) {
            Err(_) => Ok(()),
            Ok(_) => Err(proptest::CaseFailure::fail(format!(
                "byte flip at {off} (mask {mask:#04x}) was not detected"
            ))),
        }
    });
}

#[test]
fn every_truncation_of_a_milo_stream_errors_without_panicking() {
    let clean = small_milo_stream();
    for cut in truncation_points(clean.len()) {
        let res = milo_core::serialize::read_compressed_model(&mut Cursor::new(&clean[..cut]));
        assert!(res.is_err(), "truncation at {cut}/{} parsed", clean.len());
    }
}

#[test]
fn every_truncation_of_a_moem_stream_errors_without_panicking() {
    let clean = small_moem_stream();
    for cut in truncation_points(clean.len()) {
        let res = milo_moe::serialize::read_model(&mut Cursor::new(&clean[..cut]));
        assert!(res.is_err(), "truncation at {cut}/{} parsed", clean.len());
    }
}

#[test]
fn seeded_flip_sweep_is_reproducible_across_runs() {
    // The same seed must produce the same corruption schedule — this is
    // what makes an escaped fault reproducible from its seed alone.
    let clean = small_milo_stream();
    let a = corrupt_samples(clean.len(), 64, &mut fault_rng());
    let b = corrupt_samples(clean.len(), 64, &mut fault_rng());
    assert_eq!(a, b);
    for &(off, mask) in &a {
        let mut bad = clean.clone();
        bad[off] ^= mask;
        assert!(
            milo_core::serialize::read_compressed_model(&mut Cursor::new(&bad[..])).is_err(),
            "seeded flip at {off} (mask {mask:#04x}) was not detected"
        );
    }
}
