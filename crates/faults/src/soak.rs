//! Chaos / soak driver for the serving layer.
//!
//! Runs thousands of seeded requests through a real
//! [`milo_serve::Server`] wrapping the packed engine, in three phases:
//!
//! 1. **Warm-up** (first 20%) — fault-free burst arrivals; establishes
//!    the healthy baseline.
//! 2. **Fault window** (to 50%) — an expert is killed (panics
//!    mid-dispatch), another poisoned (NaN output), a third slowed
//!    ([`FaultKind::Slow`]); a seeded fraction of requests runs strict
//!    (exercising retries) and a seeded slice carries deadlines shorter
//!    than the slow fault (exercising cancellation and shedding), while
//!    oversized bursts exercise admission control.
//! 3. **Recovery** (rest) — faults cleared; circuit breakers must walk
//!    open → half-open → closed and re-admit the quarantined experts.
//!
//! [`run_soak`] asserts the serving invariants and returns an `Err`
//! naming the first violation:
//!
//! * no panic escapes a worker (the process survives; contained worker
//!   panics are counted and must be zero with a real model);
//! * every admitted request terminates with a response or a typed error
//!   within `deadline + ε`;
//! * queue depth never exceeds the configured capacity;
//! * at least one expert completes a quarantined → half-open → recovered
//!   cycle, and no expert is left quarantined at the end.
//!
//! Everything is a function of [`SoakConfig::seed`], so a failure
//! reproduces from the seed printed in the report.

use std::sync::Arc;
use std::time::{Duration, Instant};

use milo_core::{compress_model, MiloOptions, RankPolicy};
use milo_engine::PackedMoeModel;
use milo_moe::{layer_tensors, FaultMode, MoeConfig, MoeModel};
use milo_quant::HqqOptions;
use milo_serve::{Request, RetryPolicy, ServeError, Server, ServerConfig, ShedPolicy, Ticket};
use milo_tensor::prng::{Rng, SeedableRng};
use milo_tensor::rng::StdRng;

use crate::{kill_expert, poison_expert, slow_expert};

// Referenced by the module docs.
#[allow(unused_imports)]
use milo_moe::FaultKind;

/// Soak-run shape. All counts are in requests; phase boundaries are
/// fractions of [`requests`](SoakConfig::requests) (20% / 30% / 50%).
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master seed; tokens, fault modes, deadlines, and retry jitter all
    /// derive from it.
    pub seed: u64,
    /// Total requests across the three phases.
    pub requests: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Default per-request deadline.
    pub deadline: Duration,
    /// Termination slack: every request must resolve within
    /// `deadline + epsilon` of submission.
    pub epsilon: Duration,
    /// Fraction of requests served in [`FaultMode::Strict`] (these
    /// exercise the retry path during the fault window).
    pub strict_fraction: f64,
    /// Requests submitted back-to-back per burst.
    pub burst: usize,
    /// Oversized burst used during the fault window to exercise
    /// admission control.
    pub burst_overload: usize,
    /// Sleep of the slow-expert latency fault.
    pub slow_millis: u64,
    /// Circuit-breaker cooldown in ticks (served requests).
    pub breaker_cooldown: u64,
}

impl SoakConfig {
    /// The quick profile used by `verify.sh`: 1000 requests, sized to
    /// finish in a few seconds on a laptop.
    pub fn quick(seed: u64) -> Self {
        SoakConfig {
            seed,
            requests: 1000,
            workers: 4,
            queue_capacity: 32,
            deadline: Duration::from_millis(250),
            epsilon: Duration::from_millis(750),
            strict_fraction: 0.1,
            burst: 16,
            burst_overload: 48,
            slow_millis: 8,
            breaker_cooldown: 40,
        }
    }

    /// A longer profile (5000 requests) for manual soak runs.
    pub fn full(seed: u64) -> Self {
        SoakConfig { requests: 5000, ..SoakConfig::quick(seed) }
    }
}

/// Outcome tallies and invariant evidence from one soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// The seed the run derives from.
    pub seed: u64,
    /// Requests offered to the server (admitted + rejected).
    pub submitted: u64,
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Typed `Overloaded` rejections at admission.
    pub rejected: u64,
    /// Requests that returned logits.
    pub ok: u64,
    /// `DeadlineExceeded` outcomes (queued or mid-layer).
    pub deadline_exceeded: u64,
    /// Requests shed by the watchdog.
    pub shed: u64,
    /// `RetriesExhausted` outcomes.
    pub retries_exhausted: u64,
    /// Strict-mode expert failures surfaced without retry budget.
    pub expert_errors: u64,
    /// Non-retryable engine errors (must be 0: every token is valid).
    pub engine_errors: u64,
    /// Contained worker panics (must be 0 with a real model).
    pub internal_errors: u64,
    /// Total retry attempts.
    pub retries: u64,
    /// Requests that failed to terminate within `deadline + ε`.
    pub deadline_violations: u64,
    /// Highest queue depth observed at admission.
    pub max_queue_depth: u64,
    /// Breaker trips observed (first quarantines + failed probes).
    pub breaker_trips: u64,
    /// Open → half-open transitions observed.
    pub breaker_half_open: u64,
    /// Half-open → closed recoveries observed.
    pub breaker_recovered: u64,
    /// Experts still quarantined when the run ended (must be 0).
    pub still_quarantined: u64,
    /// Extra fault-free requests used to drain recovery at the end.
    pub drain_requests: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// `shed / admitted`.
    pub shed_rate: f64,
}

impl SoakReport {
    /// Renders the report as a JSON object (used by the CLI and the
    /// bench baseline).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"seed\": {},\n",
                "  \"submitted\": {},\n",
                "  \"admitted\": {},\n",
                "  \"rejected\": {},\n",
                "  \"ok\": {},\n",
                "  \"deadline_exceeded\": {},\n",
                "  \"shed\": {},\n",
                "  \"retries_exhausted\": {},\n",
                "  \"expert_errors\": {},\n",
                "  \"engine_errors\": {},\n",
                "  \"internal_errors\": {},\n",
                "  \"retries\": {},\n",
                "  \"deadline_violations\": {},\n",
                "  \"max_queue_depth\": {},\n",
                "  \"breaker_trips\": {},\n",
                "  \"breaker_half_open\": {},\n",
                "  \"breaker_recovered\": {},\n",
                "  \"still_quarantined\": {},\n",
                "  \"drain_requests\": {},\n",
                "  \"elapsed_ms\": {:.1},\n",
                "  \"throughput_rps\": {:.1},\n",
                "  \"shed_rate\": {:.4}\n",
                "}}"
            ),
            self.seed,
            self.submitted,
            self.admitted,
            self.rejected,
            self.ok,
            self.deadline_exceeded,
            self.shed,
            self.retries_exhausted,
            self.expert_errors,
            self.engine_errors,
            self.internal_errors,
            self.retries,
            self.deadline_violations,
            self.max_queue_depth,
            self.breaker_trips,
            self.breaker_half_open,
            self.breaker_recovered,
            self.still_quarantined,
            self.drain_requests,
            self.elapsed.as_secs_f64() * 1e3,
            self.throughput_rps,
            self.shed_rate,
        )
    }
}

/// Builds the small packed-engine model the soak serves: the 2-layer
/// `tiny_mixtral` MoE run through the real compress → pack pipeline.
/// The default shape keeps a single forward in the hundreds of
/// microseconds, so soak latency is dominated by the injected faults
/// and queueing — the behaviours under test — not raw compute.
fn build_soak_model(seed: u64) -> Result<(Arc<PackedMoeModel>, MoeConfig), String> {
    let cfg = MoeConfig::tiny_mixtral();
    let reference = MoeModel::synthesize(&cfg, seed);
    let tensors = layer_tensors(&reference, None);
    let opts = MiloOptions {
        max_iters: 1,
        hqq: HqqOptions { max_iters: 5, ..HqqOptions::default() },
        ..MiloOptions::default()
    };
    let compressed = compress_model(&tensors, &RankPolicy::uniform(4), &opts, 2)
        .map_err(|e| format!("soak model compression failed: {e}"))?;
    let packed = PackedMoeModel::build(&reference, &compressed)
        .map_err(|e| format!("soak model build failed: {e}"))?;
    Ok((Arc::new(packed), cfg))
}

struct Pending {
    ticket: Ticket,
    submitted: Instant,
    deadline: Duration,
}

#[derive(Default)]
struct Tally {
    ok: u64,
    deadline_exceeded: u64,
    shed: u64,
    retries_exhausted: u64,
    expert_errors: u64,
    engine_errors: u64,
    internal_errors: u64,
    deadline_violations: u64,
    unresolved: u64,
}

fn settle(pending: Vec<Pending>, epsilon: Duration, tally: &mut Tally) {
    for p in pending {
        let hard_stop = p.submitted + p.deadline + epsilon;
        let budget = hard_stop
            .saturating_duration_since(Instant::now())
            // Never poll with a zero budget even if we observe late.
            .max(Duration::from_millis(10));
        match p.ticket.wait_timeout(budget) {
            None => {
                tally.unresolved += 1;
                tally.deadline_violations += 1;
            }
            Some(outcome) => {
                if Instant::now() > hard_stop {
                    tally.deadline_violations += 1;
                }
                match outcome {
                    Ok(_) => tally.ok += 1,
                    Err(ServeError::DeadlineExceeded { .. }) => tally.deadline_exceeded += 1,
                    Err(ServeError::Shed { .. }) => tally.shed += 1,
                    Err(ServeError::RetriesExhausted { .. }) => tally.retries_exhausted += 1,
                    Err(ServeError::Expert { .. }) => tally.expert_errors += 1,
                    Err(ServeError::Engine(_)) => tally.engine_errors += 1,
                    Err(ServeError::Internal(_)) => tally.internal_errors += 1,
                    Err(other) => {
                        // Overloaded / InvalidDeadline cannot occur after
                        // admission; ShuttingDown cannot occur before
                        // shutdown. Count as internal: it is a serve bug.
                        let _ = other;
                        tally.internal_errors += 1;
                    }
                }
            }
        }
    }
}

/// Runs the chaos soak described in the module docs.
///
/// # Errors
///
/// A human-readable description of the first violated invariant, or of
/// a setup failure.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, String> {
    if cfg.requests < 100 {
        return Err("soak needs at least 100 requests to cover all three phases".into());
    }
    let (model, moe_cfg) = build_soak_model(cfg.seed)?;
    let server = Server::start(
        model,
        ServerConfig {
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            default_deadline: Some(cfg.deadline),
            retry: RetryPolicy::default(),
            shed_policy: ShedPolicy::OldestFirst,
            mode: FaultMode::Degrade,
            seed: cfg.seed,
            breaker_cooldown: cfg.breaker_cooldown,
            watchdog_interval: Duration::from_millis(2),
        },
    );

    // Faults live on layer 1 (killed + poisoned trip breakers, slow is
    // latency-only) — chosen on the last layer so every request crosses
    // a healthy layer first.
    let faults = vec![
        kill_expert(1, 0),
        poison_expert(1, 1),
        slow_expert(1, 2, cfg.slow_millis),
    ];

    let warmup_end = cfg.requests / 5;
    let faults_end = cfg.requests / 2;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let start = Instant::now();
    let mut tally = Tally::default();
    let mut submitted: u64 = 0;
    let mut rejected: u64 = 0;
    let mut faults_on = false;

    let mut sent = 0usize;
    while sent < cfg.requests {
        if !faults_on && sent >= warmup_end && sent < faults_end {
            server.set_faults(faults.clone());
            faults_on = true;
        }
        if faults_on && sent >= faults_end {
            server.clear_faults();
            faults_on = false;
        }
        let in_fault_window = sent >= warmup_end && sent < faults_end;
        let burst = if in_fault_window { cfg.burst_overload } else { cfg.burst };
        let burst = burst.min(cfg.requests - sent);

        let mut pending = Vec::with_capacity(burst);
        for _ in 0..burst {
            sent += 1;
            submitted += 1;
            let len = 4 + (rng.gen::<u64>() % 5) as usize;
            let tokens: Vec<u32> = (0..len)
                .map(|_| (rng.gen::<u64>() % moe_cfg.vocab as u64) as u32)
                .collect();
            let mut req = Request::new(tokens);
            if rng.gen_bool(cfg.strict_fraction) {
                req = req.with_mode(FaultMode::Strict);
            }
            // Every 8th fault-window request runs with a deadline
            // shorter than the slow fault: guaranteed mid-layer expiry
            // when routed through the slowed expert.
            let deadline = if in_fault_window && submitted % 8 == 0 {
                Duration::from_millis(cfg.slow_millis / 2 + 1)
            } else {
                cfg.deadline
            };
            req = req.with_deadline(deadline);
            match server.submit(req) {
                Ok(ticket) => {
                    pending.push(Pending { ticket, submitted: Instant::now(), deadline })
                }
                Err(ServeError::Overloaded { depth, capacity }) => {
                    if depth > capacity {
                        server.shutdown();
                        return Err(format!(
                            "queue depth {depth} exceeded capacity {capacity}"
                        ));
                    }
                    rejected += 1;
                }
                Err(other) => {
                    server.shutdown();
                    return Err(format!("unexpected admission error: {other}"));
                }
            }
        }
        settle(pending, cfg.epsilon, &mut tally);
    }

    // Recovery drain: keep serving fault-free requests until every
    // breaker has closed (bounded so a stuck breaker fails loudly
    // instead of hanging).
    let health = Arc::clone(server.health());
    let mut drain: u64 = 0;
    while health.n_failed() > 0 && drain < 4 * cfg.requests as u64 {
        drain += 1;
        let tokens = vec![(drain % moe_cfg.vocab as u64) as u32; 4];
        match server.submit(Request::new(tokens).with_deadline(cfg.deadline)) {
            Ok(ticket) => {
                settle(
                    vec![Pending {
                        ticket,
                        submitted: Instant::now(),
                        deadline: cfg.deadline,
                    }],
                    cfg.epsilon,
                    &mut tally,
                );
            }
            Err(e) => {
                server.shutdown();
                return Err(format!("drain request rejected: {e}"));
            }
        }
    }

    let still_quarantined = health.n_failed() as u64;
    let breaker_trips = health.trips_total() as u64;
    let breaker_half_open = health.half_open_total() as u64;
    let breaker_recovered = health.recovered_total() as u64;
    let stats = server.shutdown();
    let elapsed = start.elapsed();

    let report = SoakReport {
        seed: cfg.seed,
        submitted: submitted + drain,
        admitted: stats.admitted,
        rejected,
        ok: tally.ok,
        deadline_exceeded: tally.deadline_exceeded,
        shed: tally.shed,
        retries_exhausted: tally.retries_exhausted,
        expert_errors: tally.expert_errors,
        engine_errors: tally.engine_errors,
        internal_errors: tally.internal_errors,
        retries: stats.retries,
        deadline_violations: tally.deadline_violations,
        max_queue_depth: stats.max_depth,
        breaker_trips,
        breaker_half_open,
        breaker_recovered,
        still_quarantined,
        drain_requests: drain,
        elapsed,
        throughput_rps: tally.ok as f64 / elapsed.as_secs_f64().max(1e-9),
        shed_rate: tally.shed as f64 / (stats.admitted.max(1)) as f64,
    };

    // Invariants. Checked in severity order so the first message names
    // the most fundamental breakage.
    if stats.panics > 0 || report.internal_errors > 0 {
        return Err(format!(
            "panic escaped expert isolation: {} contained worker panics, {} internal errors\n{}",
            stats.panics,
            report.internal_errors,
            report.to_json()
        ));
    }
    if tally.unresolved > 0 {
        return Err(format!(
            "{} requests never terminated within deadline+ε\n{}",
            tally.unresolved,
            report.to_json()
        ));
    }
    if report.deadline_violations > 0 {
        return Err(format!(
            "{} requests resolved after deadline+ε\n{}",
            report.deadline_violations,
            report.to_json()
        ));
    }
    if report.max_queue_depth > cfg.queue_capacity as u64 {
        return Err(format!(
            "queue depth {} exceeded capacity {}\n{}",
            report.max_queue_depth,
            cfg.queue_capacity,
            report.to_json()
        ));
    }
    if report.engine_errors > 0 {
        return Err(format!(
            "{} non-retryable engine errors on valid requests\n{}",
            report.engine_errors,
            report.to_json()
        ));
    }
    if report.breaker_trips == 0
        || report.breaker_half_open == 0
        || report.breaker_recovered == 0
    {
        return Err(format!(
            "no full breaker cycle observed (trips {}, half-open {}, recovered {})\n{}",
            report.breaker_trips,
            report.breaker_half_open,
            report.breaker_recovered,
            report.to_json()
        ));
    }
    if report.still_quarantined > 0 {
        return Err(format!(
            "{} experts still quarantined after recovery drain\n{}",
            report.still_quarantined,
            report.to_json()
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature soak (fast enough for the unit suite); the full
    /// quick profile runs from `verify.sh` via the CLI.
    #[test]
    fn mini_soak_holds_invariants() {
        let cfg = SoakConfig {
            requests: 200,
            breaker_cooldown: 10,
            ..SoakConfig::quick(7)
        };
        let report = run_soak(&cfg).expect("soak invariants");
        assert!(report.ok > 0);
        assert!(report.breaker_recovered >= 1);
        assert_eq!(report.still_quarantined, 0);
        assert_eq!(report.deadline_violations, 0);
    }
}
