//! Deterministic fault injection for the MiLo serving core.
//!
//! Robustness claims are only as good as the faults they were tested
//! against. This crate provides a *seeded* harness — every fault is a
//! pure function of a PRNG seed (by default [`fault_seed`], overridable
//! with the `MILO_FAULT_SEED` environment variable) — so a corruption
//! that slips past a guard reproduces exactly from its seed:
//!
//! * **Bit and byte corruption** of serialized artifact streams
//!   ([`flip_bit`], [`corrupt_samples`]) — the checksummed `MILO`/`MOEM`
//!   readers must reject every one.
//! * **Truncation sweeps** ([`truncation_points`]) — readers must fail
//!   with a typed error at every possible cut, never panic or hang.
//! * **Quantized-code bit flips** ([`flip_code_bit`]) — corruption in
//!   the INT3 code planes, revalidated through
//!   [`QuantizedMatrix::from_parts`] so an out-of-range code is caught
//!   at construction.
//! * **Compensator / weight factor bit flips** ([`flip_float_bit`]) and
//!   **NaN / Inf injection** ([`inject_nan`], [`inject_inf`]) into
//!   activation or factor matrices — the non-finite guards at expert
//!   boundaries must catch the poison.
//! * **Expert kills** ([`kill_expert`], [`poison_expert`]) — injected
//!   faults for [`milo_moe::ResilienceContext`] that panic a chosen
//!   expert mid-dispatch or poison its output, exercising strict and
//!   degrade recovery paths.
//! * **Latency faults** ([`slow_expert`], [`stall_expert`]) — experts
//!   that sleep before computing, from "slow" to "stalled past any
//!   deadline", exercising deadlines, watchdog cancellation, and load
//!   shedding in `milo-serve`.
//! * **Chaos soak** ([`soak`]) — thousands of seeded requests through a
//!   real packed-engine server under kill/poison/slow faults and burst
//!   arrivals, asserting the serving invariants end to end.

#![warn(missing_docs)]

pub mod soak;

pub use soak::{run_soak, SoakConfig, SoakReport};

use milo_moe::{FaultKind, InjectedFault};
use milo_quant::qtensor::QuantizedMatrix;
use milo_tensor::prng::{Rng, SeedableRng};
use milo_tensor::rng::StdRng;
use milo_tensor::Matrix;

/// Default seed: `b"MiLoFALT"` as little-endian bytes.
pub const DEFAULT_FAULT_SEED: u64 = 0x544c_4146_6f4c_694d;

/// The fault-injection seed: `MILO_FAULT_SEED` from the environment (any
/// `u64`, decimal or `0x`-prefixed hex), falling back to
/// [`DEFAULT_FAULT_SEED`]. Invalid values fall back rather than error so
/// a typo cannot silently disable a fault test.
pub fn fault_seed() -> u64 {
    match std::env::var("MILO_FAULT_SEED") {
        Ok(s) => parse_seed(&s).unwrap_or(DEFAULT_FAULT_SEED),
        Err(_) => DEFAULT_FAULT_SEED,
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// A PRNG seeded from [`fault_seed`].
pub fn fault_rng() -> StdRng {
    StdRng::seed_from_u64(fault_seed())
}

/// Flips one bit of a byte buffer (bit index counts from the LSB of
/// byte 0). Indices wrap, so any `u64` drawn from a PRNG is valid.
pub fn flip_bit(bytes: &mut [u8], bit: u64) {
    assert!(!bytes.is_empty(), "cannot flip a bit of an empty buffer");
    let bit = bit % (bytes.len() as u64 * 8);
    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
}

/// Draws `n` deterministic single-byte corruptions for a buffer of
/// `len` bytes: `(offset, xor mask)` pairs with non-zero masks, so each
/// application is guaranteed to change the buffer.
pub fn corrupt_samples(len: usize, n: usize, rng: &mut StdRng) -> Vec<(usize, u8)> {
    assert!(len > 0, "cannot corrupt an empty buffer");
    (0..n)
        .map(|_| {
            let offset = (rng.gen::<u64>() % len as u64) as usize;
            let mask = (rng.gen::<u64>() % 255) as u8 + 1;
            (offset, mask)
        })
        .collect()
}

/// All truncation lengths for a buffer of `len` bytes: every strict
/// prefix, `0..len`. (The full buffer is not a truncation.)
pub fn truncation_points(len: usize) -> std::ops::Range<usize> {
    0..len
}

/// Flips bit `bit % 8` of code `idx % codes.len()` in a quantized
/// matrix, re-assembling through [`QuantizedMatrix::from_parts`] so the
/// result is either a *valid* matrix with one silently-corrupted weight
/// (low bits) or a typed [`milo_quant::QuantError`] (a flip that pushes
/// the code past the quantizer's max — caught at construction, exactly
/// as a reader would).
///
/// # Errors
///
/// Propagates the construction error for out-of-range codes.
pub fn flip_code_bit(
    q: &QuantizedMatrix,
    idx: usize,
    bit: u8,
) -> milo_quant::Result<QuantizedMatrix> {
    let mut codes = q.codes().to_vec();
    let i = idx % codes.len();
    codes[i] ^= 1 << (bit % 8);
    QuantizedMatrix::from_parts(
        q.config().clone(),
        q.rows(),
        q.cols(),
        codes,
        q.scales().to_vec(),
        q.zeros().to_vec(),
    )
}

/// Flips one bit of element `idx % len` of a matrix (IEEE 754 bit
/// pattern, `bit % 32`), modelling a memory fault in a compensator
/// factor or weight. Flips in the exponent routinely produce Inf/NaN —
/// which is the point.
pub fn flip_float_bit(m: &mut Matrix, idx: usize, bit: u8) {
    let data = m.as_mut_slice();
    let i = idx % data.len();
    data[i] = f32::from_bits(data[i].to_bits() ^ (1 << (bit % 32)));
}

/// Overwrites a seeded element of a matrix with NaN, returning the flat
/// index poisoned.
pub fn inject_nan(m: &mut Matrix, rng: &mut StdRng) -> usize {
    let data = m.as_mut_slice();
    let i = (rng.gen::<u64>() % data.len() as u64) as usize;
    data[i] = f32::NAN;
    i
}

/// Overwrites a seeded element of a matrix with ±Inf, returning the
/// flat index poisoned.
pub fn inject_inf(m: &mut Matrix, rng: &mut StdRng) -> usize {
    let data = m.as_mut_slice();
    let i = (rng.gen::<u64>() % data.len() as u64) as usize;
    data[i] = if rng.gen::<u64>() & 1 == 0 { f32::INFINITY } else { f32::NEG_INFINITY };
    i
}

/// An injected fault that panics expert `expert` of layer `layer`
/// mid-dispatch.
pub fn kill_expert(layer: usize, expert: usize) -> InjectedFault {
    InjectedFault { layer, expert, kind: FaultKind::Panic }
}

/// An injected fault that poisons the output of expert `expert` of
/// layer `layer` with NaN.
pub fn poison_expert(layer: usize, expert: usize) -> InjectedFault {
    InjectedFault { layer, expert, kind: FaultKind::NanOutput }
}

/// An injected *latency* fault: expert `expert` of layer `layer` sleeps
/// `millis` before computing. The sleep is cooperative
/// ([`milo_moe::ResilienceContext::sleep_interruptible`]), so a cancelled
/// request escapes it within ~1 ms.
pub fn slow_expert(layer: usize, expert: usize, millis: u64) -> InjectedFault {
    InjectedFault { layer, expert, kind: FaultKind::Slow { millis } }
}

/// A latency fault long enough to stall any worker past a typical
/// request deadline — the "stalled worker" chaos scenario. The watchdog
/// must cancel the request and shed queued load; nothing may hang.
pub fn stall_expert(layer: usize, expert: usize) -> InjectedFault {
    slow_expert(layer, expert, 60_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_quant::{hqq_quantize, HqqOptions, QuantConfig};

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed(" 0X10 "), Some(16));
        assert_eq!(parse_seed("nope"), None);
    }

    #[test]
    fn corrupt_samples_are_deterministic_and_nonzero() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let sa = corrupt_samples(100, 50, &mut a);
        let sb = corrupt_samples(100, 50, &mut b);
        assert_eq!(sa, sb);
        assert!(sa.iter().all(|&(off, mask)| off < 100 && mask != 0));
    }

    #[test]
    fn flip_bit_round_trips() {
        let mut buf = vec![0u8; 16];
        flip_bit(&mut buf, 13);
        assert_eq!(buf[1], 1 << 5);
        flip_bit(&mut buf, 13);
        assert!(buf.iter().all(|&b| b == 0));
        // Out-of-range indices wrap instead of panicking.
        flip_bit(&mut buf, u64::MAX);
    }

    #[test]
    fn code_bit_flips_change_weights_or_are_rejected() {
        let w = Matrix::from_fn(8, 64, |r, c| ((r * 64 + c) as f32).sin());
        let q = hqq_quantize(&w, &QuantConfig::int3_asym(), &HqqOptions::default()).unwrap();
        let mut changed = 0;
        let mut rejected = 0;
        for idx in 0..32 {
            match flip_code_bit(&q, idx * 17, (idx % 8) as u8) {
                Ok(corrupt) => {
                    assert_ne!(corrupt.codes(), q.codes());
                    changed += 1;
                }
                Err(_) => rejected += 1,
            }
        }
        // Low-bit flips stay in range; high-bit flips must be rejected.
        assert!(changed > 0, "no in-range flips");
        assert!(rejected > 0, "no out-of-range flip was rejected");
    }

    #[test]
    fn float_bit_flips_and_nan_injection_poison_matrices() {
        let mut m = Matrix::filled(4, 4, 1.0);
        flip_float_bit(&mut m, 5, 30); // exponent bit of 1.0f32
        assert!(m.as_slice().iter().any(|v| *v != 1.0));

        let mut m = Matrix::filled(4, 4, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let i = inject_nan(&mut m, &mut rng);
        assert!(m.as_slice()[i].is_nan());
        let j = inject_inf(&mut m, &mut rng);
        assert!(m.as_slice()[j].is_infinite());
    }

    #[test]
    fn expert_fault_constructors() {
        assert_eq!(kill_expert(1, 2).kind, FaultKind::Panic);
        assert_eq!(poison_expert(3, 4).kind, FaultKind::NanOutput);
        assert_eq!(kill_expert(1, 2).layer, 1);
        assert_eq!(poison_expert(3, 4).expert, 4);
    }
}
