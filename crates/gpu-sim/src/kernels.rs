//! Per-kernel cost models (paper Fig. 9 configurations).

use crate::device::Device;
use crate::shapes::GemmShape;

/// The GEMM kernels compared in the paper's Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// MiLo W3A16, symmetric, group 64, fused dequant + GEMM.
    MiloSym,
    /// MiLo W3A16, asymmetric, group 64, fused dequant + GEMM.
    MiloAsym,
    /// MARLIN W4A16, symmetric, group 128 (Frantar et al. 2024).
    Marlin,
    /// GPTQ's W3A16 GeMV kernel — batch size 1 only, per-channel
    /// asymmetric.
    Gptq3bit,
    /// Unfused two-pass pipeline: MiLo Dequant writes an FP16 dense
    /// weight, CUTLASS reads it back for the GEMM.
    DequantCutlass,
    /// Unquantized FP16 (cuBLAS-style) reference.
    Fp16,
}

impl KernelKind {
    /// Weight bits per element.
    pub fn bits(&self) -> u32 {
        match self {
            KernelKind::MiloSym
            | KernelKind::MiloAsym
            | KernelKind::Gptq3bit
            | KernelKind::DequantCutlass => 3,
            KernelKind::Marlin => 4,
            KernelKind::Fp16 => 16,
        }
    }

    /// Quantization group size along `k` (`None` = per-channel).
    pub fn group_size(&self) -> Option<usize> {
        match self {
            KernelKind::MiloSym | KernelKind::MiloAsym | KernelKind::DequantCutlass => Some(64),
            KernelKind::Marlin => Some(128),
            KernelKind::Gptq3bit => None,
            KernelKind::Fp16 => Some(usize::MAX),
        }
    }

    /// Bytes of scale/zero-point parameters per group (FP16 each).
    pub fn param_bytes_per_group(&self) -> f64 {
        match self {
            KernelKind::MiloAsym | KernelKind::Gptq3bit => 4.0, // scale + zero
            KernelKind::MiloSym | KernelKind::Marlin | KernelKind::DequantCutlass => 2.0,
            KernelKind::Fp16 => 0.0,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::MiloSym => "MiLo Symmetric Kernel",
            KernelKind::MiloAsym => "MiLo Asymmetric Kernel",
            KernelKind::Marlin => "MARLIN Kernel",
            KernelKind::Gptq3bit => "GPTQ3bit Kernel",
            KernelKind::DequantCutlass => "MiLo Dequant + CUTLASS",
            KernelKind::Fp16 => "FP16 cuBLAS",
        }
    }
}

/// The three kernel optimizations ablated in paper Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Optimizations {
    /// Asynchronous global weight loads (`cuda::memcpy_async`): overlap
    /// memory traffic with computation.
    pub async_load: bool,
    /// The binary-manipulation INT3→FP16 path; disabling it falls back to
    /// naive integer casts.
    pub milo_dequant: bool,
    /// MoE-specific tile-shape tuning; disabling it pins the default
    /// (128, 128) tile.
    pub tile_tuning: bool,
}

impl Default for Optimizations {
    fn default() -> Self {
        Self { async_load: true, milo_dequant: true, tile_tuning: true }
    }
}

/// A kernel plus its optimization toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Which kernel's cost structure to use.
    pub kind: KernelKind,
    /// Optimization toggles (only meaningful for the MiLo kernels; the
    /// baselines have their own fixed behaviour).
    pub opts: Optimizations,
}

impl KernelConfig {
    /// A kernel with all MiLo optimizations enabled.
    pub fn new(kind: KernelKind) -> Self {
        Self { kind, opts: Optimizations::default() }
    }
}

/// The candidate `(tile_k, tile_n)` shapes (paper §3.3).
const TILES: [(usize, usize); 3] = [(256, 64), (128, 128), (64, 256)];
/// The default tile when tuning is disabled.
const DEFAULT_TILE: (usize, usize) = (128, 128);
/// k-tiles grouped per pipeline stage (Appendix D: "we group 4 tiles into
/// one pipeline").
const PIPELINE_DEPTH: usize = 4;

/// CUDA-core operations per weight element spent on de-quantization.
fn dequant_ops_per_elem(cfg: &KernelConfig) -> f64 {
    match cfg.kind {
        KernelKind::Fp16 => 0.0,
        KernelKind::Marlin => 0.5,
        KernelKind::Gptq3bit => 1.0,
        KernelKind::MiloSym | KernelKind::MiloAsym | KernelKind::DequantCutlass => {
            if cfg.opts.milo_dequant {
                0.5 // two values per instruction via the 1024+e splice
            } else {
                3.0 // extract + int->float cast + scale, per element
            }
        }
    }
}

/// Time of one GEMM with a specific tile shape, or `None` when the kernel
/// cannot run the problem (GPTQ GeMV with batch > 1).
fn gemm_time_with_tile(
    dev: &Device,
    cfg: &KernelConfig,
    shape: GemmShape,
    tile: (usize, usize),
) -> Option<f64> {
    if cfg.kind == KernelKind::Gptq3bit && shape.m > 1 {
        return None; // GeMV kernel: batch-1 only (paper Table 7 "—")
    }
    let (m, k, n) = (shape.m as f64, shape.k as f64, shape.n as f64);

    // --- Memory traffic ---
    let weight_bytes = shape.weight_elems() * cfg.kind.bits() as f64 / 8.0;
    let groups = match cfg.kind.group_size() {
        Some(g) if g != usize::MAX => n * (shape.k as f64 / g as f64).ceil(),
        Some(_) => 0.0,  // FP16: no parameters
        None => n, // per-channel
    };
    let param_bytes = groups * cfg.kind.param_bytes_per_group();
    let act_bytes = m * k * 2.0 + m * n * 2.0;
    let mut mem_bytes = weight_bytes + param_bytes + act_bytes;
    let mut launches = 1.0;
    if cfg.kind == KernelKind::DequantCutlass {
        // Separate dequant pass: write the FP16 dense weight, then the
        // GEMM kernel reads it back.
        mem_bytes += 2.0 * (shape.weight_elems() * 2.0);
        launches += 1.0;
    }
    let mem_time = mem_bytes / dev.mem_bw;

    // --- Compute phase ---
    let tc_time = match cfg.kind {
        // The GeMV kernel runs on CUDA cores with packed-half intrinsics.
        KernelKind::Gptq3bit => shape.flops() / (2.0 * dev.cuda_flops),
        _ => shape.flops() / dev.tc_flops,
    };
    let dequant_time = shape.weight_elems() * dequant_ops_per_elem(cfg) / dev.cuda_flops;
    let compute_time = tc_time + dequant_time;

    // --- Split-k global reduction ---
    // When the output grid has too few tiles to fill the SMs, the kernel
    // splits the reduction dimension across blocks and pays a global
    // synchronization per extra split (capped at the pipeline's split-k
    // factor). Tile tuning picks the shape that minimizes this — the
    // "MoE-specific tile shape tuning" of §3.3.
    let (tile_k, tile_n) = tile;
    let out_tiles = (m / 16.0).ceil() * (n / tile_n as f64).ceil();
    let max_splits = (k / (PIPELINE_DEPTH * tile_k) as f64).ceil().clamp(1.0, 4.0);
    let splits = if out_tiles < dev.sm_count as f64 {
        ((dev.sm_count as f64 / out_tiles).ceil()).min(max_splits)
    } else {
        1.0
    };
    // MARLIN's striped partitioning makes its global reduction cheaper
    // than a naive inter-block barrier.
    let sync_unit = if cfg.kind == KernelKind::Marlin {
        dev.sync_cost * 0.5
    } else {
        dev.sync_cost
    };
    let sync_time = (splits - 1.0) * sync_unit;

    // --- Pipeline composition ---
    // Async loads overlap the memory phase with compute; the global
    // reduction serializes after both.
    let body = if cfg.opts.async_load && cfg.kind != KernelKind::Fp16 {
        mem_time.max(compute_time)
    } else {
        mem_time + compute_time
    };
    Some(body + sync_time + launches * dev.launch_overhead)
}

/// Predicted execution time in seconds of one GEMM, or `None` when the
/// kernel cannot run the problem.
///
/// With tile tuning enabled the model picks the best of the three tile
/// shapes, mirroring the kernel's autotuner; otherwise the default
/// (128, 128) tile is used. Baseline kernels (MARLIN, GPTQ, CUTLASS,
/// FP16) always use their own fixed tiling, i.e. the default.
pub fn gemm_time(dev: &Device, cfg: &KernelConfig, shape: GemmShape) -> Option<f64> {
    let is_milo = matches!(
        cfg.kind,
        KernelKind::MiloSym | KernelKind::MiloAsym | KernelKind::DequantCutlass
    );
    if is_milo && cfg.opts.tile_tuning {
        TILES
            .iter()
            .filter_map(|&t| gemm_time_with_tile(dev, cfg, shape, t))
            .min_by(|a, b| a.partial_cmp(b).expect("times are finite"))
    } else {
        gemm_time_with_tile(dev, cfg, shape, DEFAULT_TILE)
    }
}

/// Achieved TFLOPS of a GEMM under a kernel, or `None` when unsupported.
pub fn tflops(dev: &Device, cfg: &KernelConfig, shape: GemmShape) -> Option<f64> {
    gemm_time(dev, cfg, shape).map(|t| shape.flops() / t / 1e12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{mlp_shapes, MlpModel};

    fn dev() -> Device {
        Device::a100_40gb()
    }

    fn total_time(kind: KernelKind, model: MlpModel, batch: usize) -> Option<f64> {
        let cfg = KernelConfig::new(kind);
        mlp_shapes(model, batch)
            .into_iter()
            .map(|s| gemm_time(&dev(), &cfg, s))
            .try_fold(0.0, |acc, t| t.map(|t| acc + t))
    }

    #[test]
    fn bs1_is_memory_bound_and_int3_wins() {
        // Paper Fig. 9, batch 1: both 3-bit kernels beat MARLIN because
        // the problem is memory-bound and INT3 moves fewer bytes.
        let milo = total_time(KernelKind::MiloSym, MlpModel::Mixtral8x7b, 1).unwrap();
        let gptq = total_time(KernelKind::Gptq3bit, MlpModel::Mixtral8x7b, 1).unwrap();
        let marlin = total_time(KernelKind::Marlin, MlpModel::Mixtral8x7b, 1).unwrap();
        assert!(milo < marlin, "MiLo {milo} should beat MARLIN {marlin}");
        assert!(gptq < marlin);
        // And the two 3-bit kernels are close (within 15%).
        assert!((milo - gptq).abs() / milo < 0.15, "milo {milo} vs gptq {gptq}");
    }

    #[test]
    fn gptq_gemv_rejects_batched_input() {
        assert!(total_time(KernelKind::Gptq3bit, MlpModel::Mixtral8x7b, 16).is_none());
        assert!(total_time(KernelKind::Gptq3bit, MlpModel::Mixtral8x7b, 1).is_some());
    }

    #[test]
    fn bs16_milo_beats_marlin_by_paper_margins() {
        // Paper: 16%, 7%, 12%, 24% on DeepSeek, Arctic, Mixtral, Falcon.
        // The analytical model should land in the same win band
        // (roughly 5%–40%) for every model.
        for model in MlpModel::all() {
            let milo = total_time(KernelKind::MiloSym, model, 16).unwrap();
            let marlin = total_time(KernelKind::Marlin, model, 16).unwrap();
            let speedup = marlin / milo;
            assert!(
                speedup > 1.02 && speedup < 1.50,
                "{}: speedup {speedup}",
                model.name()
            );
        }
    }

    #[test]
    fn bs32_milo_still_wins_on_deepseek() {
        // Paper: 17% higher throughput than the second best at bs 32 on
        // the DeepSeek MLP, thanks to reduced synchronization.
        let milo = total_time(KernelKind::MiloSym, MlpModel::DeepSeekMoe, 32).unwrap();
        let marlin = total_time(KernelKind::Marlin, MlpModel::DeepSeekMoe, 32).unwrap();
        let speedup = marlin / milo;
        assert!(speedup > 1.08, "speedup {speedup}");
    }

    #[test]
    fn unfused_pipeline_is_much_slower() {
        let fused = total_time(KernelKind::MiloSym, MlpModel::Mixtral8x7b, 16).unwrap();
        let unfused = total_time(KernelKind::DequantCutlass, MlpModel::Mixtral8x7b, 16).unwrap();
        assert!(unfused > 2.0 * fused, "unfused {unfused} vs fused {fused}");
    }

    #[test]
    fn fp16_is_slowest_at_small_batch() {
        for kind in [KernelKind::MiloSym, KernelKind::Marlin, KernelKind::Gptq3bit] {
            let q = total_time(kind, MlpModel::Mixtral8x7b, 1).unwrap();
            let fp = total_time(KernelKind::Fp16, MlpModel::Mixtral8x7b, 1).unwrap();
            assert!(fp > 2.0 * q, "{:?}: fp16 {fp} vs {q}", kind);
        }
    }

    #[test]
    fn time_is_monotone_in_batch() {
        // Near-monotone: a larger batch adds output tiles, which can
        // remove a split-k barrier and shave a few microseconds — a real
        // effect on GPUs — so allow 3% slack at tile boundaries.
        let cfg = KernelConfig::new(KernelKind::MiloAsym);
        let mut prev = 0.0;
        for batch in [1usize, 16, 32, 64, 128] {
            let t: f64 = mlp_shapes(MlpModel::Mixtral8x7b, batch)
                .into_iter()
                .map(|s| gemm_time(&dev(), &cfg, s).unwrap())
                .sum();
            assert!(t >= prev * 0.97, "batch {batch}: {t} < {prev}");
            prev = prev.max(t);
        }
    }

    #[test]
    fn removing_async_load_hurts_most() {
        // Paper Fig. 10 conclusion (1): async load is the most critical
        // optimization.
        let base = Optimizations::default();
        for model in MlpModel::all() {
            let t = |opts: Optimizations| -> f64 {
                let cfg = KernelConfig { kind: KernelKind::MiloAsym, opts };
                mlp_shapes(model, 16)
                    .into_iter()
                    .map(|s| gemm_time(&dev(), &cfg, s).unwrap())
                    .sum()
            };
            let t_base = t(base);
            let t_no_async = t(Optimizations { async_load: false, ..base });
            let t_no_dequant = t(Optimizations { milo_dequant: false, ..base });
            let t_no_tile = t(Optimizations { tile_tuning: false, ..base });
            assert!(
                t_no_async >= t_no_dequant && t_no_async >= t_no_tile,
                "{}: async {t_no_async}, dequant {t_no_dequant}, tile {t_no_tile}",
                model.name()
            );
            assert!(t_no_async > t_base);
        }
    }

    #[test]
    fn dequant_matters_more_for_bigger_mlps() {
        // Paper Fig. 10 conclusion (2).
        let slowdown = |model: MlpModel| -> f64 {
            let base = KernelConfig::new(KernelKind::MiloAsym);
            let no_dq = KernelConfig {
                kind: KernelKind::MiloAsym,
                opts: Optimizations { milo_dequant: false, ..Optimizations::default() },
            };
            let tb: f64 = mlp_shapes(model, 16)
                .into_iter()
                .map(|s| gemm_time(&dev(), &base, s).unwrap())
                .sum();
            let tn: f64 = mlp_shapes(model, 16)
                .into_iter()
                .map(|s| gemm_time(&dev(), &no_dq, s).unwrap())
                .sum();
            tn / tb
        };
        assert!(
            slowdown(MlpModel::Falcon180b) >= slowdown(MlpModel::DeepSeekMoe),
            "falcon {} vs deepseek {}",
            slowdown(MlpModel::Falcon180b),
            slowdown(MlpModel::DeepSeekMoe)
        );
    }

    #[test]
    fn tile_tuning_matters_more_for_smaller_mlps() {
        // Paper Fig. 10 conclusion (3).
        let slowdown = |model: MlpModel| -> f64 {
            let base = KernelConfig::new(KernelKind::MiloAsym);
            let no_tile = KernelConfig {
                kind: KernelKind::MiloAsym,
                opts: Optimizations { tile_tuning: false, ..Optimizations::default() },
            };
            let tb: f64 = mlp_shapes(model, 16)
                .into_iter()
                .map(|s| gemm_time(&dev(), &base, s).unwrap())
                .sum();
            let tn: f64 = mlp_shapes(model, 16)
                .into_iter()
                .map(|s| gemm_time(&dev(), &no_tile, s).unwrap())
                .sum();
            tn / tb
        };
        let small = slowdown(MlpModel::DeepSeekMoe);
        let large = slowdown(MlpModel::Falcon180b);
        assert!(small >= large, "deepseek {small} vs falcon {large}");
        assert!(small > 1.0, "tile tuning should matter on DeepSeek MLPs");
    }

    #[test]
    fn tflops_never_exceed_device_peak() {
        for model in MlpModel::all() {
            for batch in [1usize, 16, 32] {
                for kind in [KernelKind::MiloSym, KernelKind::MiloAsym, KernelKind::Marlin] {
                    let cfg = KernelConfig::new(kind);
                    for s in mlp_shapes(model, batch) {
                        let tf = tflops(&dev(), &cfg, s).unwrap();
                        assert!(tf > 0.0 && tf < 312.0, "{tf} TFLOPS out of range");
                    }
                }
            }
        }
    }
}
