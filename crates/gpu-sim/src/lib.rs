//! Analytical A100 performance model for mixed-precision GEMM kernels
//! and end-to-end MoE inference latency.
//!
//! The paper's system results (Fig. 9 GeMM TFLOPS, Fig. 10 kernel
//! ablation, Table 7 end-to-end latency) were measured on an NVIDIA A100.
//! No GPU is available in this environment, so this crate substitutes an
//! *analytical* model — a roofline with explicit terms for exactly the
//! mechanisms the paper's kernel design manipulates:
//!
//! * **weight traffic** — bytes of packed weights + quantization
//!   parameters streamed from HBM (INT3 moves 3/4 of INT4's bytes, the
//!   root of MiLo's memory-bound advantage);
//! * **pipeline overlap** — with asynchronous global weight loads
//!   (`cuda::memcpy_async`) memory and compute phases overlap
//!   (`max(mem, compute)`); without them they serialize (`mem + compute`).
//!   This is the paper's most critical optimization (Fig. 10);
//! * **de-quantization cost** — CUDA-core work per weight element:
//!   cheap with the binary-manipulation path, several× more with naive
//!   integer casts;
//! * **global-reduction synchronization** — split-k reductions between
//!   thread blocks, reduced by MoE-specific tile-shape tuning; matters
//!   for small MLPs (DeepSeek-MoE) and vanishes for large ones
//!   (Falcon-180B), as the paper observes;
//! * **launch overhead** — per-kernel constants that penalize unfused
//!   two-pass designs (Dequant + CUTLASS) and MARLIN's separate
//!   zero-point handling for asymmetric models.
//!
//! Absolute numbers are calibrated to A100 datasheet constants with
//! standard efficiency factors, not to the authors' testbed; what the
//! model is designed to reproduce is the *shape* of the results — who
//! wins, by what factor, and where the memory-/compute-bound crossovers
//! fall.

#![warn(missing_docs)]

pub mod device;
pub mod e2e;
pub mod kernels;
pub mod shapes;

pub use device::Device;
pub use e2e::{end_to_end, Backend, E2eResult, ModelSpec};
pub use kernels::{gemm_time, tflops, KernelConfig, KernelKind, Optimizations};
pub use shapes::{mlp_shapes, GemmShape, MlpModel};
