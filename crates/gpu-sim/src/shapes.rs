//! GEMM shapes of the evaluation models' FFN layers (paper Table 9).

/// A single GEMM problem: `out[m × n] = x[m × k] · W[k × n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Batch (rows of the activation matrix).
    pub m: usize,
    /// Reduction dimension (input features).
    pub k: usize,
    /// Output features.
    pub n: usize,
}

impl GemmShape {
    /// Creates a shape.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Self { m, k, n }
    }

    /// FLOPs of the GEMM (`2·m·n·k`).
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Number of weight elements.
    pub fn weight_elems(&self) -> f64 {
        self.k as f64 * self.n as f64
    }
}

/// The four models whose MLP layers the paper benchmarks in Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MlpModel {
    /// DeepSeek-MoE: w1/w3 (2048, 11008), w2 (11008, 2048).
    DeepSeekMoe,
    /// Arctic-MoE: w1/w3 (7168, 4864), w2 (4864, 7168).
    ArcticMoe,
    /// Mixtral-8×7B: w1/w3 (4096, 14336), w2 (14336, 4096).
    Mixtral8x7b,
    /// Falcon-180B: w1 (14848, 74240), w2 (74240, 14848).
    Falcon180b,
}

impl MlpModel {
    /// All benchmarked models, smallest MLP first (the Fig. 10 x-axis
    /// ordering: "MLP sizes increase from left to right").
    pub fn all() -> [MlpModel; 4] {
        [
            MlpModel::DeepSeekMoe,
            MlpModel::ArcticMoe,
            MlpModel::Mixtral8x7b,
            MlpModel::Falcon180b,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            MlpModel::DeepSeekMoe => "DeepSeek-MoE",
            MlpModel::ArcticMoe => "Arctic-MoE",
            MlpModel::Mixtral8x7b => "Mixtral-8x7B",
            MlpModel::Falcon180b => "Falcon180B",
        }
    }

    /// The `(k, n)` weight shapes of this model's FFN projections
    /// (paper Table 9).
    pub fn weight_shapes(&self) -> Vec<(usize, usize)> {
        match self {
            MlpModel::DeepSeekMoe => vec![(2048, 11008), (11008, 2048), (2048, 11008)],
            MlpModel::ArcticMoe => vec![(7168, 4864), (4864, 7168), (7168, 4864)],
            MlpModel::Mixtral8x7b => vec![(4096, 14336), (14336, 4096), (4096, 14336)],
            MlpModel::Falcon180b => vec![(14848, 74240), (74240, 14848)],
        }
    }

    /// Total weight elements across the MLP.
    pub fn total_weight_elems(&self) -> f64 {
        self.weight_shapes().iter().map(|&(k, n)| (k * n) as f64).sum()
    }
}

/// The GEMM problems of one model's MLP at a given batch size.
pub fn mlp_shapes(model: MlpModel, batch: usize) -> Vec<GemmShape> {
    model
        .weight_shapes()
        .into_iter()
        .map(|(k, n)| GemmShape::new(batch, k, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_shapes_match_paper() {
        assert_eq!(
            MlpModel::Mixtral8x7b.weight_shapes(),
            vec![(4096, 14336), (14336, 4096), (4096, 14336)]
        );
        assert_eq!(MlpModel::Falcon180b.weight_shapes().len(), 2);
        assert_eq!(MlpModel::Falcon180b.weight_shapes()[0].1, 14848 * 5);
    }

    #[test]
    fn models_are_ordered_by_mlp_size() {
        let sizes: Vec<f64> = MlpModel::all().iter().map(|m| m.total_weight_elems()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "Fig. 10 ordering violated: {sizes:?}");
        }
    }

    #[test]
    fn flops_formula() {
        let s = GemmShape::new(2, 3, 4);
        assert_eq!(s.flops(), 48.0);
        assert_eq!(s.weight_elems(), 12.0);
    }

    #[test]
    fn mlp_shapes_carry_batch() {
        let shapes = mlp_shapes(MlpModel::DeepSeekMoe, 16);
        assert_eq!(shapes.len(), 3);
        assert!(shapes.iter().all(|s| s.m == 16));
    }
}
