//! End-to-end first-token latency model (paper Table 7).
//!
//! The paper benchmarks Mixtral-8×7B first-token latency under four
//! backends. The model here composes the per-GEMM kernel costs over the
//! whole transformer and adds the two serving-stack terms the paper
//! itself calls out:
//!
//! * a fixed framework overhead (Python dispatch, routing, KV plumbing) —
//!   this dominates absolute latency and is why GPTQ's GeMV backend and
//!   MiLo measure identically at batch 1 in the paper;
//! * MARLIN's separate zero-point handling: MARLIN is a symmetric-only
//!   kernel, so serving MiLo's asymmetric quantization on it needs extra
//!   per-layer elementwise work ("we need to handle the zero-point
//!   calculations separately", §4.3.1) — the source of MiLo's ~1.2×
//!   end-to-end win.

use crate::device::Device;
use crate::kernels::{gemm_time, KernelConfig, KernelKind};
use crate::shapes::GemmShape;

/// Architecture description sufficient for the latency/memory model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Display name.
    pub name: String,
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Model dimension.
    pub d_model: usize,
    /// Expert FFN hidden dimension.
    pub ffn: usize,
    /// Routed experts per layer.
    pub n_experts: usize,
    /// Router top-k.
    pub top_k: usize,
    /// Non-layer parameters (embeddings, head), elements.
    pub other_params: u64,
}

impl ModelSpec {
    /// Mixtral-8×7B: 32 layers, d=4096, FFN=14336, 8 experts, top-2
    /// (the Table 7 subject, ~46.7B parameters).
    pub fn mixtral_8x7b() -> Self {
        Self {
            name: "Mixtral-8x7B".into(),
            n_layers: 32,
            d_model: 4096,
            ffn: 14336,
            n_experts: 8,
            top_k: 2,
            other_params: 2 * 32000 * 4096,
        }
    }

    /// Total parameter count (attention + experts + other).
    pub fn total_params(&self) -> u64 {
        let attn = 4 * self.d_model as u64 * self.d_model as u64;
        let experts = self.n_experts as u64 * 3 * self.ffn as u64 * self.d_model as u64;
        self.n_layers as u64 * (attn + experts) + self.other_params
    }

    /// Expected number of *distinct* experts activated per layer when
    /// `batch` independent tokens are routed top-k:
    /// `E[distinct] = n·(1 − (1 − k/n)^batch)`.
    pub fn expected_active_experts(&self, batch: usize) -> f64 {
        let n = self.n_experts as f64;
        let p = self.top_k as f64 / n;
        n * (1.0 - (1.0 - p).powi(batch as i32))
    }
}

/// The serving backends of paper Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Unquantized FP16 under plain PyTorch.
    PyTorchFp16,
    /// GPTQ's 3-bit GeMV backend (batch 1 only).
    Gptq3bit,
    /// MARLIN W4A16, with separate zero-point handling for asymmetric
    /// models.
    Marlin,
    /// The MiLo W3A16 backend (asymmetric, group 64).
    Milo,
}

impl Backend {
    /// Display name matching the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::PyTorchFp16 => "PyTorch",
            Backend::Gptq3bit => "GPTQ3bit Backend",
            Backend::Marlin => "MARLIN Backend",
            Backend::Milo => "MiLo Backend",
        }
    }

    /// Weight bytes per parameter under this backend (packed weights +
    /// amortized group parameters).
    fn bytes_per_param(&self) -> f64 {
        match self {
            Backend::PyTorchFp16 => 2.0,
            Backend::Gptq3bit | Backend::Milo => 3.0 / 8.0 + 4.0 / 64.0,
            Backend::Marlin => 4.0 / 8.0 + 2.0 / 128.0,
        }
    }

    fn kernel(&self) -> KernelKind {
        match self {
            Backend::PyTorchFp16 => KernelKind::Fp16,
            Backend::Gptq3bit => KernelKind::Gptq3bit,
            Backend::Marlin => KernelKind::Marlin,
            Backend::Milo => KernelKind::MiloAsym,
        }
    }
}

/// The outcome of an end-to-end latency query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum E2eResult {
    /// Predicted first-token latency in seconds.
    Latency(f64),
    /// The model weights do not fit in device memory (paper: PyTorch
    /// FP16 Mixtral needs ~90 GB on a 40 GB A100).
    OutOfMemory,
    /// The backend cannot serve this batch size (paper: GPTQ's GeMV
    /// kernel is batch-1 only).
    Unsupported,
}

impl E2eResult {
    /// The latency if the run succeeded.
    pub fn latency(&self) -> Option<f64> {
        match self {
            E2eResult::Latency(t) => Some(*t),
            _ => None,
        }
    }
}

/// Fixed serving-stack overhead per forward pass, seconds. Calibrated so
/// absolute latencies land near paper Table 7; the *relative* results
/// (who wins, OOM, unsupported cells) come from the structural model.
const FRAMEWORK_OVERHEAD: f64 = 0.096;
/// Extra per-layer cost of MARLIN's separate zero-point handling for
/// asymmetric quantization, seconds.
const MARLIN_ZP_OVERHEAD_PER_LAYER: f64 = 0.55e-3;
/// Activation/KV working-set allowance for the OOM check, bytes.
const ACTIVATION_RESERVE: u64 = 2 * (1 << 30);

/// Predicts first-token latency of `spec` on `dev` under `backend` at
/// the given batch size.
///
/// # Examples
///
/// ```
/// use milo_gpu_sim::{end_to_end, Backend, Device, E2eResult, ModelSpec};
///
/// let dev = Device::a100_40gb();
/// let spec = ModelSpec::mixtral_8x7b();
/// // The FP16 model (~95 GB) cannot be hosted at all (paper Table 7).
/// assert_eq!(end_to_end(&dev, Backend::PyTorchFp16, &spec, 1), E2eResult::OutOfMemory);
/// // The W3A16 MiLo backend serves it, ~1.2x faster than MARLIN.
/// let milo = end_to_end(&dev, Backend::Milo, &spec, 16).latency().unwrap();
/// let marlin = end_to_end(&dev, Backend::Marlin, &spec, 16).latency().unwrap();
/// assert!(marlin / milo > 1.1);
/// ```
pub fn end_to_end(dev: &Device, backend: Backend, spec: &ModelSpec, batch: usize) -> E2eResult {
    // Memory check.
    let weight_bytes = (spec.total_params() as f64 * backend.bytes_per_param()) as u64;
    if weight_bytes + ACTIVATION_RESERVE > dev.vram_bytes {
        return E2eResult::OutOfMemory;
    }

    let cfg = KernelConfig::new(backend.kernel());
    let d = spec.d_model;

    // Attention projections: 4 GEMMs of m=batch, k=n=d per layer.
    let attn_shape = GemmShape::new(batch, d, d);
    let Some(attn_time) = gemm_time(dev, &cfg, attn_shape) else {
        return E2eResult::Unsupported;
    };

    // Experts: the batch routes to E[distinct] experts, each seeing
    // batch·top_k / distinct tokens.
    let distinct = spec.expected_active_experts(batch).round().max(1.0) as usize;
    let m_expert = (batch * spec.top_k).div_ceil(distinct);
    let expert_shapes = [
        GemmShape::new(m_expert, d, spec.ffn),
        GemmShape::new(m_expert, spec.ffn, d),
        GemmShape::new(m_expert, d, spec.ffn),
    ];
    let mut expert_time = 0.0;
    for s in expert_shapes {
        let Some(t) = gemm_time(dev, &cfg, s) else {
            return E2eResult::Unsupported;
        };
        expert_time += t;
    }

    let mut per_layer = 4.0 * attn_time + distinct as f64 * expert_time;
    if backend == Backend::Marlin {
        per_layer += MARLIN_ZP_OVERHEAD_PER_LAYER;
    }
    E2eResult::Latency(FRAMEWORK_OVERHEAD + spec.n_layers as f64 * per_layer)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::a100_40gb()
    }

    #[test]
    fn mixtral_params_are_about_47b() {
        let p = ModelSpec::mixtral_8x7b().total_params();
        assert!(p > 45e9 as u64 && p < 49e9 as u64, "params {p}");
    }

    #[test]
    fn pytorch_fp16_goes_oom() {
        // Paper Table 7: the FP16 model (~90 GB) cannot fit a 40 GB A100.
        let spec = ModelSpec::mixtral_8x7b();
        for batch in [1, 16, 32] {
            assert_eq!(end_to_end(&dev(), Backend::PyTorchFp16, &spec, batch), E2eResult::OutOfMemory);
        }
    }

    #[test]
    fn gptq_backend_is_batch1_only() {
        let spec = ModelSpec::mixtral_8x7b();
        assert!(matches!(
            end_to_end(&dev(), Backend::Gptq3bit, &spec, 1),
            E2eResult::Latency(_)
        ));
        assert_eq!(end_to_end(&dev(), Backend::Gptq3bit, &spec, 16), E2eResult::Unsupported);
    }

    #[test]
    fn gptq_and_milo_are_close_at_batch1() {
        // Paper: both measure 0.102 s.
        let spec = ModelSpec::mixtral_8x7b();
        let milo = end_to_end(&dev(), Backend::Milo, &spec, 1).latency().unwrap();
        let gptq = end_to_end(&dev(), Backend::Gptq3bit, &spec, 1).latency().unwrap();
        assert!((milo - gptq).abs() / milo < 0.05, "milo {milo} vs gptq {gptq}");
    }

    #[test]
    fn milo_beats_marlin_at_every_batch() {
        // Paper: 1.2× at batch 1, ~1.26× at larger batches.
        let spec = ModelSpec::mixtral_8x7b();
        for batch in [1usize, 16, 32] {
            let milo = end_to_end(&dev(), Backend::Milo, &spec, batch).latency().unwrap();
            let marlin = end_to_end(&dev(), Backend::Marlin, &spec, batch).latency().unwrap();
            let speedup = marlin / milo;
            assert!(
                speedup > 1.1 && speedup < 1.45,
                "batch {batch}: speedup {speedup}"
            );
        }
    }

    #[test]
    fn latency_grows_mildly_with_batch() {
        // Paper: 0.102 → 0.112 → 0.113 for MiLo.
        let spec = ModelSpec::mixtral_8x7b();
        let t1 = end_to_end(&dev(), Backend::Milo, &spec, 1).latency().unwrap();
        let t16 = end_to_end(&dev(), Backend::Milo, &spec, 16).latency().unwrap();
        let t32 = end_to_end(&dev(), Backend::Milo, &spec, 32).latency().unwrap();
        assert!(t16 >= t1, "t16 {t16} vs t1 {t1}");
        // bs 16 → 32 may shave a split-k barrier; allow 3% slack.
        assert!(t32 >= t16 * 0.97, "t32 {t32} vs t16 {t16}");
        assert!(t32 / t1 < 1.4, "batch-32 latency should stay within 40% of batch-1");
    }

    #[test]
    fn absolute_latency_near_paper_scale() {
        // Not a strict reproduction target, but the calibration should
        // put MiLo batch-1 in the right decade (paper: 0.102 s).
        let spec = ModelSpec::mixtral_8x7b();
        let t = end_to_end(&dev(), Backend::Milo, &spec, 1).latency().unwrap();
        assert!(t > 0.05 && t < 0.25, "latency {t}");
    }

    #[test]
    fn expected_active_experts_saturates() {
        let spec = ModelSpec::mixtral_8x7b();
        assert!((spec.expected_active_experts(1) - 2.0).abs() < 1e-6);
        assert!(spec.expected_active_experts(16) > 7.5);
        assert!(spec.expected_active_experts(1000) <= 8.0 + 1e-6);
    }
}
