//! Device constants for the performance model.

/// An accelerator described by the handful of parameters the roofline
/// model needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Effective HBM bandwidth in bytes/second (peak × streaming
    /// efficiency).
    pub mem_bw: f64,
    /// Effective FP16 Tensor-Core throughput in FLOP/s.
    pub tc_flops: f64,
    /// Effective CUDA-core (scalar FP) throughput in FLOP/s, used for
    /// de-quantization work.
    pub cuda_flops: f64,
    /// Fixed cost of launching one kernel, seconds.
    pub launch_overhead: f64,
    /// Cost of one inter-threadblock global reduction (split-k
    /// synchronization), seconds.
    pub sync_cost: f64,
    /// Number of streaming multiprocessors (used to decide when split-k
    /// is needed to fill the machine).
    pub sm_count: usize,
    /// Total device memory in bytes (for out-of-memory checks).
    pub vram_bytes: u64,
}

impl Device {
    /// An NVIDIA A100-40GB with standard sustained-efficiency factors:
    /// 1555 GB/s HBM at 85%, 312 TFLOPS FP16 Tensor Core at 70%,
    /// 19.5 TFLOPS FP32 CUDA cores at 50%.
    pub fn a100_40gb() -> Self {
        Self {
            mem_bw: 1555e9 * 0.85,
            tc_flops: 312e12 * 0.70,
            cuda_flops: 19.5e12 * 0.50,
            launch_overhead: 5e-6,
            sync_cost: 3e-6,
            sm_count: 108,
            vram_bytes: 40 * (1u64 << 30),
        }
    }

    /// An NVIDIA A100-80GB: same compute as the 40 GB part, ~2039 GB/s
    /// HBM2e, double the memory. (The paper evaluates on the 40 GB part;
    /// this preset lets the latency experiments ask "would FP16 fit?")
    pub fn a100_80gb() -> Self {
        Self {
            mem_bw: 2039e9 * 0.85,
            vram_bytes: 80 * (1u64 << 30),
            ..Self::a100_40gb()
        }
    }

    /// An NVIDIA H100-SXM: ~3350 GB/s HBM3, ~990 TFLOPS FP16 Tensor Core
    /// (dense), 132 SMs. Useful for projecting the paper's kernels onto a
    /// newer part — the INT3-vs-INT4 memory argument is bandwidth-ratio
    /// invariant.
    pub fn h100_sxm() -> Self {
        Self {
            mem_bw: 3350e9 * 0.85,
            tc_flops: 990e12 * 0.70,
            cuda_flops: 67e12 * 0.50,
            launch_overhead: 5e-6,
            sync_cost: 3e-6,
            sm_count: 132,
            vram_bytes: 80 * (1u64 << 30),
        }
    }

    /// Arithmetic-intensity crossover (FLOP/byte) at which this device
    /// moves from memory- to compute-bound.
    pub fn ridge_point(&self) -> f64 {
        self.tc_flops / self.mem_bw
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::a100_40gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_constants_are_sane() {
        let d = Device::a100_40gb();
        assert!(d.mem_bw > 1e12 && d.mem_bw < 1.6e12);
        assert!(d.tc_flops > 2e14 && d.tc_flops < 3.2e14);
        assert!(d.vram_bytes == 40 * (1u64 << 30));
    }

    #[test]
    fn ridge_point_is_in_the_hundreds() {
        // A100 FP16 ridge ≈ 165 FLOP/byte at effective rates.
        let r = Device::a100_40gb().ridge_point();
        assert!(r > 100.0 && r < 250.0, "ridge {r}");
    }

    #[test]
    fn bigger_parts_have_more_of_everything() {
        let a40 = Device::a100_40gb();
        let a80 = Device::a100_80gb();
        let h100 = Device::h100_sxm();
        assert!(a80.mem_bw > a40.mem_bw);
        assert!(a80.vram_bytes > a40.vram_bytes);
        assert_eq!(a80.tc_flops, a40.tc_flops);
        assert!(h100.tc_flops > a80.tc_flops);
        assert!(h100.mem_bw > a80.mem_bw);
        // The compute/bandwidth ratio grows generation over generation,
        // making low-bit weights *more* valuable, not less.
        assert!(h100.ridge_point() > a40.ridge_point());
    }

    #[test]
    fn fp16_mixtral_fits_the_80gb_less_badly() {
        use crate::e2e::{end_to_end, Backend, E2eResult, ModelSpec};
        let spec = ModelSpec::mixtral_8x7b();
        // ~95 GB of FP16 weights: still OOM even on the 80 GB part —
        // quantization is required, not merely helpful.
        assert_eq!(
            end_to_end(&Device::a100_80gb(), Backend::PyTorchFp16, &spec, 1),
            E2eResult::OutOfMemory
        );
        // But the INT3 model fits both parts.
        assert!(end_to_end(&Device::a100_80gb(), Backend::Milo, &spec, 1)
            .latency()
            .is_some());
    }
}
