//! Zero-dependency telemetry core for the MiLo workspace.
//!
//! The paper's claims are measurements — HQQ convergence under the
//! Eq. 13–14 stop rule, expert activation skew (Fig. 3), W3A16 kernel
//! latency (§3.3) — and this crate is how the running system exposes
//! them: lock-free-ish counters and gauges on `std::sync::atomic`,
//! fixed-bucket latency histograms with p50/p95/p99, RAII spans with
//! stable per-thread ids, and two sinks — a human-readable snapshot
//! table and Chrome `chrome://tracing` trace-event JSON.
//!
//! # Gating
//!
//! Everything is gated on `MILO_TELEMETRY` (read once, overridable at
//! runtime with [`set_level`]):
//!
//! * unset / `0` / `off` — **off**: every instrumentation call is a
//!   single relaxed atomic load followed by an early return, and all
//!   instrumented numeric paths are bit-identical to their
//!   un-instrumented form (telemetry never touches data values);
//! * `1` / `on` / `metrics` — counters, gauges, and histograms record;
//! * `trace` / `2` — additionally, spans and structured events are
//!   appended to the in-memory trace buffer for Chrome-trace export.
//!
//! # Naming
//!
//! Metric keys are `name{label=value,label2=value2}` with labels sorted
//! by construction ([`metric_key`]). Conventions: `*_ns` counters
//! accumulate nanoseconds; histograms carry an explicit [`Unit`].
//!
//! This crate is the bottom of the workspace dependency graph: it
//! depends on nothing (std only) so every other crate — including
//! `milo-tensor`'s thread pool — can report into it.

#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use hist::{HistSnapshot, Histogram, Unit};
pub use registry::{metric_key, MetricSnapshot};
pub use span::{span, Span};
pub use trace::{validate_trace, TraceCheck};

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// How much telemetry is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No recording; instrumentation is a relaxed load + early return.
    Off = 0,
    /// Counters, gauges, and histograms record.
    Metrics = 1,
    /// Metrics plus the trace-event buffer (Chrome-trace export).
    Trace = 2,
}

/// Sentinel for "environment not read yet".
const LEVEL_UNINIT: u8 = 0xFF;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

/// Parses a `MILO_TELEMETRY` value.
fn parse_level(v: &str) -> Level {
    match v.trim().to_ascii_lowercase().as_str() {
        "1" | "on" | "metrics" | "true" => Level::Metrics,
        "2" | "trace" => Level::Trace,
        _ => Level::Off,
    }
}

/// The current telemetry level: `MILO_TELEMETRY` on first call, or
/// whatever [`set_level`] last installed.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Metrics,
        2 => Level::Trace,
        _ => {
            let from_env = std::env::var("MILO_TELEMETRY")
                .map(|v| parse_level(&v))
                .unwrap_or(Level::Off);
            // A concurrent set_level wins over the env default.
            let _ = LEVEL.compare_exchange(
                LEVEL_UNINIT,
                from_env as u8,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            level()
        }
    }
}

/// Overrides the telemetry level at runtime (CLI `--trace-out`, tests).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether any telemetry (metrics or trace) is recording. This is the
/// guard every hot path checks first.
#[inline]
pub fn enabled() -> bool {
    level() >= Level::Metrics
}

/// Whether the trace-event buffer is recording.
#[inline]
pub fn tracing() -> bool {
    level() == Level::Trace
}

/// The process-wide time origin all trace timestamps are relative to.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process telemetry epoch.
pub(crate) fn ts_micros(at: Instant) -> f64 {
    at.duration_since(epoch()).as_secs_f64() * 1e6
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// A small, stable, per-thread numeric id (1, 2, …) for trace events.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Increments the counter registered under `key` by 1.
pub fn counter_inc(key: &str) {
    counter_add(key, 1);
}

/// Adds `v` to the counter registered under `key`. No-op when telemetry
/// is off.
pub fn counter_add(key: &str, v: u64) {
    if !enabled() {
        return;
    }
    registry::counter(key).add(v);
}

/// Current value of the counter under `key` (0 if never touched).
pub fn counter_get(key: &str) -> u64 {
    registry::counter_peek(key).unwrap_or(0)
}

/// Sets the gauge registered under `key`. No-op when telemetry is off.
pub fn gauge_set(key: &str, v: f64) {
    if !enabled() {
        return;
    }
    registry::gauge(key).set(v);
}

/// Records `v` into the histogram registered under `key`. No-op when
/// telemetry is off.
pub fn hist_record(key: &str, v: u64, unit: Unit) {
    if !enabled() {
        return;
    }
    registry::histogram(key, unit).record(v);
}

/// Clears every metric and the trace buffer, and re-reads the level on
/// next use. Meant for tests and for CLI commands that want a run-scoped
/// view.
pub fn reset() {
    registry::reset();
    trace::clear();
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    reset();
    set_level(Level::Off);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_level_makes_recording_a_noop() {
        let _g = test_guard();
        set_level(Level::Off);
        counter_inc("t.noop");
        gauge_set("t.noop_gauge", 3.0);
        hist_record("t.noop_hist", 5, Unit::Nanos);
        assert_eq!(counter_get("t.noop"), 0);
        assert!(registry::snapshot().is_empty());
    }

    #[test]
    fn metrics_level_records_counters() {
        let _g = test_guard();
        set_level(Level::Metrics);
        counter_inc("t.hits");
        counter_add("t.hits", 4);
        assert_eq!(counter_get("t.hits"), 5);
        assert!(!tracing());
    }

    #[test]
    fn parse_level_accepts_documented_values() {
        assert_eq!(parse_level("0"), Level::Off);
        assert_eq!(parse_level("off"), Level::Off);
        assert_eq!(parse_level("1"), Level::Metrics);
        assert_eq!(parse_level("on"), Level::Metrics);
        assert_eq!(parse_level("metrics"), Level::Metrics);
        assert_eq!(parse_level("trace"), Level::Trace);
        assert_eq!(parse_level("2"), Level::Trace);
        assert_eq!(parse_level("garbage"), Level::Off);
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let a = thread_id();
        assert_eq!(a, thread_id());
        let b = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, b);
    }
}
