//! Fixed-bucket log-linear histograms with percentile estimation.
//!
//! The bucket layout is the HdrHistogram-style compromise: values
//! `0..16` get exact buckets, and every power-of-two range above that is
//! split into 16 linear sub-buckets, so the relative quantization error
//! of any recorded value is at most 1/16 ≈ 6.25%. With 64-bit values
//! that is 976 buckets — one cache-friendly `AtomicU64` array, no
//! allocation on the record path, and safe concurrent recording from
//! pool worker threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Exact buckets for values below 16.
const EXACT: usize = 16;
/// Linear sub-buckets per power-of-two range.
const SUBS: usize = 16;
/// Total bucket count: 16 exact + 16 per exponent 4..=63.
pub const N_BUCKETS: usize = EXACT + (64 - 4) * SUBS;

/// What a histogram's values denominate, used only for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Nanoseconds (spans, latency splits).
    Nanos,
    /// Millionths of a dimensionless quantity (residual norms, entropy
    /// in nats ×1e6).
    Micro,
    /// Plain counts.
    Count,
}

/// Index of the bucket `v` falls into.
fn bucket_index(v: u64) -> usize {
    if v < EXACT as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (exp - 4)) & 0xF) as usize;
    EXACT + (exp - 4) * SUBS + sub
}

/// Representative (midpoint) value of bucket `idx`.
fn bucket_value(idx: usize) -> u64 {
    if idx < EXACT {
        return idx as u64;
    }
    let exp = 4 + (idx - EXACT) / SUBS;
    let sub = ((idx - EXACT) % SUBS) as u64;
    let width = 1u64 << (exp - 4);
    let lower = (1u64 << exp) + sub * width;
    lower + width / 2
}

/// A concurrent fixed-bucket histogram.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    unit: Unit,
}

impl Histogram {
    /// Creates an empty histogram denominated in `unit`.
    pub fn new(unit: Unit) -> Self {
        Self {
            counts: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            unit,
        }
    }

    /// Records one observation. Lock-free; relative bucket error ≤ 6.25%.
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The display unit.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// The `q`-th percentile (`0.0 ..= 100.0`) as the representative
    /// value of the bucket holding that rank, clamped to the observed
    /// min/max so an almost-empty histogram does not report a bucket
    /// midpoint outside the data. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let mut value = self.max.load(Ordering::Relaxed);
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                value = bucket_value(i);
                break;
            }
        }
        value
            .clamp(self.min.load(Ordering::Relaxed), self.max.load(Ordering::Relaxed))
    }

    /// Mean of the recorded values (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        self.sum.load(Ordering::Relaxed) as f64 / total as f64
    }

    /// A point-in-time copy of the summary statistics.
    pub fn snapshot(&self) -> HistSnapshot {
        let count = self.count();
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            mean: self.mean(),
            unit: self.unit,
        }
    }
}

/// Summary statistics of a [`Histogram`] at a point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact mean.
    pub mean: f64,
    /// Display unit.
    pub unit: Unit,
}

impl HistSnapshot {
    /// Formats a raw value in this snapshot's unit for humans
    /// (`1.234ms`, `0.56`, `12`).
    pub fn format(&self, v: u64) -> String {
        format_value(v, self.unit)
    }
}

/// Formats `v` according to `unit`.
pub fn format_value(v: u64, unit: Unit) -> String {
    match unit {
        Unit::Nanos => {
            let ns = v as f64;
            if ns >= 1e9 {
                format!("{:.2}s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.2}ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.1}us", ns / 1e3)
            } else {
                format!("{ns:.0}ns")
            }
        }
        Unit::Micro => format!("{:.4}", v as f64 / 1e6),
        Unit::Count => v.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, 10_000_000_000] {
            let rep = bucket_value(bucket_index(v));
            let err = (rep as f64 - v as f64).abs() / (v.max(1) as f64);
            assert!(err <= 0.0625 + 1e-9, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn exact_buckets_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let h = Histogram::new(Unit::Nanos);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.07, "p50={p50}");
        assert!((p95 as f64 - 950.0).abs() / 950.0 < 0.07, "p95={p95}");
        assert!((p99 as f64 - 990.0).abs() / 990.0 < 0.07, "p99={p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn single_value_percentiles_collapse_to_it() {
        let h = Histogram::new(Unit::Count);
        h.record(42);
        for q in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile(q), 42);
        }
        let s = h.snapshot();
        assert_eq!((s.min, s.max, s.count), (42, 42, 1));
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new(Unit::Nanos);
        let s = h.snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50), (0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new(Unit::Nanos);
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn formatting_by_unit() {
        assert_eq!(format_value(500, Unit::Nanos), "500ns");
        assert_eq!(format_value(1_500, Unit::Nanos), "1.5us");
        assert_eq!(format_value(2_500_000, Unit::Nanos), "2.50ms");
        assert_eq!(format_value(3_000_000_000, Unit::Nanos), "3.00s");
        assert_eq!(format_value(1_500_000, Unit::Micro), "1.5000");
        assert_eq!(format_value(7, Unit::Count), "7");
    }
}
