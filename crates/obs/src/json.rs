//! A minimal recursive-descent JSON parser — just enough to validate
//! the trace files this workspace itself emits (and any other tool
//! output `milo-cli` needs to inspect) without an external crate.
//!
//! Accepts standard JSON: objects, arrays, strings with escapes
//! (including `\uXXXX` with surrogate pairs), numbers, booleans, null.
//! Duplicate object keys keep the last value on lookup-by-first match
//! semantics of [`JsonValue::get`] (first match wins, consistent with
//! how the emitters in this workspace never produce duplicates).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// A message naming the byte offset and the problem.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos.saturating_sub(1)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(fields)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            let code =
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code).ok_or("invalid surrogate pair")?
                        } else {
                            char::from_u32(hi).ok_or("invalid \\u escape")?
                        };
                        out.push(c);
                    }
                    _ => return Err(format!("invalid escape at byte {}", self.pos)),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let len = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(format!("invalid UTF-8 at byte {}", self.pos)),
                        };
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err("truncated UTF-8 sequence".into());
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or("truncated \\u escape")?;
            let d = (c as char).to_digit(16).ok_or("non-hex \\u escape")?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number bytes".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Number(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"e"}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(doc.get("c").unwrap().get("d").unwrap().as_str(), Some("e"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let doc = parse(r#""a\n\"b\"\u00e9\ud83d\ude00 ü""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\n\"b\"é😀 ü"));
    }

    #[test]
    fn whitespace_tolerated() {
        let doc = parse("  {\n\t\"k\" :  [ 1 , 2 ]\r}  ").unwrap();
        assert_eq!(doc.get("k").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1.2.3", "\"\\x\"",
            "\"unterminated", "{} trailing", "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn roundtrips_bench_baseline_shape() {
        let doc = parse(
            r#"{"baseline":{"suite":"BENCH","results":[{"name":"x","median_ns":1.5}]},"quick":false}"#,
        )
        .unwrap();
        let results = doc.get("baseline").unwrap().get("results").unwrap();
        assert_eq!(
            results.as_array().unwrap()[0].get("median_ns").unwrap().as_number(),
            Some(1.5)
        );
    }
}
