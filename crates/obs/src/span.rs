//! RAII timing spans.
//!
//! A span measures the wall-clock time between its creation and its
//! drop. On drop it records the duration into the histogram registered
//! under the span's name (unit: nanoseconds), and — at trace level —
//! appends a Chrome "complete" event carrying the span's thread id, so
//! nested spans render as a flame graph in `chrome://tracing`.

use crate::hist::Unit;
use crate::{registry, trace};
use std::time::Instant;

/// An active span; see [`span`].
#[derive(Debug)]
pub struct Span {
    /// `None` when telemetry was off at creation — drop is then a no-op.
    start: Option<Instant>,
    name: String,
}

/// Opens a span. The name closure is only invoked when telemetry is
/// enabled, so callers can interpolate labels without paying the
/// formatting cost on the disabled path:
///
/// ```
/// let _span = milo_obs::span(|| format!("engine.layer{{layer={}}}", 3));
/// ```
pub fn span(name: impl FnOnce() -> String) -> Span {
    if !crate::enabled() {
        return Span { start: None, name: String::new() };
    }
    Span { start: Some(Instant::now()), name: name() }
}

impl Span {
    /// The span's name (empty for a disabled span).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else { return };
        let dur = start.elapsed();
        let ns = dur.as_nanos() as u64;
        // Record even if the level dropped mid-span: the span was opened
        // under an enabled level and a half-recorded run is confusing.
        registry::histogram(&self.name, Unit::Nanos).record(ns);
        if crate::tracing() {
            trace::push_complete(
                std::mem::take(&mut self.name),
                crate::ts_micros(start),
                dur.as_secs_f64() * 1e6,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricSnapshot;
    use crate::Level;

    #[test]
    fn disabled_span_records_nothing() {
        let _g = crate::test_guard();
        crate::set_level(Level::Off);
        {
            let s = span(|| "t.span.off".into());
            assert!(!s.is_recording());
        }
        assert!(registry::snapshot().is_empty());
    }

    #[test]
    fn span_records_histogram_at_metrics_level() {
        let _g = crate::test_guard();
        crate::set_level(Level::Metrics);
        {
            let s = span(|| "t.span.on".into());
            assert!(s.is_recording());
            assert_eq!(s.name(), "t.span.on");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = registry::snapshot();
        let Some((_, MetricSnapshot::Histogram(h))) =
            snap.iter().find(|(k, _)| k == "t.span.on")
        else {
            panic!("span histogram missing: {snap:?}");
        };
        assert_eq!(h.count, 1);
        assert!(h.p50 >= 500_000, "slept ≥1ms, recorded {}ns", h.p50);
        // Metrics level does not feed the trace buffer.
        assert_eq!(trace::event_count(), 0);
    }

    #[test]
    fn span_feeds_trace_buffer_at_trace_level() {
        let _g = crate::test_guard();
        crate::set_level(Level::Trace);
        drop(span(|| "t.span.traced".into()));
        assert_eq!(trace::event_count(), 1);
    }
}
