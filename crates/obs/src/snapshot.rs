//! Human-readable rendering of the metric registry — the sink behind
//! `milo-cli stats`.
//!
//! The output groups metrics by kind: counters first (sorted by key),
//! then gauges, then histograms as a fixed-width table with count,
//! p50/p95/p99, mean, and min/max, each formatted in the histogram's
//! unit.

use crate::hist::format_value;
use crate::registry::{self, MetricSnapshot};

/// Renders every registered metric as a human-readable report. Returns
/// a note instead of an empty string when nothing was recorded, so CLI
/// users see *why* the table is empty.
pub fn render() -> String {
    render_snapshot(&registry::snapshot())
}

/// Renders the metrics whose key starts with `prefix`.
pub fn render_prefixed(prefix: &str) -> String {
    render_snapshot(&registry::snapshot_prefixed(prefix))
}

fn render_snapshot(snap: &[(String, MetricSnapshot)]) -> String {
    if snap.is_empty() {
        return "no telemetry recorded (is MILO_TELEMETRY set?)\n".to_string();
    }

    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hists = Vec::new();
    for (k, m) in snap {
        match m {
            MetricSnapshot::Counter(v) => counters.push((k.as_str(), *v)),
            MetricSnapshot::Gauge(v) => gauges.push((k.as_str(), *v)),
            MetricSnapshot::Histogram(h) => hists.push((k.as_str(), *h)),
        }
    }

    let mut out = String::new();
    if !counters.is_empty() {
        out.push_str("== counters ==\n");
        let w = counters.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, v) in &counters {
            out.push_str(&format!("  {k:<w$}  {v}\n"));
        }
    }
    if !gauges.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("== gauges ==\n");
        let w = gauges.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, v) in &gauges {
            out.push_str(&format!("  {k:<w$}  {v:.4}\n"));
        }
    }
    if !hists.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("== histograms ==\n");
        let w = hists.iter().map(|(k, _)| k.len()).max().unwrap_or(0).max(4);
        out.push_str(&format!(
            "  {:<w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>21}\n",
            "name", "count", "p50", "p95", "p99", "mean", "min..max"
        ));
        for (k, h) in &hists {
            let mean = format_value(h.mean.round() as u64, h.unit);
            out.push_str(&format!(
                "  {:<w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>21}\n",
                k,
                h.count,
                h.format(h.p50),
                h.format(h.p95),
                h.format(h.p99),
                mean,
                format!("{}..{}", h.format(h.min), h.format(h.max)),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Unit;

    #[test]
    fn empty_registry_renders_a_hint() {
        let _g = crate::test_guard();
        assert!(render().contains("MILO_TELEMETRY"));
    }

    #[test]
    fn renders_all_three_sections() {
        let _g = crate::test_guard();
        registry::counter("t.render.hits").add(12);
        registry::gauge("t.render.skew").set(1.25);
        let h = registry::histogram("t.render.lat", Unit::Nanos);
        for v in [1_000u64, 2_000, 3_000] {
            h.record(v);
        }
        let text = render();
        assert!(text.contains("== counters =="), "{text}");
        assert!(text.contains("t.render.hits"), "{text}");
        assert!(text.contains("12"), "{text}");
        assert!(text.contains("== gauges =="), "{text}");
        assert!(text.contains("1.2500"), "{text}");
        assert!(text.contains("== histograms =="), "{text}");
        assert!(text.contains("t.render.lat"), "{text}");
        assert!(text.contains("p95"), "{text}");
    }

    #[test]
    fn prefixed_render_filters() {
        let _g = crate::test_guard();
        registry::counter("t.pfx.a").add(1);
        registry::counter("t.other.b").add(1);
        let text = render_prefixed("t.pfx.");
        assert!(text.contains("t.pfx.a"), "{text}");
        assert!(!text.contains("t.other.b"), "{text}");
    }
}
