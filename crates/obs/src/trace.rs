//! The Chrome trace-event buffer, its JSON export, and the validator
//! behind `milo-cli trace-check`.
//!
//! Events follow the Trace Event Format understood by
//! `chrome://tracing` / Perfetto: "complete" (`ph: "X"`) events for
//! spans, "instant" (`ph: "i"`) events for structured one-offs like
//! expert quarantines, and "counter" (`ph: "C"`) events for numeric
//! series such as the per-iteration HQQ residual norm. Timestamps are
//! microseconds since the process telemetry epoch; export sorts by
//! timestamp so consumers (and the validator) see a monotonic stream.

use crate::json::{self, JsonValue};
use std::sync::{Mutex, OnceLock};

/// One argument attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A numeric argument (counter series values chart in Chrome).
    Num(f64),
    /// A string argument.
    Str(String),
}

/// One buffered trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (span or event key).
    pub name: String,
    /// Chrome phase: `X` complete, `i` instant, `C` counter.
    pub ph: char,
    /// Microseconds since the telemetry epoch.
    pub ts: f64,
    /// Duration in microseconds (complete events only).
    pub dur: f64,
    /// Recording thread's stable id.
    pub tid: u64,
    /// Structured arguments.
    pub args: Vec<(String, ArgValue)>,
}

fn buffer() -> &'static Mutex<Vec<TraceEvent>> {
    static BUFFER: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    BUFFER.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock() -> std::sync::MutexGuard<'static, Vec<TraceEvent>> {
    buffer().lock().unwrap_or_else(|p| p.into_inner())
}

/// Appends a completed span event (called by [`crate::Span`] on drop).
pub fn push_complete(name: String, ts: f64, dur: f64) {
    lock().push(TraceEvent {
        name,
        ph: 'X',
        ts,
        dur,
        tid: crate::thread_id(),
        args: Vec::new(),
    });
}

/// Appends a structured instant event (e.g. an expert quarantine) with
/// the given arguments. No-op below trace level.
pub fn push_instant(name: &str, args: &[(&str, ArgValue)]) {
    if !crate::tracing() {
        return;
    }
    lock().push(TraceEvent {
        name: name.to_string(),
        ph: 'i',
        ts: crate::ts_micros(std::time::Instant::now()),
        dur: 0.0,
        tid: crate::thread_id(),
        args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
    });
}

/// Appends a counter-series sample (e.g. the per-iteration residual
/// norm). No-op below trace level.
pub fn push_counter(name: &str, value: f64) {
    if !crate::tracing() {
        return;
    }
    lock().push(TraceEvent {
        name: name.to_string(),
        ph: 'C',
        ts: crate::ts_micros(std::time::Instant::now()),
        dur: 0.0,
        tid: crate::thread_id(),
        args: vec![("value".to_string(), ArgValue::Num(value))],
    });
}

/// Number of buffered events.
pub fn event_count() -> usize {
    lock().len()
}

/// Clears the buffer.
pub fn clear() {
    lock().clear();
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_event(e: &TraceEvent) -> String {
    let mut fields = vec![
        format!("\"name\":\"{}\"", escape(&e.name)),
        "\"cat\":\"milo\"".to_string(),
        format!("\"ph\":\"{}\"", e.ph),
        format!("\"ts\":{:.3}", e.ts),
        "\"pid\":1".to_string(),
        format!("\"tid\":{}", e.tid),
    ];
    if e.ph == 'X' {
        fields.insert(4, format!("\"dur\":{:.3}", e.dur));
    }
    if e.ph == 'i' {
        fields.push("\"s\":\"t\"".to_string());
    }
    if !e.args.is_empty() {
        let args: Vec<String> = e
            .args
            .iter()
            .map(|(k, v)| match v {
                ArgValue::Num(n) => format!("\"{}\":{}", escape(k), fmt_num(*n)),
                ArgValue::Str(s) => format!("\"{}\":\"{}\"", escape(k), escape(s)),
            })
            .collect();
        fields.push(format!("\"args\":{{{}}}", args.join(",")));
    }
    format!("{{{}}}", fields.join(","))
}

fn fmt_num(n: f64) -> String {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            format!("{}", n as i64)
        } else {
            format!("{n}")
        }
    } else {
        "null".to_string()
    }
}

/// Renders the whole buffer as Chrome trace-event JSON, sorted by
/// timestamp (monotonic by construction for the validator and stable
/// for diffs).
pub fn export_chrome() -> String {
    let mut events = lock().clone();
    events.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    let body: Vec<String> = events.iter().map(render_event).collect();
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"producer\":\"milo-obs\"}}}}\n",
        body.join(",\n")
    )
}

/// Summary returned by [`validate_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events.
    pub events: usize,
    /// Complete (`X`) span events.
    pub spans: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Counter (`C`) samples.
    pub counters: usize,
}

/// Validates Chrome trace-event JSON: well-formed, a non-empty
/// `traceEvents` array, every event carrying a `name`, a known `ph`, a
/// finite non-negative `ts` (non-decreasing across the array) and — for
/// complete events — a finite non-negative `dur`; and, for every prefix
/// in `required_spans`, at least one complete event whose name starts
/// with it (the "≥1 span per instrumented stage" check).
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_trace(text: &str, required_spans: &[&str]) -> Result<TraceCheck, String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }

    let mut check = TraceCheck { events: events.len(), spans: 0, instants: 0, counters: 0 };
    let mut last_ts = f64::NEG_INFINITY;
    let mut span_names: Vec<&str> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing ph"))?;
        let ts = e
            .get("ts")
            .and_then(JsonValue::as_number)
            .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i} ({name}): bad ts {ts}"));
        }
        if ts < last_ts {
            return Err(format!(
                "event {i} ({name}): ts {ts} goes backwards (previous {last_ts})"
            ));
        }
        last_ts = ts;
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(JsonValue::as_number)
                    .ok_or_else(|| format!("event {i} ({name}): complete event missing dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i} ({name}): bad dur {dur}"));
                }
                check.spans += 1;
                span_names.push(name);
            }
            "i" => check.instants += 1,
            "C" => check.counters += 1,
            other => return Err(format!("event {i} ({name}): unknown ph {other:?}")),
        }
    }

    for prefix in required_spans {
        if !span_names.iter().any(|n| n.starts_with(prefix)) {
            return Err(format!("no span named {prefix}* in trace"));
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    #[test]
    fn export_roundtrips_through_the_validator() {
        let _g = crate::test_guard();
        crate::set_level(Level::Trace);
        drop(crate::span(|| "stage.alpha".into()));
        drop(crate::span(|| "stage.beta{layer=0}".into()));
        push_instant("evt.quarantine", &[
            ("layer", ArgValue::Num(0.0)),
            ("reason", ArgValue::Str("non-finite \"output\"".into())),
        ]);
        push_counter("series.eps", 0.125);
        let json = export_chrome();
        let check = validate_trace(&json, &["stage.alpha", "stage.beta"]).unwrap();
        assert_eq!(check.events, 4);
        assert_eq!(check.spans, 2);
        assert_eq!(check.instants, 1);
        assert_eq!(check.counters, 1);
    }

    #[test]
    fn validator_rejects_missing_required_span() {
        let _g = crate::test_guard();
        crate::set_level(Level::Trace);
        drop(crate::span(|| "stage.alpha".into()));
        let json = export_chrome();
        let err = validate_trace(&json, &["stage.missing"]).unwrap_err();
        assert!(err.contains("stage.missing"), "{err}");
    }

    #[test]
    fn validator_rejects_garbage_and_structural_faults() {
        assert!(validate_trace("not json", &[]).is_err());
        assert!(validate_trace("{}", &[]).is_err());
        assert!(validate_trace("{\"traceEvents\":[]}", &[]).is_err());
        assert!(validate_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}", &[]).is_err());
        // Backwards timestamps.
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":5.0,\"dur\":1.0,\"pid\":1,\"tid\":1},\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":2.0,\"dur\":1.0,\"pid\":1,\"tid\":1}]}";
        let err = validate_trace(bad, &[]).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn below_trace_level_event_pushes_are_noops() {
        let _g = crate::test_guard();
        crate::set_level(Level::Metrics);
        push_instant("evt.x", &[]);
        push_counter("series.x", 1.0);
        assert_eq!(event_count(), 0);
    }
}
