//! The global metric registry: `key → counter | gauge | histogram`.
//!
//! The registry is a single mutex-guarded sorted map. Lookups take the
//! lock; the returned `Arc` handles record lock-free, so hot paths that
//! care batch their updates (e.g. one `counter_add` per expert per
//! layer pass rather than one per token). Keys follow the
//! `name{label=value,…}` convention built by [`metric_key`].

use crate::hist::{HistSnapshot, Histogram, Unit};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge storing an `f64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time copy of one metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistSnapshot),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, Metric>> {
    registry().lock().unwrap_or_else(|p| p.into_inner())
}

/// Builds a `name{label=value,…}` key. With no labels the name is used
/// verbatim.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", inner.join(","))
}

/// The counter registered under `key`, created on first use. A key
/// already holding a different metric kind is replaced (instrumentation
/// is workspace-internal; mixed kinds indicate a bug, and replacing is
/// more useful than panicking in a telemetry layer).
pub fn counter(key: &str) -> Arc<Counter> {
    let mut map = lock();
    if let Some(Metric::Counter(c)) = map.get(key) {
        return c.clone();
    }
    let c = Arc::new(Counter::default());
    map.insert(key.to_string(), Metric::Counter(c.clone()));
    c
}

/// The counter's current value without creating it.
pub fn counter_peek(key: &str) -> Option<u64> {
    match lock().get(key) {
        Some(Metric::Counter(c)) => Some(c.get()),
        _ => None,
    }
}

/// The gauge registered under `key`, created on first use.
pub fn gauge(key: &str) -> Arc<Gauge> {
    let mut map = lock();
    if let Some(Metric::Gauge(g)) = map.get(key) {
        return g.clone();
    }
    let g = Arc::new(Gauge::default());
    map.insert(key.to_string(), Metric::Gauge(g.clone()));
    g
}

/// The histogram registered under `key`, created on first use with
/// `unit` (an existing histogram keeps its original unit).
pub fn histogram(key: &str, unit: Unit) -> Arc<Histogram> {
    let mut map = lock();
    if let Some(Metric::Histogram(h)) = map.get(key) {
        return h.clone();
    }
    let h = Arc::new(Histogram::new(unit));
    map.insert(key.to_string(), Metric::Histogram(h.clone()));
    h
}

/// A sorted point-in-time copy of every registered metric.
pub fn snapshot() -> Vec<(String, MetricSnapshot)> {
    lock()
        .iter()
        .map(|(k, m)| {
            let snap = match m {
                Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
            };
            (k.clone(), snap)
        })
        .collect()
}

/// Snapshots of the metrics whose key starts with `prefix`, sorted.
pub fn snapshot_prefixed(prefix: &str) -> Vec<(String, MetricSnapshot)> {
    snapshot().into_iter().filter(|(k, _)| k.starts_with(prefix)).collect()
}

/// Drops every registered metric.
pub fn reset() {
    lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_key_formats_labels() {
        assert_eq!(metric_key("a.b", &[]), "a.b");
        assert_eq!(metric_key("a.b", &[("layer", "3")]), "a.b{layer=3}");
        assert_eq!(
            metric_key("a.b", &[("layer", "3"), ("expert", "7")]),
            "a.b{layer=3,expert=7}"
        );
    }

    #[test]
    fn registry_handles_are_shared() {
        let _g = crate::test_guard();
        let a = counter("t.reg.hits");
        let b = counter("t.reg.hits");
        a.add(2);
        b.add(3);
        assert_eq!(counter_peek("t.reg.hits"), Some(5));
        assert_eq!(counter_peek("t.reg.other"), None);
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let _g = crate::test_guard();
        counter("t.snap.c").add(7);
        gauge("t.snap.g").set(1.5);
        histogram("t.snap.h", Unit::Nanos).record(100);
        let snap = snapshot();
        assert_eq!(snap.len(), 3);
        assert!(matches!(
            snap.iter().find(|(k, _)| k == "t.snap.c"),
            Some((_, MetricSnapshot::Counter(7)))
        ));
        assert!(matches!(
            snap.iter().find(|(k, _)| k == "t.snap.g"),
            Some((_, MetricSnapshot::Gauge(v))) if *v == 1.5
        ));
        let prefixed = snapshot_prefixed("t.snap.h");
        assert_eq!(prefixed.len(), 1);
    }

    #[test]
    fn reset_empties_the_registry() {
        let _g = crate::test_guard();
        counter("t.reset.c").add(1);
        reset();
        assert!(snapshot().is_empty());
    }
}
