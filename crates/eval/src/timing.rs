//! Wall-clock timing helpers for quantization-cost experiments
//! (paper Table 1 and Fig. 8).
//!
//! [`Timings`] keeps its original `(name, seconds)` API, but
//! [`Timings::measure`] is now a thin shim over the `milo-obs` span
//! layer: each measured section also lands in the global telemetry
//! registry as an `eval.{name}` span (and in the Chrome trace at trace
//! level), so harness phases appear alongside engine/kernel spans in
//! `milo-cli stats` without any caller changes.

use std::time::Instant;

/// Runs `f`, returning its output and the elapsed wall-clock seconds.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Accumulates named timing measurements.
#[derive(Debug, Default, Clone)]
pub struct Timings {
    entries: Vec<(String, f64)>,
}

impl Timings {
    /// Creates an empty set of timings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a measurement.
    pub fn record(&mut self, name: impl Into<String>, seconds: f64) {
        self.entries.push((name.into(), seconds));
    }

    /// Runs and records `f` under `name`, returning its output. Also
    /// opens an `eval.{name}` telemetry span around `f`, so the harness
    /// phase shows up in the global metric registry and Chrome trace.
    pub fn measure<T>(&mut self, name: impl Into<String>, f: impl FnOnce() -> T) -> T {
        let name = name.into();
        let (out, secs) = {
            let _span = milo_obs::span(|| format!("eval.{name}"));
            time_it(f)
        };
        self.record(name, secs);
        out
    }

    /// The recorded `(name, seconds)` pairs, in insertion order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Looks up a measurement by name (first match).
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries.iter().find(|(n, _)| n == name).map(|&(_, s)| s)
    }

    /// Sum of all recorded seconds.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, s)| s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_output_and_positive_time() {
        let (v, secs) = time_it(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(secs >= 0.0);
    }

    #[test]
    fn timings_accumulate() {
        let mut t = Timings::new();
        t.record("a", 1.0);
        let out = t.measure("b", || 42);
        assert_eq!(out, 42);
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.get("a"), Some(1.0));
        assert!(t.get("b").unwrap() >= 0.0);
        assert!(t.total() >= 1.0);
        assert_eq!(t.get("missing"), None);
    }
}
