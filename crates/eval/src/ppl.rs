//! Teacher-as-ground-truth perplexity.
//!
//! The FP16 synthetic model defines the data distribution: a corpus is
//! sampled from it, and any model is scored by its perplexity on that
//! corpus. By construction the FP16 teacher has the lowest achievable
//! expected perplexity (its own cross-entropy), and a compressed model's
//! excess perplexity is `exp(KL(teacher ‖ model))`-shaped — it grows with
//! weight reconstruction error, giving the same method ordering as
//! Wikitext-2 PPL does in the paper.

use crate::par::par_map;
use milo_moe::{MoeModel, Result};
use milo_tensor::rng::StdRng;
use milo_tensor::rng::{Rng, SeedableRng};

/// Samples an evaluation corpus of `n_seqs` sequences of `seq_len`
/// tokens each from the teacher model at temperature 1.0, in parallel
/// (each sequence derives its own RNG stream from `seed`). The first
/// token of each sequence is uniform-random.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn generate_corpus(
    teacher: &MoeModel,
    n_seqs: usize,
    seq_len: usize,
    seed: u64,
) -> Result<Vec<Vec<u32>>> {
    let vocab = teacher.config.vocab as u32;
    let results = par_map(n_seqs, |i| {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let first = rng.gen_range(0..vocab);
        teacher.sample(&[first], seq_len.saturating_sub(1), 1.0, &mut rng)
    });
    results.into_iter().collect()
}

/// Perplexity of `model` on `corpus`:
/// `exp( − mean log p(token_{i+1} | tokens_{..=i}) )`, evaluated with one
/// forward pass per sequence, in parallel.
///
/// # Errors
///
/// Propagates forward-pass failures; returns an error for an empty
/// corpus.
pub fn perplexity(model: &MoeModel, corpus: &[Vec<u32>]) -> Result<f32> {
    if corpus.is_empty() {
        return Err(milo_moe::MoeError::InvalidInput("empty corpus".into()));
    }
    let per_seq = par_map(corpus.len(), |s| -> Result<(f64, usize)> {
        let seq = &corpus[s];
        if seq.len() < 2 {
            return Ok((0.0, 0));
        }
        let logits = model.forward(seq)?;
        let mut nll = 0.0f64;
        for i in 0..seq.len() - 1 {
            nll -= log_softmax_at(logits.row(i), seq[i + 1] as usize);
        }
        Ok((nll, seq.len() - 1))
    });

    let mut total_nll = 0.0f64;
    let mut count = 0usize;
    for r in per_seq {
        let (nll, c) = r?;
        total_nll += nll;
        count += c;
    }
    if count == 0 {
        return Err(milo_moe::MoeError::InvalidInput(
            "corpus has no next-token prediction targets".into(),
        ));
    }
    Ok((total_nll / count as f64).exp() as f32)
}

/// Numerically stable `log softmax(logits)[target]`.
fn log_softmax_at(logits: &[f32], target: usize) -> f64 {
    let max_l = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
    let lse: f64 = logits.iter().map(|&l| ((l as f64) - max_l).exp()).sum::<f64>().ln() + max_l;
    logits[target] as f64 - lse
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_moe::config::MoeConfig;

    fn teacher() -> MoeModel {
        MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 11)
    }

    #[test]
    fn corpus_has_requested_shape() {
        let t = teacher();
        let corpus = generate_corpus(&t, 3, 10, 1).unwrap();
        assert_eq!(corpus.len(), 3);
        assert!(corpus.iter().all(|s| s.len() == 10));
    }

    #[test]
    fn corpus_is_deterministic() {
        let t = teacher();
        assert_eq!(
            generate_corpus(&t, 2, 8, 5).unwrap(),
            generate_corpus(&t, 2, 8, 5).unwrap()
        );
    }

    #[test]
    fn teacher_ppl_is_finite_and_below_uniform() {
        let t = teacher();
        let corpus = generate_corpus(&t, 4, 16, 2).unwrap();
        let ppl = perplexity(&t, &corpus).unwrap();
        // Uniform guessing over 64 tokens has PPL 64; the teacher must do
        // better on its own samples.
        assert!(ppl.is_finite() && ppl > 1.0);
        assert!(ppl < 64.0, "teacher ppl {ppl} not better than uniform");
    }

    #[test]
    fn perturbed_model_has_higher_ppl() {
        let t = teacher();
        let corpus = generate_corpus(&t, 4, 16, 3).unwrap();
        let base = perplexity(&t, &corpus).unwrap();
        // Corrupt the weights: perplexity on the teacher's corpus must
        // increase.
        let mut bad = t.clone();
        for layer in &mut bad.layers {
            layer.attn.wq = layer.attn.wq.scale(0.2);
            layer.attn.wv = layer.attn.wv.scale(2.0);
        }
        let worse = perplexity(&bad, &corpus).unwrap();
        assert!(worse > base, "perturbed {worse} should exceed teacher {base}");
    }

    #[test]
    fn log_softmax_sums_to_one() {
        let logits = vec![1.0f32, 2.0, 3.0, -1.0];
        let total: f64 = (0..4).map(|i| log_softmax_at(&logits, i).exp()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_corpus_is_error() {
        let t = teacher();
        assert!(perplexity(&t, &[]).is_err());
        assert!(perplexity(&t, &[vec![1u32]]).is_err());
    }
}
