//! Method-level evaluation: produce one row of the paper's evaluation
//! tables (memory, perplexity, task scores) for a compressed model.

use crate::ppl::{generate_corpus, perplexity};
use crate::tasks::task_suite;
use milo_moe::{MoeModel, Result};

/// Evaluation workload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Number of perplexity sequences sampled from the reference.
    pub n_seqs: usize,
    /// Length of each perplexity sequence.
    pub seq_len: usize,
    /// Corpus RNG seed.
    pub corpus_seed: u64,
    /// Prompts per proxy task.
    pub task_prompts: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self { n_seqs: 12, seq_len: 32, corpus_seed: 2024, task_prompts: 40 }
    }
}

impl EvalConfig {
    /// A very small workload for tests.
    pub fn tiny() -> Self {
        Self { n_seqs: 3, seq_len: 12, corpus_seed: 2024, task_prompts: 6 }
    }
}

/// One row of a paper-style evaluation table.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Method name ("RTN", "HQQ", "MiLo-s1", …).
    pub name: String,
    /// Deployment memory of the compressed weights, bytes.
    pub memory_bytes: usize,
    /// Perplexity on the teacher-sampled corpus.
    pub ppl: f32,
    /// `(task name, accuracy %)` for the proxy suite, in suite order.
    pub task_scores: Vec<(String, f32)>,
    /// Wall-clock quantization time, seconds.
    pub quant_seconds: f64,
}

impl MethodResult {
    /// Average of the zero-shot tasks (HellaSwag, Lambada, PIQA) — the
    /// paper's "Avg" column.
    pub fn zero_shot_avg(&self) -> f32 {
        let zs: Vec<f32> = self
            .task_scores
            .iter()
            .filter(|(n, _)| matches!(n.as_str(), "HellaSwag" | "Lambada" | "PIQA"))
            .map(|&(_, s)| s)
            .collect();
        if zs.is_empty() {
            return 0.0;
        }
        zs.iter().sum::<f32>() / zs.len() as f32
    }

    /// Looks up one task's score by name.
    pub fn score(&self, task: &str) -> Option<f32> {
        self.task_scores.iter().find(|(n, _)| n == task).map(|&(_, s)| s)
    }

    /// Memory in gigabytes (the unit the paper's tables use).
    pub fn memory_gb(&self) -> f64 {
        self.memory_bytes as f64 / (1u64 << 30) as f64
    }
}

/// A shared evaluation context: the teacher corpus and prepared tasks,
/// computed once from the reference model and reused across every method
/// being compared (the expensive part of Table-3-style experiments).
#[derive(Debug, Clone)]
pub struct EvalContext {
    corpus: Vec<Vec<u32>>,
    tasks: Vec<crate::tasks::PreparedTask>,
}

impl EvalContext {
    /// Samples the perplexity corpus and prepares all proxy tasks on the
    /// reference model.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass failures.
    pub fn prepare(reference: &MoeModel, cfg: &EvalConfig) -> Result<Self> {
        let corpus = generate_corpus(reference, cfg.n_seqs, cfg.seq_len, cfg.corpus_seed)?;
        let mut tasks = Vec::new();
        for task in task_suite(cfg.task_prompts) {
            tasks.push(crate::tasks::PreparedTask::prepare(&task, reference)?);
        }
        Ok(Self { corpus, tasks })
    }

    /// Evaluates one candidate model against the prepared context.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass failures.
    pub fn evaluate(
        &self,
        name: impl Into<String>,
        candidate: &MoeModel,
        memory_bytes: usize,
        quant_seconds: f64,
    ) -> Result<MethodResult> {
        let ppl = perplexity(candidate, &self.corpus)?;
        let mut task_scores = Vec::new();
        for task in &self.tasks {
            task_scores.push((task.task().name.clone(), task.score(candidate)?));
        }
        Ok(MethodResult { name: name.into(), memory_bytes, ppl, task_scores, quant_seconds })
    }
}

/// Evaluates `candidate` against the FP16 `reference`: perplexity on a
/// teacher-sampled corpus plus the five proxy tasks.
///
/// When comparing several methods, build one [`EvalContext`] and call
/// [`EvalContext::evaluate`] per method instead — this convenience
/// re-prepares the context each time.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn evaluate_method(
    name: impl Into<String>,
    reference: &MoeModel,
    candidate: &MoeModel,
    memory_bytes: usize,
    quant_seconds: f64,
    cfg: &EvalConfig,
) -> Result<MethodResult> {
    EvalContext::prepare(reference, cfg)?.evaluate(name, candidate, memory_bytes, quant_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_moe::config::MoeConfig;

    #[test]
    fn reference_evaluates_perfectly_on_tasks() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 1);
        let r = evaluate_method("FP16", &m, &m, 0, 0.0, &EvalConfig::tiny()).unwrap();
        assert_eq!(r.zero_shot_avg(), 100.0);
        assert_eq!(r.score("MMLU"), Some(100.0));
        assert!(r.ppl.is_finite());
    }

    #[test]
    fn degraded_model_scores_worse() {
        let m = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 2);
        let mut bad = m.clone();
        for layer in &mut bad.layers {
            layer.attn.wq = layer.attn.wq.scale(0.1);
            layer.attn.wk = layer.attn.wk.scale(3.0);
        }
        let cfg = EvalConfig::tiny();
        let good = evaluate_method("FP16", &m, &m, 0, 0.0, &cfg).unwrap();
        let worse = evaluate_method("bad", &m, &bad, 0, 0.0, &cfg).unwrap();
        assert!(worse.ppl > good.ppl);
        assert!(worse.zero_shot_avg() < good.zero_shot_avg());
    }

    #[test]
    fn memory_gb_conversion() {
        let r = MethodResult {
            name: "x".into(),
            memory_bytes: 1 << 30,
            ppl: 1.0,
            task_scores: vec![],
            quant_seconds: 0.0,
        };
        assert!((r.memory_gb() - 1.0).abs() < 1e-9);
        assert_eq!(r.zero_shot_avg(), 0.0);
        assert_eq!(r.score("nope"), None);
    }
}
