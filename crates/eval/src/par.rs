//! A tiny fork-join helper used to parallelize evaluation across
//! sequences and prompts.

/// Maps `f` over `0..n` on up to `available_parallelism` threads,
/// returning results in index order. `f` is called exactly once per
/// index; work is split into contiguous chunks.
pub fn par_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let chunks: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                scope.spawn(move || {
                    (t * chunk..n.min((t + 1) * chunk)).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluation worker panicked"))
            .collect()
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = par_map(100, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(par_map(0, |i| i).is_empty());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn uneven_chunking_covers_all_indices() {
        let out = par_map(17, |i| i);
        assert_eq!(out, (0..17).collect::<Vec<_>>());
    }
}
