//! A tiny fork-join helper used to parallelize evaluation across
//! sequences and prompts.
//!
//! Since the threading PR this is a thin façade over
//! [`milo_tensor::pool`], so evaluation fan-out honours the same
//! `MILO_THREADS` knob (and `pool::with_threads` override) as the
//! compute kernels, and nested parallelism inside a worker (e.g. a
//! model forward under an evaluated prompt) degrades to the serial path
//! instead of oversubscribing.

/// Maps `f` over `0..n` on the workspace thread pool, returning results
/// in index order. `f` is called exactly once per index; work is split
/// into contiguous chunks with no work stealing.
pub fn par_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    milo_tensor::pool::par_map(n, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = par_map(100, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(par_map(0, |i| i).is_empty());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn uneven_chunking_covers_all_indices() {
        let out = par_map(17, |i| i);
        assert_eq!(out, (0..17).collect::<Vec<_>>());
    }
}
