//! A small in-repo microbenchmark harness.
//!
//! Replaces the external `criterion` crate for the hermetic workspace.
//! Built on the wall-clock primitives in [`crate::timing`]: each
//! benchmark is warmed up, its per-iteration cost is estimated, and then
//! a fixed number of samples (each a timed batch of iterations) is
//! collected. The reported statistic is the **median** per-iteration
//! time, which is robust to scheduler noise; min/mean/max are kept for
//! context. Results render as an aligned table and can be written as
//! JSON for machine consumption.
//!
//! Environment knobs (all optional):
//!
//! * `MILO_BENCH_SAMPLES` — number of samples per benchmark (default 15)
//! * `MILO_BENCH_SAMPLE_MS` — target milliseconds per sample (default 25)
//! * `MILO_BENCH_WARMUP_MS` — warmup milliseconds (default 50)
//! * `MILO_BENCH_JSON` — directory to write `<suite>.json` into
//! * `MILO_BENCH_QUICK` — set to `1`/`true` for the smoke configuration
//!   ([`Config::quick`]); used by `scripts/verify.sh` to exercise the
//!   bench path in seconds. Explicit `MILO_BENCH_*` knobs still apply on
//!   top.
//!
//! # Examples
//!
//! ```
//! use milo_eval::bench::{black_box, Harness};
//!
//! let mut h = Harness::with_config("doc", milo_eval::bench::Config::quick());
//! h.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
//! let results = h.finish();
//! assert_eq!(results[0].name, "sum_1k");
//! assert!(results[0].median_ns > 0.0);
//! ```

use crate::timing::time_it;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Sampling configuration for one harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of timed samples collected per benchmark.
    pub samples: usize,
    /// Target wall-clock duration of each sample batch.
    pub sample_time: Duration,
    /// Wall-clock time spent warming up before calibration.
    pub warmup: Duration,
}

impl Default for Config {
    fn default() -> Self {
        let quick = Self::quick_mode();
        let base = if quick { Self::quick() } else { Self::full() };
        Self {
            samples: env_usize("MILO_BENCH_SAMPLES", base.samples),
            sample_time: Duration::from_millis(
                env_usize("MILO_BENCH_SAMPLE_MS", base.sample_time.as_millis() as usize) as u64,
            ),
            warmup: Duration::from_millis(
                env_usize("MILO_BENCH_WARMUP_MS", base.warmup.as_millis() as usize) as u64,
            ),
        }
    }
}

impl Config {
    /// A minimal configuration for smoke runs and doctests.
    pub fn quick() -> Self {
        Self {
            samples: 3,
            sample_time: Duration::from_millis(2),
            warmup: Duration::from_millis(1),
        }
    }

    /// The full measurement configuration ([`Config::default`] without
    /// environment overrides).
    pub fn full() -> Self {
        Self {
            samples: 15,
            sample_time: Duration::from_millis(25),
            warmup: Duration::from_millis(50),
        }
    }

    /// Whether `MILO_BENCH_QUICK` requests the smoke configuration.
    pub fn quick_mode() -> bool {
        std::env::var("MILO_BENCH_QUICK")
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
            })
            .unwrap_or(false)
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).filter(|&v| v > 0).unwrap_or(default)
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name as registered with [`Harness::bench_function`].
    pub name: String,
    /// Median per-iteration time across samples (the headline number).
    pub median_ns: f64,
    /// Mean per-iteration time across samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Iterations per sample batch chosen by calibration.
    pub iters_per_sample: u64,
    /// Number of samples collected.
    pub samples: usize,
}

impl BenchResult {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\
             \"max_ns\":{:.1},\"iters_per_sample\":{},\"samples\":{}}}",
            self.name,
            self.median_ns,
            self.mean_ns,
            self.min_ns,
            self.max_ns,
            self.iters_per_sample,
            self.samples
        )
    }
}

/// Timing callback handed to each benchmark closure; call
/// [`Bencher::iter`] exactly once with the operation to measure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the batch's iteration count, timing the whole batch.
    /// The return value is passed through [`black_box`] so the compiler
    /// cannot elide the work.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collects and reports benchmark results for one suite.
pub struct Harness {
    suite: String,
    config: Config,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates a harness with configuration drawn from the environment.
    pub fn new(suite: impl Into<String>) -> Self {
        Self::with_config(suite, Config::default())
    }

    /// Creates a harness with an explicit configuration.
    pub fn with_config(suite: impl Into<String>, config: Config) -> Self {
        Self { suite: suite.into(), config, results: Vec::new() }
    }

    /// Measures one benchmark: warmup, batch-size calibration, then
    /// `config.samples` timed batches. Prints one summary line.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Warmup + per-iteration estimate: run batches of growing size
        // until the warmup budget is spent.
        let warmup_start = Instant::now();
        let mut per_iter = loop {
            f(&mut b);
            let spent = warmup_start.elapsed();
            if spent >= self.config.warmup {
                break b.elapsed.as_secs_f64() / b.iters as f64;
            }
            b.iters = (b.iters * 2).min(1 << 40);
        };
        if per_iter <= 0.0 {
            per_iter = 1e-9;
        }

        // Choose a batch size that makes one sample ≈ sample_time.
        let target = self.config.sample_time.as_secs_f64();
        b.iters = ((target / per_iter).ceil() as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            f(&mut b);
            samples_ns.push(b.elapsed.as_secs_f64() * 1e9 / b.iters as f64);
        }
        samples_ns.sort_by(|a, c| a.partial_cmp(c).expect("timings are finite"));
        let median = if samples_ns.len() % 2 == 1 {
            samples_ns[samples_ns.len() / 2]
        } else {
            0.5 * (samples_ns[samples_ns.len() / 2 - 1] + samples_ns[samples_ns.len() / 2])
        };
        let result = BenchResult {
            name: name.clone(),
            median_ns: median,
            mean_ns: samples_ns.iter().sum::<f64>() / samples_ns.len() as f64,
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("at least one sample"),
            iters_per_sample: b.iters,
            samples: samples_ns.len(),
        };
        println!(
            "{:<44} median {:>12}  (min {}, max {}, {} iters x {} samples)",
            result.name,
            format_ns(result.median_ns),
            format_ns(result.min_ns),
            format_ns(result.max_ns),
            result.iters_per_sample,
            result.samples,
        );
        self.results.push(result);
    }

    /// Serializes all results as a JSON document.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.results.iter().map(BenchResult::json).collect();
        format!("{{\"suite\":\"{}\",\"results\":[{}]}}", self.suite, rows.join(","))
    }

    /// Finishes the suite: writes `<suite>.json` if `MILO_BENCH_JSON`
    /// names a directory, and returns the collected results.
    pub fn finish(self) -> Vec<BenchResult> {
        if let Ok(dir) = std::env::var("MILO_BENCH_JSON") {
            let path = std::path::Path::new(&dir).join(format!("{}.json", self.suite));
            if let Err(e) = std::fs::write(&path, self.to_json()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("wrote {}", path.display());
            }
        }
        self.results
    }

    /// Suite name.
    pub fn suite(&self) -> &str {
        &self.suite
    }

    /// Measures a one-shot (non-repeatable) operation under `name` using
    /// [`time_it`], recording a single sample. Useful for setup-heavy
    /// operations like whole-model synthesis where batching is
    /// unnecessary.
    pub fn bench_once<T>(&mut self, name: impl Into<String>, f: impl FnOnce() -> T) -> T {
        let name = name.into();
        let (out, secs) = time_it(f);
        let ns = secs * 1e9;
        println!("{:<44} single {:>12}", name, format_ns(ns));
        self.results.push(BenchResult {
            name,
            median_ns: ns,
            mean_ns: ns,
            min_ns: ns,
            max_ns: ns,
            iters_per_sample: 1,
            samples: 1,
        });
        out
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config { samples: 5, sample_time: Duration::from_millis(1), warmup: Duration::from_millis(1) }
    }

    #[test]
    fn collects_ordered_results_with_sane_stats() {
        let mut h = Harness::with_config("unit", quick());
        h.bench_function("fast", |b| b.iter(|| 1u64 + 1));
        h.bench_function("slow", |b| b.iter(|| (0..2000u64).map(black_box).sum::<u64>()));
        let rs = h.finish();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].name, "fast");
        for r in &rs {
            assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns, "{r:?}");
            assert!(r.median_ns > 0.0);
            assert_eq!(r.samples, 5);
        }
        assert!(
            rs[1].median_ns > rs[0].median_ns,
            "summing 2000 ints should out-cost an add: {rs:?}"
        );
    }

    #[test]
    fn json_round_trips_field_names() {
        let mut h = Harness::with_config("suite-x", quick());
        h.bench_function("op", |b| b.iter(|| 42u32));
        let json = h.to_json();
        for key in ["\"suite\":\"suite-x\"", "\"name\":\"op\"", "median_ns", "iters_per_sample"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn bench_once_records_single_sample_and_returns_output() {
        let mut h = Harness::with_config("unit", quick());
        let v = h.bench_once("setup", || vec![1, 2, 3]);
        assert_eq!(v, vec![1, 2, 3]);
        let rs = h.finish();
        assert_eq!(rs[0].samples, 1);
        assert_eq!(rs[0].iters_per_sample, 1);
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2.5e9).ends_with('s'));
    }
}
