//! Proxy task suite (substitute for the paper's six benchmarks).
//!
//! Each paper benchmark is mapped to a *fidelity* task against the FP16
//! reference model: the reference's prediction on a prompt defines the
//! correct answer, and a compressed model's "accuracy" is how often it
//! agrees. The task parameters mirror the benchmarks' structure:
//!
//! | Paper benchmark | Proxy | Options | Prompt | Shots |
//! |---|---|---|---|---|
//! | HellaSwag | 4-way multiple choice | 4 | 16 | zero-shot |
//! | Lambada | open-vocabulary final token | vocab | 20 | zero-shot |
//! | PIQA | 2-way multiple choice | 2 | 12 | zero-shot |
//! | MMLU | 4-way multiple choice | 4 | 48 | 5-shot (long prompt) |
//! | TriQA | open-vocabulary | vocab | 48 | 5-shot (long prompt) |
//!
//! Prompts are uniform random token sequences: the reference model's
//! *behaviour on them* is the ground truth, so the prompt distribution
//! only needs to be fixed and shared, not "natural" (the synthetic models
//! have no natural text distribution to begin with). Multiple-choice
//! scoring restricts the argmax to an option set containing the
//! reference's top choice, so chance level is `1/options` just like the
//! real benchmarks.
//!
//! For evaluating several methods against one reference, prepare the
//! task once with [`PreparedTask::prepare`] (one reference forward per
//! prompt) and call [`PreparedTask::score`] per candidate (one candidate
//! forward per prompt).

use milo_moe::{MoeModel, Result};
use milo_tensor::rng::StdRng;
use milo_tensor::rng::{Rng, SeedableRng};

/// How a task scores a prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Pick among `options` candidate tokens (chance = 1/options).
    MultiChoice {
        /// Number of answer options.
        options: usize,
    },
    /// Predict the next token over the whole vocabulary.
    OpenVocab,
}

/// A fidelity task.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Display name (paper benchmark it proxies).
    pub name: String,
    /// Scoring mode.
    pub kind: TaskKind,
    /// Prompt length in tokens (few-shot tasks use long prompts).
    pub prompt_len: usize,
    /// Number of prompts evaluated.
    pub n_prompts: usize,
    /// RNG seed for prompt and option sampling.
    pub seed: u64,
}

/// The paper's benchmark suite as proxy tasks. `n_prompts` scales the
/// evaluation cost; the zero-shot average in the tables is over the
/// first three (HellaSwag, Lambada, PIQA), matching the paper's "Avg"
/// column.
pub fn task_suite(n_prompts: usize) -> Vec<Task> {
    vec![
        Task {
            name: "HellaSwag".into(),
            kind: TaskKind::MultiChoice { options: 4 },
            prompt_len: 16,
            n_prompts,
            seed: 101,
        },
        Task {
            name: "Lambada".into(),
            kind: TaskKind::OpenVocab,
            prompt_len: 20,
            n_prompts,
            seed: 102,
        },
        Task {
            name: "PIQA".into(),
            kind: TaskKind::MultiChoice { options: 2 },
            prompt_len: 12,
            n_prompts,
            seed: 103,
        },
        Task {
            name: "MMLU".into(),
            kind: TaskKind::MultiChoice { options: 4 },
            prompt_len: 48,
            n_prompts,
            seed: 104,
        },
        Task {
            name: "TriQA".into(),
            kind: TaskKind::OpenVocab,
            prompt_len: 48,
            n_prompts,
            seed: 105,
        },
    ]
}

/// Index of the maximum logit within a candidate set.
fn argmax_within(logits: &[f32], candidates: &[u32]) -> u32 {
    *candidates
        .iter()
        .max_by(|&&a, &&b| {
            logits[a as usize]
                .partial_cmp(&logits[b as usize])
                .expect("finite logits")
        })
        .expect("non-empty candidate set")
}

/// A task with its prompts, option sets, and reference answers
/// precomputed, ready to score any number of candidates.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedTask {
    task: Task,
    prompts: Vec<Vec<u32>>,
    /// Option set per prompt (full vocabulary for open-vocab tasks is
    /// represented as an empty vector).
    options: Vec<Vec<u32>>,
    /// The reference model's answer per prompt.
    answers: Vec<u32>,
}

impl PreparedTask {
    /// Generates prompts, samples option sets, and records the reference
    /// model's answers — one reference forward pass per prompt, run in
    /// parallel.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass failures.
    pub fn prepare(task: &Task, reference: &MoeModel) -> Result<Self> {
        let mut rng = StdRng::seed_from_u64(task.seed);
        let vocab = reference.config.vocab as u32;
        let all: Vec<u32> = (0..vocab).collect();

        // Phase 1 (serial RNG): prompts.
        let prompts: Vec<Vec<u32>> = (0..task.n_prompts)
            .map(|_| (0..task.prompt_len).map(|_| rng.gen_range(0..vocab)).collect())
            .collect();

        // Phase 2 (parallel): reference answers.
        let answer_results = crate::par::par_map(prompts.len(), |i| -> Result<u32> {
            let logits = reference.forward(&prompts[i])?;
            Ok(argmax_within(logits.row(prompts[i].len() - 1), &all))
        });
        let answers: Vec<u32> = answer_results.into_iter().collect::<Result<_>>()?;

        // Phase 3 (serial RNG): distractor options around each answer.
        let options: Vec<Vec<u32>> = answers
            .iter()
            .map(|&answer| match task.kind {
                TaskKind::OpenVocab => Vec::new(),
                TaskKind::MultiChoice { options } => {
                    let mut opts = vec![answer];
                    while opts.len() < options {
                        let t = rng.gen_range(0..vocab);
                        if !opts.contains(&t) {
                            opts.push(t);
                        }
                    }
                    opts
                }
            })
            .collect();

        Ok(Self { task: task.clone(), prompts, options, answers })
    }

    /// The underlying task definition.
    pub fn task(&self) -> &Task {
        &self.task
    }

    /// Scores a candidate model: percentage of prompts where its answer
    /// matches the reference's (one candidate forward per prompt, run in
    /// parallel).
    ///
    /// # Errors
    ///
    /// Propagates forward-pass failures.
    pub fn score(&self, candidate: &MoeModel) -> Result<f32> {
        let vocab = candidate.config.vocab as u32;
        let all: Vec<u32> = (0..vocab).collect();
        let hits = crate::par::par_map(self.prompts.len(), |i| -> Result<bool> {
            let prompt = &self.prompts[i];
            let logits = candidate.forward(prompt)?;
            let row = logits.row(prompt.len() - 1);
            let pick = if self.options[i].is_empty() {
                argmax_within(row, &all)
            } else {
                argmax_within(row, &self.options[i])
            };
            Ok(pick == self.answers[i])
        });
        let mut correct = 0usize;
        for h in hits {
            if h? {
                correct += 1;
            }
        }
        Ok(100.0 * correct as f32 / self.prompts.len().max(1) as f32)
    }
}

/// One-shot convenience: prepare the task on `reference` and score
/// `candidate`, returning accuracy in percent.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn run_task(task: &Task, reference: &MoeModel, candidate: &MoeModel) -> Result<f32> {
    PreparedTask::prepare(task, reference)?.score(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_moe::config::MoeConfig;

    fn model(seed: u64) -> MoeModel {
        MoeModel::synthesize(&MoeConfig::tiny_mixtral(), seed)
    }

    #[test]
    fn suite_has_five_tasks() {
        let suite = task_suite(10);
        assert_eq!(suite.len(), 5);
        let names: Vec<&str> = suite.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["HellaSwag", "Lambada", "PIQA", "MMLU", "TriQA"]);
    }

    #[test]
    fn reference_scores_100_against_itself() {
        let m = model(1);
        for task in task_suite(5) {
            let acc = run_task(&task, &m, &m).unwrap();
            assert_eq!(acc, 100.0, "{}", task.name);
        }
    }

    #[test]
    fn unrelated_model_scores_near_chance_on_multichoice() {
        let a = model(2);
        let b = model(999); // independent weights
        let task = Task {
            name: "2way".into(),
            kind: TaskKind::MultiChoice { options: 2 },
            prompt_len: 8,
            n_prompts: 60,
            seed: 7,
        };
        let acc = run_task(&task, &a, &b).unwrap();
        // Chance is 50%; a completely unrelated model should be in a wide
        // band around it.
        assert!(acc > 20.0 && acc < 80.0, "accuracy {acc}");
    }

    #[test]
    fn mildly_perturbed_model_beats_unrelated_model() {
        let a = model(3);
        let mut perturbed = a.clone();
        perturbed.layers[0].attn.wq = perturbed.layers[0].attn.wq.scale(1.05);
        let unrelated = model(1000);
        let task = &task_suite(40)[0];
        let prepared = PreparedTask::prepare(task, &a).unwrap();
        let acc_pert = prepared.score(&perturbed).unwrap();
        let acc_unrel = prepared.score(&unrelated).unwrap();
        assert!(
            acc_pert > acc_unrel,
            "perturbed {acc_pert} should beat unrelated {acc_unrel}"
        );
    }

    #[test]
    fn prepared_task_scores_match_run_task() {
        let a = model(4);
        let mut b = a.clone();
        b.layers[0].attn.wo = b.layers[0].attn.wo.scale(1.1);
        let task = &task_suite(10)[2];
        let prepared = PreparedTask::prepare(task, &a).unwrap();
        assert_eq!(prepared.score(&b).unwrap(), run_task(task, &a, &b).unwrap());
    }

    #[test]
    fn preparation_is_deterministic() {
        let a = model(5);
        let task = &task_suite(6)[0];
        assert_eq!(
            PreparedTask::prepare(task, &a).unwrap(),
            PreparedTask::prepare(task, &a).unwrap()
        );
    }

    #[test]
    fn argmax_within_restricts_to_candidates() {
        let logits = vec![0.0, 10.0, 5.0, 3.0];
        assert_eq!(argmax_within(&logits, &[0, 2, 3]), 2);
        assert_eq!(argmax_within(&logits, &[0, 1, 2, 3]), 1);
    }
}
