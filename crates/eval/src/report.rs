//! Report rendering: aligned text tables (the experiment binaries print
//! the same rows the paper's tables report), CSV, and a minimal JSON
//! emitter for machine-readable records.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        while cells.len() < self.headers.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let n_cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(n_cols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(out, "{cell:<w$}");
                if i + 1 < n_cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }

    /// Renders the table as CSV (naive quoting: commas in cells are
    /// wrapped in double quotes).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// A minimal JSON value for experiment records.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// Any finite number.
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".into(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => {
                if n.is_finite() {
                    format!("{n}")
                } else {
                    "null".into()
                }
            }
            Json::Str(s) => format!("\"{}\"", escape(s)),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(["method", "ppl"]);
        t.push_row(["RTN", "4.81"]);
        t.push_row(["MiLo-s1", "4.03"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("RTN    "));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.push_row(["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(["name", "note"]);
        t.push_row(["x", "a,b"]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn json_renders_nested() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("MiLo \"s1\"".into())),
            ("ppl".into(), Json::Num(4.03)),
            ("tasks".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("ok".into(), Json::Bool(true)),
        ]);
        assert_eq!(
            j.render(),
            "{\"name\":\"MiLo \\\"s1\\\"\",\"ppl\":4.03,\"tasks\":[1,null],\"ok\":true}"
        );
    }

    #[test]
    fn json_escapes_control_chars() {
        let j = Json::Str("a\nb\u{1}".into());
        assert_eq!(j.render(), "\"a\\nb\\u0001\"");
    }
}
