//! Percentile-bootstrap confidence intervals for the evaluation metrics.
//!
//! The synthetic models are small enough that run-to-run perplexity noise
//! can exceed the effects being measured (e.g. the ~0.2% INT8-vs-INT3
//! compensator gap of paper Table 6). Bootstrap intervals make that
//! noise floor explicit: resample the per-sequence NLL contributions with
//! replacement and read the metric's percentile band.

use crate::par::par_map;
use milo_moe::{MoeModel, Result};
use milo_tensor::rng::StdRng;
use milo_tensor::rng::{Rng, SeedableRng};

/// A point estimate with a percentile-bootstrap interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bootstrap {
    /// The full-sample point estimate.
    pub point: f32,
    /// Lower percentile bound.
    pub lo: f32,
    /// Upper percentile bound.
    pub hi: f32,
}

impl Bootstrap {
    /// Whether another estimate's interval overlaps this one — if so,
    /// the difference is within the measured noise floor.
    pub fn overlaps(&self, other: &Bootstrap) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Half-width of the interval (a scalar "±" to print).
    pub fn half_width(&self) -> f32 {
        (self.hi - self.lo) / 2.0
    }
}

/// Per-sequence negative-log-likelihood contributions
/// `(sum NLL, prediction count)`, the resampling unit for perplexity.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn per_sequence_nll(model: &MoeModel, corpus: &[Vec<u32>]) -> Result<Vec<(f64, usize)>> {
    let results = par_map(corpus.len(), |s| -> Result<(f64, usize)> {
        let seq = &corpus[s];
        if seq.len() < 2 {
            return Ok((0.0, 0));
        }
        let logits = model.forward(seq)?;
        let mut nll = 0.0f64;
        for i in 0..seq.len() - 1 {
            let row = logits.row(i);
            let target = seq[i + 1] as usize;
            let max_l = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
            let lse: f64 =
                row.iter().map(|&l| ((l as f64) - max_l).exp()).sum::<f64>().ln() + max_l;
            nll -= row[target] as f64 - lse;
        }
        Ok((nll, seq.len() - 1))
    });
    results.into_iter().collect()
}

/// Perplexity with a percentile-bootstrap interval at confidence
/// `1 − alpha` over `resamples` resamplings of the per-sequence
/// contributions.
///
/// # Errors
///
/// Propagates forward-pass failures; errors on a corpus with no
/// prediction targets.
pub fn perplexity_ci(
    model: &MoeModel,
    corpus: &[Vec<u32>],
    resamples: usize,
    alpha: f32,
    seed: u64,
) -> Result<Bootstrap> {
    let contributions = per_sequence_nll(model, corpus)?;
    let usable: Vec<(f64, usize)> =
        contributions.into_iter().filter(|&(_, c)| c > 0).collect();
    if usable.is_empty() {
        return Err(milo_moe::MoeError::InvalidInput(
            "corpus has no next-token prediction targets".into(),
        ));
    }
    let ppl_of = |sample: &[(f64, usize)]| -> f32 {
        let nll: f64 = sample.iter().map(|&(n, _)| n).sum();
        let count: usize = sample.iter().map(|&(_, c)| c).sum();
        ((nll / count as f64).exp()) as f32
    };
    let point = ppl_of(&usable);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats: Vec<f32> = (0..resamples.max(2))
        .map(|_| {
            let sample: Vec<(f64, usize)> =
                (0..usable.len()).map(|_| usable[rng.gen_range(0..usable.len())]).collect();
            ppl_of(&sample)
        })
        .collect();
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite perplexities"));
    let idx = |q: f32| {
        (((stats.len() - 1) as f32 * q).round() as usize).min(stats.len() - 1)
    };
    Ok(Bootstrap {
        point,
        lo: stats[idx(alpha / 2.0)],
        hi: stats[idx(1.0 - alpha / 2.0)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppl::{generate_corpus, perplexity};
    use milo_moe::MoeConfig;

    fn teacher() -> MoeModel {
        MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 19)
    }

    #[test]
    fn point_estimate_matches_plain_perplexity() {
        let m = teacher();
        let corpus = generate_corpus(&m, 5, 14, 1).unwrap();
        let plain = perplexity(&m, &corpus).unwrap();
        let boot = perplexity_ci(&m, &corpus, 50, 0.1, 2).unwrap();
        assert!((plain - boot.point).abs() < 1e-4, "{plain} vs {}", boot.point);
    }

    #[test]
    fn interval_contains_the_point() {
        let m = teacher();
        let corpus = generate_corpus(&m, 6, 14, 3).unwrap();
        let boot = perplexity_ci(&m, &corpus, 100, 0.1, 4).unwrap();
        assert!(boot.lo <= boot.point && boot.point <= boot.hi);
        assert!(boot.half_width() > 0.0);
    }

    #[test]
    fn more_data_narrows_the_interval() {
        // "More data → narrower interval" only holds in expectation: a
        // 3-sequence corpus has just 3 resampling units, so any single
        // seed's percentile band is itself extremely noisy (one draw
        // produced small ±0.56 vs large ±2.03). Average the half-widths
        // over several independent corpora instead of weakening the
        // per-seed tolerance; the aggregate contrast is the real claim.
        let m = teacher();
        let (mut small_sum, mut large_sum) = (0.0f32, 0.0f32);
        for seed in 5..10 {
            let small = generate_corpus(&m, 3, 10, seed).unwrap();
            let large = generate_corpus(&m, 12, 20, seed).unwrap();
            small_sum += perplexity_ci(&m, &small, 200, 0.1, seed + 100).unwrap().half_width();
            large_sum += perplexity_ci(&m, &large, 200, 0.1, seed + 100).unwrap().half_width();
        }
        assert!(
            large_sum < small_sum,
            "mean large ±{} vs mean small ±{}",
            large_sum / 5.0,
            small_sum / 5.0
        );
    }

    #[test]
    fn overlap_logic() {
        let a = Bootstrap { point: 10.0, lo: 9.0, hi: 11.0 };
        let b = Bootstrap { point: 10.5, lo: 10.0, hi: 12.0 };
        let c = Bootstrap { point: 20.0, lo: 19.0, hi: 21.0 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn bootstrap_is_deterministic_given_seed() {
        let m = teacher();
        let corpus = generate_corpus(&m, 4, 12, 7).unwrap();
        let a = perplexity_ci(&m, &corpus, 50, 0.1, 8).unwrap();
        let b = perplexity_ci(&m, &corpus, 50, 0.1, 8).unwrap();
        assert_eq!(a, b);
    }
}
