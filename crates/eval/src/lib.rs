//! Evaluation harness for the MiLo reproduction.
//!
//! The paper evaluates on Wikitext-2 perplexity plus five zero/few-shot
//! benchmarks via lm-evaluation-harness. Those datasets require the real
//! checkpoints; this crate provides the substitution described in
//! `DESIGN.md`: the *FP16 synthetic model is the ground truth*, and
//! compressed models are scored by how much of its behaviour they
//! preserve:
//!
//! * [`ppl`] — perplexity on token streams sampled from the FP16 model
//!   (teacher-as-ground-truth language modeling); compressed models score
//!   strictly worse than the teacher, by an amount that tracks their
//!   weight reconstruction error — the same ordering signal as
//!   Wikitext-2 PPL in the paper.
//! * [`tasks`] — proxy task suite: multiple-choice and open-vocabulary
//!   next-token prediction where the *reference model's choice* defines
//!   the correct answer, with zero-shot (short prompt) and few-shot
//!   (long prompt) variants mirroring the paper's six benchmarks.
//! * [`timing`] — wall-clock measurement of quantization time (paper
//!   Table 1 / Fig. 8).
//! * [`bench`] — a median-of-N microbenchmark harness (warmup, batch
//!   calibration, JSON output) replacing the external `criterion` crate.
//! * [`report`] — aligned text tables, CSV, and a minimal JSON writer for
//!   experiment records (hand-rolled: the output schema is trivial and
//!   `serde` alone cannot emit JSON).
//! * [`harness`] — method-level orchestration producing the rows of the
//!   paper's evaluation tables.

#![warn(missing_docs)]

pub mod bench;
pub mod ci;
pub mod harness;
pub mod par;
pub mod ppl;
pub mod report;
pub mod tasks;
pub mod timing;

pub use ci::{perplexity_ci, Bootstrap};
pub use harness::{evaluate_method, EvalConfig, EvalContext, MethodResult};
pub use ppl::{generate_corpus, perplexity};
pub use report::Table;
pub use tasks::{task_suite, PreparedTask, Task, TaskKind};
pub use timing::time_it;
