//! The s1/s2 rank strategies of paper Table 5, scaled to the synthetic
//! models.
//!
//! The paper's ranks are stated for the full-size models (d = 4096 for
//! Mixtral-8×7B, d = 2048 for DeepSeek-MoE). Compensator effectiveness
//! is governed by the rank as a *fraction of the matrix dimension*, so
//! ranks scale proportionally with the model dimension, with a floor of
//! 2 so sparse-layer compensators don't round away entirely.

use milo_core::{RankPolicy, SparseAllocation};

/// Scales a paper rank stated at `paper_dim` to a model of dimension
/// `model_dim` (proportional, floored at 2 for nonzero ranks).
pub fn scale_rank(paper_rank: usize, paper_dim: usize, model_dim: usize) -> usize {
    if paper_rank == 0 {
        return 0;
    }
    ((paper_rank * model_dim + paper_dim / 2) / paper_dim).max(2)
}

/// Mixtral MiLo-s1: `Dense-512 + Kurtosis-16` (paper Table 5), scaled.
pub fn mixtral_s1(d_model: usize) -> RankPolicy {
    RankPolicy::composite(
        scale_rank(512, 4096, d_model),
        SparseAllocation::Kurtosis { avg_rank: scale_rank(16, 4096, d_model) },
    )
}

/// Mixtral MiLo-s2: `Dense-1024 + Kurtosis-32` (paper Table 5), scaled.
pub fn mixtral_s2(d_model: usize) -> RankPolicy {
    RankPolicy::composite(
        scale_rank(1024, 4096, d_model),
        SparseAllocation::Kurtosis { avg_rank: scale_rank(32, 4096, d_model) },
    )
}

/// DeepSeek MiLo-s1: `Dense-800` (paper Table 5), scaled.
pub fn deepseek_s1(d_model: usize) -> RankPolicy {
    RankPolicy::dense_only(scale_rank(800, 2048, d_model))
}

/// DeepSeek MiLo-s2: `Dense-1024 + Frequency-32` (paper Table 5), scaled.
pub fn deepseek_s2(d_model: usize) -> RankPolicy {
    RankPolicy::composite(
        scale_rank(1024, 2048, d_model),
        SparseAllocation::Frequency { avg_rank: scale_rank(32, 2048, d_model) },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_proportional_with_floor() {
        assert_eq!(scale_rank(512, 4096, 256), 32);
        assert_eq!(scale_rank(1024, 4096, 256), 64);
        assert_eq!(scale_rank(16, 4096, 256), 2); // floored from 1
        assert_eq!(scale_rank(0, 4096, 256), 0);
        assert_eq!(scale_rank(512, 4096, 4096), 512); // identity at full size
    }

    #[test]
    fn s2_is_strictly_larger_than_s1() {
        let s1 = mixtral_s1(256);
        let s2 = mixtral_s2(256);
        assert!(s2.dense_rank > s1.dense_rank);
        let avg = |p: &RankPolicy| match p.sparse {
            SparseAllocation::Kurtosis { avg_rank } => avg_rank,
            _ => 0,
        };
        assert!(avg(&s2) >= avg(&s1));
    }

    #[test]
    fn deepseek_s1_is_dense_only() {
        let p = deepseek_s1(192);
        assert!(matches!(p.sparse, SparseAllocation::None));
        assert_eq!(p.dense_rank, 75);
    }

    #[test]
    fn deepseek_s2_uses_frequency() {
        let p = deepseek_s2(192);
        assert!(matches!(p.sparse, SparseAllocation::Frequency { .. }));
    }
}
