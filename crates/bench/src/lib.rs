//! Shared infrastructure for the experiment regenerators.
//!
//! Every table and figure in the paper's evaluation has a binary under
//! `src/bin/` (see `DESIGN.md` §4 for the index). This library holds what
//! they share: a small CLI-flag parser, the baseline/MiLo method runners,
//! and the scaled s1/s2 rank strategies of paper Table 5.

#![warn(missing_docs)]

pub mod args;
pub mod methods;
pub mod strategies;

pub use args::Args;
pub use methods::{run_gptq, run_milo, run_rtn, CompressionOutcome};
pub use strategies::{deepseek_s1, deepseek_s2, mixtral_s1, mixtral_s2, scale_rank};

use milo_eval::EvalConfig;
use milo_moe::MoeConfig;

/// Standard experiment setup derived from CLI flags: the two evaluation
/// models and the evaluation workload.
#[derive(Debug, Clone)]
pub struct Setup {
    /// Scaled Mixtral-like configuration.
    pub mixtral: MoeConfig,
    /// Scaled DeepSeek-like configuration.
    pub deepseek: MoeConfig,
    /// Evaluation workload sizes.
    pub eval: EvalConfig,
    /// Model synthesis seed.
    pub seed: u64,
    /// Worker threads for layer-parallel compression.
    pub threads: usize,
}

impl Setup {
    /// Builds the setup from parsed flags.
    ///
    /// Three sizes, tuned for the machine this reproduction targets
    /// (single-core CPU):
    /// * default — half-scale models, 6 layers: every experiment finishes
    ///   in minutes while preserving all orderings;
    /// * `--fast` — smoke-test size;
    /// * `--full` — the DESIGN.md §5 configuration (8 layers, full scaled
    ///   dimensions), for machines with more cores/time.
    ///
    /// `--scale f` overrides the dimension scale in any mode.
    pub fn from_args(args: &Args) -> Self {
        let fast = args.flag("fast");
        let full = args.flag("full");
        let scale = args.get_f32("scale").unwrap_or(if full { 1.0 } else { 0.5 });
        let seed = args.get_u64("seed").unwrap_or(2025);
        let threads = args
            .get_u64("threads")
            .map(|t| t as usize)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4));
        let mut mixtral = MoeConfig::mixtral_like().scaled(scale);
        let mut deepseek = MoeConfig::deepseek_like().scaled(scale);
        let eval = if fast {
            mixtral.n_layers = 3;
            deepseek.n_layers = 3;
            EvalConfig { n_seqs: 6, seq_len: 20, corpus_seed: 2024, task_prompts: 16 }
        } else if full {
            EvalConfig { n_seqs: 12, seq_len: 32, corpus_seed: 2024, task_prompts: 40 }
        } else {
            mixtral.n_layers = 6;
            deepseek.n_layers = 6;
            EvalConfig { n_seqs: 16, seq_len: 24, corpus_seed: 2024, task_prompts: 32 }
        };
        Self { mixtral, deepseek, eval, seed, threads }
    }
}

/// Prints the standard experiment banner: what is being regenerated and
/// what the paper reported, so the output reads side-by-side.
pub fn banner(id: &str, paper_summary: &str) {
    println!("=== {id} ===");
    println!("Paper reference: {paper_summary}");
    println!(
        "(Synthetic substrate: absolute values differ from the paper; \
         orderings and trends are the reproduction target. See EXPERIMENTS.md.)\n"
    );
}
