//! Regenerates paper Fig. 10: ablation of the MiLo Asymmetric Kernel's
//! optimizations (asynchronous global weight load, MiLo Dequant,
//! MoE-specific tile-shape tuning) on the MLP layers of five model
//! shapes at batch size 16, group size 64.
//!
//! Run: `cargo run --release -p milo-bench --bin fig10_ablation`

use milo_bench::banner;
use milo_eval::Table;
use milo_gpu_sim::{gemm_time, mlp_shapes, Device, KernelConfig, KernelKind, MlpModel, Optimizations};

fn mlp_time(dev: &Device, opts: Optimizations, model: MlpModel) -> f64 {
    let cfg = KernelConfig { kind: KernelKind::MiloAsym, opts };
    mlp_shapes(model, 16)
        .into_iter()
        .map(|s| gemm_time(dev, &cfg, s).expect("MiLo kernel supports batched GEMM"))
        .sum()
}

fn main() {
    banner(
        "Figure 10: ablation of MiLo kernel optimizations (batch 16)",
        "(1) async global weight load is the most critical everywhere; (2) MiLo Dequant \
         grows in importance with MLP size; (3) tile-shape tuning matters for small MLPs \
         (DeepSeek-MoE) and fades for large ones",
    );

    let dev = Device::a100_40gb();
    let base = Optimizations::default();
    let variants: [(&str, Optimizations); 4] = [
        ("Baseline (all opts)", base),
        ("- Async weight load", Optimizations { async_load: false, ..base }),
        ("- MiLo Dequant", Optimizations { milo_dequant: false, ..base }),
        ("- Tile shape tuning", Optimizations { tile_tuning: false, ..base }),
    ];

    let mut t = Table::new(
        std::iter::once("configuration".to_string())
            .chain(MlpModel::all().iter().map(|m| m.name().to_string())),
    );
    let mut rel = Table::new(
        std::iter::once("relative throughput".to_string())
            .chain(MlpModel::all().iter().map(|m| m.name().to_string())),
    );
    for (name, opts) in variants {
        let mut row = vec![name.to_string()];
        let mut rel_row = vec![name.to_string()];
        for model in MlpModel::all() {
            let time = mlp_time(&dev, opts, model);
            let baseline = mlp_time(&dev, base, model);
            row.push(format!("{:.1} us", time * 1e6));
            rel_row.push(format!("{:.2}", baseline / time));
        }
        t.push_row(row);
        rel.push_row(rel_row);
    }
    println!("Predicted MLP time (lower is better):\n{}", t.render());
    println!(
        "Throughput relative to the full baseline (1.00 = no loss; models ordered \
         smallest MLP -> largest):\n{}",
        rel.render()
    );
}
