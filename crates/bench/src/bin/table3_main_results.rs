//! Regenerates paper Table 3 — the main evaluation: RTN, GPTQ, HQQ,
//! MiLo-s1, and MiLo-s2 on both models, reporting compressed memory,
//! perplexity, the three zero-shot proxy tasks with their average, and
//! the two few-shot proxy tasks.
//!
//! Also prints the Table 5 rank-strategy definitions (scaled).
//!
//! Run: `cargo run --release -p milo-bench --bin table3_main_results [--fast]`

use milo_bench::methods::{run_gptq_full, run_milo, CompressionOutcome};
use milo_bench::{
    banner, deepseek_s1, deepseek_s2, mixtral_s1, mixtral_s2, run_rtn, Args, Setup,
};
use milo_core::{MiloOptions, RankPolicy};
use milo_eval::{generate_corpus, EvalContext, MethodResult, Table};
use milo_moe::{profile_expert_frequency, MoeModel};
use milo_quant::QuantConfig;

fn main() {
    banner(
        "Table 3: main evaluation (W3A16, group 64)",
        "Mixtral: RTN 4.81 / GPTQ 4.73 / HQQ 4.61 / MiLo-s1 4.03 / MiLo-s2 3.91 PPL with \
         MiLo winning every task; DeepSeek: RTN 7.33 / GPTQ 6.82 / HQQ 7.08 / MiLo-s1 6.42 \
         / MiLo-s2 6.26. MiLo adds only a few % memory over HQQ.",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let calib_seqs = if args.flag("fast") { 24 } else if args.flag("full") { 64 } else { 40 };
    let milo_opts = MiloOptions::default();

    let mut strategies = Table::new(["model", "strategy", "rank policy (scaled from paper Table 5)"]);
    strategies.push_row([
        "Mixtral-like".to_string(),
        "MiLo-s1".to_string(),
        format!("{:?}", mixtral_s1(setup.mixtral.d_model)),
    ]);
    strategies.push_row([
        "Mixtral-like".to_string(),
        "MiLo-s2".to_string(),
        format!("{:?}", mixtral_s2(setup.mixtral.d_model)),
    ]);
    strategies.push_row([
        "DeepSeek-like".to_string(),
        "MiLo-s1".to_string(),
        format!("{:?}", deepseek_s1(setup.deepseek.d_model)),
    ]);
    strategies.push_row([
        "DeepSeek-like".to_string(),
        "MiLo-s2".to_string(),
        format!("{:?}", deepseek_s2(setup.deepseek.d_model)),
    ]);
    println!("Table 5 — rank strategies:\n{}", strategies.render());

    for (cfg, s1, s2) in [
        (&setup.mixtral, mixtral_s1(setup.mixtral.d_model), mixtral_s2(setup.mixtral.d_model)),
        (&setup.deepseek, deepseek_s1(setup.deepseek.d_model), deepseek_s2(setup.deepseek.d_model)),
    ] {
        let reference = MoeModel::synthesize(cfg, setup.seed);
        eprintln!("[{}] preparing evaluation context...", cfg.name);
        let ctx = EvalContext::prepare(&reference, &setup.eval).expect("eval context");
        let profile_corpus = generate_corpus(&reference, 8, 32, setup.seed ^ 0xf3e9)
            .expect("profiling corpus");
        let profile =
            profile_expert_frequency(&reference, &profile_corpus).expect("profiling");
        let calib_corpus = generate_corpus(&reference, calib_seqs, 48, setup.seed ^ 0xca11b)
            .expect("calibration corpus");

        let int3 = QuantConfig::int3_asym();
        let methods: Vec<(&str, CompressionOutcome)> = vec![
            ("RTN", run_rtn(&reference, &int3).expect("rtn")),
            ("GPTQ", run_gptq_full(&reference, &int3, &calib_corpus, setup.seed).expect("gptq")),
            (
                "HQQ",
                run_milo(&reference, None, &RankPolicy::uniform(0), &milo_opts, setup.threads)
                    .expect("hqq"),
            ),
            (
                "MiLo-s1",
                run_milo(&reference, Some(&profile), &s1, &milo_opts, setup.threads)
                    .expect("milo s1"),
            ),
            (
                "MiLo-s2",
                run_milo(&reference, Some(&profile), &s2, &milo_opts, setup.threads)
                    .expect("milo s2"),
            ),
        ];

        let mut t = Table::new([
            "W3A16", "Memory(MB)", "PPL", "HellaSwag", "Lambada", "PIQA", "Avg", "MMLU",
            "TriQA",
        ]);
        let mut results: Vec<MethodResult> = Vec::new();
        for (name, out) in &methods {
            eprintln!("[{}] evaluating {name}...", cfg.name);
            let r = ctx
                .evaluate(*name, &out.model, out.memory_bytes, out.seconds)
                .expect("evaluation");
            let score = |task: &str| format!("{:.2}", r.score(task).unwrap_or(0.0));
            t.push_row([
                r.name.clone(),
                format!("{:.1}", r.memory_bytes as f64 / 1e6),
                format!("{:.4}", r.ppl),
                score("HellaSwag"),
                score("Lambada"),
                score("PIQA"),
                format!("{:.2}", r.zero_shot_avg()),
                score("MMLU"),
                score("TriQA"),
            ]);
            results.push(r);
        }
        println!("{} (FP16 reference memory: {:.1} MB)\n{}", cfg.name, cfg.fp16_bytes() as f64 / 1e6, t.render());

        let ppl = |name: &str| results.iter().find(|r| r.name == name).unwrap().ppl;
        println!(
            "Shape check [{}]: MiLo-s2 ({:.4}) < MiLo-s1 ({:.4}) < best baseline ({:.4})\n",
            cfg.name,
            ppl("MiLo-s2"),
            ppl("MiLo-s1"),
            ["RTN", "GPTQ", "HQQ"].iter().map(|m| ppl(m)).fold(f32::INFINITY, f32::min),
        );
    }
}
