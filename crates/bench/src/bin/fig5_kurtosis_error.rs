//! Regenerates paper Fig. 5: the correlation between a weight matrix's
//! excess kurtosis and its relative quantization error
//! `‖W − W_dq‖_F / ‖W‖_F` under INT3, over the weight matrices of layer
//! 1 of the DeepSeek-like model.
//!
//! Run: `cargo run --release -p milo-bench --bin fig5_kurtosis_error`

use milo_bench::{banner, Args, Setup};
use milo_eval::par::par_map;
use milo_eval::Table;
use milo_moe::{layer_tensors, MoeModel};
use milo_quant::{hqq_quantize, HqqOptions, QuantConfig};
use milo_tensor::stats;

/// Pearson correlation coefficient.
fn pearson(xs: &[f32], ys: &[f32]) -> f32 {
    let n = xs.len() as f64;
    let mx = xs.iter().map(|&v| v as f64).sum::<f64>() / n;
    let my = ys.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x as f64 - mx;
        let dy = y as f64 - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    (cov / (vx * vy).sqrt().max(1e-12)) as f32
}

fn main() {
    banner(
        "Figure 5: relative quantization error vs kurtosis (DeepSeek layer 1)",
        "positive correlation: heavier-tailed (higher-kurtosis) weight matrices suffer \
         larger relative Frobenius error under extreme quantization",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);

    let model = MoeModel::synthesize(&setup.deepseek, setup.seed);
    let tensors: Vec<_> = layer_tensors(&model, None)
        .into_iter()
        .filter(|t| t.name.starts_with("layer1."))
        .collect();

    let cfg = QuantConfig::int3_asym();
    let hqq = HqqOptions::default();
    let points = par_map(tensors.len(), |i| {
        let t = &tensors[i];
        let dq = hqq_quantize(&t.weight, &cfg, &hqq).expect("hqq succeeds").dequantize();
        let err = stats::relative_frobenius_error(&t.weight, &dq);
        (t.name.clone(), t.meta.kurtosis, err)
    });

    let mut t = Table::new(["weight", "kurtosis", "relative F-norm error"]);
    for (name, k, e) in &points {
        t.push_row([name.clone(), format!("{k:+.3}"), format!("{e:.4}")]);
    }
    println!("{}", t.render());

    let ks: Vec<f32> = points.iter().map(|p| p.1).collect();
    let es: Vec<f32> = points.iter().map(|p| p.2).collect();
    let r = pearson(&ks, &es);
    println!("Pearson correlation (kurtosis vs relative error): {r:+.3}");
    println!("Shape check: the paper's Fig. 5 shows a clearly positive correlation.");
}
