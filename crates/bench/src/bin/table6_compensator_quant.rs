//! Regenerates paper Table 6: INT8 vs INT3 quantization of the low-rank
//! compensators on the Mixtral-like model across uniform ranks —
//! compensator memory and perplexity.
//!
//! Run: `cargo run --release -p milo-bench --bin table6_compensator_quant [--fast]`

use milo_bench::methods::run_milo;
use milo_bench::{banner, scale_rank, Args, Setup};
use milo_core::{MiloOptions, RankPolicy};
use milo_eval::{EvalContext, Table};
use milo_moe::MoeModel;
use milo_quant::{QuantConfig, Scheme};

fn main() {
    banner(
        "Table 6: INT8 vs INT3 low-rank compensators (Mixtral)",
        "INT3 compensators use 37.5% of INT8's memory at a ~0.2% perplexity cost: rank 16 \
         296MB/4.5014 (INT8) vs 106MB/4.5084 (INT3); rank 32 525/4.4682 vs 212/4.4786; \
         rank 64 983/4.4054 vs 424/4.4174",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let opts_base = MiloOptions::default();
    // Paper ranks 16/32/64 at d=4096. Proportional scaling collapses the
    // small synthetic dimensions onto the rank floor, so preserve the
    // paper's 1:2:4 ladder anchored at a rank that is meaningful for the
    // model size (≥ 4).
    let base = scale_rank(16, 4096, setup.mixtral.d_model).max(4);
    let ranks: Vec<usize> = vec![base, base * 2, base * 4];

    let reference = MoeModel::synthesize(&setup.mixtral, setup.seed);
    eprintln!("preparing evaluation context...");
    let ctx = EvalContext::prepare(&reference, &setup.eval).expect("eval context");

    let int8 = QuantConfig::new(8, 64, Scheme::Symmetric).expect("valid config");
    let int3 = QuantConfig::int3_sym();

    let mut t = Table::new([
        "Rank",
        "INT8 comp MB",
        "INT3 comp MB",
        "INT8 PPL",
        "INT3 PPL",
        "memory ratio",
    ]);
    for &rank in &ranks {
        let mut row = vec![rank.to_string()];
        let mut mems = Vec::new();
        let mut ppls = Vec::new();
        for cfg in [&int8, &int3] {
            eprintln!("rank {rank}, {:?}-bit compensators...", cfg.bits());
            let opts = MiloOptions { compensator_cfg: Some(*cfg), ..opts_base };
            let out = run_milo(&reference, None, &RankPolicy::uniform(rank), &opts, setup.threads)
                .expect("milo");
            mems.push(out.compressed.compensator_bytes() as f64 / 1e6);
            let r = ctx
                .evaluate("x", &out.model, out.memory_bytes, out.seconds)
                .expect("evaluation");
            ppls.push(r.ppl);
        }
        row.push(format!("{:.2}", mems[0]));
        row.push(format!("{:.2}", mems[1]));
        row.push(format!("{:.4}", ppls[0]));
        row.push(format!("{:.4}", ppls[1]));
        row.push(format!("{:.3}", mems[1] / mems[0]));
        t.push_row(row);
    }
    println!("{}", t.render());
    println!(
        "Shape check: INT3 compensators should use ~0.38-0.45x of INT8's memory with only\n\
         a small perplexity penalty, and higher ranks should lower perplexity for both."
    );
}
