//! Regenerates paper Fig. 7: the Frobenius-norm error ε_t (Eq. 13)
//! versus outer iteration of the MiLo optimizer, for an attention matrix
//! and an expert matrix.
//!
//! Run: `cargo run --release -p milo-bench --bin fig7_convergence`

use milo_bench::{banner, Args, Setup};
use milo_core::{milo_compress, MiloOptions};
use milo_eval::Table;
use milo_moe::{FfnBlock, MoeModel};

fn main() {
    banner(
        "Figure 7: MiLo convergence (epsilon_t vs iteration)",
        "the F-norm error decreases monotonically and converges at around 10 iterations, \
         for both attention and expert matrices",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let iters = args.get_u64("iters").unwrap_or(20) as usize;
    let rank = args.get_u64("rank").unwrap_or(16) as usize;

    let model = MoeModel::synthesize(&setup.mixtral, setup.seed);
    let attn = model.layers[0].attn.wq.clone();
    let expert = match &model.layers[0].ffn {
        FfnBlock::Moe(moe) => moe.experts[0].w1.clone(),
        FfnBlock::Dense(mlp) => mlp.w1.clone(),
    };

    // Disable the stop condition so the full curve is visible
    // (rel_tol = 0 never triggers Eq. 14).
    let opts = MiloOptions {
        max_iters: iters,
        rel_tol: 0.0,
        compensator_cfg: None,
        ..MiloOptions::default()
    };

    let attn_run = milo_compress(&attn, rank.min(attn.rows().min(attn.cols())), &opts)
        .expect("milo on attention");
    let exp_run = milo_compress(&expert, rank.min(expert.rows().min(expert.cols())), &opts)
        .expect("milo on expert");

    let n = attn_run.convergence.len().max(exp_run.convergence.len());
    let mut t = Table::new(["iteration", "attention eps_t", "expert eps_t"]);
    for i in 0..n {
        let cell = |v: Option<&f32>| v.map_or("-".to_string(), |x| format!("{x:.5}"));
        t.push_row([
            (i + 1).to_string(),
            cell(attn_run.convergence.get(i)),
            cell(exp_run.convergence.get(i)),
        ]);
    }
    println!("{}", t.render());

    for (name, run) in [("attention", &attn_run), ("expert", &exp_run)] {
        let first = run.convergence[0];
        let last = *run.convergence.last().unwrap();
        println!(
            "{name}: eps_1 = {first:.5} -> eps_{} = {last:.5} ({:.1}% reduction)",
            run.convergence.len(),
            100.0 * (first - last) / first
        );
    }
    println!("Shape check: both curves should trend down and flatten within ~10 iterations.");
}
