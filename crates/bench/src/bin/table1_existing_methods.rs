//! Regenerates paper Table 1: quantization time and perplexity of the
//! existing methods (RTN, GPTQ) at FP16 / INT4 / INT3 on both models —
//! the motivating observation that INT4 is nearly free but INT3 is not.
//!
//! Run: `cargo run --release -p milo-bench --bin table1_existing_methods [--fast]`

use milo_bench::methods::run_gptq_full;
use milo_bench::{banner, run_rtn, Args, Setup};
use milo_eval::{generate_corpus, perplexity, Table};
use milo_moe::MoeModel;
use milo_quant::QuantConfig;

fn main() {
    banner(
        "Table 1: existing quantization methods (quant time + perplexity)",
        "Mixtral: FP16 3.42, RTN INT4 3.63 / INT3 4.81, GPTQ INT4 3.63 / INT3 4.61; \
         DeepSeek: FP16 5.83, RTN 6.04/7.32, GPTQ 6.02/7.08; GPTQ is ~15-35x slower \
         to quantize than RTN. INT4 is nearly lossless, INT3 is not.",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let calib_seqs = if args.flag("fast") { 24 } else if args.flag("full") { 64 } else { 40 };

    let mut t = Table::new([
        "model",
        "method",
        "quant time (s)",
        "PPL FP16",
        "PPL INT4",
        "PPL INT3",
    ]);

    for cfg in [&setup.mixtral, &setup.deepseek] {
        let reference = MoeModel::synthesize(cfg, setup.seed);
        let corpus = generate_corpus(&reference, setup.eval.n_seqs, setup.eval.seq_len, setup.eval.corpus_seed)
            .expect("corpus generation");
        let calib_corpus = generate_corpus(&reference, calib_seqs, 48, setup.seed ^ 0xca11b)
            .expect("calibration corpus");
        let ppl_fp16 = perplexity(&reference, &corpus).expect("fp16 ppl");

        for method in ["RTN", "GPTQ"] {
            let mut ppl = Vec::new();
            let mut secs = 0.0;
            for bits_cfg in [QuantConfig::int4_asym(), QuantConfig::int3_asym()] {
                let out = match method {
                    "RTN" => run_rtn(&reference, &bits_cfg).expect("rtn"),
                    _ => run_gptq_full(&reference, &bits_cfg, &calib_corpus, setup.seed).expect("gptq"),
                };
                secs += out.seconds;
                ppl.push(perplexity(&out.model, &corpus).expect("ppl"));
            }
            t.push_row([
                cfg.name.clone(),
                method.to_string(),
                format!("{secs:.1}"),
                format!("{ppl_fp16:.3}"),
                format!("{:.3}", ppl[0]),
                format!("{:.3}", ppl[1]),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Shape check: per model, PPL(FP16) <= PPL(INT4) << PPL(INT3); GPTQ's INT3 PPL is\n\
         a bit better than RTN's but its quantization time is an order of magnitude higher."
    );
}
