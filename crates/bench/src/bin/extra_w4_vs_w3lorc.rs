//! Extension experiment: INT4 versus INT3 + low-rank compensators at
//! *matched memory*.
//!
//! The paper's Fig. 4 shows INT3+LoRC recovering most of the information
//! INT4 preserves, at lower cost; its Tables 1/3 report both settings
//! but at different memory budgets. This binary makes the comparison
//! explicit: give the INT3 model exactly the memory INT4 saves back as
//! compensator budget (allocated adaptively, dense-first), and compare.
//!
//! Run: `cargo run --release -p milo-bench --bin extra_w4_vs_w3lorc [--fast]`

use milo_bench::methods::run_milo;
use milo_bench::{banner, Args, Setup};
use milo_core::policy::compensator_memory_bytes;
use milo_core::{MiloOptions, RankPolicy, SparseAllocation};
use milo_eval::{generate_corpus, EvalContext, Table};
use milo_moe::{layer_tensors, profile_expert_frequency, MoeModel};
use milo_quant::QuantConfig;

fn main() {
    banner(
        "Extension: INT4 vs INT3 + compensators at matched memory",
        "the paper's information-loss analysis (Fig. 4) positions INT3+LoRC as recovering \
         most of INT4's advantage; this experiment fixes the memory budget and lets the \
         compensators spend the difference adaptively",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);

    let reference = MoeModel::synthesize(&setup.mixtral, setup.seed);
    eprintln!("preparing evaluation context...");
    let ctx = EvalContext::prepare(&reference, &setup.eval).expect("eval context");
    let corpus = generate_corpus(&reference, 8, 32, setup.seed ^ 0xf3e9).expect("corpus");
    let profile = profile_expert_frequency(&reference, &corpus).expect("profile");

    // INT4 baseline (calibration-free HQQ, like the paper's W4 rows).
    eprintln!("HQQ INT4...");
    let int4_opts = MiloOptions { quant: QuantConfig::int4_asym(), ..MiloOptions::default() };
    let int4 =
        run_milo(&reference, None, &RankPolicy::uniform(0), &int4_opts, setup.threads)
            .expect("int4");

    // INT3 + compensators sized to the same total memory: sweep the dense
    // rank (with a small kurtosis-weighted expert budget) until the
    // planned compensator memory fills INT4's surplus.
    eprintln!("HQQ INT3 (no compensators)...");
    let int3 = run_milo(
        &reference,
        None,
        &RankPolicy::uniform(0),
        &MiloOptions::default(),
        setup.threads,
    )
    .expect("int3");
    let budget = int4.memory_bytes.saturating_sub(int3.memory_bytes);

    let tensors = layer_tensors(&reference, Some(&profile));
    let metas: Vec<_> = tensors.iter().map(|t| t.meta).collect();
    let comp_cfg = QuantConfig::int3_sym();
    let mut chosen = RankPolicy::dense_only(2);
    for dense in (2..=setup.mixtral.d_model).rev() {
        let policy =
            RankPolicy::composite(dense, SparseAllocation::Kurtosis { avg_rank: 2 });
        let ranks = policy.assign(&metas).expect("assign");
        if compensator_memory_bytes(&metas, &ranks, Some(&comp_cfg)) <= budget {
            chosen = policy;
            break;
        }
    }
    eprintln!("MiLo INT3 with {chosen:?} (budget {} KB)...", budget / 1000);
    let milo = run_milo(&reference, Some(&profile), &chosen, &MiloOptions::default(), setup.threads)
        .expect("milo");

    let mut t = Table::new(["configuration", "memory (MB)", "PPL", "zero-shot avg (%)", "MMLU (%)"]);
    for (name, out) in [
        ("HQQ INT4", &int4),
        ("HQQ INT3 (no comp)", &int3),
        ("MiLo INT3 + comp (matched)", &milo),
    ] {
        eprintln!("evaluating {name}...");
        let r = ctx.evaluate(name, &out.model, out.memory_bytes, out.seconds).expect("eval");
        t.push_row([
            name.to_string(),
            format!("{:.2}", out.memory_bytes as f64 / 1e6),
            format!("{:.3}", r.ppl),
            format!("{:.2}", r.zero_shot_avg()),
            format!("{:.2}", r.score("MMLU").unwrap_or(0.0)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: the compensated INT3 model should recover a large share of the \
         INT4-vs-INT3 perplexity gap while staying within the INT4 memory budget; the \
         interesting question (left open by the paper) is whether adaptive allocation \
         closes it entirely. Either outcome is reported honestly above."
    );
}
