//! Regenerates paper Fig. 3: the heatmap of expert activation frequency
//! per layer for both models on a synthetic corpus, plus the max/min
//! imbalance ratios (the paper quotes 11.7× for DeepSeek-MoE).
//!
//! Run: `cargo run --release -p milo-bench --bin fig3_expert_frequency [--fast]`

use milo_bench::{banner, Args, Setup};
use milo_eval::generate_corpus;
use milo_moe::{profile_expert_frequency, MoeModel};

fn heat_char(frac: f32, max: f32) -> char {
    const RAMP: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];
    if max <= 0.0 {
        return ' ';
    }
    let idx = ((frac / max) * (RAMP.len() - 1) as f32).round() as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

fn main() {
    banner(
        "Figure 3: expert activation frequency heatmap",
        "expert usage is uneven, especially for DeepSeek-MoE's fine-grained experts: the \
         most-used expert fires 11.7x more often than the least-used in the same layer",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let (n_seqs, seq_len) = if args.flag("fast") { (6, 24) } else { (16, 48) };

    for cfg in [&setup.mixtral, &setup.deepseek] {
        let model = MoeModel::synthesize(cfg, setup.seed);
        let corpus =
            generate_corpus(&model, n_seqs, seq_len, setup.seed ^ 0x5eed).expect("corpus");
        let profile = profile_expert_frequency(&model, &corpus).expect("profiling succeeds");

        println!("{} — rows = layers (top→bottom), cols = experts:", cfg.name);
        let fmt_ratio = |r: f32, freqs: &[f32]| {
            if r.is_finite() {
                format!("{r:.1}")
            } else {
                // Some experts never fired on this corpus; report against
                // the mean instead of the (zero) minimum.
                let mean = freqs.iter().sum::<f32>() / freqs.len() as f32;
                let max = freqs.iter().cloned().fold(0.0f32, f32::max);
                format!(">{:.0} (some experts unused; max/mean {:.1})", freqs.len(), max / mean)
            }
        };
        for (li, freqs) in profile.per_layer.iter().enumerate() {
            if freqs.is_empty() {
                println!("  layer {li:>2} | (dense FFN layer)");
                continue;
            }
            let max = freqs.iter().cloned().fold(0.0f32, f32::max);
            let row: String = freqs.iter().map(|&f| heat_char(f, max)).collect();
            println!(
                "  layer {li:>2} |{row}|  max/min ratio {}",
                fmt_ratio(profile.imbalance_ratio(li), freqs)
            );
        }
        let finite_worst = (0..profile.per_layer.len())
            .filter(|&l| !profile.per_layer[l].is_empty())
            .map(|l| profile.imbalance_ratio(l))
            .filter(|r| r.is_finite())
            .fold(1.0f32, f32::max);
        println!(
            "  worst finite layer imbalance: {finite_worst:.1}x \
             (paper: Mixtral mild, DeepSeek ~11.7x)\n"
        );
    }
}
