//! Regenerates paper Table 4 (and its Appendix E expansion, Table 8):
//! rank-strategy comparison with MiLo iterations fixed to 1.
//!
//! Left half — *model-structure* strategies under a shared memory
//! budget: Uniform vs Dense vs Sparse. Right half — *sparse-layer*
//! strategies with the dense rank fixed: Uniform vs Kurtosis vs
//! Frequency.
//!
//! Run: `cargo run --release -p milo-bench --bin table4_rank_strategies [--fast]`

use milo_bench::methods::run_milo;
use milo_bench::{banner, scale_rank, Args, Setup};
use milo_core::policy::compensator_memory_bytes;
use milo_core::{MiloOptions, RankPolicy, SparseAllocation};
use milo_eval::{generate_corpus, EvalContext, Table};
use milo_moe::{layer_tensors, profile_expert_frequency, MoeModel};

fn main() {
    banner(
        "Table 4 / Table 8: rank strategy comparison (1 MiLo iteration)",
        "under a memory budget, Dense-512 wins over Uniform and Sparse on both models \
         (Mixtral PPL 4.17 vs 4.53/4.60); with dense rank fixed, Kurtosis-r beats \
         Uniform-r and Frequency-r on Mixtral, and Frequency is competitive on DeepSeek",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    // One MiLo iteration isolates the rank strategy from the iterative
    // optimization (paper §4.2).
    let opts = MiloOptions { max_iters: 1, ..MiloOptions::default() };

    for (cfg, paper_dim) in [(&setup.mixtral, 4096usize), (&setup.deepseek, 2048)] {
        let reference = MoeModel::synthesize(cfg, setup.seed);
        eprintln!("[{}] preparing evaluation context...", cfg.name);
        let ctx = EvalContext::prepare(&reference, &setup.eval).expect("eval context");
        let corpus = generate_corpus(&reference, 8, 32, setup.seed ^ 0xf3e9).expect("corpus");
        let profile = profile_expert_frequency(&reference, &corpus).expect("profile");
        let d = cfg.d_model;

        // --- Left half: model-structure strategies under one budget. ---
        // Scale the paper's named settings (Mixtral: Uniform-28 /
        // Dense-512 / Sparse-32; DeepSeek: Uniform-22 / Dense-512 /
        // Sparse-24).
        let (u, dn, sp) = if paper_dim == 4096 {
            (scale_rank(28, 4096, d), scale_rank(512, 4096, d), scale_rank(32, 4096, d))
        } else {
            (scale_rank(22, 2048, d), scale_rank(512, 2048, d), scale_rank(24, 2048, d))
        };
        let structure: Vec<(String, RankPolicy)> = vec![
            (format!("Uniform-{u}"), RankPolicy::uniform(u)),
            (format!("Dense-{dn}"), RankPolicy::dense_only(dn)),
            (format!("Sparse-{sp}"), RankPolicy::sparse_only(sp)),
        ];

        // --- Right half: sparse strategies with dense rank fixed. ---
        let fixed_dense = scale_rank(512, paper_dim, d);
        let avg = scale_rank(if paper_dim == 4096 { 32 } else { 16 }, paper_dim, d).max(4);
        let sparse: Vec<(String, RankPolicy)> = vec![
            (
                format!("Dense-{fixed_dense} + Uniform-{avg}"),
                RankPolicy::composite(fixed_dense, SparseAllocation::Uniform(avg)),
            ),
            (
                format!("Dense-{fixed_dense} + Kurtosis-{avg}"),
                RankPolicy::composite(fixed_dense, SparseAllocation::Kurtosis { avg_rank: avg }),
            ),
            (
                format!("Dense-{fixed_dense} + Frequency-{avg}"),
                RankPolicy::composite(fixed_dense, SparseAllocation::Frequency { avg_rank: avg }),
            ),
        ];

        let metas: Vec<_> =
            layer_tensors(&reference, Some(&profile)).iter().map(|t| t.meta).collect();

        for (title, group) in
            [("Model-structure strategies (memory budget)", &structure), ("Sparse-layer strategies (dense rank fixed)", &sparse)]
        {
            let mut t = Table::new([
                "Rank strategy",
                "Compensator MB",
                "PPL",
                "HellaSwag",
                "Lambada",
                "PIQA",
                "MMLU",
                "TriQA",
            ]);
            for (name, policy) in group {
                eprintln!("[{}] running {name}...", cfg.name);
                let ranks = policy.assign(&metas).expect("rank assignment");
                let comp_mb = compensator_memory_bytes(
                    &metas,
                    &ranks,
                    Some(&milo_quant::QuantConfig::int3_sym()),
                ) as f64
                    / 1e6;
                let out = run_milo(&reference, Some(&profile), policy, &opts, setup.threads)
                    .expect("milo");
                let r = ctx.evaluate(name.clone(), &out.model, out.memory_bytes, out.seconds)
                    .expect("evaluation");
                let score = |task: &str| format!("{:.2}", r.score(task).unwrap_or(0.0));
                t.push_row([
                    name.clone(),
                    format!("{comp_mb:.2}"),
                    format!("{:.4}", r.ppl),
                    score("HellaSwag"),
                    score("Lambada"),
                    score("PIQA"),
                    score("MMLU"),
                    score("TriQA"),
                ]);
            }
            println!("{} — {title}:\n{}", cfg.name, t.render());
        }
    }
    println!(
        "Shape check: Dense wins the structure comparison on both models; with the dense\n\
         rank fixed, Kurtosis leads on the Mixtral-like model and Frequency is strongest\n\
         on models with unbalanced experts (DeepSeek-like)."
    );
}
