//! Regenerates paper Fig. 8: quantization time vs MMLU accuracy for
//! RTN, HQQ, GPTQ, and MiLo (20 iterations) on the Mixtral-like model.
//!
//! Run: `cargo run --release -p milo-bench --bin fig8_time_vs_accuracy [--fast]`

use milo_bench::methods::{run_gptq_full, run_milo};
use milo_bench::{banner, mixtral_s1, run_rtn, Args, Setup};
use milo_core::{MiloOptions, RankPolicy};
use milo_eval::{generate_corpus, EvalContext, Table};
use milo_moe::{profile_expert_frequency, MoeModel};
use milo_quant::QuantConfig;

fn main() {
    banner(
        "Figure 8: quantization time vs MMLU accuracy (Mixtral)",
        "MiLo delivers the best accuracy at ~3x less quantization time than GPTQ; it is \
         slower than the other calibration-free methods (RTN, HQQ) but stays in an \
         acceptable timeframe",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let calib_seqs = if args.flag("fast") { 24 } else if args.flag("full") { 64 } else { 40 };

    let reference = MoeModel::synthesize(&setup.mixtral, setup.seed);
    eprintln!("preparing evaluation context...");
    let ctx = EvalContext::prepare(&reference, &setup.eval).expect("eval context");
    let corpus = generate_corpus(&reference, 8, 32, setup.seed ^ 0xf3e9).expect("corpus");
    let profile = profile_expert_frequency(&reference, &corpus).expect("profile");
    let calib_corpus = generate_corpus(&reference, calib_seqs, 48, setup.seed ^ 0xca11b)
        .expect("calibration corpus");

    let int3 = QuantConfig::int3_asym();
    let milo_opts = MiloOptions { max_iters: 20, ..MiloOptions::default() };
    let runs = vec![
        ("RTN", run_rtn(&reference, &int3).expect("rtn")),
        (
            "HQQ",
            run_milo(&reference, None, &RankPolicy::uniform(0), &MiloOptions::default(), setup.threads)
                .expect("hqq"),
        ),
        ("GPTQ", run_gptq_full(&reference, &int3, &calib_corpus, setup.seed).expect("gptq")),
        (
            "MiLo",
            run_milo(&reference, Some(&profile), &mixtral_s1(setup.mixtral.d_model), &milo_opts, setup.threads)
                .expect("milo"),
        ),
    ];

    let mut t = Table::new(["method", "quant time (s)", "MMLU (%)", "zero-shot avg (%)", "PPL"]);
    let mut points = Vec::new();
    for (name, out) in &runs {
        eprintln!("evaluating {name}...");
        let r = ctx.evaluate(*name, &out.model, out.memory_bytes, out.seconds).expect("eval");
        let mmlu = r.score("MMLU").unwrap_or(0.0);
        t.push_row([
            name.to_string(),
            format!("{:.2}", out.seconds),
            format!("{mmlu:.2}"),
            format!("{:.2}", r.zero_shot_avg()),
            format!("{:.3}", r.ppl),
        ]);
        points.push((name.to_string(), out.seconds, r.zero_shot_avg(), r.ppl));
    }
    println!("{}", t.render());

    let get = |n: &str| points.iter().find(|p| p.0 == n).cloned().unwrap();
    let (_, t_milo, avg_milo, ppl_milo) = get("MiLo");
    let (_, t_gptq, avg_gptq, ppl_gptq) = get("GPTQ");
    println!(
        "Shape check (paper: MiLo reaches the best accuracy at ~3x less quantization time \
         than GPTQ):\n  measured: MiLo {t_milo:.1}s / avg {avg_milo:.2}% / PPL {ppl_milo:.2} \
         vs GPTQ {t_gptq:.1}s / avg {avg_gptq:.2}% / PPL {ppl_gptq:.2}.\n  At this model \
         scale MiLo's 20 outer iterations can cost more than GPTQ's calibration (GPTQ's \
         cost grows much faster with model size), so the time ordering may differ from the \
         paper while the accuracy ordering should hold."
    );
}
