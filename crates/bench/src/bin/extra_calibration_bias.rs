//! Extension experiment (paper §1/§2 motivation, not a numbered figure):
//! demonstrate the *calibration bias* of GPTQ that motivates MiLo's
//! calibration-free design.
//!
//! GPTQ is quantized twice: once calibrated on a **narrow-domain**
//! corpus (sequences restricted to a quarter of the vocabulary — the
//! synthetic analogue of calibrating on a single-topic dataset) and once
//! on a **broad** corpus matching the deployment distribution. Both are
//! evaluated on broad data. The quality gap between the two runs is the
//! calibration bias; HQQ and MiLo consume no calibration data, so their
//! results cannot depend on this choice at all.
//!
//! Run: `cargo run --release -p milo-bench --bin extra_calibration_bias [--fast]`

use milo_bench::methods::{run_gptq_full, run_milo};
use milo_bench::{banner, mixtral_s1, Args, Setup};
use milo_core::{MiloOptions, RankPolicy};
use milo_eval::{generate_corpus, perplexity, Table};
use milo_moe::model::sample_from_logits;
use milo_moe::MoeModel;
use milo_quant::QuantConfig;
use milo_tensor::rng::StdRng;
use milo_tensor::rng::{Rng, SeedableRng};

/// Samples sequences whose tokens are restricted to `vocab_limit` —
/// a narrow "domain" inside the teacher's distribution.
fn narrow_corpus(
    teacher: &MoeModel,
    n: usize,
    len: usize,
    vocab_limit: u32,
    seed: u64,
) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut tokens = vec![rng.gen_range(0..vocab_limit)];
            for _ in 1..len {
                let logits = teacher.forward(&tokens).expect("teacher forward");
                let row = logits.row(tokens.len() - 1);
                // Mask the logits outside the domain before sampling.
                let masked: Vec<f32> = row
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| if (i as u32) < vocab_limit { l } else { f32::NEG_INFINITY })
                    .collect();
                tokens.push(sample_from_logits(&masked, 1.0, &mut rng));
            }
            tokens
        })
        .collect()
}

fn main() {
    banner(
        "Extension: GPTQ calibration bias vs calibration-free methods",
        "the paper motivates MiLo by the bias calibration introduces: GPTQ's quality \
         depends on its calibration corpus, while calibration-free methods cannot \
         depend on that choice",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let (n_cal, n_eval) = if args.flag("fast") { (12, 6) } else { (32, 14) };

    let reference = MoeModel::synthesize(&setup.mixtral, setup.seed);
    let vocab = setup.mixtral.vocab as u32;
    eprintln!("building corpora...");
    let calib_narrow = narrow_corpus(&reference, n_cal, 48, vocab / 4, setup.seed ^ 0x11);
    let calib_broad = generate_corpus(&reference, n_cal, 48, setup.seed ^ 0x22).expect("corpus");
    let eval_broad = generate_corpus(&reference, n_eval, 24, setup.seed ^ 0x33).expect("corpus");

    let int3 = QuantConfig::int3_asym();
    eprintln!("GPTQ calibrated on the narrow domain...");
    let gptq_narrow =
        run_gptq_full(&reference, &int3, &calib_narrow, setup.seed).expect("gptq narrow");
    eprintln!("GPTQ calibrated on broad data...");
    let gptq_broad =
        run_gptq_full(&reference, &int3, &calib_broad, setup.seed).expect("gptq broad");
    eprintln!("HQQ (no calibration)...");
    let hqq = run_milo(&reference, None, &RankPolicy::uniform(0), &MiloOptions::default(), setup.threads)
        .expect("hqq");
    eprintln!("MiLo-s1 (no calibration)...");
    let milo = run_milo(
        &reference,
        None,
        &mixtral_s1(setup.mixtral.d_model),
        &MiloOptions::default(),
        setup.threads,
    )
    .expect("milo");

    let ppl = |m: &MoeModel| perplexity(m, &eval_broad).expect("ppl");
    let p_narrow = ppl(&gptq_narrow.model);
    let p_broad = ppl(&gptq_broad.model);
    let p_hqq = ppl(&hqq.model);
    let p_milo = ppl(&milo.model);

    let mut t = Table::new(["method", "calibration corpus", "PPL on broad data"]);
    t.push_row(["GPTQ".to_string(), "narrow domain".to_string(), format!("{p_narrow:.3}")]);
    t.push_row(["GPTQ".to_string(), "broad".to_string(), format!("{p_broad:.3}")]);
    t.push_row(["HQQ".to_string(), "(none)".to_string(), format!("{p_hqq:.3}")]);
    t.push_row(["MiLo-s1".to_string(), "(none)".to_string(), format!("{p_milo:.3}")]);
    println!("{}", t.render());

    let bias = p_narrow / p_broad - 1.0;
    println!(
        "Shape check: GPTQ's quality should depend on the calibration choice — measured \
         calibration sensitivity {:.1}% (narrow-calibrated vs broad-calibrated, on broad \
         data). HQQ and MiLo consume no calibration data, so their rows are invariant to \
         it by construction, and MiLo still achieves the best perplexity ({p_milo:.2}).",
        100.0 * bias
    );
}
