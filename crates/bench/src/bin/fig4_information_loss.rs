//! Regenerates paper Fig. 4: information-loss analysis. For an attention
//! layer (heavy-tailed) and an expert layer (light-tailed), compares the
//! reconstruction of the FP16 weights under INT3, INT4, and INT3 +
//! low-rank compensation, focusing on the *insignificant* weights
//! (|w| ≤ median) where Observation 2 locates the loss.
//!
//! Run: `cargo run --release -p milo-bench --bin fig4_information_loss`

use milo_bench::{banner, Args, Setup};
use milo_core::{milo_compress, MiloOptions};
use milo_eval::Table;
use milo_moe::{FfnBlock, MoeModel};
use milo_quant::{rtn_quantize, QuantConfig};
use milo_tensor::stats::variance;
use milo_tensor::Matrix;

/// RMSE of `w − recon` over elements with `|w| <= threshold`, normalized
/// by the overall weight standard deviation.
fn insignificant_loss(w: &Matrix, recon: &Matrix, threshold: f32) -> f32 {
    let std = variance(w.as_slice()).sqrt().max(1e-12);
    let mut se = 0.0f64;
    let mut n = 0usize;
    for (&a, &b) in w.as_slice().iter().zip(recon.as_slice()) {
        if a.abs() <= threshold {
            se += ((a - b) as f64).powi(2);
            n += 1;
        }
    }
    ((se / n.max(1) as f64).sqrt() as f32) / std
}

fn abs_median(w: &Matrix) -> f32 {
    let mut mags: Vec<f32> = w.as_slice().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
    mags[mags.len() / 2]
}

fn main() {
    banner(
        "Figure 4: information loss under INT3 / INT4 / INT3+LoRC",
        "for the heavy-tailed attention layer, INT3 loses the insignificant values, INT4 \
         closes part of the gap, and INT3 + low-rank compensation refills the non-outliers; \
         for the light-tailed expert layer the effect is much weaker (same |w| range)",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let rank = args.get_u64("rank").unwrap_or(32) as usize;

    let model = MoeModel::synthesize(&setup.mixtral, setup.seed);
    let attn = model.layers[0].attn.wq.clone();
    let expert = match &model.layers[0].ffn {
        FfnBlock::Moe(moe) => moe.experts[0].w1.clone(),
        FfnBlock::Dense(mlp) => mlp.w1.clone(),
    };

    let opts = MiloOptions { max_iters: 8, compensator_cfg: None, ..MiloOptions::default() };
    let mut t = Table::new([
        "layer",
        "INT3 loss",
        "INT4 loss",
        "INT3+LoRC loss",
        "LoRC recovery vs INT3",
    ]);
    let mut rows = Vec::new();
    for (name, w) in [("(a) attention", &attn), ("(b) expert", &expert)] {
        let threshold = abs_median(w);
        let int3 = rtn_quantize(w, &QuantConfig::int3_asym()).expect("rtn3").dequantize();
        let int4 = rtn_quantize(w, &QuantConfig::int4_asym()).expect("rtn4").dequantize();
        let r = rank.min(w.rows().min(w.cols()));
        let lorc = milo_compress(w, r, &opts).expect("milo").effective_weight();
        let l3 = insignificant_loss(w, &int3, threshold);
        let l4 = insignificant_loss(w, &int4, threshold);
        let ll = insignificant_loss(w, &lorc, threshold);
        t.push_row([
            name.to_string(),
            format!("{l3:.4}"),
            format!("{l4:.4}"),
            format!("{ll:.4}"),
            format!("{:.1}%", 100.0 * (l3 - ll) / l3),
        ]);
        rows.push((name, l3, l4, ll));
    }
    println!(
        "Normalized RMSE on insignificant weights (|w| <= median), lower is better:\n{}",
        t.render()
    );

    let (_, a3, a4, al) = rows[0];
    let (_, e3, _, el) = rows[1];
    println!(
        "Shape checks:\n  1. INT4 and INT3+LoRC both reduce the attention layer's loss vs \
         INT3 ({a3:.4} -> {a4:.4} / {al:.4});\n  2. the attention layer starts worse than \
         the expert layer ({a3:.4} vs {e3:.4});\n  3. compensation recovers more absolute \
         loss on the attention layer ({:.4}) than on the expert layer ({:.4}).",
        a3 - al,
        e3 - el
    );
}
