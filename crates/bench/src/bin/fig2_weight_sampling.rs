//! Regenerates paper Fig. 2: sampled weight distributions of an
//! attention projection vs an expert projection, in FP16 and after INT3
//! de-quantization.
//!
//! Prints the histogram series for both layer classes and quantifies
//! Observation 2 with region-restricted reconstruction error:
//! quantization *captures the outliers* (tiny error on the largest |w|)
//! while *losing the insignificant values* (large error on moderate
//! |w|), more severely for the heavy-tailed attention weights.
//!
//! Run: `cargo run --release -p milo-bench --bin fig2_weight_sampling`

use milo_bench::{banner, Args, Setup};
use milo_eval::Table;
use milo_moe::{FfnBlock, MoeModel};
use milo_quant::{rtn_quantize, QuantConfig};
use milo_tensor::stats::{matrix_kurtosis, variance, Histogram};
use milo_tensor::Matrix;

/// RMSE of `w − recon` over elements selected by `keep`, normalized by
/// the overall weight standard deviation.
fn region_loss(w: &Matrix, recon: &Matrix, keep: impl Fn(f32) -> bool) -> f32 {
    let std = variance(w.as_slice()).sqrt().max(1e-12);
    let mut se = 0.0f64;
    let mut n = 0usize;
    for (&a, &b) in w.as_slice().iter().zip(recon.as_slice()) {
        if keep(a) {
            se += ((a - b) as f64).powi(2);
            n += 1;
        }
    }
    if n == 0 {
        return 0.0;
    }
    ((se / n as f64).sqrt() as f32) / std
}

/// |w| quantile.
fn abs_quantile(w: &Matrix, q: f32) -> f32 {
    let mut mags: Vec<f32> = w.as_slice().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
    mags[((mags.len() - 1) as f32 * q) as usize]
}

fn main() {
    banner(
        "Figure 2: weight sampling, attention vs expert, FP16 vs INT3",
        "attention weights are heavy-tailed with outliers; INT3 captures the outliers but \
         loses the insignificant (moderate) values, visibly more so for the attention \
         projection than for the expert projection",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let bins = args.get_u64("bins").unwrap_or(21) as usize;

    let model = MoeModel::synthesize(&setup.mixtral, setup.seed);
    let attn = model.layers[0].attn.wq.clone();
    let expert = match &model.layers[0].ffn {
        FfnBlock::Moe(moe) => moe.experts[0].w1.clone(),
        FfnBlock::Dense(mlp) => mlp.w1.clone(),
    };

    let mut insig_losses = Vec::new();
    for (name, w) in [("(a) attention projection (wq)", &attn), ("(b) expert projection (w1)", &expert)] {
        let dq = rtn_quantize(w, &QuantConfig::int3_asym()).expect("RTN succeeds").dequantize();

        // Histogram series (the visual part of the figure).
        let range = w.max_abs();
        let mut h_fp = Histogram::new(-range, range, bins);
        let mut h_q = Histogram::new(-range, range, bins);
        h_fp.add_all(w.as_slice());
        h_q.add_all(dq.as_slice());
        println!("{name}: kurtosis {:.3}", matrix_kurtosis(w));
        let mut t = Table::new(["bin center", "FP16 count", "INT3-dequant count"]);
        for i in 0..bins {
            t.push_row([
                format!("{:+.4}", h_fp.bin_center(i)),
                h_fp.counts()[i].to_string(),
                h_q.counts()[i].to_string(),
            ]);
        }
        println!("{}", t.render());

        // Region-restricted losses (the quantitative part).
        let q50 = abs_quantile(w, 0.5);
        let q99 = abs_quantile(w, 0.99);
        let insig = region_loss(w, &dq, |v| v.abs() <= q50);
        let outlier = region_loss(w, &dq, |v| v.abs() >= q99);
        println!(
            "  loss on insignificant weights (|w| <= median): {insig:.4} (RMSE/std)\n  \
             loss on outliers (|w| >= p99):               {outlier:.4} (RMSE/std)\n"
        );
        insig_losses.push((name, insig, outlier));
    }

    let (_, attn_insig, attn_out) = insig_losses[0];
    let (_, exp_insig, _) = insig_losses[1];
    println!(
        "Shape checks:\n  1. outliers are captured: attention outlier loss ({attn_out:.4}) is \
         comparable to its insignificant-value loss ({attn_insig:.4}) despite outliers being \
         an order of magnitude larger in |w|;\n  2. heavy tails hurt: attention \
         insignificant-value loss ({attn_insig:.4}) exceeds the expert's ({exp_insig:.4})."
    );
}
