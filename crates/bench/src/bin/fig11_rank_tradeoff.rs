//! Regenerates paper Fig. 11 (Appendix A): compensator memory vs
//! perplexity as the uniform rank grows — the rank/performance
//! trade-off curve.
//!
//! Run: `cargo run --release -p milo-bench --bin fig11_rank_tradeoff [--fast]`

use milo_bench::methods::run_milo;
use milo_bench::{banner, Args, Setup};
use milo_core::{MiloOptions, RankPolicy};
use milo_eval::{EvalContext, Table};
use milo_moe::MoeModel;

fn main() {
    banner(
        "Figure 11: compensator memory vs perplexity across ranks",
        "perplexity decreases monotonically as rank (and compensator memory) grows, with \
         diminishing returns at higher ranks",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let max_dim = setup.mixtral.d_model;
    let ranks: Vec<usize> = [0usize, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&r| r <= max_dim)
        .collect();

    let reference = MoeModel::synthesize(&setup.mixtral, setup.seed);
    eprintln!("preparing evaluation context...");
    let ctx = EvalContext::prepare(&reference, &setup.eval).expect("eval context");
    let opts = MiloOptions::default();

    let mut t = Table::new(["rank", "compensator MB", "total MB", "PPL"]);
    let mut series = Vec::new();
    for &rank in &ranks {
        eprintln!("rank {rank}...");
        let out = run_milo(&reference, None, &RankPolicy::uniform(rank), &opts, setup.threads)
            .expect("milo");
        let comp_mb = out.compressed.compensator_bytes() as f64 / 1e6;
        let r = ctx.evaluate("x", &out.model, out.memory_bytes, out.seconds).expect("eval");
        t.push_row([
            rank.to_string(),
            format!("{comp_mb:.2}"),
            format!("{:.2}", out.memory_bytes as f64 / 1e6),
            format!("{:.4}", r.ppl),
        ]);
        series.push((rank, r.ppl));
    }
    println!("{}", t.render());

    let first = series.first().unwrap().1;
    let last = series.last().unwrap().1;
    println!(
        "Shape check: PPL should trend down with rank ({first:.4} at rank {} -> {last:.4} \
         at rank {}), with most of the gain from the first few ranks.",
        series.first().unwrap().0,
        series.last().unwrap().0
    );
}
