//! Regenerates paper Table 7: end-to-end first-token latency of
//! Mixtral-8×7B under four backends at batch sizes 1, 16, 32 on an
//! A100-40GB.
//!
//! Run: `cargo run --release -p milo-bench --bin table7_end_to_end`

use milo_bench::banner;
use milo_eval::Table;
use milo_gpu_sim::{end_to_end, Backend, Device, E2eResult, ModelSpec};

fn main() {
    banner(
        "Table 7: end-to-end latency for Mixtral-8x7B (seconds)",
        "PyTorch FP16: OOM at every batch; GPTQ3bit: 0.102 at bs=1, unsupported beyond; \
         MARLIN: 0.123/0.141/0.145; MiLo: 0.102/0.112/0.113 (~1.2x faster than MARLIN)",
    );

    let dev = Device::a100_40gb();
    let spec = ModelSpec::mixtral_8x7b();
    let batches = [1usize, 16, 32];
    let backends =
        [Backend::PyTorchFp16, Backend::Gptq3bit, Backend::Marlin, Backend::Milo];

    let mut t = Table::new(
        std::iter::once("Backend / Batch size".to_string())
            .chain(batches.iter().map(|b| b.to_string())),
    );
    for backend in backends {
        let mut row = vec![backend.name().to_string()];
        for &batch in &batches {
            row.push(match end_to_end(&dev, backend, &spec, batch) {
                E2eResult::Latency(s) => format!("{s:.3}"),
                E2eResult::OutOfMemory => "OOM".to_string(),
                E2eResult::Unsupported => "-".to_string(),
            });
        }
        t.push_row(row);
    }
    println!("{}", t.render());

    println!("MiLo speedup over MARLIN:");
    for &batch in &batches {
        let milo = end_to_end(&dev, Backend::Milo, &spec, batch).latency().unwrap();
        let marlin = end_to_end(&dev, Backend::Marlin, &spec, batch).latency().unwrap();
        println!("  batch {batch:<3} {:.2}x", marlin / milo);
    }
}
