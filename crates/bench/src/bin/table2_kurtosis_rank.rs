//! Regenerates paper Table 2: average excess kurtosis and residual-matrix
//! rank (number of singular values below τ·σ_max, τ = 0.5) per layer
//! class — attention (A), sparse experts (E), and DeepSeek shared
//! experts (SE).
//!
//! Run: `cargo run --release -p milo-bench --bin table2_kurtosis_rank [--fast]`

use milo_bench::{banner, Args, Setup};
use milo_core::LayerKind;
use milo_eval::par::par_map;
use milo_eval::Table;
use milo_moe::{layer_tensors, MoeModel};
use milo_quant::{rtn_quantize, QuantConfig};
use milo_tensor::linalg::jacobi_svd;
use milo_tensor::stats;

/// Per-class accumulators: (kurtosis sum, residual-rank sum, count).
#[derive(Default, Clone, Copy)]
struct ClassStats {
    kurtosis: f64,
    rank: f64,
    count: usize,
}

fn classify(kind: LayerKind) -> Option<usize> {
    match kind {
        LayerKind::Attention => Some(0),
        LayerKind::Expert { .. } => Some(1),
        LayerKind::SharedExpert => Some(2),
        LayerKind::DenseFfn => None, // not a Table 2 class
    }
}

fn analyze(model: &MoeModel, tau: f32, max_per_class: usize) -> [ClassStats; 3] {
    let cfg = QuantConfig::int3_asym();
    let tensors = layer_tensors(model, None);
    // Cap the number of full SVDs per class to keep runtime reasonable on
    // the fine-grained DeepSeek-like model.
    let mut selected: Vec<usize> = Vec::new();
    let mut counts = [0usize; 3];
    for (i, t) in tensors.iter().enumerate() {
        if let Some(c) = classify(t.meta.kind) {
            if counts[c] < max_per_class {
                counts[c] += 1;
                selected.push(i);
            }
        }
    }

    let per_tensor = par_map(selected.len(), |j| {
        let t = &tensors[selected[j]];
        let class = classify(t.meta.kind).expect("selected tensors are classified");
        let kurt = stats::matrix_kurtosis(&t.weight) as f64;
        let dq = rtn_quantize(&t.weight, &cfg).expect("RTN succeeds").dequantize();
        let residual = t.weight.sub(&dq).expect("shapes match");
        let svd = jacobi_svd(&residual).expect("SVD converges");
        let rank = stats::residual_rank(&svd.sigma, tau) as f64;
        (class, kurt, rank)
    });

    let mut out = [ClassStats::default(); 3];
    for (class, kurt, rank) in per_tensor {
        out[class].kurtosis += kurt;
        out[class].rank += rank;
        out[class].count += 1;
    }
    out
}

fn main() {
    banner(
        "Table 2: kurtosis and residual rank across layer classes",
        "Mixtral: A(D) kurtosis 1.57 / E(S) -0.53, residual rank A 514 < E 1730; \
         DeepSeek: A 0.016, SE 0.32, E -0.89, ranks A 438 / SE 286 / E 602 — dense \
         classes are heavier-tailed, and rank anti-correlates with kurtosis",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let tau = args.get_f32("tau").unwrap_or(0.5);
    let cap = if args.flag("fast") { 6 } else { 24 };

    let mut t = Table::new(["model", "class", "avg kurtosis", "avg residual rank", "matrices"]);
    for cfg in [&setup.mixtral, &setup.deepseek] {
        let model = MoeModel::synthesize(cfg, setup.seed);
        let classes = analyze(&model, tau, cap);
        for (label, c) in [("A(D)", classes[0]), ("E(S)", classes[1]), ("SE(D)", classes[2])] {
            if c.count == 0 {
                continue;
            }
            t.push_row([
                cfg.name.clone(),
                label.to_string(),
                format!("{:.3}", c.kurtosis / c.count as f64),
                format!("{:.0}", c.rank / c.count as f64),
                c.count.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Expected shape: attention kurtosis > expert kurtosis within each model, and the\n\
         class with higher kurtosis has the *lower* residual rank (negative correlation)."
    );
}
