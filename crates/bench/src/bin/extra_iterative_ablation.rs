//! Extension experiment (DESIGN.md §6.1): quantify what the *iterative*
//! joint optimization buys over one-shot quantize-then-compensate, at
//! the model level. Paper Fig. 7 shows the per-matrix convergence curve;
//! this sweeps the outer-iteration budget and reports perplexity.
//!
//! Run: `cargo run --release -p milo-bench --bin extra_iterative_ablation [--fast]`

use milo_bench::methods::run_milo;
use milo_bench::{banner, mixtral_s1, Args, Setup};
use milo_core::MiloOptions;
use milo_eval::{generate_corpus, perplexity, Table};
use milo_moe::MoeModel;

fn main() {
    banner(
        "Extension: iterative optimization vs one-shot compensation",
        "Algorithm 1's alternation lets the quantizer adapt to the low-rank residual; the \
         paper's Fig. 7 shows epsilon_t converging in ~10 iterations",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);
    let budgets: &[usize] = if args.flag("fast") { &[1, 5] } else { &[1, 3, 10, 20] };

    let reference = MoeModel::synthesize(&setup.mixtral, setup.seed);
    let corpus =
        generate_corpus(&reference, setup.eval.n_seqs, setup.eval.seq_len, setup.eval.corpus_seed)
            .expect("corpus");
    let policy = mixtral_s1(setup.mixtral.d_model);

    let mut t = Table::new(["outer iterations", "quant time (s)", "PPL", "mean final eps_t"]);
    let mut series = Vec::new();
    for &iters in budgets {
        eprintln!("MiLo with {iters} outer iteration(s)...");
        let opts = MiloOptions { max_iters: iters, ..MiloOptions::default() };
        let out = run_milo(&reference, None, &policy, &opts, setup.threads).expect("milo");
        let ppl = perplexity(&out.model, &corpus).expect("ppl");
        let mean_eps: f32 = {
            let finals: Vec<f32> = out
                .compressed
                .layers
                .iter()
                .filter_map(|l| l.layer.convergence.last().copied())
                .collect();
            finals.iter().sum::<f32>() / finals.len().max(1) as f32
        };
        t.push_row([
            iters.to_string(),
            format!("{:.1}", out.seconds),
            format!("{ppl:.4}"),
            format!("{mean_eps:.5}"),
        ]);
        series.push((iters, ppl, mean_eps));
    }
    println!("{}", t.render());

    let first = series.first().unwrap();
    let last = series.last().unwrap();
    println!(
        "Shape check: both the residual (eps {:.5} -> {:.5}) and perplexity ({:.4} -> {:.4})\n\
         should improve from 1 iteration to {} iterations, with diminishing returns.",
        first.2, last.2, first.1, last.1, last.0
    );
}
