//! Extension experiment (paper §5 future work): combine MiLo with
//! expert pruning. Prune the least-activated experts, MiLo-quantize the
//! rest, and compare memory/perplexity against MiLo alone.
//!
//! Run: `cargo run --release -p milo-bench --bin extra_pruning_combo [--fast]`

use milo_bench::methods::run_milo;
use milo_bench::{banner, deepseek_s1, Args, Setup};
use milo_core::MiloOptions;
use milo_eval::{generate_corpus, perplexity, Table};
use milo_moe::prune::prune_experts;
use milo_moe::{profile_expert_frequency, MoeModel};

fn main() {
    banner(
        "Extension: MiLo + expert pruning (paper §5 future work)",
        "pruning is complementary to quantization on models with unbalanced routers: \
         DeepSeek-like experts have a ~20x activation skew (several experts barely fire), \
         so dropping the least-used ones buys memory at a modest perplexity cost on top \
         of MiLo",
    );
    let args = Args::parse();
    let setup = Setup::from_args(&args);

    let reference = MoeModel::synthesize(&setup.deepseek, setup.seed);
    let corpus = generate_corpus(&reference, 10, 32, setup.seed ^ 0xf3e9).expect("corpus");
    let profile = profile_expert_frequency(&reference, &corpus).expect("profile");
    let eval_corpus =
        generate_corpus(&reference, setup.eval.n_seqs, setup.eval.seq_len, setup.eval.corpus_seed)
            .expect("eval corpus");
    let policy = deepseek_s1(setup.deepseek.d_model);
    let opts = MiloOptions::default();
    let n_experts = setup.deepseek.n_experts;

    let mut t = Table::new(["configuration", "experts kept", "memory (MB)", "PPL"]);
    let ppl_fp16 = perplexity(&reference, &eval_corpus).expect("ppl");
    t.push_row(["FP16 reference".to_string(), n_experts.to_string(), format!("{:.2}", setup.deepseek.fp16_bytes() as f64 / 1e6), format!("{ppl_fp16:.3}")]);

    for keep in [n_experts, 3 * n_experts / 4, n_experts / 2] {
        eprintln!("MiLo with {keep}/{n_experts} experts...");
        let base = if keep == n_experts {
            reference.clone()
        } else {
            prune_experts(&reference, &profile, keep).expect("prune")
        };
        // Re-profile the pruned model so frequency policies see the new
        // expert set.
        let pruned_profile = profile_expert_frequency(&base, &corpus).expect("profile");
        let out =
            run_milo(&base, Some(&pruned_profile), &policy, &opts, setup.threads).expect("milo");
        let ppl = perplexity(&out.model, &eval_corpus).expect("ppl");
        let name = if keep == n_experts {
            "MiLo (no pruning)".to_string()
        } else {
            format!("MiLo + prune to {keep}")
        };
        t.push_row([
            name,
            keep.to_string(),
            format!("{:.2}", out.memory_bytes as f64 / 1e6),
            format!("{ppl:.3}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: memory drops roughly in proportion to the pruned experts; because\n\
         the router is strongly unbalanced, the least-used experts carry little of the\n\
         model's behaviour and the perplexity cost per dropped expert is small relative\n\
         to their memory share — pruning composes with quantization as the paper\n\
         anticipates. (On balanced routers, e.g. the Mixtral-like model, the same\n\
         pruning is far more damaging.)"
    );
}
