//! Regenerates paper Fig. 9: mixed-precision GeMM TFLOPS on the MLP
//! layers of DeepSeek-MoE, Arctic-MoE, Mixtral-8×7B, and Falcon-180B at
//! batch sizes 1, 16, and 32, for five kernels.
//!
//! Also prints the Table 9 GEMM shapes the experiment uses.
//!
//! Run: `cargo run --release -p milo-bench --bin fig9_gemm_tflops`

use milo_bench::banner;
use milo_eval::Table;
use milo_gpu_sim::{gemm_time, mlp_shapes, Device, KernelConfig, KernelKind, MlpModel};

fn main() {
    banner(
        "Figure 9: GeMM TFLOPS on model MLP layers",
        "bs=1: MiLo-sym and GPTQ3bit highest (memory-bound); bs=16: MiLo-sym beats MARLIN \
         by 16%/7%/12%/24% on DeepSeek/Arctic/Mixtral/Falcon; bs=32: MiLo still highest, \
         +17% over second best on DeepSeek-MoE",
    );

    let dev = Device::a100_40gb();
    let kernels = [
        KernelKind::DequantCutlass,
        KernelKind::Gptq3bit,
        KernelKind::Marlin,
        KernelKind::MiloSym,
        KernelKind::MiloAsym,
    ];

    // Table 9 shapes.
    let mut shapes_table = Table::new(["model", "projection", "(k, n)"]);
    for model in MlpModel::all() {
        for (i, (k, n)) in model.weight_shapes().iter().enumerate() {
            shapes_table.push_row([model.name().to_string(), format!("w{}", i + 1), format!("({k}, {n})")]);
        }
    }
    println!("Table 9 — GEMM shapes used:\n{}", shapes_table.render());

    for batch in [1usize, 16, 32] {
        let mut t = Table::new(
            std::iter::once("model".to_string())
                .chain(kernels.iter().map(|k| k.name().to_string())),
        );
        for model in MlpModel::all() {
            let mut row = vec![model.name().to_string()];
            for kind in kernels {
                let cfg = KernelConfig::new(kind);
                // Aggregate TFLOPS over the whole MLP (total flops /
                // total predicted time).
                let shapes = mlp_shapes(model, batch);
                let flops: f64 = shapes.iter().map(|s| s.flops()).sum();
                let time: Option<f64> = shapes
                    .iter()
                    .map(|&s| gemm_time(&dev, &cfg, s))
                    .try_fold(0.0, |acc, t| t.map(|t| acc + t));
                row.push(match time {
                    Some(t) => format!("{:.1}", flops / t / 1e12),
                    None => "-".to_string(),
                });
            }
            t.push_row(row);
        }
        println!("Batch size {batch} — TFLOPS (higher is better):\n{}", t.render());
    }

    // The headline comparisons, stated explicitly.
    println!("Speedup of MiLo Symmetric over MARLIN:");
    for batch in [1usize, 16, 32] {
        for model in MlpModel::all() {
            let milo: f64 = mlp_shapes(model, batch)
                .into_iter()
                .map(|s| gemm_time(&dev, &KernelConfig::new(KernelKind::MiloSym), s).unwrap())
                .sum();
            let marlin: f64 = mlp_shapes(model, batch)
                .into_iter()
                .map(|s| gemm_time(&dev, &KernelConfig::new(KernelKind::Marlin), s).unwrap())
                .sum();
            println!("  bs={batch:<3} {:<14} {:.2}x", model.name(), marlin / milo);
        }
    }
}
