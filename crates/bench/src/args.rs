//! Minimal CLI-flag parsing for the experiment binaries.
//!
//! Supports `--name value` pairs and bare `--flag` switches; no external
//! dependency is warranted for this.

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses from the process arguments.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (used by tests).
    pub fn from_iter(items: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let items: Vec<String> = items.into_iter().collect();
        let mut i = 0;
        while i < items.len() {
            let item = &items[i];
            if let Some(name) = item.strip_prefix("--") {
                let next_is_value =
                    items.get(i + 1).map(|n| !n.starts_with("--")).unwrap_or(false);
                if next_is_value {
                    out.values.insert(name.to_string(), items[i + 1].clone());
                    i += 2;
                    continue;
                }
                out.flags.push(name.to_string());
            }
            i += 1;
        }
        out
    }

    /// Whether a bare `--name` switch was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Raw `--name value` lookup.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// `--name value` parsed as `f32`.
    pub fn get_f32(&self, name: &str) -> Option<f32> {
        self.get(name).and_then(|v| v.parse().ok())
    }

    /// `--name value` parsed as `u64`.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(|v| v.parse().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_iter(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = args(&["--scale", "0.5", "--fast", "--seed", "7"]);
        assert_eq!(a.get_f32("scale"), Some(0.5));
        assert_eq!(a.get_u64("seed"), Some(7));
        assert!(a.flag("fast"));
        assert!(!a.flag("slow"));
    }

    #[test]
    fn missing_values_are_none() {
        let a = args(&["--fast"]);
        assert_eq!(a.get("scale"), None);
        assert_eq!(a.get_f32("scale"), None);
    }

    #[test]
    fn flag_followed_by_flag_is_bare() {
        let a = args(&["--fast", "--verbose"]);
        assert!(a.flag("fast"));
        assert!(a.flag("verbose"));
    }
}
