//! Method runners: compress a whole synthetic MoE model with each of the
//! paper's methods and return the effective inference model plus memory
//! and timing.

use milo_core::{
    compress_model, CompressedLayer, CompressedModel, LayerRecord, MiloOptions, RankPolicy,
};
use milo_eval::par::par_map;
use milo_eval::time_it;
use milo_moe::{apply_compressed, layer_tensors, FrequencyProfile, MoeModel};
use milo_quant::calib::{synthetic_calibration, CalibProfile};
use milo_quant::{gptq_quantize, rtn_quantize, GptqOptions, QuantConfig};

/// The result of compressing a model with one method.
#[derive(Debug, Clone)]
pub struct CompressionOutcome {
    /// The inference model with effective (de-quantized + compensated)
    /// weights substituted in.
    pub model: MoeModel,
    /// Deployment memory of the compressed weights, bytes.
    pub memory_bytes: usize,
    /// Wall-clock compression time, seconds.
    pub seconds: f64,
    /// The underlying compressed representation.
    pub compressed: CompressedModel,
}

/// Box-standard error type for the runners.
pub type BoxError = Box<dyn std::error::Error + Send + Sync>;

fn outcome(
    reference: &MoeModel,
    compressed: CompressedModel,
    seconds: f64,
) -> Result<CompressionOutcome, BoxError> {
    let model = apply_compressed(reference, &compressed)?;
    Ok(CompressionOutcome {
        model,
        memory_bytes: compressed.memory_bytes(),
        seconds,
        compressed,
    })
}

/// Round-to-nearest baseline: every quantizable weight through RTN.
pub fn run_rtn(reference: &MoeModel, cfg: &QuantConfig) -> Result<CompressionOutcome, BoxError> {
    let tensors = layer_tensors(reference, None);
    let (records, seconds) = time_it(|| {
        par_map(tensors.len(), |i| {
            let t = &tensors[i];
            rtn_quantize(&t.weight, cfg).map(|qweight| LayerRecord {
                name: t.name.clone(),
                meta: t.meta,
                rank: 0,
                layer: CompressedLayer { qweight, compensator: None, convergence: vec![] },
            })
        })
    });
    let layers = records.into_iter().collect::<Result<Vec<_>, _>>()?;
    outcome(reference, CompressedModel { layers }, seconds)
}

/// GPTQ baseline: Hessian-guided quantization with synthetic calibration
/// activations (one independent isotropic set per weight matrix —
/// standing in for propagated Wikitext-2 activations). `calib_per_dim`
/// sets the calibration-set size as a multiple of each matrix's input
/// dimension.
pub fn run_gptq(
    reference: &MoeModel,
    cfg: &QuantConfig,
    calib_per_dim: f32,
    calib_seed: u64,
) -> Result<CompressionOutcome, BoxError> {
    let tensors = layer_tensors(reference, None);
    let (records, seconds) = time_it(|| {
        par_map(tensors.len(), |i| {
            let t = &tensors[i];
            // The Hessian H = 2·Xᵀ·X must be well-conditioned, so the
            // calibration set scales with the matrix input dimension
            // (rank-deficient Hessians make the error propagation harmful).
            let n_calib = ((t.weight.cols() as f32 * calib_per_dim) as usize)
                .max(t.weight.cols() + 16);
            let x = synthetic_calibration(
                n_calib,
                t.weight.cols(),
                CalibProfile::Isotropic,
                calib_seed.wrapping_add(i as u64),
            );
            gptq_quantize(&t.weight, &x, cfg, &GptqOptions::default()).map(|qweight| {
                LayerRecord {
                    name: t.name.clone(),
                    meta: t.meta,
                    rank: 0,
                    layer: CompressedLayer { qweight, compensator: None, convergence: vec![] },
                }
            })
        })
    });
    let layers = records.into_iter().collect::<Result<Vec<_>, _>>()?;
    outcome(reference, CompressedModel { layers }, seconds)
}

/// GPTQ with *captured* calibration activations — the faithful analogue
/// of the paper's setup, where calibration data flows through the model.
///
/// Layers whose captured rows are too few for a well-conditioned Hessian
/// (rarely-routed experts) are topped up with Gaussian rows matched to
/// the captured scale; entirely-uncaptured layers fall back to isotropic
/// synthetic calibration.
pub fn run_gptq_captured(
    reference: &MoeModel,
    cfg: &QuantConfig,
    activations: &std::collections::HashMap<String, milo_tensor::Matrix>,
    seed: u64,
) -> Result<CompressionOutcome, BoxError> {
    let tensors = layer_tensors(reference, None);
    let (records, seconds) = time_it(|| gptq_records(&tensors, activations, cfg, seed));
    outcome(reference, CompressedModel { layers: records? }, seconds)
}

/// Quantizes a set of tensors with GPTQ against captured activations,
/// topping up thin capture sets so the Hessian stays well-conditioned.
fn gptq_records(
    tensors: &[milo_core::LayerTensor],
    activations: &std::collections::HashMap<String, milo_tensor::Matrix>,
    cfg: &QuantConfig,
    seed: u64,
) -> Result<Vec<LayerRecord>, BoxError> {
    use milo_tensor::{rng::WeightDist, stats, Matrix};
    use milo_tensor::rng::SeedableRng;

    let records = par_map(tensors.len(), |i| {
        let t = &tensors[i];
        let dim = t.weight.cols();
        let min_rows = dim + 16;
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        let x = match activations.get(&t.name) {
            Some(captured) if captured.rows() >= min_rows => captured.clone(),
            Some(captured) => {
                // Top up with Gaussian rows at the captured scale.
                let std = stats::variance(captured.as_slice()).sqrt().max(1e-6);
                let extra = WeightDist::Gaussian { std }
                    .sample_matrix(min_rows - captured.rows(), dim, &mut rng);
                let mut data = captured.as_slice().to_vec();
                data.extend_from_slice(extra.as_slice());
                Matrix::from_vec(min_rows, dim, data)
            }
            None => WeightDist::Gaussian { std: 1.0 }.sample_matrix(min_rows, dim, &mut rng),
        };
        gptq_quantize(&t.weight, &x, cfg, &GptqOptions::default()).map(|qweight| LayerRecord {
            name: t.name.clone(),
            meta: t.meta,
            rank: 0,
            layer: CompressedLayer { qweight, compensator: None, convergence: vec![] },
        })
    });
    Ok(records.into_iter().collect::<Result<Vec<_>, _>>()?)
}

/// The full GPTQ pipeline as the paper runs it: *sequential* layer-by-
/// layer quantization, where each layer's calibration activations are
/// propagated through the already-quantized prefix of the model. The
/// reported time includes all calibration forward passes — the cost that
/// makes GPTQ an order of magnitude slower than the calibration-free
/// methods (paper Table 1 / Fig. 8).
pub fn run_gptq_full(
    reference: &MoeModel,
    cfg: &QuantConfig,
    calib_corpus: &[Vec<u32>],
    seed: u64,
) -> Result<CompressionOutcome, BoxError> {
    let all_tensors = layer_tensors(reference, None);
    let start = std::time::Instant::now();

    let mut working = reference.clone();
    let mut all_records: Vec<LayerRecord> = Vec::new();
    for li in 0..reference.layers.len() {
        // Inputs for layer `li` reflect layers 0..li already quantized.
        // Generous capture (up to 2048 rows/weight): GPTQ's held-out gain
        // grows with calibration size, and thin Hessians overfit.
        let acts = milo_moe::capture_layer_activations(&working, calib_corpus, li, 2048)?;
        let prefix = format!("layer{li}.");
        let layer_slice: Vec<milo_core::LayerTensor> = all_tensors
            .iter()
            .filter(|t| t.name.starts_with(&prefix))
            .cloned()
            .collect();
        let records = gptq_records(&layer_slice, &acts, cfg, seed.wrapping_add(li as u64))?;
        let partial = CompressedModel { layers: records.clone() };
        working = apply_compressed(&working, &partial)?;
        all_records.extend(records);
    }
    let seconds = start.elapsed().as_secs_f64();
    outcome(reference, CompressedModel { layers: all_records }, seconds)
}

/// MiLo (and, with `RankPolicy::uniform(0)`, plain HQQ): the full
/// iterative pipeline under a rank policy.
pub fn run_milo(
    reference: &MoeModel,
    profile: Option<&FrequencyProfile>,
    policy: &RankPolicy,
    opts: &MiloOptions,
    threads: usize,
) -> Result<CompressionOutcome, BoxError> {
    let tensors = layer_tensors(reference, profile);
    let (compressed, seconds) = time_it(|| compress_model(&tensors, policy, opts, threads));
    outcome(reference, compressed?, seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_eval::{perplexity, generate_corpus};
    use milo_moe::MoeConfig;
    use milo_quant::HqqOptions;

    fn reference() -> MoeModel {
        MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 3)
    }

    fn fast_opts() -> MiloOptions {
        MiloOptions {
            max_iters: 2,
            hqq: HqqOptions { max_iters: 5, ..HqqOptions::default() },
            ..MiloOptions::default()
        }
    }

    #[test]
    fn all_methods_produce_runnable_models() {
        let r = reference();
        let cfg = QuantConfig::int3_asym();
        let rtn = run_rtn(&r, &cfg).unwrap();
        let gptq = run_gptq(&r, &cfg, 2.0, 0).unwrap();
        let hqq = run_milo(&r, None, &RankPolicy::uniform(0), &fast_opts(), 2).unwrap();
        let milo = run_milo(&r, None, &RankPolicy::uniform(4), &fast_opts(), 2).unwrap();
        for (name, o) in
            [("rtn", &rtn), ("gptq", &gptq), ("hqq", &hqq), ("milo", &milo)]
        {
            assert!(o.model.forward(&[1, 2, 3]).is_ok(), "{name}");
            assert!(o.memory_bytes > 0, "{name}");
            assert!(o.seconds >= 0.0, "{name}");
        }
        // MiLo carries compensators, so it uses more memory than HQQ.
        assert!(milo.memory_bytes > hqq.memory_bytes);
    }

    #[test]
    fn milo_reconstruction_beats_rtn() {
        // The mechanism behind paper Table 3's ordering: MiLo's effective
        // weights are strictly closer to FP16 than RTN's on average.
        // (The tiny test model is too small for the PPL gap itself to be
        // statistically stable, so the full PPL ordering is asserted by
        // the integration tests on larger models; here we check the
        // weight-space invariant plus a loose PPL sanity bound.)
        let r = reference();
        let rtn = run_rtn(&r, &QuantConfig::int3_asym()).unwrap();
        let milo = run_milo(&r, None, &RankPolicy::uniform(16), &fast_opts(), 2).unwrap();

        let mean_err = |out: &CompressionOutcome| -> f32 {
            let tensors = layer_tensors(&r, None);
            let mut total = 0.0;
            for t in &tensors {
                let rec = out.compressed.layer(&t.name).unwrap();
                total += milo_tensor::stats::relative_frobenius_error(
                    &t.weight,
                    &rec.layer.effective_weight(),
                );
            }
            total / tensors.len() as f32
        };
        let e_rtn = mean_err(&rtn);
        let e_milo = mean_err(&milo);
        assert!(
            e_milo < e_rtn,
            "MiLo weight error {e_milo} should beat RTN {e_rtn}"
        );

        let corpus = generate_corpus(&r, 6, 20, 7).unwrap();
        let ppl_rtn = perplexity(&rtn.model, &corpus).unwrap();
        let ppl_milo = perplexity(&milo.model, &corpus).unwrap();
        assert!(
            ppl_milo < ppl_rtn * 1.05,
            "MiLo ppl {ppl_milo} should not be materially worse than RTN ppl {ppl_rtn}"
        );
    }
}
