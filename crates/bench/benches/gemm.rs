//! Microbenchmarks of the fused packed GEMM against the unfused
//! two-pass pipeline and the FP32 reference, across tile shapes and
//! batch sizes.

use milo_eval::bench::{black_box, Harness};
use milo_pack::gemm::reference_gemm;
use milo_pack::{GemmKernel, PackedMatrix, TileShape};
use milo_quant::{rtn_quantize, QuantConfig};
use milo_tensor::rng::SeedableRng;
use milo_tensor::rng::WeightDist;
use milo_tensor::Matrix;

fn setup(batch: usize, k: usize, n: usize) -> (Matrix, Matrix, PackedMatrix) {
    let mut rng = milo_tensor::rng::StdRng::seed_from_u64(7);
    let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(n, k, &mut rng);
    let x = WeightDist::Gaussian { std: 1.0 }.sample_matrix(batch, k, &mut rng);
    let q = rtn_quantize(&w, &QuantConfig::int3_asym()).unwrap();
    (x, q.dequantize(), PackedMatrix::pack(&q).unwrap())
}

fn bench_fused_vs_unfused(c: &mut Harness) {
    for batch in [1usize, 16] {
        let (x, dense, packed) = setup(batch, 256, 256);
        let kernel = GemmKernel::default();
        c.bench_function(format!("packed_gemm_256x256/fused/{batch}"), |b| {
            b.iter(|| kernel.gemm(black_box(&x), black_box(&packed)).unwrap())
        });
        c.bench_function(format!("packed_gemm_256x256/unfused/{batch}"), |b| {
            b.iter(|| kernel.gemm_unfused(black_box(&x), black_box(&packed)).unwrap())
        });
        c.bench_function(format!("packed_gemm_256x256/fp32_reference/{batch}"), |b| {
            b.iter(|| reference_gemm(black_box(&x), black_box(&dense)))
        });
    }
}

fn bench_tile_shapes(c: &mut Harness) {
    let (x, _, packed) = setup(16, 256, 256);
    for tile in TileShape::all() {
        let kernel = GemmKernel { tile };
        c.bench_function(format!("tile_shapes_256x256_bs16/{tile:?}"), |b| {
            b.iter(|| kernel.gemm(black_box(&x), black_box(&packed)).unwrap())
        });
    }
}

fn main() {
    let mut h = Harness::new("gemm");
    bench_fused_vs_unfused(&mut h);
    bench_tile_shapes(&mut h);
    h.finish();
}
