//! Microbenchmarks of the fused packed GEMM against the unfused
//! two-pass pipeline and the FP32 reference, across tile shapes, batch
//! sizes, and — since the threading PR — a `threads` axis swept with
//! `milo_tensor::pool::with_threads`.
//!
//! Besides the usual `gemm` suite (JSON via `MILO_BENCH_JSON`), this
//! bench records the repo's first performance baseline at
//! `results/BENCH_gemm_threads.json`: the fused 256×256 kernel at
//! batch 16 for 1/2/4 threads, and the batch-1 padded-row fix measured
//! against a faithful replica of the pre-fix kernel. Override the output
//! path with `MILO_BENCH_BASELINE` (empty string disables).

use milo_eval::bench::{black_box, BenchResult, Config, Harness};
use milo_pack::gemm::{reference_gemm, BATCH_GRANULE};
use milo_pack::{GemmKernel, PackedMatrix, PackedWeight, TileShape};
use milo_quant::{rtn_quantize, QuantConfig};
use milo_tensor::pool;
use milo_tensor::rng::SeedableRng;
use milo_tensor::rng::WeightDist;
use milo_tensor::{F16, Matrix};

fn setup(batch: usize, k: usize, n: usize) -> (Matrix, Matrix, PackedMatrix) {
    let mut rng = milo_tensor::rng::StdRng::seed_from_u64(7);
    let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(n, k, &mut rng);
    let x = WeightDist::Gaussian { std: 1.0 }.sample_matrix(batch, k, &mut rng);
    let q = rtn_quantize(&w, &QuantConfig::int3_asym()).unwrap();
    (x, q.dequantize(), PackedMatrix::pack(&q).unwrap())
}

/// A faithful replica of the pre-fix fused kernel: batch-major
/// accumulator, by-value `[F16; 32]` dequant round-trip, and — the bug
/// the padded-row fix removed — the MAC loop running over every *padded*
/// batch row, 16× wasted multiplies at batch 1. Kept here so the fix
/// stays measurable against a recorded baseline.
fn legacy_padded_rows_gemm(tile: TileShape, x: &Matrix, w: &impl PackedWeight) -> Matrix {
    let batch = x.rows();
    let (k, n) = (w.cols(), w.rows());
    let (tile_k, tile_n) = tile.dims();
    let padded_batch = batch.div_ceil(BATCH_GRANULE) * BATCH_GRANULE;
    let mut x16 = vec![F16::ZERO; padded_batch * k];
    for b in 0..batch {
        for (j, &v) in x.row(b).iter().enumerate() {
            x16[b * k + j] = F16::from_f32(v);
        }
    }
    let mut acc = vec![0.0f32; padded_batch * n];
    let mut wtile = vec![F16::ZERO; tile_k];
    for n0 in (0..n).step_by(tile_n) {
        for k0 in (0..k).step_by(tile_k) {
            for o in n0..n0 + tile_n {
                for (gi, g) in ((k0 / 32)..((k0 + tile_k) / 32)).enumerate() {
                    let vals = w.dequant_group32(o, g);
                    wtile[gi * 32..gi * 32 + 32].copy_from_slice(&vals);
                }
                for b in 0..padded_batch {
                    let xrow = &x16[b * k + k0..b * k + k0 + tile_k];
                    let mut sum = 0.0f32;
                    for (xv, wv) in xrow.iter().zip(&wtile) {
                        sum += xv.to_f32() * wv.to_f32();
                    }
                    acc[b * n + o] += sum;
                }
            }
        }
    }
    let mut out = Matrix::zeros(batch, n);
    for b in 0..batch {
        out.row_mut(b).copy_from_slice(&acc[b * n..b * n + n]);
    }
    out
}

fn bench_fused_vs_unfused(c: &mut Harness) {
    for batch in [1usize, 16] {
        let (x, dense, packed) = setup(batch, 256, 256);
        let kernel = GemmKernel::default();
        c.bench_function(format!("packed_gemm_256x256/fused/{batch}"), |b| {
            b.iter(|| kernel.gemm(black_box(&x), black_box(&packed)).unwrap())
        });
        c.bench_function(format!("packed_gemm_256x256/unfused/{batch}"), |b| {
            b.iter(|| kernel.gemm_unfused(black_box(&x), black_box(&packed)).unwrap())
        });
        c.bench_function(format!("packed_gemm_256x256/fp32_reference/{batch}"), |b| {
            b.iter(|| reference_gemm(black_box(&x), black_box(&dense)))
        });
    }
}

fn bench_tile_shapes(c: &mut Harness) {
    let (x, _, packed) = setup(16, 256, 256);
    for tile in TileShape::all() {
        let kernel = GemmKernel { tile };
        c.bench_function(format!("tile_shapes_256x256_bs16/{tile:?}"), |b| {
            b.iter(|| kernel.gemm(black_box(&x), black_box(&packed)).unwrap())
        });
    }
}

/// The recorded baseline suite: fused GEMM across the `threads` axis and
/// the batch-1 padded-row fix vs the legacy kernel.
fn bench_threads_baseline(c: &mut Harness) {
    let kernel = GemmKernel::default();

    let (x16, _, packed16) = setup(16, 256, 256);
    for threads in [1usize, 2, 4] {
        c.bench_function(format!("fused_256x256/bs16/threads{threads}"), |b| {
            pool::with_threads(threads, || {
                b.iter(|| kernel.gemm(black_box(&x16), black_box(&packed16)).unwrap())
            })
        });
    }

    let (x1, _, packed1) = setup(1, 256, 256);
    c.bench_function("fused_256x256/bs1/threads1_fixed", |b| {
        pool::with_threads(1, || {
            b.iter(|| kernel.gemm(black_box(&x1), black_box(&packed1)).unwrap())
        })
    });
    c.bench_function("fused_256x256/bs1/legacy_padded_rows", |b| {
        b.iter(|| legacy_padded_rows_gemm(kernel.tile, black_box(&x1), black_box(&packed1)))
    });
}

fn median_of<'a>(results: &'a [BenchResult], name: &str) -> Option<f64> {
    results.iter().find(|r| r.name == name).map(|r| r.median_ns)
}

/// Writes the recorded baseline JSON: harness rows plus host metadata and
/// the two headline speedups later PRs are measured against.
fn write_baseline(results: &[BenchResult], harness_json: &str) {
    let path = match std::env::var("MILO_BENCH_BASELINE") {
        Ok(p) if p.is_empty() => return,
        Ok(p) => std::path::PathBuf::from(p),
        Err(_) => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/BENCH_gemm_threads.json"),
    };
    let host_threads =
        std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let speedup = |a: &str, b: &str| -> f64 {
        match (median_of(results, a), median_of(results, b)) {
            (Some(num), Some(den)) if den > 0.0 => num / den,
            _ => 0.0,
        }
    };
    let t4_speedup =
        speedup("fused_256x256/bs16/threads1", "fused_256x256/bs16/threads4");
    let fix_speedup = speedup(
        "fused_256x256/bs1/legacy_padded_rows",
        "fused_256x256/bs1/threads1_fixed",
    );
    let json = format!(
        "{{\"baseline\":{harness_json},\
         \"host_threads\":{host_threads},\
         \"quick\":{quick},\
         \"shape\":{{\"k\":256,\"n\":256}},\
         \"derived\":{{\
           \"speedup_bs16_threads4_vs_threads1\":{t4_speedup:.3},\
           \"speedup_bs1_padded_row_fix\":{fix_speedup:.3}}}}}",
        quick = Config::quick_mode(),
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn main() {
    let mut h = Harness::new("gemm");
    bench_fused_vs_unfused(&mut h);
    bench_tile_shapes(&mut h);
    h.finish();

    let mut base = Harness::new("BENCH_gemm_threads");
    bench_threads_baseline(&mut base);
    let json = base.to_json();
    let results = base.finish();
    write_baseline(&results, &json);
}
