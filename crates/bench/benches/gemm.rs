//! Microbenchmarks of the fused packed GEMM against the unfused
//! two-pass pipeline and the FP32 reference, across tile shapes and
//! batch sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use milo_pack::gemm::reference_gemm;
use milo_pack::{GemmKernel, PackedMatrix, TileShape};
use milo_quant::{rtn_quantize, QuantConfig};
use milo_tensor::rng::WeightDist;
use milo_tensor::Matrix;
use rand::SeedableRng;

fn setup(batch: usize, k: usize, n: usize) -> (Matrix, Matrix, PackedMatrix) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(n, k, &mut rng);
    let x = WeightDist::Gaussian { std: 1.0 }.sample_matrix(batch, k, &mut rng);
    let q = rtn_quantize(&w, &QuantConfig::int3_asym()).unwrap();
    (x, q.dequantize(), PackedMatrix::pack(&q).unwrap())
}

fn bench_fused_vs_unfused(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed_gemm_256x256");
    for batch in [1usize, 16] {
        let (x, dense, packed) = setup(batch, 256, 256);
        let kernel = GemmKernel::default();
        group.bench_with_input(BenchmarkId::new("fused", batch), &batch, |b, _| {
            b.iter(|| kernel.gemm(black_box(&x), black_box(&packed)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("unfused", batch), &batch, |b, _| {
            b.iter(|| kernel.gemm_unfused(black_box(&x), black_box(&packed)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fp32_reference", batch), &batch, |b, _| {
            b.iter(|| reference_gemm(black_box(&x), black_box(&dense)))
        });
    }
    group.finish();
}

fn bench_tile_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_shapes_256x256_bs16");
    let (x, _, packed) = setup(16, 256, 256);
    for tile in TileShape::all() {
        let kernel = GemmKernel { tile };
        group.bench_function(format!("{tile:?}"), |b| {
            b.iter(|| kernel.gemm(black_box(&x), black_box(&packed)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fused_vs_unfused, bench_tile_shapes);
criterion_main!(benches);
