//! Serving-layer soak benchmark and baseline recorder.
//!
//! Runs the seeded chaos soak from `milo-faults` (kill + poison + slow
//! faults, burst arrivals, deadlines, breaker recovery) against the
//! packed engine and records the headline serving numbers —
//! **throughput** (completed requests/s) and **shed rate** — at
//! `results/BENCH_serve_soak.json`, so later serving PRs are measured
//! against a fixed baseline. Override the output path with
//! `MILO_BENCH_BASELINE` (empty string disables); `MILO_BENCH_QUICK=1`
//! shrinks the run for CI.
//!
//! The soak *asserts* its invariants (no escaped panics, bounded queue,
//! every request resolved by deadline+ε, breakers recover); a violation
//! fails the bench run rather than recording a corrupt baseline.

use milo_eval::bench::Config;
use milo_faults::{run_soak, SoakConfig, SoakReport};

fn write_baseline(report: &SoakReport, quick: bool) {
    let path = match std::env::var("MILO_BENCH_BASELINE") {
        Ok(p) if p.is_empty() => return,
        Ok(p) => std::path::PathBuf::from(p),
        Err(_) => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/BENCH_serve_soak.json"),
    };
    let host_threads =
        std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let json = format!(
        "{{\"baseline\":{report},\
         \"host_threads\":{host_threads},\
         \"quick\":{quick},\
         \"derived\":{{\
           \"throughput_rps\":{rps:.1},\
           \"shed_rate\":{shed:.4},\
           \"reject_rate\":{rej:.4}}}}}",
        report = report.to_json().replace(['\n', ' '], ""),
        rps = report.throughput_rps,
        shed = report.shed_rate,
        rej = report.rejected as f64 / report.submitted.max(1) as f64,
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn main() {
    let quick = Config::quick_mode();
    let cfg = if quick {
        SoakConfig { requests: 300, breaker_cooldown: 12, ..SoakConfig::quick(7) }
    } else {
        SoakConfig::quick(7)
    };
    let start = std::time::Instant::now();
    let report = run_soak(&cfg).expect("soak invariants violated");
    println!(
        "serve_soak: {} requests in {:.2}s — {:.1} req/s ok, shed rate {:.4}, \
         {} rejected, breaker cycle {}/{}/{}",
        report.submitted,
        start.elapsed().as_secs_f64(),
        report.throughput_rps,
        report.shed_rate,
        report.rejected,
        report.breaker_trips,
        report.breaker_half_open,
        report.breaker_recovered,
    );
    write_baseline(&report, quick);
}
