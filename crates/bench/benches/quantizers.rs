//! Microbenchmarks of the quantizers and the MiLo optimizer building
//! blocks — the source of the quantization-time comparison in paper
//! Table 1 / Fig. 8.

use milo_eval::bench::{black_box, Harness};
use milo_core::{milo_compress, LowRankCompensator, MiloOptions};
use milo_quant::calib::{synthetic_calibration, CalibProfile};
use milo_quant::{gptq_quantize, hqq_quantize, rtn_quantize, GptqOptions, HqqOptions, QuantConfig};
use milo_tensor::linalg::truncated_svd;
use milo_tensor::rng::WeightDist;
use milo_tensor::Matrix;
use milo_tensor::rng::SeedableRng;

fn weight(rows: usize, cols: usize) -> Matrix {
    let mut rng = milo_tensor::rng::StdRng::seed_from_u64(11);
    WeightDist::StudentT { dof: 8.0, scale: 0.06 }.sample_matrix(rows, cols, &mut rng)
}

fn bench_quantizers(c: &mut Harness) {
    let w = weight(256, 256);
    let cfg = QuantConfig::int3_asym();
    c.bench_function("rtn_256x256_int3", |b| {
        b.iter(|| rtn_quantize(black_box(&w), &cfg).unwrap())
    });
    c.bench_function("hqq_256x256_int3", |b| {
        b.iter(|| hqq_quantize(black_box(&w), &cfg, &HqqOptions::default()).unwrap())
    });
    let x = synthetic_calibration(512, 256, CalibProfile::Isotropic, 3);
    c.bench_function("gptq_256x256_int3", |b| {
        b.iter(|| gptq_quantize(black_box(&w), &x, &cfg, &GptqOptions::default()).unwrap())
    });
}

fn bench_svd(c: &mut Harness) {
    let e = weight(256, 256).scale(0.1);
    c.bench_function("truncated_svd_rank16_256x256", |b| {
        b.iter(|| truncated_svd(black_box(&e), 16, 8, 2, 5).unwrap())
    });
    c.bench_function("compensator_fit_rank16_256x256", |b| {
        b.iter(|| LowRankCompensator::fit(black_box(&e), 16, 5).unwrap())
    });
}

fn bench_milo_pipeline(c: &mut Harness) {
    let w = weight(256, 256);
    let opts = MiloOptions { max_iters: 3, ..MiloOptions::default() };
    c.bench_function("milo_compress_rank16_3iters_256x256", |b| {
        b.iter(|| milo_compress(black_box(&w), 16, &opts).unwrap())
    });
}

fn main() {
    let mut h = Harness::new("quantizers");
    bench_quantizers(&mut h);
    bench_svd(&mut h);
    bench_milo_pipeline(&mut h);
    h.finish();
}
