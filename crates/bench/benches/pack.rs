//! Microbenchmarks of the packed INT3 layer: packing, the virtual-word
//! recombination, and the binary-manipulation dequantization against the
//! naive cast path (the software analogue of the paper's "MiLo Dequant"
//! ablation).

use milo_eval::bench::{black_box, Harness};
use milo_pack::{
    dequant_word_asym, dequant_word_sym, naive_dequant_word, pack_group, unpack_group,
    virtual_word, PackedMatrix,
};
use milo_quant::{rtn_quantize, QuantConfig};
use milo_tensor::rng::WeightDist;
use milo_tensor::F16;
use milo_tensor::rng::{Rng, SeedableRng};

fn codes(seed: u64) -> [u8; 32] {
    let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
    let mut c = [0u8; 32];
    for v in &mut c {
        *v = rng.gen_range(0..8);
    }
    c
}

fn bench_pack(c: &mut Harness) {
    let group = codes(1);
    c.bench_function("pack_group_32_weights", |b| {
        b.iter(|| pack_group(black_box(&group)))
    });
    let packed = pack_group(&group);
    c.bench_function("unpack_group_32_weights", |b| {
        b.iter(|| unpack_group(black_box(&packed)))
    });
    c.bench_function("virtual_word_recombination", |b| {
        b.iter(|| virtual_word(black_box(&packed)))
    });
}

fn bench_dequant(c: &mut Harness) {
    let packed = pack_group(&codes(2));
    let word = packed[0];
    let scale = F16::from_f32(0.02);
    let neg_zs = F16::from_f32(-0.06);
    c.bench_function("dequant_word_sym_bit_trick", |b| {
        b.iter(|| dequant_word_sym(black_box(word), scale))
    });
    c.bench_function("dequant_word_asym_bit_trick", |b| {
        b.iter(|| dequant_word_asym(black_box(word), scale, neg_zs))
    });
    c.bench_function("dequant_word_naive_cast", |b| {
        b.iter(|| naive_dequant_word(black_box(word), 0.02, 3.0))
    });
}

fn bench_matrix_dequant(c: &mut Harness) {
    let mut rng = milo_tensor::rng::StdRng::seed_from_u64(3);
    let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(128, 256, &mut rng);
    let q = rtn_quantize(&w, &QuantConfig::int3_asym()).unwrap();
    let packed = PackedMatrix::pack(&q).unwrap();
    c.bench_function("packed_matrix_dequantize_128x256", |b| {
        b.iter(|| black_box(&packed).dequantize())
    });
    c.bench_function("unpacked_matrix_dequantize_128x256", |b| {
        b.iter(|| black_box(&q).dequantize())
    });
}

fn main() {
    let mut h = Harness::new("pack");
    bench_pack(&mut h);
    bench_dequant(&mut h);
    bench_matrix_dequant(&mut h);
    h.finish();
}
