//! Microbenchmarks of the MoE substrate: forward pass (including a
//! `threads` axis over the expert-dispatch pool) and routing.

use milo_eval::bench::{black_box, Harness};
use milo_moe::{MoeConfig, MoeModel};
use milo_tensor::pool;

fn bench_forward(c: &mut Harness) {
    let mixtral = MoeModel::synthesize(&MoeConfig::tiny_mixtral(), 1);
    let deepseek = MoeModel::synthesize(&MoeConfig::tiny_deepseek(), 2);
    let tokens: Vec<u32> = (0..32).map(|i| (i * 7) % 64).collect();
    c.bench_function("tiny_mixtral_forward_32_tokens", |b| {
        b.iter(|| mixtral.forward(black_box(&tokens)).unwrap())
    });
    c.bench_function("tiny_deepseek_forward_32_tokens", |b| {
        b.iter(|| deepseek.forward(black_box(&tokens)).unwrap())
    });
    for threads in [1usize, 2, 4] {
        c.bench_function(format!("tiny_mixtral_forward_32_tokens/threads{threads}"), |b| {
            pool::with_threads(threads, || {
                b.iter(|| mixtral.forward(black_box(&tokens)).unwrap())
            })
        });
    }
}

fn bench_synthesis(c: &mut Harness) {
    let cfg = MoeConfig::tiny_mixtral();
    c.bench_function("tiny_mixtral_synthesize", |b| {
        b.iter(|| MoeModel::synthesize(black_box(&cfg), 3))
    });
}

fn main() {
    let mut h = Harness::new("moe_forward");
    bench_forward(&mut h);
    bench_synthesis(&mut h);
    h.finish();
}
