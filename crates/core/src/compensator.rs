//! Low-rank compensators (paper §3.1.2, §3.2.3, §3.2.6).
//!
//! A compensator approximates the quantization residual `E = W − W_dq`
//! with a rank-`r` product `U·V`, where `U ∈ ℝ^{m×r}` and `V ∈ ℝ^{r×n}`
//! are obtained from the truncated SVD of `E` with the balanced split of
//! paper Eq. 12 (`U = Û·√Σ`, `V = √Σ·V̂ᵗ`). The compensator matrices can
//! themselves be quantized (INT8 or INT3, §3.2.6) to shrink the memory
//! overhead further.

use crate::{MiloError, Result};
use milo_quant::{symmetric_quantize, QuantConfig, QuantizedMatrix, Scheme};
use milo_tensor::linalg::truncated_svd;
use milo_tensor::Matrix;

/// A full-precision rank-`r` compensator `U·V`.
#[derive(Debug, Clone, PartialEq)]
pub struct LowRankCompensator {
    u: Matrix,
    v: Matrix,
}

impl LowRankCompensator {
    /// Fits a rank-`rank` compensator to the residual `e` by truncated
    /// SVD (paper Eqs. 11–12). `seed` drives the randomized SVD sketch.
    ///
    /// # Errors
    ///
    /// Returns [`MiloError::InvalidRank`] if `rank` is zero or exceeds
    /// `min(e.rows(), e.cols())`.
    pub fn fit(e: &Matrix, rank: usize, seed: u64) -> Result<Self> {
        let (rows, cols) = e.shape();
        if rank == 0 || rank > rows.min(cols) {
            return Err(MiloError::InvalidRank { rank, rows, cols });
        }
        // Oversampling 8 / two power iterations keeps the truncation
        // error within a fraction of a percent of Eckart-Young optimal at
        // the sizes the scaled models use.
        let svd = truncated_svd(e, rank, 8, 2, seed)?;
        let (u, v) = svd.split_balanced();
        Ok(Self { u, v })
    }

    /// Builds a compensator directly from factors.
    ///
    /// # Errors
    ///
    /// Returns [`MiloError::InvalidRank`] if the inner dimensions differ.
    pub fn from_factors(u: Matrix, v: Matrix) -> Result<Self> {
        if u.cols() != v.rows() {
            return Err(MiloError::InvalidRank {
                rank: u.cols(),
                rows: u.rows(),
                cols: v.cols(),
            });
        }
        Ok(Self { u, v })
    }

    /// The left factor `U` (`m × r`).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// The right factor `V` (`r × n`).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// The compensator rank `r`.
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    /// Materializes the dense product `U·V`.
    pub fn to_dense(&self) -> Matrix {
        self.u.matmul(&self.v).expect("factor shapes validated at construction")
    }

    /// Memory of the FP16 deployment representation of the factors, in
    /// bytes.
    pub fn memory_bytes(&self) -> usize {
        2 * (self.u.len() + self.v.len())
    }

    /// Quantizes the factors with the symmetric scheme of paper Eq. 15.
    ///
    /// # Errors
    ///
    /// Propagates quantizer failures; `cfg` must be symmetric.
    pub fn quantize(&self, cfg: &QuantConfig) -> Result<QuantizedCompensator> {
        Ok(QuantizedCompensator {
            u: symmetric_quantize(&self.u, cfg)?,
            v: symmetric_quantize(&self.v, cfg)?,
        })
    }
}

/// A compensator whose `U`, `V` factors are symmetrically quantized
/// (paper §3.2.6, Table 6).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedCompensator {
    u: QuantizedMatrix,
    v: QuantizedMatrix,
}

impl QuantizedCompensator {
    /// Builds a quantized compensator directly from factors (used by
    /// deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`MiloError::InvalidRank`] if the inner dimensions differ.
    pub fn from_factors(u: QuantizedMatrix, v: QuantizedMatrix) -> Result<Self> {
        if u.cols() != v.rows() {
            return Err(MiloError::InvalidRank {
                rank: u.cols(),
                rows: u.rows(),
                cols: v.cols(),
            });
        }
        Ok(Self { u, v })
    }

    /// The quantized left factor.
    pub fn u(&self) -> &QuantizedMatrix {
        &self.u
    }

    /// The quantized right factor.
    pub fn v(&self) -> &QuantizedMatrix {
        &self.v
    }

    /// The compensator rank `r`.
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    /// De-quantizes and materializes the dense product `U·V`.
    pub fn to_dense(&self) -> Matrix {
        self.u
            .dequantize()
            .matmul(&self.v.dequantize())
            .expect("factor shapes validated at construction")
    }

    /// Memory of the packed deployment representation, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.u.packed_bytes() + self.v.packed_bytes()
    }
}

/// Either representation of a compensator, as carried by a compressed
/// layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Compensator {
    /// Full-precision factors (kept in FP16 at deployment).
    Fp16(LowRankCompensator),
    /// Symmetrically quantized factors (paper §3.2.6).
    Quantized(QuantizedCompensator),
}

impl Compensator {
    /// The compensator rank `r`.
    pub fn rank(&self) -> usize {
        match self {
            Compensator::Fp16(c) => c.rank(),
            Compensator::Quantized(c) => c.rank(),
        }
    }

    /// Materializes the dense product `U·V`.
    pub fn to_dense(&self) -> Matrix {
        match self {
            Compensator::Fp16(c) => c.to_dense(),
            Compensator::Quantized(c) => c.to_dense(),
        }
    }

    /// Deployment memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Compensator::Fp16(c) => c.memory_bytes(),
            Compensator::Quantized(c) => c.memory_bytes(),
        }
    }
}

/// Default compensator quantization: symmetric INT3, group 64 (Eq. 15).
pub fn default_compensator_config() -> QuantConfig {
    QuantConfig::int3_sym()
}

/// Symmetric INT8, group 64 — the Table 6 comparison point.
pub fn int8_compensator_config() -> QuantConfig {
    QuantConfig::new(8, 64, Scheme::Symmetric).expect("static config is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::linalg::jacobi_svd;
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;

    fn residual(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        WeightDist::Gaussian { std: 0.02 }.sample_matrix(rows, cols, &mut rng)
    }

    #[test]
    fn fit_reduces_residual_norm() {
        let e = residual(48, 32, 1);
        let c = LowRankCompensator::fit(&e, 8, 0).unwrap();
        let after = e.sub(&c.to_dense()).unwrap().frobenius_norm();
        assert!(after < e.frobenius_norm());
    }

    #[test]
    fn fit_error_matches_eckart_young() {
        let e = residual(40, 30, 2);
        let full = jacobi_svd(&e).unwrap();
        let r = 6;
        let c = LowRankCompensator::fit(&e, r, 3).unwrap();
        let err = e.sub(&c.to_dense()).unwrap().frobenius_norm();
        let optimal: f32 =
            full.sigma[r..].iter().map(|&s| (s as f64).powi(2)).sum::<f64>().sqrt() as f32;
        assert!((err - optimal) / optimal < 0.02, "err {err} vs optimal {optimal}");
    }

    #[test]
    fn higher_rank_never_hurts() {
        let e = residual(32, 32, 4);
        let errs: Vec<f32> = [2usize, 4, 8, 16]
            .iter()
            .map(|&r| {
                let c = LowRankCompensator::fit(&e, r, 5).unwrap();
                e.sub(&c.to_dense()).unwrap().frobenius_norm()
            })
            .collect();
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-4, "rank increase worsened error: {errs:?}");
        }
    }

    #[test]
    fn invalid_rank_rejected() {
        let e = residual(8, 8, 6);
        assert!(matches!(
            LowRankCompensator::fit(&e, 0, 0),
            Err(MiloError::InvalidRank { .. })
        ));
        assert!(LowRankCompensator::fit(&e, 9, 0).is_err());
    }

    #[test]
    fn from_factors_validates_inner_dim() {
        let u = Matrix::zeros(4, 2);
        let v = Matrix::zeros(3, 5);
        assert!(LowRankCompensator::from_factors(u, v).is_err());
    }

    #[test]
    fn memory_accounting_scales_with_rank() {
        let e = residual(64, 64, 7);
        let c4 = LowRankCompensator::fit(&e, 4, 0).unwrap();
        let c8 = LowRankCompensator::fit(&e, 8, 0).unwrap();
        assert_eq!(c8.memory_bytes(), 2 * c4.memory_bytes());
    }

    #[test]
    fn quantized_compensator_is_smaller_and_close() {
        let e = residual(64, 64, 8);
        let c = LowRankCompensator::fit(&e, 8, 0).unwrap();
        let q = c.quantize(&default_compensator_config()).unwrap();
        assert!(q.memory_bytes() < c.memory_bytes());
        // INT3 quantization of the factors should keep the compensator
        // useful: applying it still reduces the residual.
        let after = e.sub(&q.to_dense()).unwrap().frobenius_norm();
        assert!(after < e.frobenius_norm());
    }

    #[test]
    fn int3_uses_about_three_eighths_of_int8() {
        let e = residual(128, 128, 9);
        let c = LowRankCompensator::fit(&e, 16, 0).unwrap();
        let q3 = c.quantize(&default_compensator_config()).unwrap();
        let q8 = c.quantize(&int8_compensator_config()).unwrap();
        let ratio = q3.memory_bytes() as f32 / q8.memory_bytes() as f32;
        // Paper Table 6: INT3 compensators use 37.5% of INT8 memory for
        // the weights; the shared per-group scale overhead (relatively
        // large for the narrow U factor) pushes the total ratio slightly
        // above 3/8.
        assert!(ratio > 0.36 && ratio < 0.45, "ratio {ratio}");
    }

    #[test]
    fn compensator_enum_dispatches() {
        let e = residual(16, 16, 10);
        let c = LowRankCompensator::fit(&e, 2, 0).unwrap();
        let dense = c.to_dense();
        let as_enum = Compensator::Fp16(c.clone());
        assert_eq!(as_enum.rank(), 2);
        assert_eq!(as_enum.to_dense(), dense);
        let q = Compensator::Quantized(c.quantize(&default_compensator_config()).unwrap());
        assert_eq!(q.rank(), 2);
        assert!(q.memory_bytes() < as_enum.memory_bytes());
    }
}
