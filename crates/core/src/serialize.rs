//! Binary serialization of compressed models — the "save the quantized
//! model to `<YOUR_DIR>`" workflow of the paper's artifact (Appendix F).
//!
//! Format (all little endian): a `MILO` magic + version, then the layer
//! records. Each record carries its name, policy metadata, rank, the
//! quantized weight (via `milo-quant`'s format), an optional compensator
//! (FP32 factors or quantized factors), and the convergence history.

use crate::compensator::{Compensator, LowRankCompensator, QuantizedCompensator};
use crate::model::{CompressedModel, LayerRecord};
use crate::optimizer::CompressedLayer;
use crate::policy::{LayerKind, LayerMeta};
use milo_quant::serialize::{read_quantized, write_quantized};
use milo_tensor::io::{
    expect_tag, read_f32, read_f32_vec, read_matrix, read_string, read_u32, read_u64,
    write_f32, write_f32_slice, write_matrix, write_string, write_tag, write_u32, write_u64,
};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"MILO";
const VERSION: u32 = 1;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_kind(w: &mut impl Write, kind: LayerKind) -> io::Result<()> {
    match kind {
        LayerKind::Attention => write_u32(w, 0),
        LayerKind::DenseFfn => write_u32(w, 1),
        LayerKind::SharedExpert => write_u32(w, 2),
        LayerKind::Expert { index } => {
            write_u32(w, 3)?;
            write_u64(w, index as u64)
        }
    }
}

fn read_kind(r: &mut impl Read) -> io::Result<LayerKind> {
    Ok(match read_u32(r)? {
        0 => LayerKind::Attention,
        1 => LayerKind::DenseFfn,
        2 => LayerKind::SharedExpert,
        3 => LayerKind::Expert { index: read_u64(r)? as usize },
        other => return Err(invalid(format!("unknown layer kind tag {other}"))),
    })
}

fn write_compensator(w: &mut impl Write, c: &Compensator) -> io::Result<()> {
    match c {
        Compensator::Fp16(lr) => {
            write_u32(w, 0)?;
            write_matrix(w, lr.u())?;
            write_matrix(w, lr.v())
        }
        Compensator::Quantized(q) => {
            write_u32(w, 1)?;
            write_quantized(w, q.u())?;
            write_quantized(w, q.v())
        }
    }
}

fn read_compensator(r: &mut impl Read) -> io::Result<Compensator> {
    Ok(match read_u32(r)? {
        0 => {
            let u = read_matrix(r)?;
            let v = read_matrix(r)?;
            Compensator::Fp16(
                LowRankCompensator::from_factors(u, v)
                    .map_err(|e| invalid(e.to_string()))?,
            )
        }
        1 => {
            let u = read_quantized(r)?;
            let v = read_quantized(r)?;
            Compensator::Quantized(
                QuantizedCompensator::from_factors(u, v)
                    .map_err(|e| invalid(e.to_string()))?,
            )
        }
        other => return Err(invalid(format!("unknown compensator tag {other}"))),
    })
}

/// Writes a compressed model to a binary stream.
///
/// # Errors
///
/// Propagates IO failures.
pub fn write_compressed_model(w: &mut impl Write, model: &CompressedModel) -> io::Result<()> {
    write_tag(w, MAGIC)?;
    write_u32(w, VERSION)?;
    write_u64(w, model.layers.len() as u64)?;
    for rec in &model.layers {
        write_string(w, &rec.name)?;
        write_kind(w, rec.meta.kind)?;
        write_u64(w, rec.meta.rows as u64)?;
        write_u64(w, rec.meta.cols as u64)?;
        write_f32(w, rec.meta.kurtosis)?;
        write_f32(w, rec.meta.frequency)?;
        write_u64(w, rec.rank as u64)?;
        write_quantized(w, &rec.layer.qweight)?;
        match &rec.layer.compensator {
            Some(c) => {
                write_u32(w, 1)?;
                write_compensator(w, c)?;
            }
            None => write_u32(w, 0)?,
        }
        write_f32_slice(w, &rec.layer.convergence)?;
    }
    Ok(())
}

/// Reads a compressed model from a binary stream.
///
/// # Errors
///
/// Returns `InvalidData` for malformed input or unsupported versions.
pub fn read_compressed_model(r: &mut impl Read) -> io::Result<CompressedModel> {
    expect_tag(r, MAGIC)?;
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(invalid(format!("unsupported format version {version}")));
    }
    let n = read_u64(r)? as usize;
    if n > 1 << 24 {
        return Err(invalid(format!("layer count {n} exceeds sanity limit")));
    }
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_string(r)?;
        let kind = read_kind(r)?;
        let rows = read_u64(r)? as usize;
        let cols = read_u64(r)? as usize;
        let kurtosis = read_f32(r)?;
        let frequency = read_f32(r)?;
        let rank = read_u64(r)? as usize;
        let qweight = read_quantized(r)?;
        if qweight.shape() != (rows, cols) {
            return Err(invalid(format!(
                "layer {name}: metadata says {rows}x{cols}, weight is {:?}",
                qweight.shape()
            )));
        }
        let compensator = match read_u32(r)? {
            0 => None,
            1 => Some(read_compensator(r)?),
            other => return Err(invalid(format!("bad compensator presence tag {other}"))),
        };
        let convergence = read_f32_vec(r)?;
        layers.push(LayerRecord {
            name,
            meta: LayerMeta { kind, rows, cols, kurtosis, frequency },
            rank,
            layer: CompressedLayer { qweight, compensator, convergence },
        });
    }
    Ok(CompressedModel { layers })
}

/// Saves a compressed model to a file.
///
/// # Errors
///
/// Propagates filesystem and serialization failures.
pub fn save_compressed_model(path: &std::path::Path, model: &CompressedModel) -> io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_compressed_model(&mut file, model)
}

/// Loads a compressed model from a file.
///
/// # Errors
///
/// Propagates filesystem and deserialization failures.
pub fn load_compressed_model(path: &std::path::Path) -> io::Result<CompressedModel> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    read_compressed_model(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{compress_model, LayerTensor};
    use crate::optimizer::MiloOptions;
    use crate::policy::RankPolicy;
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;
    use std::io::Cursor;

    fn sample_model(compensator_cfg: Option<milo_quant::QuantConfig>) -> CompressedModel {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(5);
        let layers: Vec<LayerTensor> = (0..3)
            .map(|i| {
                let w =
                    WeightDist::Gaussian { std: 0.08 }.sample_matrix(48, 64, &mut rng);
                LayerTensor {
                    name: format!("layer0.expert{i}.w1"),
                    meta: LayerMeta {
                        kind: LayerKind::Expert { index: i },
                        rows: 48,
                        cols: 64,
                        kurtosis: 0.1 * i as f32,
                        frequency: 0.3,
                    },
                    weight: w,
                }
            })
            .collect();
        let opts = MiloOptions { max_iters: 1, compensator_cfg, ..MiloOptions::default() };
        compress_model(&layers, &RankPolicy::uniform(4), &opts, 1).unwrap()
    }

    #[test]
    fn round_trip_with_quantized_compensators() {
        let model = sample_model(Some(milo_quant::QuantConfig::int3_sym()));
        let mut buf = Vec::new();
        write_compressed_model(&mut buf, &model).unwrap();
        let out = read_compressed_model(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out.layers.len(), model.layers.len());
        for (a, b) in out.layers.iter().zip(&model.layers) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.layer, b.layer);
            assert_eq!(a.meta, b.meta);
        }
    }

    #[test]
    fn round_trip_with_fp32_compensators() {
        let model = sample_model(None);
        let mut buf = Vec::new();
        write_compressed_model(&mut buf, &model).unwrap();
        let out = read_compressed_model(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out.layers[0].layer, model.layers[0].layer);
    }

    #[test]
    fn effective_weights_survive_serialization() {
        let model = sample_model(Some(milo_quant::QuantConfig::int3_sym()));
        let mut buf = Vec::new();
        write_compressed_model(&mut buf, &model).unwrap();
        let out = read_compressed_model(&mut Cursor::new(buf)).unwrap();
        for (a, b) in out.layers.iter().zip(&model.layers) {
            assert_eq!(a.layer.effective_weight(), b.layer.effective_weight());
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let model = sample_model(None);
        let mut buf = Vec::new();
        write_compressed_model(&mut buf, &model).unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(read_compressed_model(&mut Cursor::new(bad_magic)).is_err());
        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert!(read_compressed_model(&mut Cursor::new(bad_version)).is_err());
    }

    #[test]
    fn file_round_trip() {
        let model = sample_model(Some(milo_quant::QuantConfig::int3_sym()));
        let dir = std::env::temp_dir().join("milo_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.milo");
        save_compressed_model(&path, &model).unwrap();
        let out = load_compressed_model(&path).unwrap();
        assert_eq!(out.layers.len(), model.layers.len());
        std::fs::remove_file(&path).ok();
    }
}
