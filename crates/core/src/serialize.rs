//! Binary serialization of compressed models — the "save the quantized
//! model to `<YOUR_DIR>`" workflow of the paper's artifact (Appendix F).
//!
//! Format (all little endian): a `MILO` magic + version, then the layer
//! records. Each record carries its name, policy metadata, rank, the
//! quantized weight (via `milo-quant`'s format), an optional compensator
//! (FP32 factors or quantized factors), and the convergence history.
//!
//! Since version 2 every layer record is a *checksummed section*
//! (`u64` length + CRC-32 + payload, see [`milo_tensor::io`]): a flipped
//! bit or a truncated file is reported as a typed
//! [`CorruptSection`](milo_tensor::io::CorruptSection) error naming the
//! offending layer, never as silently-garbage weights. Version 1
//! artifacts (no checksums) are still read.

use crate::compensator::{Compensator, LowRankCompensator, QuantizedCompensator};
use crate::model::{CompressedModel, LayerRecord};
use crate::optimizer::CompressedLayer;
use crate::policy::{LayerKind, LayerMeta};
use milo_quant::serialize::{read_quantized, write_quantized};
use milo_tensor::io::{
    expect_tag, read_f32, read_f32_vec, read_matrix, read_section_lenient, read_string,
    read_u32, read_u64, write_f32, write_f32_slice, write_matrix, write_section,
    write_string, write_tag, write_u32, write_u64, CorruptSection, IntegrityReport,
    SectionFault, SectionReport,
};
use std::io::{self, Cursor, Read, Write};

const MAGIC: &[u8; 4] = b"MILO";
/// Current format version (checksummed sections).
const VERSION: u32 = 2;
/// The pre-checksum format; still accepted by the reader.
const LEGACY_VERSION: u32 = 1;
/// Sanity limit on the layer count read from a (possibly corrupt) header.
const MAX_LAYERS: u64 = 1 << 24;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_kind(w: &mut impl Write, kind: LayerKind) -> io::Result<()> {
    match kind {
        LayerKind::Attention => write_u32(w, 0),
        LayerKind::DenseFfn => write_u32(w, 1),
        LayerKind::SharedExpert => write_u32(w, 2),
        LayerKind::Expert { index } => {
            write_u32(w, 3)?;
            write_u64(w, index as u64)
        }
    }
}

fn read_kind(r: &mut impl Read) -> io::Result<LayerKind> {
    Ok(match read_u32(r)? {
        0 => LayerKind::Attention,
        1 => LayerKind::DenseFfn,
        2 => LayerKind::SharedExpert,
        3 => LayerKind::Expert { index: read_u64(r)? as usize },
        other => return Err(invalid(format!("unknown layer kind tag {other}"))),
    })
}

fn write_compensator(w: &mut impl Write, c: &Compensator) -> io::Result<()> {
    match c {
        Compensator::Fp16(lr) => {
            write_u32(w, 0)?;
            write_matrix(w, lr.u())?;
            write_matrix(w, lr.v())
        }
        Compensator::Quantized(q) => {
            write_u32(w, 1)?;
            write_quantized(w, q.u())?;
            write_quantized(w, q.v())
        }
    }
}

fn read_compensator(r: &mut impl Read) -> io::Result<Compensator> {
    Ok(match read_u32(r)? {
        0 => {
            let u = read_matrix(r)?;
            let v = read_matrix(r)?;
            Compensator::Fp16(
                LowRankCompensator::from_factors(u, v)
                    .map_err(|e| invalid(e.to_string()))?,
            )
        }
        1 => {
            let u = read_quantized(r)?;
            let v = read_quantized(r)?;
            Compensator::Quantized(
                QuantizedCompensator::from_factors(u, v)
                    .map_err(|e| invalid(e.to_string()))?,
            )
        }
        other => return Err(invalid(format!("unknown compensator tag {other}"))),
    })
}

/// Writes one layer record's payload (the version-1 record layout, which
/// version 2 wraps in a checksummed section).
fn write_layer_record(w: &mut impl Write, rec: &LayerRecord) -> io::Result<()> {
    write_string(w, &rec.name)?;
    write_kind(w, rec.meta.kind)?;
    write_u64(w, rec.meta.rows as u64)?;
    write_u64(w, rec.meta.cols as u64)?;
    write_f32(w, rec.meta.kurtosis)?;
    write_f32(w, rec.meta.frequency)?;
    write_u64(w, rec.rank as u64)?;
    write_quantized(w, &rec.layer.qweight)?;
    match &rec.layer.compensator {
        Some(c) => {
            write_u32(w, 1)?;
            write_compensator(w, c)?;
        }
        None => write_u32(w, 0)?,
    }
    write_f32_slice(w, &rec.layer.convergence)
}

/// Reads one layer record's payload.
fn read_layer_record(r: &mut impl Read) -> io::Result<LayerRecord> {
    let name = read_string(r)?;
    let kind = read_kind(r)?;
    let rows = read_u64(r)? as usize;
    let cols = read_u64(r)? as usize;
    let kurtosis = read_f32(r)?;
    let frequency = read_f32(r)?;
    let rank = read_u64(r)? as usize;
    let qweight = read_quantized(r)?;
    if qweight.shape() != (rows, cols) {
        return Err(invalid(format!(
            "layer {name}: metadata says {rows}x{cols}, weight is {:?}",
            qweight.shape()
        )));
    }
    let compensator = match read_u32(r)? {
        0 => None,
        1 => Some(read_compensator(r)?),
        other => return Err(invalid(format!("bad compensator presence tag {other}"))),
    };
    let convergence = read_f32_vec(r)?;
    Ok(LayerRecord {
        name,
        meta: LayerMeta { kind, rows, cols, kurtosis, frequency },
        rank,
        layer: CompressedLayer { qweight, compensator, convergence },
    })
}

/// Best-effort upgrade of a corrupt-section error with the layer's name,
/// which sits (length-prefixed) at the front of the payload and often
/// survives a mid-record flip.
fn name_section(fault: CorruptSection, index: usize, payload: &[u8]) -> CorruptSection {
    let mut section = format!("layer {index}");
    if let Ok(name) = read_string(&mut Cursor::new(payload)) {
        if !name.is_empty() && name.len() <= 256 && name.chars().all(|c| !c.is_control()) {
            section = format!("layer {index} ({name})");
        }
    }
    CorruptSection { section, ..fault }
}

fn read_layer_count(r: &mut impl Read) -> io::Result<usize> {
    let n = read_u64(r)?;
    if n > MAX_LAYERS {
        return Err(invalid(format!("layer count {n} exceeds sanity limit")));
    }
    Ok(n as usize)
}

/// Errors if the stream still holds bytes — a corrupt layer count must
/// not silently drop trailing layers.
fn expect_eof(r: &mut impl Read) -> io::Result<()> {
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(()),
        _ => Err(invalid("trailing data after final layer (corrupt layer count?)")),
    }
}

/// Writes a compressed model to a binary stream (current format: version
/// 2, one checksummed section per layer).
///
/// # Errors
///
/// Propagates IO failures.
pub fn write_compressed_model(w: &mut impl Write, model: &CompressedModel) -> io::Result<()> {
    write_tag(w, MAGIC)?;
    write_u32(w, VERSION)?;
    write_u64(w, model.layers.len() as u64)?;
    for rec in &model.layers {
        let mut payload = Vec::new();
        write_layer_record(&mut payload, rec)?;
        write_section(w, &payload)?;
    }
    Ok(())
}

/// Writes a compressed model in the legacy version-1 layout (no
/// checksums). Kept for compatibility tests and for producing artifacts
/// older readers understand; new code should use
/// [`write_compressed_model`].
///
/// # Errors
///
/// Propagates IO failures.
pub fn write_compressed_model_v1(
    w: &mut impl Write,
    model: &CompressedModel,
) -> io::Result<()> {
    write_tag(w, MAGIC)?;
    write_u32(w, LEGACY_VERSION)?;
    write_u64(w, model.layers.len() as u64)?;
    for rec in &model.layers {
        write_layer_record(w, rec)?;
    }
    Ok(())
}

/// Reads a compressed model from a binary stream (versions 1 and 2).
///
/// # Errors
///
/// Returns `InvalidData` for malformed input or unsupported versions.
/// For version-2 artifacts a checksum failure or truncation surfaces as
/// a typed [`CorruptSection`] (recoverable from the error via
/// [`milo_tensor::io::corrupt_section_info`]) naming the offending
/// layer.
pub fn read_compressed_model(r: &mut impl Read) -> io::Result<CompressedModel> {
    expect_tag(r, MAGIC)?;
    let version = read_u32(r)?;
    let n = match version {
        LEGACY_VERSION | VERSION => read_layer_count(r)?,
        other => return Err(invalid(format!("unsupported format version {other}"))),
    };
    let mut layers = Vec::with_capacity(n.min(1 << 12));
    for i in 0..n {
        if version == LEGACY_VERSION {
            layers.push(read_layer_record(r)?);
            continue;
        }
        let (payload, fault) = read_section_lenient(r, &format!("layer {i}"))?;
        if let Some(fault) = fault {
            return Err(name_section(fault, i, &payload).into());
        }
        let mut cur = Cursor::new(payload.as_slice());
        let rec = read_layer_record(&mut cur)
            .map_err(|e| invalid(format!("layer {i}: {e}")))?;
        if cur.position() != payload.len() as u64 {
            return Err(invalid(format!(
                "layer {i} ({}): record shorter than its section",
                rec.name
            )));
        }
        layers.push(rec);
    }
    if version == VERSION {
        expect_eof(r)?;
    }
    Ok(CompressedModel { layers })
}

/// Walks a compressed-model stream verifying every section checksum
/// without materializing the model, reporting per-layer integrity. Keeps
/// scanning past checksum mismatches (the framing is still intact);
/// stops only when the stream can no longer be followed (truncation).
///
/// Version-1 artifacts carry no checksums; the report says so
/// (`checksummed == false`) and lists no sections.
///
/// # Errors
///
/// Returns `InvalidData` only if the stream is not a `MILO` artifact at
/// all (bad magic / unknown version / implausible layer count).
pub fn verify_compressed_stream(r: &mut impl Read) -> io::Result<IntegrityReport> {
    expect_tag(r, MAGIC)?;
    let version = read_u32(r)?;
    if version == LEGACY_VERSION {
        return Ok(IntegrityReport {
            version,
            checksummed: false,
            sections: Vec::new(),
            trailing_data: false,
        });
    }
    if version != VERSION {
        return Err(invalid(format!("unsupported format version {version}")));
    }
    let n = read_layer_count(r)?;
    let mut sections = Vec::with_capacity(n.min(1 << 12));
    for i in 0..n {
        match read_section_lenient(r, &format!("layer {i}")) {
            Ok((payload, fault)) => {
                let name = match &fault {
                    None => {
                        // Checksum passed: the payload parses, so take the
                        // authoritative name from the record itself.
                        read_layer_record(&mut Cursor::new(payload.as_slice()))
                            .map(|rec| format!("layer {i} ({})", rec.name))
                            .unwrap_or_else(|_| format!("layer {i}"))
                    }
                    Some(f) => name_section(f.clone(), i, &payload).section,
                };
                sections.push(SectionReport {
                    name,
                    bytes: payload.len() as u64,
                    fault: fault.map(|f| f.fault),
                });
            }
            Err(e) => {
                // Truncated or oversized: the stream cannot be followed
                // past this point.
                let fault = milo_tensor::io::corrupt_section_info(&e)
                    .map(|c| c.fault.clone())
                    .unwrap_or(SectionFault::Truncated);
                sections.push(SectionReport {
                    name: format!("layer {i}"),
                    bytes: 0,
                    fault: Some(fault),
                });
                return Ok(IntegrityReport {
                    version,
                    checksummed: true,
                    sections,
                    trailing_data: false,
                });
            }
        }
    }
    let trailing_data = expect_eof(r).is_err();
    Ok(IntegrityReport { version, checksummed: true, sections, trailing_data })
}

/// Saves a compressed model to a file.
///
/// # Errors
///
/// Propagates filesystem and serialization failures.
pub fn save_compressed_model(path: &std::path::Path, model: &CompressedModel) -> io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_compressed_model(&mut file, model)
}

/// Loads a compressed model from a file.
///
/// # Errors
///
/// Propagates filesystem and deserialization failures.
pub fn load_compressed_model(path: &std::path::Path) -> io::Result<CompressedModel> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    read_compressed_model(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{compress_model, LayerTensor};
    use crate::optimizer::MiloOptions;
    use crate::policy::RankPolicy;
    use milo_tensor::io::corrupt_section_info;
    use milo_tensor::rng::SeedableRng;
    use milo_tensor::rng::WeightDist;
    use std::io::Cursor;

    fn sample_model(compensator_cfg: Option<milo_quant::QuantConfig>) -> CompressedModel {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(5);
        let layers: Vec<LayerTensor> = (0..3)
            .map(|i| {
                let w =
                    WeightDist::Gaussian { std: 0.08 }.sample_matrix(48, 64, &mut rng);
                LayerTensor {
                    name: format!("layer0.expert{i}.w1"),
                    meta: LayerMeta {
                        kind: LayerKind::Expert { index: i },
                        rows: 48,
                        cols: 64,
                        kurtosis: 0.1 * i as f32,
                        frequency: 0.3,
                    },
                    weight: w,
                }
            })
            .collect();
        let opts = MiloOptions { max_iters: 1, compensator_cfg, ..MiloOptions::default() };
        compress_model(&layers, &RankPolicy::uniform(4), &opts, 1).unwrap()
    }

    #[test]
    fn round_trip_with_quantized_compensators() {
        let model = sample_model(Some(milo_quant::QuantConfig::int3_sym()));
        let mut buf = Vec::new();
        write_compressed_model(&mut buf, &model).unwrap();
        let out = read_compressed_model(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out.layers.len(), model.layers.len());
        for (a, b) in out.layers.iter().zip(&model.layers) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.layer, b.layer);
            assert_eq!(a.meta, b.meta);
        }
    }

    #[test]
    fn round_trip_with_fp32_compensators() {
        let model = sample_model(None);
        let mut buf = Vec::new();
        write_compressed_model(&mut buf, &model).unwrap();
        let out = read_compressed_model(&mut Cursor::new(buf)).unwrap();
        assert_eq!(out.layers[0].layer, model.layers[0].layer);
    }

    #[test]
    fn effective_weights_survive_serialization() {
        let model = sample_model(Some(milo_quant::QuantConfig::int3_sym()));
        let mut buf = Vec::new();
        write_compressed_model(&mut buf, &model).unwrap();
        let out = read_compressed_model(&mut Cursor::new(buf)).unwrap();
        for (a, b) in out.layers.iter().zip(&model.layers) {
            assert_eq!(a.layer.effective_weight(), b.layer.effective_weight());
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let model = sample_model(None);
        let mut buf = Vec::new();
        write_compressed_model(&mut buf, &model).unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(read_compressed_model(&mut Cursor::new(bad_magic)).is_err());
        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert!(read_compressed_model(&mut Cursor::new(bad_version)).is_err());
    }

    #[test]
    fn legacy_v1_artifacts_still_read() {
        let model = sample_model(Some(milo_quant::QuantConfig::int3_sym()));
        let mut v1 = Vec::new();
        write_compressed_model_v1(&mut v1, &model).unwrap();
        assert_eq!(v1[4], LEGACY_VERSION as u8);
        let out = read_compressed_model(&mut Cursor::new(v1)).unwrap();
        assert_eq!(out.layers.len(), model.layers.len());
        for (a, b) in out.layers.iter().zip(&model.layers) {
            assert_eq!(a.layer, b.layer);
        }
    }

    #[test]
    fn corrupted_section_error_names_the_layer() {
        let model = sample_model(None);
        let mut buf = Vec::new();
        write_compressed_model(&mut buf, &model).unwrap();
        // Flip a byte deep inside the last layer's payload.
        let off = buf.len() - 10;
        buf[off] ^= 0x40;
        let err = read_compressed_model(&mut Cursor::new(buf)).unwrap_err();
        let info = corrupt_section_info(&err).expect("typed CorruptSection");
        assert!(
            info.section.contains("layer 2") && info.section.contains("layer0.expert2.w1"),
            "section = {}",
            info.section
        );
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_cut() {
        let model = sample_model(None);
        let mut buf = Vec::new();
        write_compressed_model(&mut buf, &model).unwrap();
        // Spot-check cuts across headers, section frames, and payloads
        // (the exhaustive sweep lives in tests/fault_injection.rs).
        for cut in [0, 3, 4, 7, 12, 13, 21, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_compressed_model(&mut Cursor::new(&buf[..cut])).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn verify_reports_every_layer_and_pinpoints_damage() {
        let model = sample_model(Some(milo_quant::QuantConfig::int3_sym()));
        let mut buf = Vec::new();
        write_compressed_model(&mut buf, &model).unwrap();

        let clean = verify_compressed_stream(&mut Cursor::new(&buf[..])).unwrap();
        assert!(clean.is_ok());
        assert!(clean.checksummed);
        assert_eq!(clean.sections.len(), 3);
        assert!(clean.sections[1].name.contains("layer0.expert1.w1"));

        // Damage the middle layer: the report flags exactly that one and
        // still verifies its neighbours.
        let mut bad = buf.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x08;
        let report = verify_compressed_stream(&mut Cursor::new(&bad[..])).unwrap();
        assert!(!report.is_ok());
        assert_eq!(report.n_corrupt(), 1);
        assert_eq!(report.sections.len(), 3);
    }

    #[test]
    fn verify_handles_legacy_artifacts() {
        let model = sample_model(None);
        let mut v1 = Vec::new();
        write_compressed_model_v1(&mut v1, &model).unwrap();
        let report = verify_compressed_stream(&mut Cursor::new(v1)).unwrap();
        assert!(!report.checksummed);
        assert!(report.is_ok());
    }

    #[test]
    fn file_round_trip() {
        let model = sample_model(Some(milo_quant::QuantConfig::int3_sym()));
        let dir = std::env::temp_dir().join("milo_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.milo");
        save_compressed_model(&path, &model).unwrap();
        let out = load_compressed_model(&path).unwrap();
        assert_eq!(out.layers.len(), model.layers.len());
        std::fs::remove_file(&path).ok();
    }
}
