//! Model-level compression: apply a rank policy across all layers of a
//! model and run the MiLo optimizer on each, in parallel.
//!
//! The paper notes MiLo's calibration-free design makes it embarrassingly
//! parallel across weight matrices (no forward propagation is needed), so
//! the orchestrator compresses layers on a work-stealing thread pool.

use crate::optimizer::{milo_compress, CompressedLayer, MiloOptions};
use crate::policy::{LayerMeta, RankPolicy};
use crate::{MiloError, Result};
use milo_tensor::Matrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One named weight matrix plus the metadata rank policies consume.
#[derive(Debug, Clone)]
pub struct LayerTensor {
    /// Human-readable layer name (e.g. `"layer3.expert5.w1"`).
    pub name: String,
    /// Structural and statistical metadata.
    pub meta: LayerMeta,
    /// The FP32 weight.
    pub weight: Matrix,
}

/// The compressed form of one layer, with its provenance.
#[derive(Debug, Clone)]
pub struct LayerRecord {
    /// Layer name copied from the input.
    pub name: String,
    /// Metadata copied from the input.
    pub meta: LayerMeta,
    /// The rank the policy assigned.
    pub rank: usize,
    /// The MiLo output for this layer.
    pub layer: CompressedLayer,
}

/// A fully compressed model: every layer's quantized weight plus
/// compensator.
#[derive(Debug, Clone)]
pub struct CompressedModel {
    /// Per-layer records, in input order.
    pub layers: Vec<LayerRecord>,
}

impl CompressedModel {
    /// Total deployment memory in bytes (packed weights + compensators).
    pub fn memory_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.layer.memory_bytes()).sum()
    }

    /// Memory of the compensators alone, in bytes.
    pub fn compensator_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.layer.compensator.as_ref().map_or(0, |c| c.memory_bytes()))
            .sum()
    }

    /// Memory of the packed quantized weights alone, in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.layer.qweight.packed_bytes()).sum()
    }

    /// Looks up a layer record by name.
    pub fn layer(&self, name: &str) -> Option<&LayerRecord> {
        self.layers.iter().find(|l| l.name == name)
    }
}

/// Compresses every layer with the ranks `policy` assigns, using
/// `threads` worker threads (1 for sequential execution).
///
/// # Errors
///
/// Propagates the first per-layer failure and policy errors.
pub fn compress_model(
    layers: &[LayerTensor],
    policy: &RankPolicy,
    opts: &MiloOptions,
    threads: usize,
) -> Result<CompressedModel> {
    let metas: Vec<LayerMeta> = layers.iter().map(|l| l.meta).collect();
    let ranks = policy.assign(&metas)?;
    let threads = threads.max(1).min(layers.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<LayerRecord>>>> =
        Mutex::new((0..layers.len()).map(|_| None).collect());

    let all_ok = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= layers.len() {
                        break;
                    }
                    let lt = &layers[i];
                    let out =
                        milo_compress(&lt.weight, ranks[i], opts).map(|layer| LayerRecord {
                            name: lt.name.clone(),
                            meta: lt.meta,
                            rank: ranks[i],
                            layer,
                        });
                    results.lock().expect("results mutex poisoned")[i] = Some(out);
                })
            })
            .collect();
        handles.into_iter().all(|h| h.join().is_ok())
    });
    if !all_ok {
        return Err(MiloError::Policy("a compression worker panicked".into()));
    }

    let mut out = Vec::with_capacity(layers.len());
    for slot in results.into_inner().expect("results mutex poisoned") {
        out.push(slot.expect("every index was processed")?);
    }
    Ok(CompressedModel { layers: out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{LayerKind, SparseAllocation};
    use milo_tensor::rng::WeightDist;
    use milo_tensor::stats;
    use milo_tensor::rng::SeedableRng;

    fn make_layers(seed: u64) -> Vec<LayerTensor> {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        let mut layers = Vec::new();
        let attn = WeightDist::StudentT { dof: 5.0, scale: 0.05 }.sample_matrix(64, 64, &mut rng);
        layers.push(LayerTensor {
            name: "attn.q".into(),
            meta: LayerMeta {
                kind: LayerKind::Attention,
                rows: 64,
                cols: 64,
                kurtosis: stats::matrix_kurtosis(&attn),
                frequency: 1.0,
            },
            weight: attn,
        });
        for e in 0..3 {
            let w = WeightDist::Uniform { bound: 0.08 }.sample_matrix(64, 64, &mut rng);
            layers.push(LayerTensor {
                name: format!("expert{e}.w1"),
                meta: LayerMeta {
                    kind: LayerKind::Expert { index: e },
                    rows: 64,
                    cols: 64,
                    kurtosis: stats::matrix_kurtosis(&w),
                    frequency: [0.5, 0.3, 0.2][e],
                },
                weight: w,
            });
        }
        layers
    }

    fn fast_opts() -> MiloOptions {
        MiloOptions { max_iters: 2, compensator_cfg: None, ..MiloOptions::default() }
    }

    #[test]
    fn compresses_all_layers_in_order() {
        let layers = make_layers(1);
        let model =
            compress_model(&layers, &RankPolicy::uniform(4), &fast_opts(), 2).unwrap();
        assert_eq!(model.layers.len(), 4);
        for (a, b) in model.layers.iter().zip(&layers) {
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let layers = make_layers(2);
        let policy = RankPolicy::composite(8, SparseAllocation::Kurtosis { avg_rank: 4 });
        let seq = compress_model(&layers, &policy, &fast_opts(), 1).unwrap();
        let par = compress_model(&layers, &policy, &fast_opts(), 4).unwrap();
        for (a, b) in seq.layers.iter().zip(&par.layers) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.layer, b.layer, "layer {}", a.name);
        }
    }

    #[test]
    fn dense_only_policy_compensates_only_attention() {
        let layers = make_layers(3);
        let model =
            compress_model(&layers, &RankPolicy::dense_only(8), &fast_opts(), 2).unwrap();
        assert!(model.layers[0].layer.compensator.is_some());
        for rec in &model.layers[1..] {
            assert!(rec.layer.compensator.is_none(), "layer {}", rec.name);
        }
    }

    #[test]
    fn memory_breakdown_sums() {
        let layers = make_layers(4);
        let model =
            compress_model(&layers, &RankPolicy::uniform(4), &fast_opts(), 2).unwrap();
        assert_eq!(
            model.memory_bytes(),
            model.weight_bytes() + model.compensator_bytes()
        );
        assert!(model.compensator_bytes() > 0);
    }

    #[test]
    fn layer_lookup_by_name() {
        let layers = make_layers(5);
        let model =
            compress_model(&layers, &RankPolicy::uniform(2), &fast_opts(), 1).unwrap();
        assert!(model.layer("expert1.w1").is_some());
        assert!(model.layer("nope").is_none());
    }

    #[test]
    fn empty_model_is_policy_error() {
        assert!(compress_model(&[], &RankPolicy::uniform(2), &fast_opts(), 1).is_err());
    }
}
