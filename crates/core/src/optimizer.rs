//! Algorithm 1: the MiLo iterative optimizer (paper §3.2.1–§3.2.4).
//!
//! The joint problem (Eq. 1) is split into two sub-problems solved
//! alternately:
//!
//! * **sp1** — with `U, V` fixed, quantize the *compensated target*
//!   `W − U·V` with the HQQ zero-point solver (§3.2.2, Eqs. 4–9);
//! * **sp2** — with `W_q` fixed, refit the compensator to the fresh
//!   residual `E = W − W_dq` by truncated SVD (§3.2.3, Eqs. 10–12).
//!
//! After each outer iteration the Frobenius error
//! `ε_t = ‖W − W_dq − U·V‖_F` (Eq. 13) is recorded; a sliding-window
//! average over three iterations drives the relative-improvement stop
//! condition (Eq. 14), with a hard early stop at 20 iterations and a
//! divergence guard, exactly as §3.2.4 describes.

use crate::compensator::{Compensator, LowRankCompensator};
use crate::{MiloError, Result};
use milo_quant::{hqq_quantize, HqqOptions, QuantConfig, QuantizedMatrix};
use milo_tensor::Matrix;

/// Options of the MiLo optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiloOptions {
    /// Weight quantizer configuration (the paper uses INT3, group 64,
    /// asymmetric).
    pub quant: QuantConfig,
    /// Inner HQQ solver options.
    pub hqq: HqqOptions,
    /// Hard cap on outer iterations — the paper's early stop at 20.
    pub max_iters: usize,
    /// Sliding-window width for the stop condition (the paper uses 3).
    pub window: usize,
    /// Relative improvement threshold of Eq. 14 (the paper uses 1e-4).
    pub rel_tol: f32,
    /// Compensator quantization applied after convergence; `None` keeps
    /// the factors in FP16.
    pub compensator_cfg: Option<QuantConfig>,
    /// Seed for the randomized SVD sketches.
    pub seed: u64,
}

impl Default for MiloOptions {
    /// Paper defaults: INT3 asymmetric group-64 weights, HQQ defaults,
    /// early stop at 20 outer iterations, window 3, tolerance 1e-4, and
    /// INT3 symmetric compensators (Eq. 15).
    fn default() -> Self {
        Self {
            quant: QuantConfig::int3_asym(),
            hqq: HqqOptions::default(),
            max_iters: 20,
            window: 3,
            rel_tol: 1e-4,
            compensator_cfg: Some(QuantConfig::int3_sym()),
            seed: 0,
        }
    }
}

/// The output of MiLo on a single weight matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedLayer {
    /// The quantized weight `W_q` with its per-group scales/zero-points.
    pub qweight: QuantizedMatrix,
    /// The compensator, or `None` when the assigned rank was 0.
    pub compensator: Option<Compensator>,
    /// The Frobenius error `ε_t` after each outer iteration (Eq. 13) —
    /// the series plotted in paper Fig. 7.
    pub convergence: Vec<f32>,
}

impl CompressedLayer {
    /// Reconstructs the effective weight `Q⁻¹(W_q) + U·V` seen by
    /// inference (paper §3.1.2).
    pub fn effective_weight(&self) -> Matrix {
        let mut w = self.qweight.dequantize();
        if let Some(comp) = &self.compensator {
            w = w.add(&comp.to_dense()).expect("compensator matches weight shape");
        }
        w
    }

    /// Deployment memory in bytes: packed quantized weight plus the
    /// compensator representation.
    pub fn memory_bytes(&self) -> usize {
        self.qweight.packed_bytes()
            + self.compensator.as_ref().map_or(0, |c| c.memory_bytes())
    }

    /// Number of outer iterations the optimizer ran.
    pub fn iterations(&self) -> usize {
        self.convergence.len()
    }
}

/// Runs MiLo (Algorithm 1) on one weight matrix with the given
/// compensator rank.
///
/// `rank == 0` degenerates to plain HQQ quantization with no compensator,
/// which is how rank policies express "no compensation for this layer".
///
/// # Examples
///
/// ```
/// use milo_core::{milo_compress, MiloOptions};
/// use milo_tensor::{rng::WeightDist, stats};
/// use milo_tensor::rng::SeedableRng;
///
/// let mut rng = milo_tensor::rng::StdRng::seed_from_u64(1);
/// let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(64, 64, &mut rng);
/// let opts = MiloOptions { max_iters: 2, ..MiloOptions::default() };
///
/// let plain = milo_compress(&w, 0, &opts)?; // HQQ only
/// let milo = milo_compress(&w, 8, &opts)?;  // + rank-8 compensator
/// let err = |l: &milo_core::CompressedLayer| {
///     stats::relative_frobenius_error(&w, &l.effective_weight())
/// };
/// assert!(err(&milo) < err(&plain));
/// # Ok::<(), milo_core::MiloError>(())
/// ```
///
/// # Errors
///
/// Returns [`MiloError::InvalidRank`] if `rank` exceeds the matrix
/// dimensions, and propagates quantizer/SVD failures.
pub fn milo_compress(w: &Matrix, rank: usize, opts: &MiloOptions) -> Result<CompressedLayer> {
    let (rows, cols) = w.shape();
    if rank > rows.min(cols) {
        return Err(MiloError::InvalidRank { rank, rows, cols });
    }
    let _span = milo_obs::span(|| "core.milo_compress".into());

    if rank == 0 {
        let qweight = hqq_quantize(w, &opts.quant, &opts.hqq)?;
        let residual = w.sub(&qweight.dequantize())?;
        return Ok(CompressedLayer {
            qweight,
            compensator: None,
            convergence: vec![residual.frobenius_norm()],
        });
    }

    // U, V initialized to zero (paper §3.2.2): iteration 0 quantizes the
    // raw weight.
    let mut compensator: Option<LowRankCompensator> = None;
    let mut best: Option<(f32, QuantizedMatrix, LowRankCompensator)> = None;
    let mut history: Vec<f32> = Vec::new();

    for t in 0..opts.max_iters.max(1) {
        // sp1: quantize the compensated target W - U·V.
        let target = match &compensator {
            Some(c) => w.sub(&c.to_dense())?,
            None => w.clone(),
        };
        let qweight = hqq_quantize(&target, &opts.quant, &opts.hqq)?;
        let w_dq = qweight.dequantize();

        // sp2: refit the compensator to the fresh residual.
        let residual = w.sub(&w_dq)?;
        let new_comp =
            LowRankCompensator::fit(&residual, rank, opts.seed.wrapping_add(t as u64))?;

        // ε_t = ‖W − W_dq − U·V‖_F (Eq. 13).
        let eps = residual.sub(&new_comp.to_dense())?.frobenius_norm();
        milo_obs::counter_inc("core.iterations");
        milo_obs::hist_record(
            "core.residual_eps_micro",
            (eps as f64 * 1e6).round().max(0.0) as u64,
            milo_obs::Unit::Micro,
        );
        milo_obs::trace::push_counter("core.residual_eps", eps as f64);
        history.push(eps);
        if best.as_ref().map_or(true, |(b, _, _)| eps < *b) {
            best = Some((eps, qweight, new_comp.clone()));
        }
        compensator = Some(new_comp);

        // Sliding-window stop condition (Eq. 14): compare consecutive
        // window averages once enough history exists.
        let win = opts.window.max(1);
        if history.len() > win {
            let avg = |s: &[f32]| s.iter().sum::<f32>() / s.len() as f32;
            let curr = avg(&history[history.len() - win..]);
            let prev = avg(&history[history.len() - win - 1..history.len() - 1]);
            if prev > 0.0 && (prev - curr) / prev < opts.rel_tol {
                milo_obs::counter_inc("core.stop.window");
                break;
            }
        }
        // Divergence guard (§3.2.4 "stops the process if the error begins
        // to diverge"): two consecutive increases abort the loop; the
        // best-so-far iterate is returned.
        if history.len() >= 3 {
            let n = history.len();
            if history[n - 1] > history[n - 2] && history[n - 2] > history[n - 3] {
                milo_obs::counter_inc("core.stop.divergence");
                break;
            }
        }
        if t + 1 == opts.max_iters.max(1) {
            milo_obs::counter_inc("core.stop.max_iters");
        }
    }

    let (_, qweight, comp) = best.expect("at least one iteration ran");
    let compensator = match &opts.compensator_cfg {
        Some(cfg) => Compensator::Quantized(comp.quantize(cfg)?),
        None => Compensator::Fp16(comp),
    };
    Ok(CompressedLayer { qweight, compensator: Some(compensator), convergence: history })
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::rng::WeightDist;
    use milo_tensor::stats;
    use milo_tensor::rng::SeedableRng;

    fn heavy(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        WeightDist::StudentT { dof: 5.0, scale: 0.05 }.sample_matrix(rows, cols, &mut rng)
    }

    fn opts_fast() -> MiloOptions {
        MiloOptions { max_iters: 6, compensator_cfg: None, ..MiloOptions::default() }
    }

    #[test]
    fn milo_beats_plain_hqq() {
        let w = heavy(64, 64, 1);
        let plain = milo_compress(&w, 0, &opts_fast()).unwrap();
        let milo = milo_compress(&w, 8, &opts_fast()).unwrap();
        let e_plain = stats::relative_frobenius_error(&w, &plain.effective_weight());
        let e_milo = stats::relative_frobenius_error(&w, &milo.effective_weight());
        assert!(
            e_milo < e_plain,
            "MiLo error {e_milo} should beat plain HQQ {e_plain}"
        );
    }

    #[test]
    fn iteration_beats_one_shot() {
        // The iterative alternation (Fig. 7's point) should end at a lower
        // ε than quantize-then-compensate once.
        let w = heavy(64, 64, 2);
        let one_shot =
            milo_compress(&w, 8, &MiloOptions { max_iters: 1, ..opts_fast() }).unwrap();
        let iterated =
            milo_compress(&w, 8, &MiloOptions { max_iters: 10, ..opts_fast() }).unwrap();
        let last = |l: &CompressedLayer| *l.convergence.last().unwrap();
        assert!(
            iterated.convergence.iter().cloned().fold(f32::INFINITY, f32::min)
                <= last(&one_shot) + 1e-6,
            "iterated best {:?} vs one-shot {}",
            iterated.convergence,
            last(&one_shot)
        );
    }

    #[test]
    fn convergence_history_trends_down() {
        let w = heavy(64, 64, 3);
        let milo = milo_compress(&w, 8, &MiloOptions { max_iters: 10, ..opts_fast() }).unwrap();
        let first = milo.convergence[0];
        let best = milo.convergence.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(best <= first, "history {:?}", milo.convergence);
    }

    #[test]
    fn rank_zero_has_no_compensator() {
        let w = heavy(32, 32, 4);
        let out = milo_compress(&w, 0, &opts_fast()).unwrap();
        assert!(out.compensator.is_none());
        assert_eq!(out.convergence.len(), 1);
    }

    #[test]
    fn excessive_rank_rejected() {
        let w = heavy(8, 8, 5);
        assert!(matches!(
            milo_compress(&w, 9, &opts_fast()),
            Err(MiloError::InvalidRank { .. })
        ));
    }

    #[test]
    fn early_stop_respects_max_iters() {
        let w = heavy(32, 32, 6);
        let out = milo_compress(&w, 4, &MiloOptions { max_iters: 3, ..opts_fast() }).unwrap();
        assert!(out.iterations() <= 3);
    }

    #[test]
    fn quantized_compensator_variant_is_produced() {
        let w = heavy(64, 64, 7);
        let opts = MiloOptions {
            max_iters: 3,
            compensator_cfg: Some(QuantConfig::int3_sym()),
            ..MiloOptions::default()
        };
        let out = milo_compress(&w, 8, &opts).unwrap();
        assert!(matches!(out.compensator, Some(Compensator::Quantized(_))));
    }

    #[test]
    fn memory_grows_with_rank() {
        let w = heavy(64, 64, 8);
        let a = milo_compress(&w, 4, &opts_fast()).unwrap();
        let b = milo_compress(&w, 16, &opts_fast()).unwrap();
        assert!(b.memory_bytes() > a.memory_bytes());
    }

    #[test]
    fn deterministic_given_seed() {
        let w = heavy(32, 32, 9);
        let a = milo_compress(&w, 4, &opts_fast()).unwrap();
        let b = milo_compress(&w, 4, &opts_fast()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn attention_like_layers_gain_more_than_expert_like() {
        // Paper Observation 2: heavy-tailed (high-kurtosis) weights suffer
        // more under INT3 and hence benefit more from compensation.
        let attn = heavy(64, 64, 10); // Student-t, heavy tails
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(11);
        let expert = WeightDist::Uniform { bound: 0.1 }.sample_matrix(64, 64, &mut rng);

        let gain = |w: &Matrix| {
            let plain = milo_compress(w, 0, &opts_fast()).unwrap();
            let milo = milo_compress(w, 8, &opts_fast()).unwrap();
            let e0 = stats::relative_frobenius_error(w, &plain.effective_weight());
            let e1 = stats::relative_frobenius_error(w, &milo.effective_weight());
            (e0 - e1) / e0
        };
        assert!(
            gain(&attn) > gain(&expert),
            "attention gain {} should exceed expert gain {}",
            gain(&attn),
            gain(&expert)
        );
    }
}
