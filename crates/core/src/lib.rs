//! MiLo core: iterative joint optimization of extreme-quantized weights
//! and a mixture of low-rank compensators.
//!
//! This crate implements the paper's primary contribution (§3.2):
//!
//! * [`compensator`] — low-rank compensators `U·V ≈ W − W_dq` built from a
//!   truncated SVD of the quantization residual (Eqs. 10–12), optionally
//!   quantized to INT3/INT8 themselves (Eq. 15, §3.2.6).
//! * [`optimizer`] — Algorithm 1: alternate the HQQ zero-point solve on
//!   `W − U·V` (sub-problem 1, §3.2.2) with the SVD compensator update on
//!   `W − W_dq` (sub-problem 2, §3.2.3), monitored by the sliding-window
//!   stop condition on the Frobenius error (Eqs. 13–14).
//! * [`policy`] — the adaptive rank-selection policies of §3.2.5
//!   (Uniform/Dense/Sparse/Frequency/Kurtosis and the composite s1/s2
//!   strategies of Table 5), driven by layer structure, expert activation
//!   frequency, and weight kurtosis.
//! * [`model`] — the model-level orchestrator that applies a policy
//!   across a list of layers, compressing them in parallel.

#![warn(missing_docs)]

pub mod compensator;
pub mod model;
pub mod optimizer;
pub mod policy;
pub mod serialize;

pub use compensator::{Compensator, LowRankCompensator, QuantizedCompensator};
pub use model::{compress_model, CompressedModel, LayerRecord, LayerTensor};
pub use optimizer::{milo_compress, CompressedLayer, MiloOptions};
pub use policy::{LayerKind, LayerMeta, RankPolicy, SparseAllocation};
pub use serialize::{load_compressed_model, save_compressed_model};

use milo_quant::QuantError;
use milo_tensor::TensorError;

/// Errors produced by the MiLo pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MiloError {
    /// A quantizer failed.
    Quant(QuantError),
    /// A linear-algebra routine failed.
    Tensor(TensorError),
    /// The requested rank is incompatible with the layer shape.
    InvalidRank {
        /// The rank that was requested.
        rank: usize,
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// Policy assignment failed (e.g. no layers, or metadata missing).
    Policy(String),
}

impl std::fmt::Display for MiloError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiloError::Quant(e) => write!(f, "quantization failed: {e}"),
            MiloError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            MiloError::InvalidRank { rank, rows, cols } => {
                write!(f, "rank {rank} invalid for a {rows}x{cols} layer")
            }
            MiloError::Policy(msg) => write!(f, "rank policy error: {msg}"),
        }
    }
}

impl std::error::Error for MiloError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MiloError::Quant(e) => Some(e),
            MiloError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QuantError> for MiloError {
    fn from(e: QuantError) -> Self {
        MiloError::Quant(e)
    }
}

impl From<TensorError> for MiloError {
    fn from(e: TensorError) -> Self {
        MiloError::Tensor(e)
    }
}

/// Convenient result alias for MiLo operations.
pub type Result<T> = std::result::Result<T, MiloError>;
