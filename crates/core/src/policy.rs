//! Adaptive rank-selection policies (paper §3.2.5).
//!
//! MoE models mix layers with very different characteristics: dense
//! layers (attention projections, shared experts, dense FFNs) see every
//! token and are heavy-tailed, while sparsely activated experts see token
//! subsets and are light-tailed (paper Observation 1). Rank policies
//! exploit this by assigning each layer its own compensator rank:
//!
//! * `Uniform-r` — the same rank everywhere,
//! * `Dense-r` — rank only for dense layers,
//! * `Sparse-r` — rank only for experts,
//! * `Kurtosis-r` — sparse-layer ranks proportional to weight kurtosis,
//!   average r,
//! * `Frequency-r` — sparse-layer ranks proportional to expert activation
//!   frequency, average r,
//!
//! and the composite strategies of Table 5 (`Dense-512 + Kurtosis-16`
//! etc.) combine a fixed dense rank with an adaptive sparse allocation.

use crate::{MiloError, Result};
use milo_quant::{QuantConfig, Scheme};

/// The structural role of a layer in an MoE model.
///
/// Dense kinds are always activated; [`LayerKind::Expert`] is sparsely
/// activated through the router. DeepSeek-style shared experts are dense
/// (paper Table 2 classifies them "SE(D)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Attention projection (q/k/v/o) — dense.
    Attention,
    /// A dense FFN block (e.g. DeepSeek-MoE's first layer) — dense.
    DenseFfn,
    /// A shared expert in a hybrid architecture — dense.
    SharedExpert,
    /// A routed expert, identified by its index within the MoE layer —
    /// sparse.
    Expert {
        /// Index of the expert within its MoE layer.
        index: usize,
    },
}

impl LayerKind {
    /// Whether this layer is densely activated (sees every token).
    pub fn is_dense(&self) -> bool {
        !matches!(self, LayerKind::Expert { .. })
    }
}

/// Metadata a rank policy consumes about one weight matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerMeta {
    /// Structural role.
    pub kind: LayerKind,
    /// Output dimension of the weight matrix.
    pub rows: usize,
    /// Input dimension of the weight matrix.
    pub cols: usize,
    /// Excess kurtosis of the weight entries (paper Table 2 / Fig. 5).
    pub kurtosis: f32,
    /// Relative activation frequency of the owning expert in `[0, 1]`
    /// (1.0 for dense layers, which see every token).
    pub frequency: f32,
}

impl LayerMeta {
    /// Largest rank a compensator for this layer can have.
    pub fn max_rank(&self) -> usize {
        self.rows.min(self.cols)
    }
}

/// How ranks are distributed over the *sparse* (expert) layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparseAllocation {
    /// No compensation for experts.
    None,
    /// Every expert gets the same rank.
    Uniform(usize),
    /// Ranks proportional to weight kurtosis, with the stated average —
    /// the `Kurtosis-{r}` policy.
    Kurtosis {
        /// Target average rank across sparse layers.
        avg_rank: usize,
    },
    /// Ranks proportional to expert activation frequency, with the stated
    /// average — the `Frequency-{r}` policy.
    Frequency {
        /// Target average rank across sparse layers.
        avg_rank: usize,
    },
}

/// A complete rank policy: a fixed rank for dense layers plus a sparse
/// allocation.
///
/// # Examples
///
/// ```
/// use milo_core::{LayerKind, LayerMeta, RankPolicy, SparseAllocation};
///
/// let layers = [
///     LayerMeta { kind: LayerKind::Attention, rows: 64, cols: 64, kurtosis: 1.5, frequency: 1.0 },
///     LayerMeta { kind: LayerKind::Expert { index: 0 }, rows: 64, cols: 64, kurtosis: -0.2, frequency: 0.7 },
///     LayerMeta { kind: LayerKind::Expert { index: 1 }, rows: 64, cols: 64, kurtosis: -0.8, frequency: 0.3 },
/// ];
/// // Paper Table 5 style: a big dense rank plus a kurtosis-weighted
/// // expert budget averaging 4.
/// let policy = RankPolicy::composite(16, SparseAllocation::Kurtosis { avg_rank: 4 });
/// let ranks = policy.assign(&layers)?;
/// assert_eq!(ranks[0], 16);                  // dense layer
/// assert!(ranks[1] > ranks[2]);              // higher kurtosis, more rank
/// assert_eq!(ranks[1] + ranks[2], 8);        // budget = avg 4 × 2 experts
/// # Ok::<(), milo_core::MiloError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankPolicy {
    /// Rank assigned to every dense layer.
    pub dense_rank: usize,
    /// Allocation rule for expert layers.
    pub sparse: SparseAllocation,
}

impl RankPolicy {
    /// `Uniform-{r}`: the same rank for every layer.
    pub fn uniform(r: usize) -> Self {
        Self { dense_rank: r, sparse: SparseAllocation::Uniform(r) }
    }

    /// `Dense-{r}`: rank only for dense layers.
    pub fn dense_only(r: usize) -> Self {
        Self { dense_rank: r, sparse: SparseAllocation::None }
    }

    /// `Sparse-{r}`: rank only for expert layers.
    pub fn sparse_only(r: usize) -> Self {
        Self { dense_rank: 0, sparse: SparseAllocation::Uniform(r) }
    }

    /// A composite `Dense-{d} + <sparse>` strategy (paper Table 5).
    pub fn composite(dense_rank: usize, sparse: SparseAllocation) -> Self {
        Self { dense_rank, sparse }
    }

    /// Assigns a rank to each layer.
    ///
    /// Proportional allocations (kurtosis/frequency) are normalized so the
    /// *average* sparse rank matches the policy's target, then clamped to
    /// each layer's maximum rank.
    ///
    /// # Errors
    ///
    /// Returns [`MiloError::Policy`] if `layers` is empty.
    pub fn assign(&self, layers: &[LayerMeta]) -> Result<Vec<usize>> {
        if layers.is_empty() {
            return Err(MiloError::Policy("no layers to assign ranks to".into()));
        }
        let sparse_idx: Vec<usize> =
            (0..layers.len()).filter(|&i| !layers[i].kind.is_dense()).collect();

        let mut ranks = vec![0usize; layers.len()];
        for (i, meta) in layers.iter().enumerate() {
            if meta.kind.is_dense() {
                ranks[i] = self.dense_rank.min(meta.max_rank());
            }
        }

        match self.sparse {
            SparseAllocation::None => {}
            SparseAllocation::Uniform(r) => {
                for &i in &sparse_idx {
                    ranks[i] = r.min(layers[i].max_rank());
                }
            }
            SparseAllocation::Kurtosis { avg_rank } => {
                let scores: Vec<f32> = sparse_idx.iter().map(|&i| layers[i].kurtosis).collect();
                distribute(&mut ranks, &sparse_idx, &scores, avg_rank, layers);
            }
            SparseAllocation::Frequency { avg_rank } => {
                let scores: Vec<f32> = sparse_idx.iter().map(|&i| layers[i].frequency).collect();
                distribute(&mut ranks, &sparse_idx, &scores, avg_rank, layers);
            }
        }
        Ok(ranks)
    }
}

/// Distributes `avg_rank · n` total rank across the indexed layers
/// proportionally to `scores` (shifted to be positive), clamping to each
/// layer's maximum.
fn distribute(
    ranks: &mut [usize],
    idx: &[usize],
    scores: &[f32],
    avg_rank: usize,
    layers: &[LayerMeta],
) {
    if idx.is_empty() {
        return;
    }
    let min_score = scores.iter().cloned().fold(f32::INFINITY, f32::min);
    // Shift so all weights are positive; the +1 epsilon keeps the
    // lowest-scoring layer from being starved entirely.
    let shifted: Vec<f64> = scores.iter().map(|&s| (s - min_score) as f64 + 1e-3).collect();
    let total_weight: f64 = shifted.iter().sum();
    let budget = (avg_rank * idx.len()) as f64;
    for (pos, &i) in idx.iter().enumerate() {
        let r = (budget * shifted[pos] / total_weight).round() as usize;
        ranks[i] = r.min(layers[i].max_rank());
    }
}

/// Deployment memory of the compensators a rank assignment implies, in
/// bytes.
///
/// With `cfg = None` the factors stay FP16 (2 bytes/element); otherwise
/// the packed-quantized footprint is used (bits per element plus one FP16
/// scale per group), matching
/// [`QuantizedMatrix::packed_bytes`](milo_quant::QuantizedMatrix::packed_bytes).
pub fn compensator_memory_bytes(
    layers: &[LayerMeta],
    ranks: &[usize],
    cfg: Option<&QuantConfig>,
) -> usize {
    layers
        .iter()
        .zip(ranks)
        .map(|(meta, &r)| {
            if r == 0 {
                return 0;
            }
            let elems = meta.rows * r + r * meta.cols;
            match cfg {
                None => elems * 2,
                Some(c) => {
                    let weight_bytes = (elems * c.bits() as usize).div_ceil(8);
                    // U is rows×r, V is r×cols; groups run along each row.
                    let groups = meta.rows * c.groups_per_row(r) + r * c.groups_per_row(meta.cols);
                    let param = match c.scheme() {
                        Scheme::Asymmetric => groups * 4,
                        Scheme::Symmetric => groups * 2,
                    };
                    weight_bytes + param
                }
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(kind: LayerKind, kurtosis: f32, frequency: f32) -> LayerMeta {
        LayerMeta { kind, rows: 256, cols: 256, kurtosis, frequency }
    }

    fn mixed_layers() -> Vec<LayerMeta> {
        vec![
            meta(LayerKind::Attention, 1.5, 1.0),
            meta(LayerKind::SharedExpert, 0.3, 1.0),
            meta(LayerKind::Expert { index: 0 }, -0.5, 0.40),
            meta(LayerKind::Expert { index: 1 }, -0.8, 0.10),
            meta(LayerKind::Expert { index: 2 }, 0.2, 0.50),
        ]
    }

    #[test]
    fn uniform_assigns_everywhere() {
        let ranks = RankPolicy::uniform(16).assign(&mixed_layers()).unwrap();
        assert_eq!(ranks, vec![16; 5]);
    }

    #[test]
    fn dense_only_zeroes_experts() {
        let ranks = RankPolicy::dense_only(32).assign(&mixed_layers()).unwrap();
        assert_eq!(ranks, vec![32, 32, 0, 0, 0]);
    }

    #[test]
    fn sparse_only_zeroes_dense() {
        let ranks = RankPolicy::sparse_only(8).assign(&mixed_layers()).unwrap();
        assert_eq!(ranks, vec![0, 0, 8, 8, 8]);
    }

    #[test]
    fn kurtosis_allocation_orders_by_kurtosis() {
        let policy = RankPolicy::composite(64, SparseAllocation::Kurtosis { avg_rank: 16 });
        let ranks = policy.assign(&mixed_layers()).unwrap();
        // Dense layers get the fixed rank.
        assert_eq!(&ranks[..2], &[64, 64]);
        // Expert 2 (kurtosis 0.2) > expert 0 (-0.5) > expert 1 (-0.8).
        assert!(ranks[4] > ranks[2]);
        assert!(ranks[2] > ranks[3]);
    }

    #[test]
    fn kurtosis_allocation_preserves_average_budget() {
        let policy = RankPolicy::composite(0, SparseAllocation::Kurtosis { avg_rank: 16 });
        let ranks = policy.assign(&mixed_layers()).unwrap();
        let total: usize = ranks[2..].iter().sum();
        // 3 experts, target average 16 -> budget 48 (±rounding).
        assert!((total as i64 - 48).abs() <= 2, "total {total}");
    }

    #[test]
    fn frequency_allocation_orders_by_frequency() {
        let policy = RankPolicy::composite(0, SparseAllocation::Frequency { avg_rank: 16 });
        let ranks = policy.assign(&mixed_layers()).unwrap();
        // freq: expert2 (0.50) > expert0 (0.40) > expert1 (0.10).
        assert!(ranks[4] > ranks[2] || ranks[4] == ranks[2]);
        assert!(ranks[2] > ranks[3]);
    }

    #[test]
    fn ranks_clamp_to_layer_dimensions() {
        let mut layers = mixed_layers();
        layers[0].rows = 8; // attention layer now tiny
        let ranks = RankPolicy::uniform(64).assign(&layers).unwrap();
        assert_eq!(ranks[0], 8);
    }

    #[test]
    fn empty_layers_rejected() {
        assert!(matches!(
            RankPolicy::uniform(4).assign(&[]),
            Err(MiloError::Policy(_))
        ));
    }

    #[test]
    fn memory_accounting_fp16_vs_int3() {
        let layers = mixed_layers();
        let ranks = vec![16usize; 5];
        let fp16 = compensator_memory_bytes(&layers, &ranks, None);
        let int3 = compensator_memory_bytes(&layers, &ranks, Some(&QuantConfig::int3_sym()));
        assert!(int3 < fp16);
        // Paper Table 6 ratio: INT3 uses ~37.5% of INT8 == 18.75% of FP16
        // for the weights, plus scale overhead.
        let ratio = int3 as f32 / fp16 as f32;
        assert!(ratio > 0.18 && ratio < 0.35, "ratio {ratio}");
    }

    #[test]
    fn memory_is_zero_for_zero_ranks() {
        let layers = mixed_layers();
        assert_eq!(compensator_memory_bytes(&layers, &[0; 5], None), 0);
    }

    #[test]
    fn dense_kind_classification() {
        assert!(LayerKind::Attention.is_dense());
        assert!(LayerKind::DenseFfn.is_dense());
        assert!(LayerKind::SharedExpert.is_dense());
        assert!(!LayerKind::Expert { index: 3 }.is_dense());
    }
}
