//! A weight matrix in the packed INT4 deployment layout, with the same
//! binary-manipulation FP16 de-quantization style as the INT3 path.

use crate::layout4::{pack_word4, unpack_word4, LANE_MASK4, PER_WORD};
use crate::matrix::PackedWeight;
use crate::{PackError, Result};
use milo_quant::{QuantizedMatrix, Scheme};
use milo_tensor::half::h2;
use milo_tensor::F16;

/// The FP16 constant `1024.0` replicated in both lanes.
const MAGIC: u32 = 0x6400_6400;

/// De-quantizes the 8 codes of one INT4 word via the mantissa-splice
/// trick: pair `k` is `(w >> 4k) & 0x000F000F | MAGIC` = `[1024+e_lo,
/// 1024+e_hi]`. The 1024 bias is removed in the *integer* domain first
/// (`__hsub2` on exactly-representable values), then one `__hfma2`
/// applies the scale — subtracting after scaling would cancel
/// catastrophically in half precision.
fn dequant_word4(word: u32, scale: F16, neg_zs: F16) -> [F16; PER_WORD] {
    let s2 = h2::splat(scale);
    let c2 = h2::splat(neg_zs);
    let bias = h2::splat(F16::B1024);
    let mut out = [F16::ZERO; PER_WORD];
    for k in 0..4 {
        let spliced = ((word >> (4 * k)) & LANE_MASK4) | MAGIC;
        let codes = h2::hsub2(spliced, bias); // exact: [e_lo, e_hi]
        let v = h2::hfma2(codes, s2, c2); // e·s − z·s
        let (lo, hi) = h2::unpack(v);
        out[2 * k] = lo;
        out[2 * k + 1] = hi;
    }
    out
}

/// A 4-bit quantized weight matrix in the packed deployment layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Packed4Matrix {
    rows: usize,
    cols: usize,
    words: Vec<u32>,
    scales: Vec<f32>,
    zeros: Vec<f32>,
    group_size: usize,
    scheme: Scheme,
}

impl Packed4Matrix {
    /// Packs an unpacked 4-bit [`QuantizedMatrix`].
    ///
    /// # Errors
    ///
    /// Returns [`PackError::Unsupported`] unless the matrix is 4-bit with
    /// a group size that is a multiple of 8, and
    /// [`PackError::InvalidShape`] unless the column count is a multiple
    /// of 8.
    pub fn pack(q: &QuantizedMatrix) -> Result<Self> {
        let cfg = q.config();
        if cfg.bits() != 4 {
            return Err(PackError::Unsupported(format!(
                "INT4 layout is 4-bit only, got {} bits",
                cfg.bits()
            )));
        }
        if cfg.group_size() % PER_WORD != 0 {
            return Err(PackError::Unsupported(format!(
                "quant group size {} must be a multiple of {PER_WORD}",
                cfg.group_size()
            )));
        }
        let (rows, cols) = q.shape();
        if cols % PER_WORD != 0 {
            return Err(PackError::InvalidShape(format!(
                "column count {cols} is not a multiple of {PER_WORD}"
            )));
        }
        let mut words = Vec::with_capacity(rows * cols / PER_WORD);
        for r in 0..rows {
            let row = &q.codes()[r * cols..(r + 1) * cols];
            for chunk in row.chunks(PER_WORD) {
                let mut arr = [0u8; PER_WORD];
                arr.copy_from_slice(chunk);
                words.push(pack_word4(&arr));
            }
        }
        Ok(Self {
            rows,
            cols,
            words,
            scales: q.scales().to_vec(),
            zeros: q.zeros().to_vec(),
            group_size: cfg.group_size(),
            scheme: cfg.scheme(),
        })
    }

    /// Unpacks the raw codes (row-major).
    pub fn unpack_codes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for &w in &self.words {
            out.extend_from_slice(&unpack_word4(w));
        }
        out
    }

    /// Deployment memory in bytes (packed words + FP16 group parameters).
    pub fn memory_bytes(&self) -> usize {
        let params = match self.scheme {
            Scheme::Asymmetric => self.scales.len() * 4,
            Scheme::Symmetric => self.scales.len() * 2,
        };
        self.words.len() * 4 + params
    }
}

impl PackedWeight for Packed4Matrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn group_size(&self) -> usize {
        self.group_size
    }

    fn dequant_group32(&self, r: usize, g: usize) -> [F16; 32] {
        let mut out = [F16::ZERO; 32];
        self.dequant_group32_into(r, g, &mut out);
        out
    }

    fn dequant_group32_into(&self, r: usize, g: usize, out: &mut [F16]) {
        assert_eq!(out.len(), 32, "strip buffer must hold 32 values");
        let words_per_row = self.cols / PER_WORD;
        let qgroups_per_row = self.cols.div_ceil(self.group_size);
        let qg = r * qgroups_per_row + (g * 32) / self.group_size;
        let scale = self.scales[qg];
        let (s, neg_zs) = match self.scheme {
            Scheme::Asymmetric => (scale, -self.zeros[qg] * scale),
            // Symmetric 4-bit: implicit zero-point 8.
            Scheme::Symmetric => (scale, -8.0 * scale),
        };
        let s16 = F16::from_f32(s);
        let nz16 = F16::from_f32(neg_zs);
        for w in 0..4 {
            let word = self.words[r * words_per_row + g * 4 + w];
            let vals = dequant_word4(word, s16, nz16);
            out[w * PER_WORD..(w + 1) * PER_WORD].copy_from_slice(&vals);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{reference_gemm, relative_error};
    use crate::GemmKernel;
    use milo_quant::{rtn_quantize, QuantConfig};
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;

    fn quantized(rows: usize, cols: usize, seed: u64) -> QuantizedMatrix {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(rows, cols, &mut rng);
        rtn_quantize(&w, &QuantConfig::int4_asym()).unwrap()
    }

    #[test]
    fn codes_round_trip_through_packing() {
        let q = quantized(4, 64, 1);
        let p = Packed4Matrix::pack(&q).unwrap();
        assert_eq!(p.unpack_codes(), q.codes());
    }

    #[test]
    fn dequant_matches_unpacked_reference() {
        let q = quantized(8, 128, 2);
        let p = Packed4Matrix::pack(&q).unwrap();
        let reference = q.dequantize();
        for r in 0..8 {
            for g in 0..(128 / 32) {
                let vals = p.dequant_group32(r, g);
                for (i, v) in vals.iter().enumerate() {
                    let expected = reference[(r, g * 32 + i)];
                    assert!(
                        (v.to_f32() - expected).abs() <= expected.abs().max(0.05) * 5e-3,
                        "({r},{g},{i}): {} vs {expected}",
                        v.to_f32()
                    );
                }
            }
        }
    }

    #[test]
    fn int3_is_rejected() {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(3);
        let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(2, 64, &mut rng);
        let q = rtn_quantize(&w, &QuantConfig::int3_asym()).unwrap();
        assert!(matches!(Packed4Matrix::pack(&q), Err(PackError::Unsupported(_))));
    }

    #[test]
    fn fused_gemm_meets_correctness_criterion() {
        let q = quantized(128, 128, 4);
        let p = Packed4Matrix::pack(&q).unwrap();
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(5);
        let x = WeightDist::Gaussian { std: 1.0 }.sample_matrix(4, 128, &mut rng);
        let out = GemmKernel::default().gemm(&x, &p).unwrap();
        let reference = reference_gemm(&x, &q.dequantize());
        assert!(relative_error(&out, &reference) < 0.005);
    }

    #[test]
    fn int4_memory_is_four_thirds_of_int3() {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(6);
        let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(64, 256, &mut rng);
        let q4 = rtn_quantize(&w, &QuantConfig::int4_asym()).unwrap();
        let q3 = rtn_quantize(&w, &QuantConfig::int3_asym()).unwrap();
        let p4 = Packed4Matrix::pack(&q4).unwrap().memory_bytes();
        let p3 = crate::PackedMatrix::pack(&q3).unwrap().memory_bytes();
        // Params are identical, weights are exactly 4:3.
        let param = 64 * 4 * 4;
        assert_eq!((p4 - param) * 3, (p3 - param) * 4);
    }
}
