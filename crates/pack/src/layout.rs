//! The zero-bit-waste 3-bit packing layout (paper Fig. 6a).
//!
//! Every group of 32 consecutive INT3 weights packs into exactly three
//! `u32` words — 96 bits, no waste (a naive 10-per-word packing wastes 2
//! bits per word, 6.25%). Each physical word carries **8 weights** placed
//! where the de-quantization bit trick wants them, plus an 8-bit slice of
//! a fourth *virtual* word:
//!
//! ```text
//! bits   0..12   : four weights in the low  FP16 lane (3 bits each)
//! bits  12..16   : 4 "rest" bits (slice of the virtual word)
//! bits  16..28   : four weights in the high FP16 lane (3 bits each)
//! bits  28..32   : 4 more "rest" bits
//! ```
//!
//! Within a word, weight slot `s ∈ 0..4` of the low lane holds the
//! group-local weight `8·w + 2·s` and slot `s` of the high lane holds
//! `8·w + 2·s + 1`, so one masked extraction yields an FP16 *pair* —
//! two de-quantized values per emulated instruction (register-level
//! parallelism, §3.3). The virtual word (weights 24..31) is reassembled
//! from the six rest slices with shift/OR operations — the "3 bit-shift
//! operations and |= operations" of the paper.

/// Number of weights per packing group.
pub const GROUP: usize = 32;
/// Number of physical `u32` words per packing group.
pub const WORDS_PER_GROUP: usize = 3;

/// Mask selecting a 3-bit payload at the base of each FP16 lane.
pub const LANE_MASK_LO: u32 = 0x0007_0007;
/// Mask selecting a 3-bit payload three bits up in each FP16 lane (the
/// `1024 + 8e` path).
pub const LANE_MASK_HI: u32 = 0x0038_0038;

/// Inserts eight 3-bit codes into a word's weight positions.
///
/// `codes[s]` for `s ∈ 0..4` go to the low lane, `codes[4 + s]` to the
/// high lane; consecutive slots are 3 bits apart.
fn place_eight(codes: &[u8]) -> u32 {
    debug_assert_eq!(codes.len(), 8);
    let mut w = 0u32;
    for s in 0..4 {
        w |= (codes[s] as u32 & 0x7) << (3 * s); // low lane: bits 0..12
        w |= (codes[4 + s] as u32 & 0x7) << (16 + 3 * s); // high lane: bits 16..28
    }
    w
}

/// Extracts the eight 3-bit codes from a word's weight positions
/// (inverse of [`place_eight`]).
fn extract_eight(w: u32) -> [u8; 8] {
    let mut out = [0u8; 8];
    for s in 0..4 {
        out[s] = ((w >> (3 * s)) & 0x7) as u8;
        out[4 + s] = ((w >> (16 + 3 * s)) & 0x7) as u8;
    }
    out
}

/// Interleaves 8 group-local weights for word `w`: low-lane slots take
/// even positions, high-lane slots take odd positions.
fn interleave(word_weights: &[u8; 8]) -> [u8; 8] {
    // word_weights is in original order e0..e7 (relative to the word);
    // returns [e0, e2, e4, e6, e1, e3, e5, e7] for place_eight.
    [
        word_weights[0],
        word_weights[2],
        word_weights[4],
        word_weights[6],
        word_weights[1],
        word_weights[3],
        word_weights[5],
        word_weights[7],
    ]
}

/// Inverse of [`interleave`].
fn deinterleave(lanes: &[u8; 8]) -> [u8; 8] {
    [
        lanes[0], lanes[4], lanes[1], lanes[5], lanes[2], lanes[6], lanes[3], lanes[7],
    ]
}

/// Packs 32 INT3 codes into three `u32` words.
///
/// # Panics
///
/// Panics (debug) if any code exceeds 7.
pub fn pack_group(codes: &[u8; GROUP]) -> [u32; WORDS_PER_GROUP] {
    debug_assert!(codes.iter().all(|&c| c <= 7), "INT3 codes must be 0..8");
    // Virtual word for weights 24..31, in the same lane layout.
    let mut tail_weights = [0u8; 8];
    tail_weights.copy_from_slice(&codes[24..32]);
    let w3 = place_eight(&interleave(&tail_weights));

    let mut words = [0u32; WORDS_PER_GROUP];
    for (w, word) in words.iter_mut().enumerate() {
        let mut ww = [0u8; 8];
        ww.copy_from_slice(&codes[8 * w..8 * w + 8]);
        *word = place_eight(&interleave(&ww));
    }
    // Distribute the virtual word's 24 significant bits (positions 0..12
    // and 16..28) across the three words' free nibbles (bits 12..16 and
    // 28..32).
    //   word0[12..16) <- w3[ 0.. 4)   word0[28..32) <- w3[ 4.. 8)
    //   word1[12..16) <- w3[ 8..12)   word1[28..32) <- w3[16..20)
    //   word2[12..16) <- w3[20..24)   word2[28..32) <- w3[24..28)
    words[0] |= (w3 & 0x0000_000F) << 12;
    words[0] |= ((w3 >> 4) & 0xF) << 28;
    words[1] |= ((w3 >> 8) & 0xF) << 12;
    words[1] |= ((w3 >> 16) & 0xF) << 28;
    words[2] |= ((w3 >> 20) & 0xF) << 12;
    words[2] |= ((w3 >> 24) & 0xF) << 28;
    words
}

/// Reassembles the virtual fourth word from the three physical words'
/// rest nibbles — the shift/OR recombination the kernel performs on the
/// group boundary.
pub fn virtual_word(words: &[u32; WORDS_PER_GROUP]) -> u32 {
    ((words[0] >> 12) & 0xF)
        | (((words[0] >> 28) & 0xF) << 4)
        | (((words[1] >> 12) & 0xF) << 8)
        | (((words[1] >> 28) & 0xF) << 16)
        | (((words[2] >> 12) & 0xF) << 20)
        | (((words[2] >> 28) & 0xF) << 24)
}

/// Unpacks three `u32` words back into 32 INT3 codes (inverse of
/// [`pack_group`]).
pub fn unpack_group(words: &[u32; WORDS_PER_GROUP]) -> [u8; GROUP] {
    let mut out = [0u8; GROUP];
    for (w, &word) in words.iter().enumerate() {
        let codes = deinterleave(&extract_eight(word));
        out[8 * w..8 * w + 8].copy_from_slice(&codes);
    }
    let tail = deinterleave(&extract_eight(virtual_word(words)));
    out[24..32].copy_from_slice(&tail);
    out
}

/// The weight codes a single physical word contributes directly (in
/// group-local order `8w..8w+8`), used by the streaming de-quantizer.
pub fn word_codes(word: u32) -> [u8; 8] {
    deinterleave(&extract_eight(word))
}

/// The naive packing baseline the paper rejects: ten 3-bit values per
/// `u32`, wasting 2 bits per word (6.25% of storage) and leaving the
/// payloads unaligned with FP16 lanes, so de-quantization needs per-value
/// shifts instead of paired-lane extraction.
pub mod naive {
    /// Codes per word under the naive layout.
    pub const PER_WORD: usize = 10;

    /// Packs codes ten-per-word, in order, low bits first.
    ///
    /// # Panics
    ///
    /// Panics (debug) if any code exceeds 7.
    pub fn pack(codes: &[u8]) -> Vec<u32> {
        debug_assert!(codes.iter().all(|&c| c <= 7));
        codes
            .chunks(PER_WORD)
            .map(|chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .fold(0u32, |w, (i, &c)| w | ((c as u32) << (3 * i)))
            })
            .collect()
    }

    /// Unpacks `n` codes from the naive layout.
    pub fn unpack(words: &[u32], n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| ((words[i / PER_WORD] >> (3 * (i % PER_WORD))) & 0x7) as u8)
            .collect()
    }

    /// Storage bytes for `n` codes under the naive layout.
    pub fn bytes(n: usize) -> usize {
        n.div_ceil(PER_WORD) * 4
    }
}

/// Storage bytes for `n` codes under the zero-waste layout (exactly
/// 3 bits per code, in 96-bit group units).
pub fn zero_waste_bytes(n: usize) -> usize {
    n.div_ceil(GROUP) * WORDS_PER_GROUP * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::rng::Rng;
    use milo_tensor::rng::SeedableRng;

    fn random_codes(seed: u64) -> [u8; GROUP] {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        let mut c = [0u8; GROUP];
        for v in &mut c {
            *v = rng.gen_range(0..8);
        }
        c
    }

    #[test]
    fn pack_unpack_round_trip() {
        for seed in 0..50 {
            let codes = random_codes(seed);
            assert_eq!(unpack_group(&pack_group(&codes)), codes, "seed {seed}");
        }
    }

    #[test]
    fn all_zero_and_all_seven() {
        assert_eq!(unpack_group(&pack_group(&[0; GROUP])), [0; GROUP]);
        assert_eq!(unpack_group(&pack_group(&[7; GROUP])), [7; GROUP]);
    }

    #[test]
    fn ninety_six_bits_no_waste() {
        // Every one of the 96 storage bits is significant: flipping any
        // bit of the packed words changes the unpacked codes.
        let codes = random_codes(42);
        let packed = pack_group(&codes);
        for w in 0..WORDS_PER_GROUP {
            for bit in 0..32 {
                let mut mutated = packed;
                mutated[w] ^= 1 << bit;
                assert_ne!(
                    unpack_group(&mutated),
                    codes,
                    "flipping word {w} bit {bit} was silent — wasted bit"
                );
            }
        }
    }

    #[test]
    fn each_word_carries_its_eight_weights() {
        let mut codes = [0u8; GROUP];
        for (i, c) in codes.iter_mut().enumerate() {
            *c = (i % 8) as u8;
        }
        let packed = pack_group(&codes);
        for w in 0..WORDS_PER_GROUP {
            let direct = word_codes(packed[w]);
            assert_eq!(&direct, &codes[8 * w..8 * w + 8]);
        }
    }

    #[test]
    fn virtual_word_carries_tail_weights() {
        let mut codes = [0u8; GROUP];
        for (i, c) in codes.iter_mut().enumerate().skip(24) {
            *c = (i - 24) as u8 % 8;
        }
        let packed = pack_group(&codes);
        let tail = word_codes(virtual_word(&packed));
        assert_eq!(&tail, &codes[24..32]);
    }

    #[test]
    fn lane_masks_select_weight_bits() {
        // Low lane slot 0 and high lane slot 0 are selected by
        // LANE_MASK_LO; slot 1 by LANE_MASK_HI after no shift.
        let mut codes = [0u8; GROUP];
        codes[0] = 0x5; // low lane slot 0 of word 0
        codes[1] = 0x3; // high lane slot 0 of word 0
        let w = pack_group(&codes)[0];
        assert_eq!(w & LANE_MASK_LO, 0x5 | (0x3 << 16));
    }

    #[test]
    fn distinct_groups_produce_distinct_words() {
        let a = pack_group(&random_codes(1));
        let b = pack_group(&random_codes(2));
        assert_ne!(a, b);
    }

    #[test]
    fn naive_pack_round_trips() {
        let codes = random_codes(7);
        let words = naive::pack(&codes);
        assert_eq!(naive::unpack(&words, codes.len()), codes.to_vec());
    }

    #[test]
    fn naive_handles_partial_tail_word() {
        let codes = [1u8, 2, 3, 4, 5, 6, 7];
        let words = naive::pack(&codes);
        assert_eq!(words.len(), 1);
        assert_eq!(naive::unpack(&words, 7), codes.to_vec());
    }

    #[test]
    fn zero_waste_saves_the_paper_quoted_fraction() {
        // 320 codes: naive uses 32 words (128 B), zero-waste uses 30
        // words (120 B) — the 1/16 (6.25%) the paper's "zero bit waste"
        // packing reclaims.
        let n = 320;
        let naive_b = naive::bytes(n);
        let zw_b = zero_waste_bytes(n);
        assert_eq!(naive_b, 128);
        assert_eq!(zw_b, 120);
        assert!((1.0 - zw_b as f64 / naive_b as f64 - 0.0625).abs() < 1e-9);
    }
}
