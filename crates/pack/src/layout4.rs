//! INT4 packing — the deployment layout of the W4A16 baseline kernels
//! (MARLIN-class) that the paper compares against.
//!
//! INT4 is a power of two, so packing is naturally waste-free: eight
//! 4-bit codes per `u32`, four nibbles in each FP16 lane:
//!
//! ```text
//! bits  0..16 : four codes in the low  FP16 lane (4 bits each)
//! bits 16..32 : four codes in the high FP16 lane
//! ```
//!
//! Slot `s ∈ 0..4` of the low lane holds weight `2s`, slot `s` of the
//! high lane holds `2s + 1`, so the same paired-lane extraction used by
//! the INT3 path applies: `(w >> 4k) & 0x000F000F | 0x6400_6400` is the
//! half2 pair `[1024 + e_lo, 1024 + e_hi]`.

/// Codes per packed word.
pub const PER_WORD: usize = 8;

/// Mask selecting a 4-bit payload at the base of each FP16 lane.
pub const LANE_MASK4: u32 = 0x000F_000F;

/// Packs 8 INT4 codes into one `u32`.
///
/// # Panics
///
/// Panics (debug) if any code exceeds 15.
pub fn pack_word4(codes: &[u8; PER_WORD]) -> u32 {
    debug_assert!(codes.iter().all(|&c| c <= 15), "INT4 codes must be 0..16");
    let mut w = 0u32;
    for s in 0..4 {
        w |= (codes[2 * s] as u32) << (4 * s); // low lane
        w |= (codes[2 * s + 1] as u32) << (16 + 4 * s); // high lane
    }
    w
}

/// Unpacks one `u32` into 8 INT4 codes (inverse of [`pack_word4`]).
pub fn unpack_word4(word: u32) -> [u8; PER_WORD] {
    let mut out = [0u8; PER_WORD];
    for s in 0..4 {
        out[2 * s] = ((word >> (4 * s)) & 0xF) as u8;
        out[2 * s + 1] = ((word >> (16 + 4 * s)) & 0xF) as u8;
    }
    out
}

/// Storage bytes for `n` INT4 codes.
pub fn int4_bytes(n: usize) -> usize {
    n.div_ceil(PER_WORD) * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_tensor::rng::{Rng, SeedableRng};

    #[test]
    fn pack_unpack_round_trip() {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let mut codes = [0u8; PER_WORD];
            for c in &mut codes {
                *c = rng.gen_range(0..16);
            }
            assert_eq!(unpack_word4(pack_word4(&codes)), codes);
        }
    }

    #[test]
    fn every_bit_is_significant() {
        let codes = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let word = pack_word4(&codes);
        for bit in 0..32 {
            assert_ne!(unpack_word4(word ^ (1 << bit)), codes, "bit {bit} silent");
        }
    }

    #[test]
    fn lane_layout_matches_documentation() {
        let mut codes = [0u8; PER_WORD];
        codes[0] = 0xA; // low lane slot 0
        codes[1] = 0x5; // high lane slot 0
        let w = pack_word4(&codes);
        assert_eq!(w & LANE_MASK4, 0xA | (0x5 << 16));
    }

    #[test]
    fn byte_accounting() {
        assert_eq!(int4_bytes(8), 4);
        assert_eq!(int4_bytes(9), 8);
        assert_eq!(int4_bytes(64), 32);
    }
}
