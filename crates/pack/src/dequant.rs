//! Binary-manipulation INT3→FP16 de-quantization ("MiLo Dequant",
//! paper §3.3, Fig. 6b).
//!
//! A naive conversion would extract each 3-bit code as an integer and
//! cast it to floating point — slow on GPUs. The MiLo trick instead
//! splices payloads into FP16 mantissas:
//!
//! * a payload at the lane base gives the bit pattern `0x6400 | e`,
//!   which *is* the half-precision number `1024 + e`;
//! * a payload three bits up gives `0x6400 | (e << 3)` = `1024 + 8e`;
//!
//! and because each 32-bit register holds **two** FP16 lanes, one masked
//! OR plus one `__hsub2`/`__hfma2` converts *two* weights at once. The
//! symmetric path subtracts the grid midpoint (code 4) inside the same
//! instruction; the asymmetric path folds `−z·s` into the scaling FMA,
//! exactly as the paper describes ("we use `__hmul2` for symmetric and
//! `__hfma2` for asymmetric").

use crate::layout::{word_codes, LANE_MASK_HI, LANE_MASK_LO};
use milo_tensor::half::h2;
use milo_tensor::F16;

/// The FP16 constant `1024.0` replicated in both lanes.
const MAGIC: u32 = 0x6400_6400;

/// Extracts the four (lo, hi) weight pairs of a word as `1024 + e` /
/// `1024 + 8e` registers and reduces them to raw code values `e` in both
/// lanes. Returns `[e0..e7]` in group-local order.
fn extract_codes_f16(word: u32) -> [u32; 4] {
    // Pair s lives at shift 6·(s/2) with mask LO (even slot) or HI (odd
    // slot within the shifted view).
    let mut regs = [0u32; 4];
    for (i, reg) in regs.iter_mut().enumerate() {
        let shifted = word >> (6 * (i / 2));
        *reg = if i % 2 == 0 {
            // 1024 + e path: subtract 1024 to leave e.
            let spliced = (shifted & LANE_MASK_LO) | MAGIC;
            h2::hsub2(spliced, h2::splat(F16::B1024))
        } else {
            // 1024 + 8e path: e = (1024 + 8e) · (1/8) − 128.
            let spliced = (shifted & LANE_MASK_HI) | MAGIC;
            h2::hfma2(spliced, h2::splat(F16::from_f32(0.125)), h2::splat(F16::from_f32(-128.0)))
        };
    }
    regs
}

/// De-quantizes the 8 weights a word carries with the **symmetric**
/// scheme: `w = (e − 4) · step` (paper Eq. 15 inverted), where `step` is
/// the group's grid step. Output is in group-local order `e0..e7`.
pub fn dequant_word_sym(word: u32, step: F16) -> [F16; 8] {
    let offset = h2::splat(F16::from_f32(4.0));
    let step2 = h2::splat(step);
    let mut out = [F16::ZERO; 8];
    for (i, reg) in extract_codes_f16(word).iter().enumerate() {
        let centred = h2::hsub2(*reg, offset);
        let scaled = h2::hmul2(centred, step2);
        let (lo, hi) = h2::unpack(scaled);
        // Pair i holds group-local weights (2i, 2i+1).
        out[2 * i] = lo;
        out[2 * i + 1] = hi;
    }
    out
}

/// De-quantizes the 8 weights a word carries with the **asymmetric**
/// scheme: `w = e·s − z·s`, with the `−z·s` term precomputed (as the
/// fused kernel does) and applied in the same `__hfma2`.
pub fn dequant_word_asym(word: u32, scale: F16, neg_zs: F16) -> [F16; 8] {
    let s2 = h2::splat(scale);
    let c2 = h2::splat(neg_zs);
    let mut out = [F16::ZERO; 8];
    for (i, reg) in extract_codes_f16(word).iter().enumerate() {
        let v = h2::hfma2(*reg, s2, c2);
        let (lo, hi) = h2::unpack(v);
        out[2 * i] = lo;
        out[2 * i + 1] = hi;
    }
    out
}

/// The naive baseline: extract integer codes and cast each through f32.
///
/// Functionally identical to [`dequant_word_asym`]; exists so tests can
/// confirm the bit-trick path agrees with a plain implementation, and so
/// the ablation benches have the "no MiLo Dequant" reference.
pub fn naive_dequant_word(word: u32, scale: f32, zero: f32) -> [F16; 8] {
    let codes = word_codes(word);
    let mut out = [F16::ZERO; 8];
    for (i, &c) in codes.iter().enumerate() {
        out[i] = F16::from_f32(scale * (c as f32 - zero));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::pack_group;
    use milo_tensor::rng::Rng;
    use milo_tensor::rng::SeedableRng;

    fn word_with(codes8: [u8; 8]) -> u32 {
        let mut group = [0u8; 32];
        group[..8].copy_from_slice(&codes8);
        pack_group(&group)[0]
    }

    #[test]
    fn symmetric_path_matches_formula_exactly() {
        let codes = [0u8, 1, 2, 3, 4, 5, 6, 7];
        let w = word_with(codes);
        let step = F16::from_f32(0.25);
        let vals = dequant_word_sym(w, step);
        for (i, &c) in codes.iter().enumerate() {
            let expected = (c as f32 - 4.0) * 0.25;
            assert_eq!(vals[i].to_f32(), expected, "slot {i}");
        }
    }

    #[test]
    fn asymmetric_path_matches_naive_within_half_ulp() {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let mut codes = [0u8; 8];
            for c in &mut codes {
                *c = rng.gen_range(0..8);
            }
            let w = word_with(codes);
            let scale = rng.gen_range(0.001f32..0.1);
            let zero = rng.gen_range(0.0f32..7.0);
            let trick = dequant_word_asym(
                w,
                F16::from_f32(scale),
                F16::from_f32(-zero * scale),
            );
            let naive = naive_dequant_word(w, scale, zero);
            for i in 0..8 {
                let (a, b) = (trick[i].to_f32(), naive[i].to_f32());
                // Both paths round through FP16; they may differ by one
                // final-place rounding of the fused vs separate ops.
                let tol = (scale * 8.0) * 1e-2;
                assert!((a - b).abs() <= tol, "slot {i}: trick {a} vs naive {b}");
            }
        }
    }

    #[test]
    fn integer_codes_are_recovered_exactly() {
        // The 1024+e and 1024+8e paths must reproduce the integer code
        // with no rounding at all (everything is exact in FP16).
        for c in 0u8..8 {
            let w = word_with([c; 8]);
            let vals = dequant_word_asym(w, F16::ONE, F16::ZERO);
            for v in vals {
                assert_eq!(v.to_f32(), c as f32);
            }
        }
    }

    #[test]
    fn magic_constant_is_1024() {
        let (lo, hi) = h2::unpack(MAGIC);
        assert_eq!(lo.to_f32(), 1024.0);
        assert_eq!(hi.to_f32(), 1024.0);
    }

    #[test]
    fn zero_scale_yields_zero() {
        let w = word_with([3; 8]);
        for v in dequant_word_sym(w, F16::ZERO) {
            assert_eq!(v.to_f32(), 0.0);
        }
    }

    #[test]
    fn symmetric_midpoint_code_is_exact_zero() {
        let w = word_with([4; 8]);
        for v in dequant_word_sym(w, F16::from_f32(0.37)) {
            assert_eq!(v.to_f32(), 0.0);
        }
    }
}
