//! A weight matrix in the packed INT3 deployment layout.
//!
//! The paper's kernel loads weights in units of three `u32` words per
//! 32-weight group, which breaks alignment for bulk (128-bit) loads. The
//! fix (§3.3) is to split the storage into **two** arrays: a *main* array
//! holding the first two words of each group (naturally 8-byte aligned)
//! and a *tail* array holding the third word. [`PackedMatrix`] mirrors
//! that split.

use crate::dequant::{dequant_word_asym, dequant_word_sym};
use crate::layout::{pack_group, virtual_word, GROUP};
use crate::{PackError, Result};
use milo_quant::{QuantizedMatrix, Scheme};
use milo_tensor::{F16, Matrix};

/// A weight matrix in some packed deployment layout, de-quantizable in
/// 32-element strips — the interface the fused GEMM kernel consumes.
/// Implemented by the INT3 [`PackedMatrix`] and the INT4
/// [`Packed4Matrix`](crate::matrix4::Packed4Matrix).
///
/// `Sync` is a supertrait because the kernel's `n`-tile tasks de-quantize
/// strips of the same weight concurrently from pool worker threads.
pub trait PackedWeight: Sync {
    /// Number of rows (output features).
    fn rows(&self) -> usize;

    /// Number of columns (input features / reduction dimension).
    fn cols(&self) -> usize;

    /// The quantization group size.
    fn group_size(&self) -> usize;

    /// De-quantizes the 32 weights of packing strip `g` in row `r` into
    /// FP16 values.
    fn dequant_group32(&self, r: usize, g: usize) -> [F16; 32];

    /// De-quantizes strip `g` of row `r` directly into `out` (exactly 32
    /// elements). The fused GEMM calls this so each strip lands straight
    /// in the thread-local tile buffer instead of round-tripping through
    /// a fresh `[F16; 32]`. Implementations should override the default
    /// (which still does the by-value round trip).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != 32`.
    fn dequant_group32_into(&self, r: usize, g: usize, out: &mut [F16]) {
        out.copy_from_slice(&self.dequant_group32(r, g));
    }

    /// Materializes the whole matrix as dense `f32` through the packed
    /// de-quantization path.
    fn dequantize_dense(&self) -> Matrix {
        let strips = self.cols() / 32;
        let mut out = Matrix::zeros(self.rows(), self.cols());
        for r in 0..self.rows() {
            for g in 0..strips {
                let vals = self.dequant_group32(r, g);
                let row = out.row_mut(r);
                for (i, v) in vals.iter().enumerate() {
                    row[g * 32 + i] = v.to_f32();
                }
            }
        }
        out
    }
}

/// A 3-bit quantized weight matrix in the zero-waste packed layout,
/// split into main/tail word arrays.
///
/// # Examples
///
/// ```
/// use milo_pack::PackedMatrix;
/// use milo_quant::{rtn_quantize, QuantConfig};
/// use milo_tensor::{rng::WeightDist, stats};
/// use milo_tensor::rng::SeedableRng;
///
/// let mut rng = milo_tensor::rng::StdRng::seed_from_u64(2);
/// let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(4, 64, &mut rng);
/// let q = rtn_quantize(&w, &QuantConfig::int3_asym())?;
/// let packed = PackedMatrix::pack(&q).expect("3-bit, 64-wide: packable");
///
/// // 3 bits/weight + FP16 scale+zero per group of 64:
/// assert_eq!(packed.memory_bytes(), 4 * 64 * 3 / 8 + 4 * 4);
/// // The FP16 bit-trick dequant path agrees with the reference.
/// let err = stats::relative_frobenius_error(&q.dequantize(), &packed.dequantize());
/// assert!(err < 5e-3);
/// # Ok::<(), milo_quant::QuantError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackedMatrix {
    rows: usize,
    cols: usize,
    /// Two words per 32-weight group, row-major by (row, group).
    main: Vec<u32>,
    /// One word per 32-weight group, same order.
    tail: Vec<u32>,
    /// Per-quant-group scales (grid step for symmetric schemes).
    scales: Vec<f32>,
    /// Per-quant-group zero-points (empty for symmetric schemes).
    zeros: Vec<f32>,
    group_size: usize,
    scheme: Scheme,
}

impl PackedMatrix {
    /// Packs an unpacked [`QuantizedMatrix`] into the deployment layout.
    ///
    /// # Errors
    ///
    /// Returns [`PackError::Unsupported`] unless the matrix is 3-bit with
    /// a quantization group size that is a multiple of 32 (so no packing
    /// group straddles a scale boundary), and [`PackError::InvalidShape`]
    /// unless the column count is a multiple of 32.
    pub fn pack(q: &QuantizedMatrix) -> Result<Self> {
        let cfg = q.config();
        if cfg.bits() != 3 {
            return Err(PackError::Unsupported(format!(
                "packed layout is 3-bit only, got {} bits",
                cfg.bits()
            )));
        }
        if cfg.group_size() % GROUP != 0 {
            return Err(PackError::Unsupported(format!(
                "quant group size {} must be a multiple of {GROUP}",
                cfg.group_size()
            )));
        }
        let (rows, cols) = q.shape();
        if cols % GROUP != 0 {
            return Err(PackError::InvalidShape(format!(
                "column count {cols} is not a multiple of {GROUP}"
            )));
        }

        let groups_per_row = cols / GROUP;
        let mut main = Vec::with_capacity(rows * groups_per_row * 2);
        let mut tail = Vec::with_capacity(rows * groups_per_row);
        for r in 0..rows {
            let row = &q.codes()[r * cols..(r + 1) * cols];
            for g in 0..groups_per_row {
                let mut chunk = [0u8; GROUP];
                chunk.copy_from_slice(&row[g * GROUP..(g + 1) * GROUP]);
                let words = pack_group(&chunk);
                main.push(words[0]);
                main.push(words[1]);
                tail.push(words[2]);
            }
        }
        Ok(Self {
            rows,
            cols,
            main,
            tail,
            scales: q.scales().to_vec(),
            zeros: q.zeros().to_vec(),
            group_size: cfg.group_size(),
            scheme: cfg.scheme(),
        })
    }

    /// Number of rows (output features).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (input features / reduction dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization scheme the weights were produced with.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The quantization group size (64 in all paper experiments).
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The three physical words of packing group `g` in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn group_words(&self, r: usize, g: usize) -> [u32; 3] {
        let groups_per_row = self.cols / GROUP;
        assert!(r < self.rows && g < groups_per_row, "group ({r},{g}) out of range");
        let gi = r * groups_per_row + g;
        [self.main[2 * gi], self.main[2 * gi + 1], self.tail[gi]]
    }

    /// De-quantizes one packing group into 32 FP16 values using the MiLo
    /// binary-manipulation path.
    pub fn dequant_group(&self, r: usize, g: usize) -> [F16; GROUP] {
        let mut out = [F16::ZERO; GROUP];
        self.dequant_group_into(r, g, &mut out);
        out
    }

    /// [`PackedMatrix::dequant_group`] writing directly into `out`
    /// (exactly [`GROUP`] elements) — the kernel's hot path, which keeps
    /// each dequantized strip in the caller's tile buffer.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range or `out.len() != 32`.
    pub fn dequant_group_into(&self, r: usize, g: usize, out: &mut [F16]) {
        assert_eq!(out.len(), GROUP, "strip buffer must hold {GROUP} values");
        let words = self.group_words(r, g);
        // Quant groups are >= 32 and multiples of 32, so one scale covers
        // the whole packing group.
        let qgroups_per_row = self.cols.div_ceil(self.group_size);
        let qg = r * qgroups_per_row + (g * GROUP) / self.group_size;
        let scale = self.scales[qg];

        let logical = [words[0], words[1], words[2], virtual_word(&words)];
        match self.scheme {
            Scheme::Symmetric => {
                let step = F16::from_f32(scale);
                for (w, &word) in logical.iter().enumerate() {
                    let vals = dequant_word_sym(word, step);
                    out[8 * w..8 * w + 8].copy_from_slice(&vals);
                }
            }
            Scheme::Asymmetric => {
                let zero = self.zeros[qg];
                let s = F16::from_f32(scale);
                let neg_zs = F16::from_f32(-zero * scale);
                for (w, &word) in logical.iter().enumerate() {
                    let vals = dequant_word_asym(word, s, neg_zs);
                    out[8 * w..8 * w + 8].copy_from_slice(&vals);
                }
            }
        }
    }

    /// De-quantizes the whole matrix to dense `f32` through the FP16
    /// bit-trick path.
    pub fn dequantize(&self) -> Matrix {
        let groups_per_row = self.cols / GROUP;
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for g in 0..groups_per_row {
                let vals = self.dequant_group(r, g);
                let row = out.row_mut(r);
                for (i, v) in vals.iter().enumerate() {
                    row[g * GROUP + i] = v.to_f32();
                }
            }
        }
        out
    }

    /// Deployment memory in bytes: packed words plus FP16 scales (and
    /// zero-points for asymmetric schemes).
    pub fn memory_bytes(&self) -> usize {
        let words = (self.main.len() + self.tail.len()) * 4;
        let params = match self.scheme {
            Scheme::Asymmetric => self.scales.len() * 4,
            Scheme::Symmetric => self.scales.len() * 2,
        };
        words + params
    }
}


impl PackedWeight for PackedMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn group_size(&self) -> usize {
        self.group_size
    }

    fn dequant_group32(&self, r: usize, g: usize) -> [F16; GROUP] {
        self.dequant_group(r, g)
    }

    fn dequant_group32_into(&self, r: usize, g: usize, out: &mut [F16]) {
        self.dequant_group_into(r, g, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milo_quant::{rtn_quantize, QuantConfig};
    use milo_tensor::rng::WeightDist;
    use milo_tensor::rng::SeedableRng;

    fn quantized(rows: usize, cols: usize, cfg: QuantConfig, seed: u64) -> QuantizedMatrix {
        let mut rng = milo_tensor::rng::StdRng::seed_from_u64(seed);
        let w = WeightDist::Gaussian { std: 0.05 }.sample_matrix(rows, cols, &mut rng);
        rtn_quantize(&w, &cfg).unwrap()
    }

    #[test]
    fn packed_dequant_matches_unpacked_asym() {
        let q = quantized(8, 128, QuantConfig::int3_asym(), 1);
        let p = PackedMatrix::pack(&q).unwrap();
        let reference = q.dequantize();
        let packed = p.dequantize();
        for (a, b) in reference.as_slice().iter().zip(packed.as_slice()) {
            // The packed path rounds through FP16.
            assert!((a - b).abs() <= a.abs().max(0.05) * 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_dequant_matches_unpacked_sym() {
        let q = quantized(4, 64, QuantConfig::int3_sym(), 2);
        let p = PackedMatrix::pack(&q).unwrap();
        let reference = q.dequantize();
        let packed = p.dequantize();
        for (a, b) in reference.as_slice().iter().zip(packed.as_slice()) {
            assert!((a - b).abs() <= a.abs().max(0.05) * 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn int4_is_rejected() {
        let q = quantized(2, 64, QuantConfig::int4_asym(), 3);
        assert!(matches!(PackedMatrix::pack(&q), Err(PackError::Unsupported(_))));
    }

    #[test]
    fn misaligned_columns_rejected() {
        use milo_quant::Scheme;
        let cfg = QuantConfig::new(3, 32, Scheme::Asymmetric).unwrap();
        let q = quantized(2, 48, cfg, 4);
        assert!(matches!(PackedMatrix::pack(&q), Err(PackError::InvalidShape(_))));
    }

    #[test]
    fn group_size_not_multiple_of_32_rejected() {
        use milo_quant::Scheme;
        let cfg = QuantConfig::new(3, 48, Scheme::Asymmetric).unwrap();
        let q = quantized(2, 96, cfg, 5);
        assert!(matches!(PackedMatrix::pack(&q), Err(PackError::Unsupported(_))));
    }

    #[test]
    fn memory_is_three_over_sixteen_of_fp16_plus_params() {
        let q = quantized(16, 256, QuantConfig::int3_asym(), 6);
        let p = PackedMatrix::pack(&q).unwrap();
        let fp16_bytes = 16 * 256 * 2;
        let weight_bytes = 16 * 256 * 3 / 8;
        let param_bytes = 16 * 4 * 4; // 4 groups/row, f16 scale+zero
        assert_eq!(p.memory_bytes(), weight_bytes + param_bytes);
        assert!(p.memory_bytes() < fp16_bytes / 4);
    }

    #[test]
    fn word_split_has_expected_lengths() {
        let q = quantized(4, 128, QuantConfig::int3_asym(), 7);
        let p = PackedMatrix::pack(&q).unwrap();
        let groups = 4 * (128 / GROUP);
        assert_eq!(p.group_words(0, 0).len(), 3);
        assert_eq!(p.main.len(), 2 * groups);
        assert_eq!(p.tail.len(), groups);
    }
}
