//! Zero-bit-waste INT3 weight packing and the MiLo de-quantization /
//! GEMM pipeline (paper §3.3), reproduced bit-exactly on the CPU.
//!
//! The CUDA kernel the paper builds cannot run here, but everything that
//! makes it *correct* is pure bit manipulation and FP16 arithmetic, which
//! this crate reproduces faithfully:
//!
//! * [`layout`] — the packing format of Fig. 6(a): every 32 consecutive
//!   INT3 weights occupy exactly three `u32` words (96 bits, zero waste).
//!   Each word directly carries 8 weights in trick-friendly positions;
//!   the remaining 8 bits per word hold slices of a fourth *virtual* word
//!   that is reassembled with shift/OR operations and carries the last 8
//!   weights.
//! * [`dequant`] — the binary-manipulation INT3→FP16 conversion of
//!   Fig. 6(b): splicing a 3-bit payload into the mantissa of the FP16
//!   constant `1024.0` yields `1024 + e` (or `1024 + 8e` for the
//!   odd-position payloads), which one packed `__hsub2`/`__hfma2`
//!   emulation turns into the centred weight value — no int→float casts.
//! * [`matrix`] — [`PackedMatrix`]: a quantized weight matrix in the
//!   deployment layout, split into a *main* array (two words per 32-group)
//!   and a *tail* array (the third word), mirroring the paper's two-matrix
//!   split that fixes the 3-word alignment problem.
//! * [`gemm`] — the fused dequant+GEMM "kernel" with the tile-shape and
//!   group-size validation rules of Appendix D, batch padding to the
//!   16-row Tensor-Core granularity, and an unfused reference path.

#![warn(missing_docs)]

pub mod dequant;
pub mod gemm;
pub mod layout;
pub mod layout4;
pub mod matrix;
pub mod matrix4;

pub use dequant::{dequant_word_asym, dequant_word_sym, naive_dequant_word};
pub use gemm::{GemmKernel, TileShape};
pub use layout::{pack_group, unpack_group, virtual_word};
pub use matrix::{PackedMatrix, PackedWeight};
pub use matrix4::Packed4Matrix;

/// Errors produced by the packing and kernel layers.
#[derive(Debug, Clone, PartialEq)]
pub enum PackError {
    /// The matrix shape violates a packing or kernel constraint
    /// (Appendix D error-handling rules).
    InvalidShape(String),
    /// The quantizer configuration is not supported by the kernel (the
    /// paper's kernel requires group size 64 and 3-bit codes).
    Unsupported(String),
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::InvalidShape(msg) => write!(f, "invalid shape: {msg}"),
            PackError::Unsupported(msg) => write!(f, "unsupported configuration: {msg}"),
        }
    }
}

impl std::error::Error for PackError {}

/// Convenient result alias for packing operations.
pub type Result<T> = std::result::Result<T, PackError>;
